//! Failure-scenario generation (§6.4).
//!
//! A [`FailureScenario`] assigns every directed link a drop probability —
//! low "noise" rates on good links (the paper sets 0–0.01%, which TCP
//! tolerates) and substantially higher rates on failed links — plus
//! optional latency faults, and records the [`GroundTruth`] an evaluation
//! scores against.

use flock_topology::{GroundTruth, LinkId, NodeId, SpinePlanes, Topology};
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A latency fault on a link: flows crossing it within the fault window
/// see their RTT inflated (the flow-level analogue of a link flap that
/// buffers packets, §6.4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyFault {
    /// The affected link.
    pub link: LinkId,
    /// Extra RTT in microseconds for affected flows.
    pub added_rtt_us: u32,
    /// Fraction of flows crossing the link that experience the spike
    /// (a flap is transient; not every flow overlaps it).
    pub affected_fraction: f64,
}

/// Per-link drop probabilities plus ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureScenario {
    /// Drop probability per directed link, indexed by `LinkId`.
    pub drop_rate: Vec<f64>,
    /// Latency faults (empty unless exercising per-flow analysis).
    pub latency_faults: Vec<LatencyFault>,
    /// What actually failed.
    pub truth: GroundTruth,
}

impl FailureScenario {
    /// A scenario with uniform-random noise drop rates on all links and no
    /// failures.
    pub fn noise_only<R: Rng + ?Sized>(topo: &Topology, noise_max: f64, rng: &mut R) -> Self {
        let drop_rate = (0..topo.link_count())
            .map(|_| rng.random::<f64>() * noise_max)
            .collect();
        FailureScenario {
            drop_rate,
            latency_faults: Vec::new(),
            truth: GroundTruth::default(),
        }
    }

    /// Drop rate of a link.
    #[inline]
    pub fn link_drop_rate(&self, l: LinkId) -> f64 {
        self.drop_rate[l.idx()]
    }

    /// Maximum drop rate over links *not* in the ground truth — the noise
    /// floor used in the paper's SNR metric (§7.3).
    pub fn noise_floor(&self) -> f64 {
        let failed: std::collections::HashSet<usize> =
            self.truth.failed_links.iter().map(|l| l.idx()).collect();
        self.drop_rate
            .iter()
            .enumerate()
            .filter(|(i, _)| !failed.contains(i))
            .map(|(_, r)| *r)
            .fold(0.0, f64::max)
    }

    /// Signal-to-noise ratio (§7.3): min failed drop rate / noise floor.
    pub fn snr(&self) -> f64 {
        let signal = self
            .truth
            .failed_links
            .iter()
            .map(|l| self.drop_rate[l.idx()])
            .fold(f64::INFINITY, f64::min);
        let noise = self.noise_floor();
        if noise <= 0.0 {
            f64::INFINITY
        } else {
            signal / noise
        }
    }
}

/// Default noise ceiling on good links (0.01%, §6.3).
pub const DEFAULT_NOISE_MAX: f64 = 1e-4;

/// Silent link drops (§7.1): fail `n_failed` random fabric links with a
/// drop rate drawn uniformly from `fail_range` (the paper uses 0.1%–1%).
pub fn silent_link_drops<R: Rng + ?Sized>(
    topo: &Topology,
    n_failed: usize,
    fail_range: (f64, f64),
    noise_max: f64,
    rng: &mut R,
) -> FailureScenario {
    let mut sc = FailureScenario::noise_only(topo, noise_max, rng);
    let mut candidates = topo.fabric_links();
    candidates.shuffle(rng);
    for l in candidates.into_iter().take(n_failed) {
        let rate = fail_range.0 + rng.random::<f64>() * (fail_range.1 - fail_range.0);
        sc.drop_rate[l.idx()] = rate;
        sc.truth.failed_links.push(l);
    }
    sc.truth.failed_links.sort_unstable();
    sc
}

/// A single soft gray failure with an exact drop rate (§7.3's sweep).
pub fn single_soft_failure<R: Rng + ?Sized>(
    topo: &Topology,
    drop_rate: f64,
    noise_max: f64,
    rng: &mut R,
) -> FailureScenario {
    let mut sc = FailureScenario::noise_only(topo, noise_max, rng);
    let link = *topo
        .fabric_links()
        .choose(rng)
        .expect("topology has no fabric links");
    sc.drop_rate[link.idx()] = drop_rate;
    sc.truth.failed_links.push(link);
    sc
}

/// Silent device failure (§7.2): fail `frac_links` of each chosen device's
/// attached cables (both directions), with per-link drop rates from
/// `fail_range`. Mimics a faulty line card taking out a subset of a
/// switch's ports.
pub fn device_failure<R: Rng + ?Sized>(
    topo: &Topology,
    n_devices: usize,
    frac_links: f64,
    fail_range: (f64, f64),
    noise_max: f64,
    rng: &mut R,
) -> FailureScenario {
    assert!((0.0..=1.0).contains(&frac_links));
    let mut sc = FailureScenario::noise_only(topo, noise_max, rng);
    let mut devices: Vec<NodeId> = topo.switches().to_vec();
    devices.shuffle(rng);
    for dev in devices.into_iter().take(n_devices) {
        sc.truth.failed_devices.push(dev);
        // Cables attached to the device (dedup directions via canonical id).
        let mut cables: Vec<LinkId> = topo
            .links_of_node(dev)
            .into_iter()
            .filter(|l| topo.link(*l).src < topo.link(*l).dst)
            .collect();
        cables.shuffle(rng);
        let n_fail = ((cables.len() as f64) * frac_links).round().max(1.0) as usize;
        for cable in cables.into_iter().take(n_fail) {
            let rate = fail_range.0 + rng.random::<f64>() * (fail_range.1 - fail_range.0);
            let rev = topo.link(cable).reverse;
            sc.drop_rate[cable.idx()] = rate;
            sc.drop_rate[rev.idx()] = rate;
            sc.truth.failed_links.push(cable);
            sc.truth.failed_links.push(rev);
        }
    }
    sc.truth.failed_links.sort_unstable();
    sc.truth.failed_links.dedup();
    sc.truth.failed_devices.sort_unstable();
    sc
}

/// All directed links incident to the spines of one plane — the
/// candidate set of the plane-confined scenarios.
fn plane_incident_links(topo: &Topology, planes: &SpinePlanes, plane: u16) -> Vec<LinkId> {
    planes.incident_links(topo, plane)
}

/// Plane-confined gray failures: fail `n_failed` random links incident
/// to the spines of one plane, with drop rates from `fail_range`.
///
/// Because a striped Clos carries disjoint ECMP slices per plane, every
/// flow that can observe these failures crosses exactly this plane —
/// the workload the per-plane spine shards of `flock-stream` localize
/// without consulting any other plane's engine.
pub fn plane_link_drops<R: Rng + ?Sized>(
    topo: &Topology,
    planes: &SpinePlanes,
    plane: u16,
    n_failed: usize,
    fail_range: (f64, f64),
    noise_max: f64,
    rng: &mut R,
) -> FailureScenario {
    multi_plane_link_drops(topo, planes, &[plane], n_failed, fail_range, noise_max, rng)
}

/// [`plane_link_drops`] across several planes at once: `n_failed` links
/// in *each* listed plane, one shared noise floor. Simultaneous faults
/// in two or more planes are the workload that forces the cross-plane
/// refinement pass of `flock-stream` every epoch — the property tests
/// and the `fixed_cost` bench both build their scenarios through this
/// helper so the composition (noise applied once, per-plane candidate
/// selection, merged ground truth) cannot drift between them.
pub fn multi_plane_link_drops<R: Rng + ?Sized>(
    topo: &Topology,
    planes: &SpinePlanes,
    fault_planes: &[u16],
    n_failed: usize,
    fail_range: (f64, f64),
    noise_max: f64,
    rng: &mut R,
) -> FailureScenario {
    let mut sc = FailureScenario::noise_only(topo, noise_max, rng);
    for &plane in fault_planes {
        let mut candidates = plane_incident_links(topo, planes, plane);
        candidates.shuffle(rng);
        for l in candidates.into_iter().take(n_failed) {
            let rate = fail_range.0 + rng.random::<f64>() * (fail_range.1 - fail_range.0);
            sc.drop_rate[l.idx()] = rate;
            sc.truth.failed_links.push(l);
        }
    }
    sc.truth.failed_links.sort_unstable();
    sc
}

/// A whole spine plane going dark (a maintenance window gone wrong, or
/// a shared-power/line-card failure taking out one stripe): every link
/// incident to every spine of the plane drops all traffic, in both
/// directions, and the plane's spine devices are the ground truth.
pub fn plane_down<R: Rng + ?Sized>(
    topo: &Topology,
    planes: &SpinePlanes,
    plane: u16,
    noise_max: f64,
    rng: &mut R,
) -> FailureScenario {
    let mut sc = FailureScenario::noise_only(topo, noise_max, rng);
    for l in plane_incident_links(topo, planes, plane) {
        sc.drop_rate[l.idx()] = 1.0;
        sc.truth.failed_links.push(l);
    }
    sc.truth
        .failed_devices
        .extend_from_slice(planes.spines_in(plane));
    sc.truth.failed_links.sort_unstable();
    sc.truth.failed_devices.sort_unstable();
    sc
}

/// A link-flap latency fault on a random fabric link (§7.5): no extra
/// packet loss, but affected flows see a large RTT spike.
pub fn link_flap<R: Rng + ?Sized>(
    topo: &Topology,
    added_rtt_us: u32,
    affected_fraction: f64,
    noise_max: f64,
    rng: &mut R,
) -> FailureScenario {
    let mut sc = FailureScenario::noise_only(topo, noise_max, rng);
    let link = *topo
        .fabric_links()
        .choose(rng)
        .expect("topology has no fabric links");
    sc.latency_faults.push(LatencyFault {
        link,
        added_rtt_us,
        affected_fraction,
    });
    sc.truth.failed_links.push(link);
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::clos::{three_tier, ClosParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Topology {
        three_tier(ClosParams::tiny())
    }

    #[test]
    fn silent_drops_fail_exactly_n_links() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(1);
        let sc = silent_link_drops(&t, 4, (0.001, 0.01), DEFAULT_NOISE_MAX, &mut rng);
        assert_eq!(sc.truth.failed_links.len(), 4);
        for l in &sc.truth.failed_links {
            assert!(sc.drop_rate[l.idx()] >= 0.001);
            assert!(sc.drop_rate[l.idx()] <= 0.01);
        }
        // Good links stay under the noise ceiling.
        assert!(sc.noise_floor() <= DEFAULT_NOISE_MAX);
        assert!(sc.snr() >= 10.0);
    }

    #[test]
    fn device_failure_marks_device_and_links() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(2);
        let sc = device_failure(&t, 2, 0.5, (0.001, 0.01), DEFAULT_NOISE_MAX, &mut rng);
        assert_eq!(sc.truth.failed_devices.len(), 2);
        assert!(!sc.truth.failed_links.is_empty());
        // Every failed link belongs to a failed device.
        for l in &sc.truth.failed_links {
            let link = t.link(*l);
            assert!(
                sc.truth.failed_devices.contains(&link.src)
                    || sc.truth.failed_devices.contains(&link.dst)
            );
        }
        // Both directions of each failed cable are failed.
        for l in &sc.truth.failed_links {
            assert!(sc.truth.failed_links.contains(&t.link(*l).reverse));
        }
    }

    #[test]
    fn full_device_failure_fails_all_cables() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(3);
        let sc = device_failure(&t, 1, 1.0, (0.005, 0.005), 0.0, &mut rng);
        let dev = sc.truth.failed_devices[0];
        let attached = t.links_of_node(dev);
        assert_eq!(sc.truth.failed_links.len(), attached.len());
    }

    #[test]
    fn flap_has_no_extra_drops() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(4);
        let sc = link_flap(&t, 50_000, 0.5, DEFAULT_NOISE_MAX, &mut rng);
        assert_eq!(sc.latency_faults.len(), 1);
        let l = sc.latency_faults[0].link;
        assert!(sc.drop_rate[l.idx()] <= DEFAULT_NOISE_MAX);
        assert_eq!(sc.truth.failed_links, vec![l]);
    }

    #[test]
    fn plane_link_drops_stay_in_their_plane() {
        let t = topo();
        let planes = SpinePlanes::derive(&t);
        assert_eq!(planes.n_planes(), 2);
        for plane in 0..planes.n_planes() as u16 {
            let mut rng = StdRng::seed_from_u64(10 + u64::from(plane));
            let sc = plane_link_drops(&t, &planes, plane, 3, (0.01, 0.02), 0.0, &mut rng);
            assert_eq!(sc.truth.failed_links.len(), 3);
            for l in &sc.truth.failed_links {
                let link = t.link(*l);
                let touched = [link.src, link.dst]
                    .into_iter()
                    .find_map(|n| planes.plane_of(n));
                assert_eq!(
                    touched,
                    Some(plane),
                    "failed link {l:?} is not incident to plane {plane}"
                );
            }
        }
    }

    #[test]
    fn plane_down_fails_every_incident_link_hard() {
        let t = topo();
        let planes = SpinePlanes::derive(&t);
        let mut rng = StdRng::seed_from_u64(12);
        let sc = plane_down(&t, &planes, 1, DEFAULT_NOISE_MAX, &mut rng);
        // Truth: the plane's spines, and both directions of each of
        // their cables at drop rate 1.
        assert_eq!(sc.truth.failed_devices, planes.spines_in(1));
        let expected: usize = planes
            .spines_in(1)
            .iter()
            .map(|&s| t.links_of_node(s).len())
            .sum();
        assert_eq!(sc.truth.failed_links.len(), expected);
        for l in &sc.truth.failed_links {
            assert_eq!(sc.drop_rate[l.idx()], 1.0);
            assert!(sc.truth.failed_links.contains(&t.link(*l).reverse));
        }
        // The other plane is untouched.
        for &s in planes.spines_in(0) {
            for l in t.links_of_node(s) {
                assert!(sc.drop_rate[l.idx()] <= DEFAULT_NOISE_MAX);
            }
        }
    }

    #[test]
    fn noise_only_has_empty_truth() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(5);
        let sc = FailureScenario::noise_only(&t, 1e-4, &mut rng);
        assert!(sc.truth.is_empty());
        assert_eq!(sc.drop_rate.len(), t.link_count());
    }

    #[test]
    fn snr_matches_definition() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(6);
        let mut sc = FailureScenario::noise_only(&t, 0.0, &mut rng);
        let l = t.fabric_links()[0];
        sc.drop_rate[l.idx()] = 0.01;
        sc.truth.failed_links.push(l);
        assert_eq!(sc.snr(), f64::INFINITY, "no noise → infinite SNR");
        // Add noise on one good link.
        let g = t.fabric_links()[1];
        sc.drop_rate[g.idx()] = 1e-4;
        assert!((sc.snr() - 100.0).abs() < 1e-9);
    }
}
