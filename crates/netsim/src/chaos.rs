//! Seeded fault-injection harness for chaos-testing the pipeline.
//!
//! Production fault-tolerance claims are worthless untested, and
//! hand-written fault tests only cover the faults someone thought of.
//! This module generates a *deterministic, seeded* fault schedule — the
//! same seed always produces the same faults at the same epochs — and
//! the wire-level mangling primitives to execute it, so a chaos soak
//! run is reproducible from its seed alone.
//!
//! The module is deliberately decoupled from the pipeline crates (which
//! take `flock-netsim` only as a dev-dependency): a [`ChaosFault`]
//! names the fault abstractly (victim indices, durations), and the
//! harness driving a real collector/pipeline/store maps it onto its own
//! sockets, shard labels, and store handles. What lives here is the
//! *schedule* (what happens when) and the *wire mangler* (byte-level
//! frame corruption); what lives in the target crates are the
//! injection seams ([`flock_telemetry::ReactorHook`],
//! `flock_stream::ChaosHook`, `flock_store::AppendFault`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// The kinds of fault the schedule can draw, one per boundary the
/// pipeline claims to contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Kill an agent's connection mid-epoch (the agent reconnects with
    /// backoff and resends — at-least-once delivery).
    AgentCrash,
    /// Stall an agent's connection: its frames arrive late within the
    /// epoch, exercising buffering, not loss.
    ConnStall,
    /// Corrupt bytes inside one exported frame (decoder quarantine /
    /// resync path).
    WireCorrupt,
    /// Truncate one exported frame (torn write; decoder resyncs on the
    /// next frame's magic).
    WireTear,
    /// Deliver one exported frame twice (duplicate evidence; tolerated
    /// by the evidence model).
    WireDuplicate,
    /// Reorder an agent's frames within the epoch.
    WireReorder,
    /// Skew an agent's export clock forward (lateness-horizon path).
    ClockSkew,
    /// Stall one collector reactor shard for part of the epoch.
    CollectorStall,
    /// Panic one inference shard's thread (pipeline `catch_unwind`
    /// isolation).
    ShardPanic,
    /// Fail the verdict store's segment append (ring-only degradation).
    StoreAppendFail,
}

impl FaultKind {
    /// All kinds, in declaration order.
    pub const ALL: [FaultKind; 10] = [
        FaultKind::AgentCrash,
        FaultKind::ConnStall,
        FaultKind::WireCorrupt,
        FaultKind::WireTear,
        FaultKind::WireDuplicate,
        FaultKind::WireReorder,
        FaultKind::ClockSkew,
        FaultKind::CollectorStall,
        FaultKind::ShardPanic,
        FaultKind::StoreAppendFail,
    ];

    /// Whether the fault leaves the *evidence reaching every inference
    /// shard* unchanged — the epochs on which a chaos run's verdicts
    /// must be bit-identical to a fault-free run. Stalls delay bytes
    /// without dropping them, and a store append failure is entirely
    /// downstream of inference. Everything else can change the record
    /// stream (loss, duplication, reordered arena interning) or remove
    /// a shard's contribution, where the contract is *degraded-and-
    /// labeled*, not bit-identity.
    pub fn evidence_preserving(self) -> bool {
        matches!(
            self,
            FaultKind::ConnStall | FaultKind::CollectorStall | FaultKind::StoreAppendFail
        )
    }
}

/// One scheduled fault: the kind plus the victim/magnitude draw, made
/// concrete by the harness (victim indices are taken modulo the
/// harness's actual agent/shard counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosFault {
    /// What happens.
    pub kind: FaultKind,
    /// Victim selector: agent index for agent/wire faults, reactor
    /// shard index for [`FaultKind::CollectorStall`], inference shard
    /// index for [`FaultKind::ShardPanic`]; unused otherwise.
    pub victim: u32,
    /// Magnitude: stall duration in ms for the stall kinds, clock skew
    /// in ms for [`FaultKind::ClockSkew`]; unused otherwise.
    pub magnitude_ms: u64,
}

/// Schedule shape: which epochs are chaotic and how hard.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// First chaotic epoch (epochs before it are clean — the baseline
    /// phase every soak needs).
    pub start_epoch: u64,
    /// First epoch *after* the chaos window (epochs from here on are
    /// clean — the recovery phase).
    pub end_epoch: u64,
    /// Faults drawn per chaotic epoch.
    pub faults_per_epoch: usize,
    /// Upper bound (exclusive) for victim draws.
    pub victims: u32,
    /// Upper bound (exclusive) for stall/skew magnitude draws, in ms.
    pub max_magnitude_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            start_epoch: 2,
            end_epoch: 8,
            faults_per_epoch: 3,
            victims: 8,
            max_magnitude_ms: 200,
        }
    }
}

/// A deterministic fault schedule: `generate(cfg, seed)` always yields
/// the same faults at the same epochs, so a failing chaos run is
/// reproducible from its seed.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    cfg: ChaosConfig,
    /// Faults per chaotic epoch, indexed by `epoch - start_epoch`.
    epochs: Vec<Vec<ChaosFault>>,
}

impl ChaosSchedule {
    /// Draw the schedule. Every chaotic epoch draws
    /// [`ChaosConfig::faults_per_epoch`] faults with distinct kinds
    /// (kinds rotate across epochs so a long enough window exercises
    /// all of [`FaultKind::ALL`]).
    pub fn generate(cfg: ChaosConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_epochs = cfg.end_epoch.saturating_sub(cfg.start_epoch) as usize;
        let mut deck: Vec<FaultKind> = Vec::new();
        let mut epochs = Vec::with_capacity(n_epochs);
        for _ in 0..n_epochs {
            let mut faults = Vec::with_capacity(cfg.faults_per_epoch);
            for _ in 0..cfg.faults_per_epoch {
                // Deal kinds from a reshuffled deck so coverage is
                // guaranteed, not merely probable.
                if deck.is_empty() {
                    deck = FaultKind::ALL.to_vec();
                    deck.shuffle(&mut rng);
                }
                let kind = deck.pop().expect("deck refilled when empty");
                faults.push(ChaosFault {
                    kind,
                    victim: rng.random_range(0..cfg.victims.max(1)),
                    magnitude_ms: rng.random_range(1..cfg.max_magnitude_ms.max(2)),
                });
            }
            epochs.push(faults);
        }
        ChaosSchedule { cfg, epochs }
    }

    /// The shape this schedule was drawn with.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// The faults scheduled for `epoch` (empty outside the chaos
    /// window).
    pub fn faults_at(&self, epoch: u64) -> &[ChaosFault] {
        if epoch < self.cfg.start_epoch {
            return &[];
        }
        self.epochs
            .get((epoch - self.cfg.start_epoch) as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `epoch` is inside the chaos window.
    pub fn is_chaotic(&self, epoch: u64) -> bool {
        !self.faults_at(epoch).is_empty()
    }

    /// Whether a soak may hold `epoch`'s verdict to bit-identity
    /// against a fault-free run. Warm-started inference carries state
    /// across epochs, so one evidence-altering fault taints every
    /// *later* epoch too: the epoch qualifies only when every epoch up
    /// to and including it was clean or
    /// [evidence-preserving](FaultKind::evidence_preserving).
    pub fn bit_identity_epoch(&self, epoch: u64) -> bool {
        (0..=epoch).all(|e| {
            self.faults_at(e)
                .iter()
                .all(|f| f.kind.evidence_preserving())
        })
    }

    /// The distinct fault kinds this schedule exercises.
    pub fn kinds(&self) -> BTreeSet<FaultKind> {
        self.epochs.iter().flatten().map(|f| f.kind).collect()
    }
}

/// Seeded wire-frame mangler: byte-level corruption primitives over
/// encoded export messages (`Vec<u8>` frames), deterministic per seed.
/// The harness encodes each export normally, passes the frames through
/// the mangler per the schedule, and writes the result to the socket.
#[derive(Debug, Clone)]
pub struct WireMangler {
    rng: StdRng,
}

impl WireMangler {
    /// A mangler with its own seeded stream (independent of the
    /// schedule's draws).
    pub fn new(seed: u64) -> Self {
        WireMangler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Flip 1–4 random bytes of `frame` (anywhere — header, length
    /// field, or payload; the decoder must classify, never crash).
    pub fn corrupt(&mut self, frame: &mut [u8]) {
        if frame.is_empty() {
            return;
        }
        let flips = self.rng.random_range(1..5usize).min(frame.len());
        for _ in 0..flips {
            let i = self.rng.random_range(0..frame.len());
            frame[i] ^= self.rng.random_range(1..256u32) as u8;
        }
    }

    /// Truncate `frame` to a random proper prefix (at least 1 byte
    /// kept) — a torn write whose tail never arrives.
    pub fn tear(&mut self, frame: &mut Vec<u8>) {
        if frame.len() < 2 {
            return;
        }
        let keep = self.rng.random_range(1..frame.len());
        frame.truncate(keep);
    }

    /// Duplicate one random frame in place (appended right after the
    /// original — duplicated evidence, still well-framed).
    pub fn duplicate(&mut self, frames: &mut Vec<Vec<u8>>) {
        if frames.is_empty() {
            return;
        }
        let i = self.rng.random_range(0..frames.len());
        let dup = frames[i].clone();
        frames.insert(i + 1, dup);
    }

    /// Shuffle the frame order (delivery reordering across the batch).
    pub fn reorder(&mut self, frames: &mut [Vec<u8>]) {
        frames.shuffle(&mut self.rng);
    }

    /// Apply `kind` to a frame batch: [`FaultKind::WireCorrupt`] and
    /// [`FaultKind::WireTear`] hit one frame,
    /// [`FaultKind::WireDuplicate`] and [`FaultKind::WireReorder`] act
    /// on the batch; other kinds are not wire faults and do nothing.
    ///
    /// Unlike the raw primitives, `apply` picks its targets so the
    /// fault is *observable*: corruption hits the frame header (on a
    /// checksum-less wire, payload corruption that stays in-range is
    /// undetectable by construction — the [`Self::corrupt`] primitive
    /// covers that separately), and a tear prefers a non-terminal frame
    /// (a torn tail at end-of-stream is plain loss; a mid-stream tear
    /// forces the decoder to resync).
    pub fn apply(&mut self, kind: FaultKind, frames: &mut Vec<Vec<u8>>) {
        match kind {
            FaultKind::WireCorrupt if !frames.is_empty() => {
                let i = self.rng.random_range(0..frames.len());
                let frame = &mut frames[i];
                if !frame.is_empty() {
                    // First 6 bytes: magic (4) + version (2).
                    let j = self.rng.random_range(0..frame.len().min(6));
                    frame[j] ^= self.rng.random_range(1..256u32) as u8;
                }
            }
            FaultKind::WireTear if !frames.is_empty() => {
                let i = if frames.len() > 1 {
                    self.rng.random_range(0..frames.len() - 1)
                } else {
                    0
                };
                self.tear(&mut frames[i]);
            }
            FaultKind::WireDuplicate => self.duplicate(frames),
            FaultKind::WireReorder => self.reorder(frames),
            _ => {}
        }
    }
}

/// Apply a forward clock skew to an export stamp — the
/// [`FaultKind::ClockSkew`] executor. (A *forward*-skewed agent is the
/// interesting case: the watermark-referenced lateness horizon must not
/// let it make honest agents' records look late.)
pub fn skew_stamp(export_ms: u64, skew_ms: u64) -> u64 {
    export_ms.saturating_add(skew_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = ChaosConfig::default();
        let a = ChaosSchedule::generate(cfg, 7);
        let b = ChaosSchedule::generate(cfg, 7);
        for e in 0..12 {
            assert_eq!(a.faults_at(e), b.faults_at(e), "epoch {e} diverged");
        }
        let c = ChaosSchedule::generate(cfg, 8);
        assert!(
            (0..12).any(|e| a.faults_at(e) != c.faults_at(e)),
            "different seeds should draw different schedules"
        );
    }

    #[test]
    fn default_window_covers_many_distinct_kinds() {
        let sched = ChaosSchedule::generate(ChaosConfig::default(), 1);
        // 6 epochs x 3 faults dealt from reshuffled full decks:
        // at least one full deck (10 kinds) is always exhausted.
        assert!(
            sched.kinds().len() >= 6,
            "schedule must span >= 6 fault kinds, got {:?}",
            sched.kinds()
        );
        assert!(!sched.is_chaotic(0));
        assert!(!sched.is_chaotic(1));
        assert!(sched.is_chaotic(2));
        assert!(!sched.is_chaotic(8));
    }

    #[test]
    fn bit_identity_is_a_prefix_property() {
        let sched = ChaosSchedule::generate(ChaosConfig::default(), 3);
        assert!(sched.bit_identity_epoch(0), "pre-chaos epochs qualify");
        assert!(sched.bit_identity_epoch(1), "pre-chaos epochs qualify");
        // Once any epoch draws an evidence-altering fault, that epoch
        // and every later one is disqualified (warm state diverged).
        let mut tainted = false;
        for e in 2..12 {
            tainted = tainted
                || !sched
                    .faults_at(e)
                    .iter()
                    .all(|f| f.kind.evidence_preserving());
            assert_eq!(sched.bit_identity_epoch(e), !tainted, "epoch {e}");
        }
        // A 6-epoch window dealing 18 faults from 10-kind decks always
        // draws an evidence-altering kind, so recovery epochs are
        // disqualified in every seed's schedule.
        assert!(!sched.bit_identity_epoch(9));
    }

    #[test]
    fn mangler_primitives_do_what_they_say() {
        let mut m = WireMangler::new(5);
        let frame: Vec<u8> = (0..64u8).collect();

        let mut corrupted = frame.clone();
        m.corrupt(&mut corrupted);
        assert_eq!(corrupted.len(), frame.len());
        assert_ne!(corrupted, frame, "corrupt must change bytes");

        let mut torn = frame.clone();
        m.tear(&mut torn);
        assert!(!torn.is_empty() && torn.len() < frame.len());
        assert_eq!(torn[..], frame[..torn.len()], "tear keeps a prefix");

        let mut batch = vec![frame.clone(), vec![9; 8], vec![7; 8]];
        m.duplicate(&mut batch);
        assert_eq!(batch.len(), 4);

        let mut reordered = batch.clone();
        m.reorder(&mut reordered);
        let mut a = batch.clone();
        let mut b = reordered.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "reorder permutes, never drops");
    }

    #[test]
    fn skewed_stamp_moves_forward() {
        assert_eq!(skew_stamp(1_000, 250), 1_250);
        assert_eq!(skew_stamp(u64::MAX, 1), u64::MAX);
    }
}
