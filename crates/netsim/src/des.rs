//! Packet-level discrete-event simulator — the substitute for the paper's
//! hardware testbed (§6.3–6.4, DESIGN.md S5).
//!
//! The simulator models per-link egress queues with configurable
//! discipline (FIFO tail-drop, or WRED with a length threshold and drop
//! probability — the misconfigured-queue fault sets threshold 0 and
//! p = 1%), serialization and propagation delay, silent per-link random
//! drops, link flaps that *buffer* traffic for their duration (latency
//! spike, no loss — matching the testbed observation in §6.4), and a
//! simplified TCP Reno sender per flow:
//!
//! * slow start / congestion avoidance with an initial window of 10;
//! * cumulative ACKs, triple-duplicate-ACK fast retransmit;
//! * retransmission timeout with SRTT/RTTVAR estimation and exponential
//!   backoff;
//! * RTT samples taken on non-retransmitted segments (Karn's rule).
//!
//! The output is the same [`MonitoredFlow`] stream the flow-level
//! simulator produces, so telemetry assembly and inference are oblivious
//! to which simulator generated a trace. Deliberate simplifications
//! (no delayed ACKs, no SACK, fixed per-flow ECMP path) are noted in
//! DESIGN.md; none affect the telemetry signal the evaluated faults
//! produce (retransmission counts and RTT spikes).

use crate::traffic::FlowDemand;
use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, TrafficClass};
use flock_topology::{LinkId, Router, Topology};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DesConfig {
    /// Link rate in bits per second (testbed: 1 Gbps).
    pub link_rate_bps: f64,
    /// One-way propagation delay per link, nanoseconds.
    pub link_delay_ns: u64,
    /// Egress queue capacity in packets.
    pub queue_capacity: usize,
    /// Segment size in bytes.
    pub mss_bytes: u32,
    /// Initial congestion window (packets).
    pub init_cwnd: f64,
    /// Minimum retransmission timeout, nanoseconds.
    pub rto_min_ns: u64,
    /// Simulation horizon, nanoseconds; flows unfinished at the horizon
    /// still report their statistics so far.
    pub horizon_ns: u64,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            link_rate_bps: 1e9,
            link_delay_ns: 5_000,
            queue_capacity: 256,
            mss_bytes: 1500,
            init_cwnd: 10.0,
            rto_min_ns: 10_000_000,    // 10 ms
            horizon_ns: 2_000_000_000, // 2 s
        }
    }
}

/// WRED marking parameters for a misconfigured queue (§6.4: p = 1%,
/// threshold w = 0 — "the link works normally if the queue is empty").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WredParams {
    /// Queue length (packets already waiting) at/above which arriving
    /// packets are dropped with `drop_prob`.
    pub threshold: usize,
    /// Drop probability once above the threshold.
    pub drop_prob: f64,
}

/// A link flap: the link stops serving for the window but keeps buffering.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Flap {
    /// Flapping link.
    pub link: LinkId,
    /// Flap start, nanoseconds.
    pub start_ns: u64,
    /// Flap duration, nanoseconds.
    pub duration_ns: u64,
}

/// Fault injection for a DES run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DesFaults {
    /// Silent random drop probability per link (sparse).
    pub silent_drop: Vec<(LinkId, f64)>,
    /// Misconfigured WRED queues per link (sparse).
    pub wred: Vec<(LinkId, WredParams)>,
    /// Link flaps.
    pub flaps: Vec<Flap>,
}

// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packet {
    flow: u32,
    seq: u32,
    is_ack: bool,
    /// Index of the next link to traverse on the flow's (forward or
    /// reverse) path.
    hop: u16,
    /// Send timestamp of the data packet this (or its ACK) tracks; 0 when
    /// the segment was retransmitted (Karn: no RTT sample).
    sent_ns: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Depart(u32), // link id: head-of-line packet finished serialization
    Arrive,      // packet reaches a node
    FlowStart(u32),
    Rto(u32, u32), // flow id, epoch
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: u64,
    tiebreak: u64,
    kind: EventKind,
    packet: Option<Packet>,
    node: u32,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.tiebreak).cmp(&(other.at, other.tiebreak))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct LinkState {
    queue: std::collections::VecDeque<Packet>,
    busy: bool,
    silent_drop: f64,
    wred: Option<WredParams>,
    flap: Option<(u64, u64)>, // [start, end)
}

struct TcpFlow {
    demand: FlowDemand,
    fwd_path: Vec<LinkId>,
    rev_path: Vec<LinkId>,
    total: u32,
    next_new: u32,
    /// Cumulative: all seq < high_acked are delivered.
    high_acked: u32,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    in_flight: u32,
    /// Receiver state: which segments arrived.
    received: Vec<bool>,
    rcv_next: u32,
    srtt_ns: f64,
    rttvar_ns: f64,
    rto_ns: u64,
    rto_epoch: u32,
    retransmissions: u64,
    rtt_sum_us: u64,
    rtt_count: u32,
    rtt_max_us: u32,
    done: bool,
    needs_retx: Option<u32>,
}

/// Shared mutable simulation state threaded through the handlers.
struct Sim<'a, R: Rng + ?Sized> {
    topo: &'a Topology,
    cfg: &'a DesConfig,
    flows: Vec<TcpFlow>,
    links: Vec<LinkState>,
    events: BinaryHeap<Reverse<Event>>,
    tiebreak: u64,
    tx_ns: u64,
    ack_tx_ns: u64,
    rng: &'a mut R,
}

impl<R: Rng + ?Sized> Sim<'_, R> {
    fn push(&mut self, at: u64, kind: EventKind, packet: Option<Packet>, node: u32) {
        self.tiebreak += 1;
        self.events.push(Reverse(Event {
            at,
            tiebreak: self.tiebreak,
            kind,
            packet,
            node,
        }));
    }

    /// When the head-of-line packet finishes serialization, accounting for
    /// a flap window (the link buffers during the flap).
    fn service_completion(now: u64, tx_ns: u64, flap: Option<(u64, u64)>) -> u64 {
        let mut start = now;
        if let Some((fs, fe)) = flap {
            if start >= fs && start < fe {
                start = fe;
            }
        }
        start + tx_ns
    }

    /// Enqueue on a link's egress queue, applying WRED/tail-drop and
    /// starting service if idle.
    fn enqueue(&mut self, link_idx: usize, pkt: Packet, now: u64) {
        let cap = self.cfg.queue_capacity;
        let ls = &mut self.links[link_idx];
        if ls.queue.len() >= cap {
            return; // tail drop
        }
        if let Some(w) = ls.wred {
            if ls.queue.len() >= w.threshold && self.rng.random::<f64>() < w.drop_prob {
                return; // misconfigured WRED drop
            }
        }
        let tx = if pkt.is_ack {
            self.ack_tx_ns
        } else {
            self.tx_ns
        };
        ls.queue.push_back(pkt);
        if !ls.busy {
            ls.busy = true;
            let at = Self::service_completion(now, tx, ls.flap);
            self.push(at, EventKind::Depart(link_idx as u32), None, 0);
        }
    }

    /// Head-of-line departure: apply silent drop, propagate, schedule the
    /// next service.
    fn serve_link(&mut self, link_idx: usize, now: u64) {
        let ls = &mut self.links[link_idx];
        let Some(pkt) = ls.queue.pop_front() else {
            ls.busy = false;
            return;
        };
        let silent = ls.silent_drop;
        let flap = ls.flap;
        if let Some(next) = ls.queue.front() {
            let tx = if next.is_ack {
                self.ack_tx_ns
            } else {
                self.tx_ns
            };
            let at = Self::service_completion(now, tx, flap);
            self.push(at, EventKind::Depart(link_idx as u32), None, 0);
        } else {
            ls.busy = false;
        }
        // Silent drop happens on the wire: transmitted but never arrives,
        // and no counter records it.
        if silent > 0.0 && self.rng.random::<f64>() < silent {
            return;
        }
        let dst = self.topo.link(LinkId(link_idx as u32)).dst.0;
        self.push(
            now + self.cfg.link_delay_ns,
            EventKind::Arrive,
            Some(pkt),
            dst,
        );
    }

    /// Send whatever the window allows (plus a pending retransmit).
    fn pump_flow(&mut self, fi: u32, now: u64) {
        let f = &mut self.flows[fi as usize];
        if f.done {
            return;
        }
        let mut to_send: Vec<(u32, bool)> = Vec::new();
        if let Some(seq) = f.needs_retx.take() {
            if seq < f.total {
                to_send.push((seq, true));
            }
        }
        while (f.in_flight as f64) < f.cwnd && f.next_new < f.total {
            to_send.push((f.next_new, false));
            f.next_new += 1;
        }
        if to_send.is_empty() {
            return;
        }
        let first_link = f.fwd_path[0].idx();
        // (Re)arm the RTO.
        f.rto_epoch += 1;
        let rto_at = now + f.rto_ns;
        let epoch = f.rto_epoch;
        for &(seq, is_retx) in &to_send {
            let f = &mut self.flows[fi as usize];
            f.in_flight += 1;
            let pkt = Packet {
                flow: fi,
                seq,
                is_ack: false,
                hop: 1,
                sent_ns: if is_retx { 0 } else { now },
            };
            self.enqueue(first_link, pkt, now);
        }
        self.push(rto_at, EventKind::Rto(fi, epoch), None, 0);
    }

    /// Data packet reached the destination host: update receiver state and
    /// return a cumulative ACK along the reverse path.
    fn handle_data_arrival(&mut self, pkt: Packet, now: u64) {
        let f = &mut self.flows[pkt.flow as usize];
        if let Some(slot) = f.received.get_mut(pkt.seq as usize) {
            *slot = true;
        }
        while (f.rcv_next as usize) < f.received.len() && f.received[f.rcv_next as usize] {
            f.rcv_next += 1;
        }
        let ack = Packet {
            flow: pkt.flow,
            seq: f.rcv_next,
            is_ack: true,
            hop: 1,
            sent_ns: pkt.sent_ns,
        };
        let first_rev = f.rev_path[0].idx();
        self.enqueue(first_rev, ack, now);
    }

    /// ACK reached the sender: advance the window, detect duplicates,
    /// sample RTT, send more data.
    fn handle_ack(&mut self, pkt: Packet, now: u64) {
        let rto_min = self.cfg.rto_min_ns;
        let f = &mut self.flows[pkt.flow as usize];
        if f.done {
            return;
        }
        if pkt.sent_ns > 0 && now > pkt.sent_ns {
            let sample = (now - pkt.sent_ns) as f64;
            if f.rtt_count == 0 {
                f.srtt_ns = sample;
                f.rttvar_ns = sample / 2.0;
            } else {
                f.rttvar_ns = 0.75 * f.rttvar_ns + 0.25 * (f.srtt_ns - sample).abs();
                f.srtt_ns = 0.875 * f.srtt_ns + 0.125 * sample;
            }
            f.rto_ns = ((f.srtt_ns + 4.0 * f.rttvar_ns) as u64).max(rto_min);
            let us = (sample / 1000.0) as u64;
            f.rtt_sum_us += us;
            f.rtt_count += 1;
            f.rtt_max_us = f.rtt_max_us.max(us as u32);
        }

        if pkt.seq > f.high_acked {
            let newly = pkt.seq - f.high_acked;
            f.high_acked = pkt.seq;
            f.in_flight = f.in_flight.saturating_sub(newly);
            f.dup_acks = 0;
            if f.cwnd < f.ssthresh {
                f.cwnd += f64::from(newly); // slow start
            } else {
                f.cwnd += f64::from(newly) / f.cwnd; // congestion avoidance
            }
            if f.high_acked >= f.total {
                f.done = true;
                f.rto_epoch += 1; // cancel outstanding RTO
                return;
            }
        } else {
            f.dup_acks += 1;
            if f.dup_acks == 3 {
                f.retransmissions += 1;
                f.ssthresh = (f.cwnd / 2.0).max(2.0);
                f.cwnd = f.ssthresh;
                f.in_flight = f.in_flight.saturating_sub(1);
                f.needs_retx = Some(f.high_acked);
            }
        }
        self.pump_flow(pkt.flow, now);
    }

    fn handle_rto(&mut self, fi: u32, epoch: u32, now: u64) {
        let f = &mut self.flows[fi as usize];
        if f.done || epoch != f.rto_epoch || f.high_acked >= f.total {
            return;
        }
        f.retransmissions += 1;
        f.ssthresh = (f.cwnd / 2.0).max(2.0);
        f.cwnd = 1.0;
        f.rto_ns = (f.rto_ns * 2).min(2_000_000_000);
        f.in_flight = 0; // conservatively assume everything in flight lost
        f.needs_retx = Some(f.high_acked);
        self.pump_flow(fi, now);
    }
}

/// Run the packet-level simulation: each demand becomes a TCP flow with a
/// fixed (randomly chosen) ECMP path.
pub fn simulate_des<R: Rng + ?Sized>(
    topo: &Topology,
    router: &Router<'_>,
    cfg: &DesConfig,
    faults: &DesFaults,
    demands: &[FlowDemand],
    rng: &mut R,
) -> Vec<MonitoredFlow> {
    let tx_ns = (cfg.mss_bytes as f64 * 8.0 / cfg.link_rate_bps * 1e9) as u64;
    let ack_tx_ns = ((64.0 * 8.0 / cfg.link_rate_bps * 1e9) as u64).max(1);

    let mut links: Vec<LinkState> = (0..topo.link_count())
        .map(|_| LinkState {
            queue: std::collections::VecDeque::new(),
            busy: false,
            silent_drop: 0.0,
            wred: None,
            flap: None,
        })
        .collect();
    for (l, p) in &faults.silent_drop {
        links[l.idx()].silent_drop = *p;
    }
    for (l, w) in &faults.wred {
        links[l.idx()].wred = Some(*w);
    }
    for f in &faults.flaps {
        links[f.link.idx()].flap = Some((f.start_ns, f.start_ns + f.duration_ns));
    }

    let mut sim = Sim {
        topo,
        cfg,
        flows: Vec::with_capacity(demands.len()),
        links,
        events: BinaryHeap::new(),
        tiebreak: 0,
        tx_ns,
        ack_tx_ns,
        rng,
    };

    for d in demands {
        let paths = router.host_fabric_paths(d.src, d.dst);
        if paths.is_empty() {
            continue;
        }
        let pick = sim.rng.random_range(0..paths.len());
        let mut fwd = vec![topo.host_uplink(d.src)];
        fwd.extend_from_slice(&paths[pick].links);
        fwd.push(topo.host_downlink(d.dst));
        let rev: Vec<LinkId> = fwd.iter().rev().map(|l| topo.link(*l).reverse).collect();
        let total = d.packets.min(u32::MAX as u64) as u32;
        let fi = sim.flows.len() as u32;
        sim.flows.push(TcpFlow {
            demand: *d,
            fwd_path: fwd,
            rev_path: rev,
            total,
            next_new: 0,
            high_acked: 0,
            cwnd: cfg.init_cwnd,
            ssthresh: f64::INFINITY,
            dup_acks: 0,
            in_flight: 0,
            received: vec![false; total as usize],
            rcv_next: 0,
            srtt_ns: 0.0,
            rttvar_ns: 0.0,
            rto_ns: cfg.rto_min_ns * 20,
            rto_epoch: 0,
            retransmissions: 0,
            rtt_sum_us: 0,
            rtt_count: 0,
            rtt_max_us: 0,
            done: false,
            needs_retx: None,
        });
        let start = sim.rng.random_range(0..cfg.horizon_ns / 4);
        sim.push(start, EventKind::FlowStart(fi), None, 0);
    }

    while let Some(Reverse(ev)) = sim.events.pop() {
        if ev.at > cfg.horizon_ns {
            break;
        }
        match ev.kind {
            EventKind::FlowStart(fi) => sim.pump_flow(fi, ev.at),
            EventKind::Rto(fi, epoch) => sim.handle_rto(fi, epoch, ev.at),
            EventKind::Depart(link_idx) => sim.serve_link(link_idx as usize, ev.at),
            EventKind::Arrive => {
                let pkt = ev.packet.expect("arrive carries a packet");
                let f = &sim.flows[pkt.flow as usize];
                let path = if pkt.is_ack { &f.rev_path } else { &f.fwd_path };
                if (pkt.hop as usize) < path.len() {
                    let l = path[pkt.hop as usize];
                    debug_assert_eq!(sim.topo.link(l).src.0, ev.node);
                    let next = Packet {
                        hop: pkt.hop + 1,
                        ..pkt
                    };
                    sim.enqueue(l.idx(), next, ev.at);
                } else if pkt.is_ack {
                    sim.handle_ack(pkt, ev.at);
                } else {
                    sim.handle_data_arrival(pkt, ev.at);
                }
            }
        }
    }

    sim.flows
        .iter()
        .enumerate()
        .map(|(i, f)| MonitoredFlow {
            key: FlowKey::tcp(f.demand.src, f.demand.dst, 1024 + (i % 60_000) as u16, 80),
            stats: FlowStats {
                packets: f.total as u64,
                retransmissions: f.retransmissions,
                bytes: f.total as u64 * cfg.mss_bytes as u64,
                rtt_sum_us: f.rtt_sum_us,
                rtt_count: f.rtt_count,
                rtt_max_us: f.rtt_max_us,
            },
            class: TrafficClass::Passive,
            true_path: f.fwd_path.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::clos::{leaf_spine, LeafSpineParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn testbed() -> Topology {
        leaf_spine(LeafSpineParams::testbed())
    }

    fn demands(topo: &Topology, n: usize, pkts: u64, seed: u64) -> Vec<FlowDemand> {
        let hosts = topo.hosts().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let s = hosts[rng.random_range(0..hosts.len())];
                let mut d = hosts[rng.random_range(0..hosts.len())];
                while d == s {
                    d = hosts[rng.random_range(0..hosts.len())];
                }
                FlowDemand {
                    src: s,
                    dst: d,
                    packets: pkts,
                }
            })
            .collect()
    }

    #[test]
    fn clean_run_completes_without_retransmissions() {
        let topo = testbed();
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(1);
        let ds = demands(&topo, 40, 50, 2);
        let flows = simulate_des(
            &topo,
            &router,
            &DesConfig::default(),
            &DesFaults::default(),
            &ds,
            &mut rng,
        );
        assert_eq!(flows.len(), 40);
        let total_retx: u64 = flows.iter().map(|f| f.stats.retransmissions).sum();
        assert_eq!(total_retx, 0, "clean uncongested run must not retransmit");
        assert!(flows.iter().all(|f| f.stats.rtt_count > 0));
        for f in &flows {
            assert!(f.stats.rtt_max_us < 5_000, "rtt {}", f.stats.rtt_max_us);
        }
    }

    #[test]
    fn silent_drops_cause_retransmissions_on_crossing_flows() {
        let topo = testbed();
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(3);
        let bad = topo.fabric_links()[1];
        let faults = DesFaults {
            silent_drop: vec![(bad, 0.05)],
            ..Default::default()
        };
        let ds = demands(&topo, 80, 80, 4);
        let flows = simulate_des(
            &topo,
            &router,
            &DesConfig::default(),
            &faults,
            &ds,
            &mut rng,
        );
        let (mut crossing_retx, mut crossing) = (0u64, 0usize);
        let mut clean_retx = 0u64;
        for f in &flows {
            if f.true_path.contains(&bad) || f.true_path.contains(&topo.link(bad).reverse) {
                crossing += 1;
                crossing_retx += f.stats.retransmissions;
            } else {
                clean_retx += f.stats.retransmissions;
            }
        }
        assert!(crossing > 0);
        assert!(
            crossing_retx > 0,
            "5% silent drop must trigger retransmissions"
        );
        assert_eq!(clean_retx, 0, "non-crossing flows stay clean");
    }

    #[test]
    fn wred_misconfiguration_drops_under_load() {
        let topo = testbed();
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(5);
        let bad = topo.fabric_links()[0];
        let faults = DesFaults {
            wred: vec![(
                bad,
                WredParams {
                    threshold: 0,
                    drop_prob: 0.05,
                },
            )],
            ..Default::default()
        };
        let ds = demands(&topo, 150, 150, 6);
        let flows = simulate_des(
            &topo,
            &router,
            &DesConfig::default(),
            &faults,
            &ds,
            &mut rng,
        );
        let crossing_retx: u64 = flows
            .iter()
            .filter(|f| f.true_path.contains(&bad))
            .map(|f| f.stats.retransmissions)
            .sum();
        assert!(
            crossing_retx > 0,
            "a loaded misconfigured WRED queue must drop"
        );
    }

    #[test]
    fn flap_spikes_latency_without_loss() {
        let topo = testbed();
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(7);
        let flapped = topo.fabric_links()[2];
        let cfg = DesConfig {
            horizon_ns: 500_000_000,
            ..Default::default()
        };
        let faults = DesFaults {
            flaps: vec![Flap {
                link: flapped,
                start_ns: 0,
                duration_ns: 400_000_000,
            }],
            ..Default::default()
        };
        let ds = demands(&topo, 60, 30, 8);
        let flows = simulate_des(&topo, &router, &cfg, &faults, &ds, &mut rng);
        let mut spiked = 0;
        for f in &flows {
            if f.true_path.contains(&flapped) && f.stats.rtt_max_us > 10_000 {
                spiked += 1;
            }
        }
        assert!(
            spiked > 0,
            "flows over the flapping link must see RTT spikes"
        );
    }

    #[test]
    fn telemetry_paths_are_contiguous() {
        let topo = testbed();
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(9);
        let ds = demands(&topo, 30, 20, 10);
        let flows = simulate_des(
            &topo,
            &router,
            &DesConfig::default(),
            &DesFaults::default(),
            &ds,
            &mut rng,
        );
        for f in &flows {
            let mut at = f.key.src;
            for l in &f.true_path {
                assert_eq!(topo.link(*l).src, at);
                at = topo.link(*l).dst;
            }
            assert_eq!(at, f.key.dst);
        }
    }
}
