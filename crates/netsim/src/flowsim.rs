//! Flow-level network simulator.
//!
//! This is the paper's "large scale simulator" (§6.3): it "drops each
//! packet as per preset drop probabilities on links but does not model
//! queuing or TCP". Each flow picks one of its ECMP paths uniformly at
//! random (the paper's routing assumption, §3.2) and its packets traverse
//! the path's links in sequence, each link dropping survivors with its
//! configured probability. Dropped packets count as retransmissions — the
//! telemetry proxy for bad packets.
//!
//! Per DESIGN.md this simulator also substitutes for the paper's NS3
//! traces: the inference-visible signal (per-flow `(bad, sent)` counts
//! under silent per-link drop rates plus low-rate noise) is identical in
//! distribution.

use crate::dist::binomial;
use crate::failure::FailureScenario;
use crate::traffic::FlowDemand;
use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, ProbeSpec, TrafficClass};
use flock_topology::{LinkId, Router, Topology};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Flow-level simulator knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowSimConfig {
    /// Base per-hop latency contribution in microseconds.
    pub per_hop_latency_us: u32,
    /// Uniform RTT jitter ceiling in microseconds.
    pub rtt_jitter_us: u32,
    /// Bytes per packet when filling in byte counts.
    pub mss_bytes: u32,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            per_hop_latency_us: 10,
            rtt_jitter_us: 40,
            mss_bytes: 1500,
        }
    }
}

/// Simulate passive application flows: route each demand over ECMP, drop
/// packets per the scenario, and emit monitored-flow records.
///
/// Demands whose endpoints have no valley-free route (possible in heavily
/// degraded topologies) are skipped.
pub fn simulate_flows<R: Rng + ?Sized>(
    topo: &Topology,
    router: &Router<'_>,
    scenario: &FailureScenario,
    demands: &[FlowDemand],
    cfg: &FlowSimConfig,
    rng: &mut R,
) -> Vec<MonitoredFlow> {
    let mut out = Vec::with_capacity(demands.len());
    for (i, d) in demands.iter().enumerate() {
        let paths = router.host_fabric_paths(d.src, d.dst);
        if paths.is_empty() {
            continue;
        }
        let choice = rng.random_range(0..paths.len());
        let mut full_path = Vec::with_capacity(paths[choice].links.len() + 2);
        full_path.push(topo.host_uplink(d.src));
        full_path.extend_from_slice(&paths[choice].links);
        full_path.push(topo.host_downlink(d.dst));

        let (delivered, dropped) = traverse(scenario, &full_path, d.packets, rng);
        let rtt = sample_rtt(scenario, &full_path, cfg, rng);
        let _ = delivered;

        out.push(MonitoredFlow {
            key: FlowKey::tcp(
                d.src,
                d.dst,
                1024 + (i % 60_000) as u16,
                80 + ((i / 60_000) % 1_000) as u16,
            ),
            stats: FlowStats {
                packets: d.packets,
                retransmissions: dropped,
                bytes: d.packets * cfg.mss_bytes as u64,
                rtt_sum_us: rtt as u64,
                rtt_count: 1,
                rtt_max_us: rtt,
            },
            class: TrafficClass::Passive,
            true_path: full_path,
        });
    }
    out
}

/// Execute active probes: each probe stream traverses its pinned
/// round-trip path under the scenario's drop model.
pub fn run_probes<R: Rng + ?Sized>(
    scenario: &FailureScenario,
    specs: &[ProbeSpec],
    cfg: &FlowSimConfig,
    rng: &mut R,
) -> Vec<MonitoredFlow> {
    let mut out = Vec::with_capacity(specs.len());
    for spec in specs {
        let (_, dropped) = traverse(scenario, &spec.round_trip_path, spec.packets, rng);
        let rtt = cfg.per_hop_latency_us * spec.round_trip_path.len() as u32
            + rng.random_range(0..=cfg.rtt_jitter_us);
        out.push(MonitoredFlow {
            key: spec.key,
            stats: FlowStats {
                packets: spec.packets,
                retransmissions: dropped,
                bytes: spec.packets * 64,
                rtt_sum_us: rtt as u64,
                rtt_count: 1,
                rtt_max_us: rtt,
            },
            class: TrafficClass::Probe,
            true_path: spec.round_trip_path.clone(),
        });
    }
    out
}

/// Walk `packets` packets along `path`, dropping independently per link.
/// Returns `(delivered, dropped)`.
fn traverse<R: Rng + ?Sized>(
    scenario: &FailureScenario,
    path: &[LinkId],
    packets: u64,
    rng: &mut R,
) -> (u64, u64) {
    let mut alive = packets;
    for l in path {
        if alive == 0 {
            break;
        }
        let p = scenario.drop_rate[l.idx()];
        if p > 0.0 {
            alive -= binomial(rng, alive, p);
        }
    }
    (alive, packets - alive)
}

fn sample_rtt<R: Rng + ?Sized>(
    scenario: &FailureScenario,
    path: &[LinkId],
    cfg: &FlowSimConfig,
    rng: &mut R,
) -> u32 {
    let mut rtt =
        cfg.per_hop_latency_us * path.len() as u32 * 2 + rng.random_range(0..=cfg.rtt_jitter_us);
    for fault in &scenario.latency_faults {
        if path.contains(&fault.link) && rng.random::<f64>() < fault.affected_fraction {
            rtt += fault.added_rtt_us;
        }
    }
    rtt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{self, DEFAULT_NOISE_MAX};
    use crate::traffic::{generate_demands, TrafficConfig, TrafficPattern};
    use flock_topology::clos::{three_tier, ClosParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_network_drops_nothing() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sc = FailureScenario::noise_only(&topo, 0.0, &mut rng);
        sc.drop_rate.iter_mut().for_each(|r| *r = 0.0);
        let demands = generate_demands(
            &topo,
            &TrafficConfig::paper(200, TrafficPattern::Uniform),
            &mut rng,
        );
        let flows = simulate_flows(
            &topo,
            &router,
            &sc,
            &demands,
            &FlowSimConfig::default(),
            &mut rng,
        );
        assert_eq!(flows.len(), 200);
        assert!(flows.iter().all(|f| f.stats.retransmissions == 0));
    }

    #[test]
    fn failed_link_produces_proportional_drops() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(2);
        let sc = failure::silent_link_drops(&topo, 1, (0.05, 0.05), 0.0, &mut rng);
        let failed = sc.truth.failed_links[0];
        let demands = generate_demands(
            &topo,
            &TrafficConfig::paper(3000, TrafficPattern::Uniform),
            &mut rng,
        );
        let flows = simulate_flows(
            &topo,
            &router,
            &sc,
            &demands,
            &FlowSimConfig::default(),
            &mut rng,
        );
        let (mut crossing_pkts, mut crossing_drops) = (0u64, 0u64);
        let (mut clean_drops, mut clean_pkts) = (0u64, 0u64);
        for f in &flows {
            if f.true_path.contains(&failed) {
                crossing_pkts += f.stats.packets;
                crossing_drops += f.stats.retransmissions;
            } else {
                clean_pkts += f.stats.packets;
                clean_drops += f.stats.retransmissions;
            }
        }
        assert!(crossing_pkts > 0, "some flows must cross the failed link");
        let rate = crossing_drops as f64 / crossing_pkts as f64;
        assert!(
            (0.03..0.07).contains(&rate),
            "observed drop rate {rate} should track the 5% link rate"
        );
        assert_eq!(clean_drops, 0, "{clean_pkts} clean packets must survive");
    }

    #[test]
    fn true_paths_are_contiguous_host_to_host() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(3);
        let sc = FailureScenario::noise_only(&topo, DEFAULT_NOISE_MAX, &mut rng);
        let demands = generate_demands(
            &topo,
            &TrafficConfig::paper(100, TrafficPattern::Uniform),
            &mut rng,
        );
        let flows = simulate_flows(
            &topo,
            &router,
            &sc,
            &demands,
            &FlowSimConfig::default(),
            &mut rng,
        );
        for f in &flows {
            let mut at = f.key.src;
            for l in &f.true_path {
                assert_eq!(topo.link(*l).src, at);
                at = topo.link(*l).dst;
            }
            assert_eq!(at, f.key.dst);
        }
    }

    #[test]
    fn latency_fault_spikes_rtt() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(4);
        let sc = failure::link_flap(&topo, 100_000, 1.0, 0.0, &mut rng);
        let flapped = sc.truth.failed_links[0];
        let demands = generate_demands(
            &topo,
            &TrafficConfig::paper(2000, TrafficPattern::Uniform),
            &mut rng,
        );
        let flows = simulate_flows(
            &topo,
            &router,
            &sc,
            &demands,
            &FlowSimConfig::default(),
            &mut rng,
        );
        for f in &flows {
            if f.true_path.contains(&flapped) {
                assert!(f.stats.rtt_max_us >= 100_000);
                assert_eq!(f.stats.retransmissions, 0, "flap buffers, not drops");
            } else {
                assert!(f.stats.rtt_max_us < 10_000);
            }
        }
        assert!(flows.iter().any(|f| f.true_path.contains(&flapped)));
    }

    #[test]
    fn probes_traverse_round_trip() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(5);
        let sc = failure::silent_link_drops(&topo, 1, (0.5, 0.5), 0.0, &mut rng);
        let failed = sc.truth.failed_links[0];
        let specs = flock_telemetry::plan_a1_probes(&topo, &router, 200, None);
        let probes = run_probes(&sc, &specs, &FlowSimConfig::default(), &mut rng);
        assert_eq!(probes.len(), specs.len());
        for p in &probes {
            assert_eq!(p.class, TrafficClass::Probe);
            if p.true_path.contains(&failed) {
                assert!(
                    p.stats.retransmissions > 50,
                    "50% drop link must hit probes hard"
                );
            }
        }
        assert!(probes.iter().any(|p| p.true_path.contains(&failed)));
    }

    #[test]
    fn ecmp_spreads_flows_across_paths() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(6);
        let sc = FailureScenario::noise_only(&topo, 0.0, &mut rng);
        let hosts = topo.hosts();
        // Many flows between one cross-pod pair.
        let demands: Vec<FlowDemand> = (0..400)
            .map(|_| FlowDemand {
                src: hosts[0],
                dst: hosts[11],
                packets: 10,
            })
            .collect();
        let flows = simulate_flows(
            &topo,
            &router,
            &sc,
            &demands,
            &FlowSimConfig::default(),
            &mut rng,
        );
        let distinct: std::collections::HashSet<&[LinkId]> =
            flows.iter().map(|f| f.true_path.as_slice()).collect();
        assert_eq!(distinct.len(), 4, "tiny Clos has 4 inter-pod ECMP paths");
    }
}
