//! Traffic generation (§6.3).
//!
//! The paper's workloads draw flow sizes from a Pareto distribution (mean
//! 200 KB, shape 1.05) and use two traffic matrices: uniform random host
//! pairs, and a skewed matrix where 50% of the traffic concentrates on 5%
//! of the racks. Skew is what breaks 007-style voting (§7.3), so the
//! generator exposes it as a first-class knob, along with the ε-skew
//! measurement of Definition 3.

use crate::dist::Pareto;
use flock_topology::{NodeId, Topology};
use rand::seq::IndexedRandom;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Traffic matrix shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Source and destination hosts drawn uniformly at random.
    Uniform,
    /// `hot_traffic_fraction` of flows have their destination inside a hot
    /// set of `hot_rack_fraction` of the racks (the paper: 50% of traffic
    /// on 5% of racks).
    Skewed {
        /// Fraction of racks designated hot.
        hot_rack_fraction: f64,
        /// Fraction of flows directed at hot racks.
        hot_traffic_fraction: f64,
    },
}

impl TrafficPattern {
    /// The paper's skewed pattern: 50% of traffic to 5% of racks.
    pub fn paper_skewed() -> Self {
        TrafficPattern::Skewed {
            hot_rack_fraction: 0.05,
            hot_traffic_fraction: 0.5,
        }
    }
}

/// Traffic generation parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Traffic matrix shape.
    pub pattern: TrafficPattern,
    /// Number of flows to generate.
    pub flows: usize,
    /// Mean flow size in bytes (Pareto mean; paper: 200 KB).
    pub mean_flow_bytes: f64,
    /// Pareto shape (paper: 1.05).
    pub pareto_shape: f64,
    /// Maximum segment size used to convert bytes to packets.
    pub mss_bytes: u32,
}

impl TrafficConfig {
    /// The paper's defaults with the given flow count and pattern.
    pub fn paper(flows: usize, pattern: TrafficPattern) -> Self {
        TrafficConfig {
            pattern,
            flows,
            mean_flow_bytes: 200_000.0,
            pareto_shape: 1.05,
            mss_bytes: 1500,
        }
    }
}

/// One generated flow demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowDemand {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Data packets to send.
    pub packets: u64,
}

/// Generate flow demands per the configuration.
pub fn generate_demands<R: Rng + ?Sized>(
    topo: &Topology,
    cfg: &TrafficConfig,
    rng: &mut R,
) -> Vec<FlowDemand> {
    let hosts = topo.hosts();
    assert!(hosts.len() >= 2, "need at least two hosts");
    let size_dist = Pareto::with_mean(cfg.mean_flow_bytes, cfg.pareto_shape);

    // Hot host set for the skewed pattern: hosts grouped by rack (= leaf).
    let hot_hosts: Vec<NodeId> = match cfg.pattern {
        TrafficPattern::Uniform => Vec::new(),
        TrafficPattern::Skewed {
            hot_rack_fraction, ..
        } => {
            let mut leaves: Vec<NodeId> = topo
                .switches()
                .iter()
                .copied()
                .filter(|s| topo.node(*s).role == flock_topology::NodeRole::Leaf)
                .collect();
            // Deterministic hot-rack choice given the rng stream.
            use rand::seq::SliceRandom;
            leaves.shuffle(rng);
            let n_hot =
                ((leaves.len() as f64 * hot_rack_fraction).ceil() as usize).clamp(1, leaves.len());
            let hot_leaves: std::collections::HashSet<NodeId> =
                leaves.into_iter().take(n_hot).collect();
            hosts
                .iter()
                .copied()
                .filter(|h| hot_leaves.contains(&topo.host_leaf(*h)))
                .collect()
        }
    };

    let mut out = Vec::with_capacity(cfg.flows);
    for _ in 0..cfg.flows {
        let src = *hosts.choose(rng).unwrap();
        let dst = match cfg.pattern {
            TrafficPattern::Uniform => pick_other(hosts, src, rng),
            TrafficPattern::Skewed {
                hot_traffic_fraction,
                ..
            } => {
                if rng.random::<f64>() < hot_traffic_fraction && !hot_hosts.is_empty() {
                    pick_other(&hot_hosts, src, rng)
                } else {
                    pick_other(hosts, src, rng)
                }
            }
        };
        let bytes = size_dist.sample(rng);
        let packets = ((bytes / cfg.mss_bytes as f64).ceil() as u64).clamp(1, 1_000_000);
        out.push(FlowDemand { src, dst, packets });
    }
    out
}

fn pick_other<R: Rng + ?Sized>(pool: &[NodeId], not: NodeId, rng: &mut R) -> NodeId {
    debug_assert!(!pool.is_empty());
    if pool.len() == 1 {
        return pool[0];
    }
    loop {
        let cand = *pool.choose(rng).unwrap();
        if cand != not {
            return cand;
        }
    }
}

/// Measure the ε-skew of traffic over links (Definition 3): the maximum
/// over link pairs `(l1, l2)` of `T({l1,l2}) / T({l1})`, where `T(S)` is
/// the number of packets crossing all links of `S`. Exact computation is
/// quadratic in path length per flow (cheap) but quadratic in link pairs
/// to aggregate, so this takes the per-flow true paths directly.
pub fn epsilon_skew(paths_and_packets: &[(Vec<flock_topology::LinkId>, u64)]) -> f64 {
    use std::collections::HashMap;
    let mut single: HashMap<u32, u64> = HashMap::new();
    let mut pair: HashMap<(u32, u32), u64> = HashMap::new();
    for (path, pkts) in paths_and_packets {
        for (i, a) in path.iter().enumerate() {
            *single.entry(a.0).or_insert(0) += pkts;
            for b in path.iter().skip(i + 1) {
                let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
                *pair.entry(key).or_insert(0) += pkts;
            }
        }
    }
    let mut eps: f64 = 0.0;
    for (&(a, b), &t2) in &pair {
        let ta = single[&a];
        let tb = single[&b];
        eps = eps.max(t2 as f64 / ta as f64);
        eps = eps.max(t2 as f64 / tb as f64);
    }
    eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::clos::{three_tier, ClosParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_demands_have_distinct_endpoints() {
        let t = three_tier(ClosParams::tiny());
        let mut rng = StdRng::seed_from_u64(1);
        let demands = generate_demands(
            &t,
            &TrafficConfig::paper(500, TrafficPattern::Uniform),
            &mut rng,
        );
        assert_eq!(demands.len(), 500);
        for d in &demands {
            assert_ne!(d.src, d.dst);
            assert!(d.packets >= 1);
        }
    }

    #[test]
    fn skewed_traffic_concentrates_on_hot_racks() {
        let t = three_tier(ClosParams::ns3_scale());
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = TrafficConfig::paper(20_000, TrafficPattern::paper_skewed());
        let demands = generate_demands(&t, &cfg, &mut rng);
        // Count destination racks.
        let mut per_rack: std::collections::HashMap<NodeId, usize> = Default::default();
        for d in &demands {
            *per_rack.entry(t.host_leaf(d.dst)).or_insert(0) += 1;
        }
        let mut counts: Vec<usize> = per_rack.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let n_racks = 64; // 8 pods × 8 tors
        let hot = (n_racks as f64 * 0.05).ceil() as usize;
        let hot_share: usize = counts.iter().take(hot).sum();
        let share = hot_share as f64 / demands.len() as f64;
        assert!(
            share > 0.4,
            "top-{hot} racks get {share:.2} of traffic, expected ≈ 0.5+"
        );
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let t = three_tier(ClosParams::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TrafficConfig::paper(5_000, TrafficPattern::Uniform);
        let demands = generate_demands(&t, &cfg, &mut rng);
        let max = demands.iter().map(|d| d.packets).max().unwrap();
        let mut sorted: Vec<u64> = demands.iter().map(|d| d.packets).collect();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!(
            max > median * 20,
            "heavy tail expected: max {max}, median {median}"
        );
    }

    #[test]
    fn epsilon_skew_uniform_vs_shared() {
        use flock_topology::LinkId;
        // Two flows sharing no links: pairwise counts exist only within a
        // path; eps is driven by intra-path overlap (always 1.0 for equal
        // per-link traffic on a shared path).
        let disjoint = vec![
            (vec![LinkId(0), LinkId(1)], 100u64),
            (vec![LinkId(2), LinkId(3)], 100u64),
        ];
        assert!((epsilon_skew(&disjoint) - 1.0).abs() < 1e-9);

        // A link pair shared by only half of one link's traffic → 0.5.
        let partial = vec![
            (vec![LinkId(0), LinkId(1)], 100u64),
            (vec![LinkId(0), LinkId(2)], 100u64),
        ];
        let eps = epsilon_skew(&partial);
        assert!((eps - 1.0).abs() < 1e-9, "T(1,0)/T(1) = 1 dominates: {eps}");
    }
}
