//! Small hand-rolled samplers used by the traffic generator.
//!
//! The suite restricts itself to the `rand` core crate; the two
//! distributions the paper's workloads need (Pareto flow sizes with mean
//! 200 KB and shape 1.05 [§6.3], exponential inter-arrivals) are
//! implemented here by inverse-transform sampling.

use rand::{Rng, RngExt};

/// Pareto distribution `xm * U^(-1/alpha)`.
///
/// The paper draws flow sizes from a Pareto with mean 200 KB and shape
/// 1.05; [`Pareto::with_mean`] solves `mean = alpha*xm/(alpha-1)` for the
/// scale parameter.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    /// Scale (minimum value).
    pub xm: f64,
    /// Shape parameter; heavier tail for smaller values.
    pub alpha: f64,
}

impl Pareto {
    /// Construct from scale and shape.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && alpha > 0.0);
        Pareto { xm, alpha }
    }

    /// Construct with the given mean and shape (`alpha > 1` required for
    /// the mean to exist).
    pub fn with_mean(mean: f64, alpha: f64) -> Self {
        assert!(alpha > 1.0, "mean undefined for alpha <= 1");
        Pareto::new(mean * (alpha - 1.0) / alpha, alpha)
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // U in (0,1]: avoid 0 which would blow up.
        let u: f64 = 1.0 - rng.random::<f64>();
        self.xm * u.powf(-1.0 / self.alpha)
    }

    /// Theoretical mean (`alpha > 1`).
    pub fn mean(&self) -> f64 {
        assert!(self.alpha > 1.0);
        self.alpha * self.xm / (self.alpha - 1.0)
    }
}

/// Exponential distribution with the given rate (events per unit time).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    /// Rate λ.
    pub rate: f64,
}

impl Exponential {
    /// Construct from a rate λ > 0.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0);
        Exponential { rate }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.rate
    }
}

/// Sample a Binomial(n, p) count by inverse-transform on the pmf
/// recurrence. Expected work is `O(np)`, which is what makes the
/// flow-level simulator fast: drop probabilities are tiny, so nearly every
/// call terminates after inspecting `k = 0`.
///
/// Falls back to a normal approximation when `np(1-p)` is large (>1000),
/// where the exact walk would be slow and the approximation error is
/// negligible for trace generation.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let np = n as f64 * p;
    let var = np * (1.0 - p);
    if var > 1000.0 {
        // Normal approximation with continuity correction.
        let z = normal_sample(rng);
        let x = np + z * var.sqrt();
        return x.round().clamp(0.0, n as f64) as u64;
    }
    // Inverse transform: walk the pmf from k = 0.
    let mut k = 0u64;
    let mut pmf = (n as f64 * (1.0 - p).ln()).exp(); // P(X = 0)
    let mut cdf = pmf;
    let u: f64 = rng.random();
    let ratio = p / (1.0 - p);
    while u > cdf && k < n {
        pmf *= (n - k) as f64 / (k + 1) as f64 * ratio;
        cdf += pmf;
        k += 1;
        if pmf < 1e-300 {
            break; // numerical tail exhausted
        }
    }
    k
}

/// One standard normal sample (Box–Muller).
fn normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_mean_is_close() {
        let d = Pareto::with_mean(200_000.0, 1.05);
        assert!((d.mean() - 200_000.0).abs() < 1e-6);
        // Empirical mean of a heavy-tailed distribution converges slowly;
        // use the median as a robust check instead: median = xm * 2^(1/a).
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[10_000];
        let expected = d.xm * 2f64.powf(1.0 / d.alpha);
        assert!(
            (median / expected - 1.0).abs() < 0.05,
            "median {median} vs expected {expected}"
        );
        assert!(samples[0] >= d.xm);
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(4.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..50_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn binomial_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        for _ in 0..100 {
            let k = binomial(&mut rng, 5, 0.5);
            assert!(k <= 5);
        }
    }

    #[test]
    fn binomial_mean_small_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 1000u64;
        let p = 0.005;
        let total: u64 = (0..20_000).map(|_| binomial(&mut rng, n, p)).sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn binomial_mean_large_var_uses_normal_path() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 1_000_000u64;
        let p = 0.01; // var = 9900 > 1000 → normal path
        let total: u64 = (0..2_000).map(|_| binomial(&mut rng, n, p)).sum();
        let mean = total as f64 / 2_000.0;
        assert!((mean / 10_000.0 - 1.0).abs() < 0.02, "mean {mean}");
    }
}
