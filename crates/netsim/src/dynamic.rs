//! Dynamic failure scenarios: faults that appear, persist, and heal
//! across the epochs of an online localization run.
//!
//! The static generators in [`crate::failure`] describe one instant; the
//! continuously running pipeline of §5.1 instead watches the network
//! *evolve*. A [`DynamicScenario`] is a fixed per-link noise floor plus a
//! timeline of [`FaultEvent`]s, each active over a half-open epoch window
//! `[appear, heal)`; [`DynamicScenario::scenario_at`] projects the
//! timeline onto any epoch as an ordinary [`FailureScenario`], so every
//! existing simulator runs unchanged per epoch.

use crate::failure::FailureScenario;
use flock_topology::{GroundTruth, LinkId, Topology};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// One fault on the timeline: a link dropping packets over an epoch
/// window.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The failing link.
    pub link: LinkId,
    /// Drop probability while active.
    pub drop_rate: f64,
    /// First epoch (inclusive) the fault is active.
    pub appear_epoch: u64,
    /// First epoch the fault is healed (`None` = never heals).
    pub heal_epoch: Option<u64>,
}

impl FaultEvent {
    /// Whether the fault is active during `epoch`.
    #[inline]
    pub fn active_at(&self, epoch: u64) -> bool {
        epoch >= self.appear_epoch && self.heal_epoch.is_none_or(|h| epoch < h)
    }
}

/// A per-link noise floor plus a timeline of faults.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicScenario {
    /// Static noise drop rate per directed link (drawn once; real noise
    /// floors drift far slower than the epoch cadence).
    pub noise: Vec<f64>,
    /// The fault timeline.
    pub events: Vec<FaultEvent>,
}

impl DynamicScenario {
    /// A noise-only timeline with no fault events.
    pub fn noise_only<R: Rng + ?Sized>(topo: &Topology, noise_max: f64, rng: &mut R) -> Self {
        DynamicScenario {
            noise: (0..topo.link_count())
                .map(|_| rng.random::<f64>() * noise_max)
                .collect(),
            events: Vec::new(),
        }
    }

    /// Generate a timeline of `n_events` silent-drop faults on distinct
    /// fabric links over `epochs` epochs. Each fault appears at a uniform
    /// epoch, persists for a uniform duration in `duration_range` epochs,
    /// and heals (faults whose window would overrun the horizon persist
    /// to the end). Drop rates are drawn uniformly from `fail_range`.
    pub fn generate<R: Rng + ?Sized>(
        topo: &Topology,
        epochs: u64,
        n_events: usize,
        fail_range: (f64, f64),
        duration_range: (u64, u64),
        noise_max: f64,
        rng: &mut R,
    ) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        assert!(duration_range.0 >= 1 && duration_range.0 <= duration_range.1);
        let mut sc = Self::noise_only(topo, noise_max, rng);
        let mut candidates = topo.fabric_links();
        candidates.shuffle(rng);
        for link in candidates.into_iter().take(n_events) {
            let appear = rng.random_range(0..epochs);
            let duration = rng.random_range(duration_range.0..=duration_range.1);
            let heal = appear.saturating_add(duration);
            let drop_rate = fail_range.0 + rng.random::<f64>() * (fail_range.1 - fail_range.0);
            sc.events.push(FaultEvent {
                link,
                drop_rate,
                appear_epoch: appear,
                heal_epoch: (heal < epochs).then_some(heal),
            });
        }
        sc.events.sort_by_key(|e| (e.appear_epoch, e.link));
        sc
    }

    /// The links whose faults are active during `epoch`, sorted.
    pub fn active_at(&self, epoch: u64) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self
            .events
            .iter()
            .filter(|e| e.active_at(epoch))
            .map(|e| e.link)
            .collect();
        links.sort_unstable();
        links.dedup();
        links
    }

    /// Project the timeline onto one epoch as a static
    /// [`FailureScenario`] (noise floor plus the active faults, with the
    /// matching ground truth).
    pub fn scenario_at(&self, epoch: u64) -> FailureScenario {
        let mut drop_rate = self.noise.clone();
        let mut truth = GroundTruth::default();
        for e in self.events.iter().filter(|e| e.active_at(epoch)) {
            drop_rate[e.link.idx()] = drop_rate[e.link.idx()].max(e.drop_rate);
            truth.failed_links.push(e.link);
        }
        truth.failed_links.sort_unstable();
        truth.failed_links.dedup();
        FailureScenario {
            drop_rate,
            latency_faults: Vec::new(),
            truth,
        }
    }

    /// First epoch after which no fault is active (`None` if some fault
    /// never heals).
    pub fn all_healed_epoch(&self) -> Option<u64> {
        self.events
            .iter()
            .map(|e| e.heal_epoch)
            .try_fold(0u64, |acc, h| h.map(|h| acc.max(h)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::clos::{three_tier, ClosParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Topology {
        three_tier(ClosParams::tiny())
    }

    #[test]
    fn events_respect_their_windows() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(1);
        let sc = DynamicScenario::generate(&t, 10, 3, (0.01, 0.02), (2, 4), 1e-4, &mut rng);
        assert_eq!(sc.events.len(), 3);
        for e in &sc.events {
            assert!(e.appear_epoch < 10);
            assert!(
                !e.active_at(e.appear_epoch.wrapping_sub(1).min(e.appear_epoch))
                    || e.appear_epoch == 0
            );
            assert!(e.active_at(e.appear_epoch));
            if let Some(h) = e.heal_epoch {
                assert!(h > e.appear_epoch);
                assert!(!e.active_at(h));
                assert!(e.active_at(h - 1));
            }
        }
    }

    #[test]
    fn scenario_projection_matches_active_set() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(2);
        let sc = DynamicScenario::generate(&t, 8, 4, (0.01, 0.02), (1, 3), 1e-4, &mut rng);
        for epoch in 0..8 {
            let snap = sc.scenario_at(epoch);
            assert_eq!(snap.truth.failed_links, sc.active_at(epoch));
            for l in &snap.truth.failed_links {
                assert!(
                    snap.drop_rate[l.idx()] >= 0.01,
                    "active fault must dominate the noise floor"
                );
            }
            // Inactive links stay at the noise floor.
            for (i, &r) in snap.drop_rate.iter().enumerate() {
                if !snap.truth.failed_links.contains(&LinkId(i as u32)) {
                    assert!(r <= 1e-4);
                }
            }
        }
    }

    #[test]
    fn faults_appear_and_heal_over_the_horizon() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(3);
        let sc = DynamicScenario::generate(&t, 12, 2, (0.01, 0.02), (2, 3), 0.0, &mut rng);
        // Some epoch has no active faults before the first appear.
        let first = sc.events.iter().map(|e| e.appear_epoch).min().unwrap();
        if first > 0 {
            assert!(sc.active_at(first - 1).is_empty());
        }
        // Active set is non-empty at each event's appear epoch.
        for e in &sc.events {
            assert!(sc.active_at(e.appear_epoch).contains(&e.link));
        }
        if let Some(done) = sc.all_healed_epoch() {
            assert!(sc.active_at(done).is_empty());
        }
    }

    #[test]
    fn distinct_links_per_event() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(4);
        let sc = DynamicScenario::generate(&t, 6, 5, (0.01, 0.02), (1, 6), 1e-4, &mut rng);
        let mut links: Vec<LinkId> = sc.events.iter().map(|e| e.link).collect();
        links.sort_unstable();
        links.dedup();
        assert_eq!(links.len(), 5, "events land on distinct links");
    }
}
