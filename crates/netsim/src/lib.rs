//! Network simulators for the Flock fault-localization suite.
//!
//! Two simulators generate the telemetry traces the paper evaluates on:
//!
//! * [`flowsim`] — a fast flow-level simulator (the paper's "large scale
//!   simulator", §6.3, also substituting for its NS3 traces per DESIGN.md):
//!   each flow picks an ECMP path uniformly at random and every traversed
//!   link drops packets with its configured probability. Scales to
//!   millions of flows.
//! * [`des`] — a packet-level discrete-event simulator with per-port
//!   queues, WRED, a simplified TCP (dup-ACK fast retransmit, RTO, RTT
//!   estimation) and link-flap events: the substitute for the paper's
//!   hardware testbed scenarios (§6.4).
//!
//! Supporting modules: [`dist`] (hand-rolled Pareto/exponential samplers),
//! [`traffic`] (uniform and skewed traffic matrices with Pareto flow
//! sizes), [`failure`] (failure-scenario generators: silent link
//! drops, device failures, soft gray failures, latency faults), and
//! [`chaos`] (seeded fault-injection schedules and wire-frame mangling
//! for chaos-testing the pipeline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod des;
pub mod dist;
pub mod dynamic;
pub mod failure;
pub mod flowsim;
pub mod traffic;

pub use chaos::{skew_stamp, ChaosConfig, ChaosFault, ChaosSchedule, FaultKind, WireMangler};
pub use des::{simulate_des, DesConfig, DesFaults, Flap, WredParams};
pub use dynamic::{DynamicScenario, FaultEvent};
pub use failure::{FailureScenario, LatencyFault};
pub use flowsim::{run_probes, simulate_flows, FlowSimConfig};
pub use traffic::{FlowDemand, TrafficConfig, TrafficPattern};
