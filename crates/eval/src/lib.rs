//! Evaluation harness: one experiment per figure/table of the paper.
//!
//! Every experiment in §6–7 (plus the appendix figures) is regenerable via
//! the `flock-exp` binary:
//!
//! ```text
//! cargo run --release -p flock-eval --bin flock-exp -- <experiment> [--quick]
//! ```
//!
//! where `<experiment>` is one of `fig2a`, `fig2b`, `fig2c`, `fig3a`,
//! `fig3b`, `fig4a`, `fig4b`, `fig4c`, `fig4d`, `fig5ab`, `fig5c`, `fig6`,
//! `fig7`, `fig8a`, `fig8b`, `table1`, `headline`, or `all`. `--quick`
//! shrinks trace counts and topology sizes for CI-speed runs; the full
//! settings match the paper's workload shapes (see DESIGN.md §5 for the
//! per-experiment index).
//!
//! The harness prints the same rows/series the paper's figures plot;
//! EXPERIMENTS.md records a full run together with the paper-reported
//! values for shape comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod scenario;
pub mod schemes;

pub use scenario::{ExpOpts, TraceBundle};
pub use schemes::SchemeUnderTest;
