//! The scheme × input-telemetry configurations the paper compares, and
//! helpers to run them over traces.

use crate::scenario::TraceBundle;
use flock_calibrate::{
    evaluate_grid, select, FlockGrid, NetBouncerGrid, SchemeConfig, SevenGrid, TrainingTrace,
};
use flock_core::{evaluate, MetricsAccumulator, PrecisionRecall};
use flock_telemetry::input::{AnalysisMode, InputKind};
use std::sync::Arc;

/// One (scheme, input kind) cell of the paper's comparisons, e.g.
/// "Flock (A1+P)" or "NetBouncer (INT)".
#[derive(Clone)]
pub struct SchemeUnderTest {
    /// Display label, matching the paper's figure legends.
    pub label: String,
    /// Telemetry kinds fed to the scheme.
    pub kinds: Vec<InputKind>,
    /// Analysis mode (per-packet except the link-flap experiment).
    pub mode: AnalysisMode,
    /// Scheme configuration (parameters possibly calibrated).
    pub config: SchemeConfig,
}

impl SchemeUnderTest {
    /// Construct with a label of the form `"<family> (<input>)"`.
    pub fn new(label: &str, kinds: &[InputKind], config: SchemeConfig) -> Self {
        SchemeUnderTest {
            label: label.to_string(),
            kinds: kinds.to_vec(),
            mode: AnalysisMode::PerPacket,
            config,
        }
    }

    /// Evaluate this scheme over a set of traces; returns mean
    /// precision/recall.
    pub fn evaluate(&self, traces: &[TraceBundle]) -> PrecisionRecall {
        let localizer = self.config.build();
        let mut acc = MetricsAccumulator::new();
        for t in traces {
            let obs = t.assemble(&self.kinds, self.mode);
            let result = localizer.localize(&t.topo, &obs);
            acc.add(evaluate(&t.topo, &result.predicted, &t.truth));
        }
        acc.mean()
    }

    /// Calibrate this scheme's parameters on training traces (§5.2),
    /// returning a copy with the selected configuration.
    pub fn calibrated(&self, train: &[TraceBundle], quick: bool, threads: usize) -> Self {
        let grid = grid_for(&self.config, quick);
        let training: Vec<TrainingTrace> = train
            .iter()
            .map(|t| TrainingTrace {
                topo: Arc::clone(&t.topo),
                obs: Arc::new(t.assemble(&self.kinds, self.mode)),
                truth: t.truth.clone(),
            })
            .collect();
        let points = evaluate_grid(&grid, &training, threads);
        let chosen = select(&points).expect("non-empty grid");
        SchemeUnderTest {
            config: chosen.config,
            ..self.clone()
        }
    }

    /// Evaluate the whole parameter grid on `traces` (the Fig. 2 tradeoff
    /// curves), returning `(config, precision, recall)` rows.
    pub fn tradeoff_curve(
        &self,
        traces: &[TraceBundle],
        quick: bool,
        threads: usize,
    ) -> Vec<(SchemeConfig, PrecisionRecall)> {
        let grid = grid_for(&self.config, quick);
        let ts: Vec<TrainingTrace> = traces
            .iter()
            .map(|t| TrainingTrace {
                topo: Arc::clone(&t.topo),
                obs: Arc::new(t.assemble(&self.kinds, self.mode)),
                truth: t.truth.clone(),
            })
            .collect();
        let points = evaluate_grid(&grid, &ts, threads);
        flock_calibrate::pareto_front(&points)
            .into_iter()
            .map(|p| (p.config, p.metrics))
            .collect()
    }
}

/// The calibration grid for a scheme family; quick mode trims it.
fn grid_for(config: &SchemeConfig, quick: bool) -> Vec<SchemeConfig> {
    match config {
        SchemeConfig::Flock(_) => {
            let mut g = FlockGrid::default();
            if quick {
                g.p_g = vec![1e-4, 5e-4];
                g.p_b = vec![2e-3, 6e-3, 1e-2];
                g.neg_ln_rho = vec![5.0, 10.0, 15.0];
            }
            g.points()
        }
        SchemeConfig::NetBouncer {
            device_flow_threshold,
            ..
        } => {
            let mut g = NetBouncerGrid::default();
            if quick {
                g.lambda = vec![0.5, 5.0];
                g.link_threshold = vec![2e-4, 1e-3, 5e-3];
            }
            if *device_flow_threshold != u64::MAX {
                g.device_flow_threshold = vec![5, 20, 80];
            }
            g.points()
        }
        SchemeConfig::Seven { .. } => SevenGrid::default().points(),
    }
}

/// Default (uncalibrated) configurations for each family.
pub mod defaults {
    use super::*;
    use flock_core::HyperParams;

    /// Flock with default model parameters.
    pub fn flock(label: &str, kinds: &[InputKind]) -> SchemeUnderTest {
        SchemeUnderTest::new(label, kinds, SchemeConfig::Flock(HyperParams::default()))
    }

    /// NetBouncer with default parameters.
    pub fn netbouncer(label: &str, kinds: &[InputKind]) -> SchemeUnderTest {
        SchemeUnderTest::new(
            label,
            kinds,
            SchemeConfig::NetBouncer {
                lambda: 1.0,
                link_threshold: 5e-4,
                device_flow_threshold: u64::MAX,
            },
        )
    }

    /// 007 with a default vote threshold.
    pub fn seven(label: &str, kinds: &[InputKind]) -> SchemeUnderTest {
        SchemeUnderTest::new(
            label,
            kinds,
            SchemeConfig::Seven {
                vote_threshold: 2.0,
            },
        )
    }

    /// The full Fig. 2 scheme×input panel.
    pub fn figure2_panel() -> Vec<SchemeUnderTest> {
        use InputKind::*;
        vec![
            flock("Flock (INT)", &[Int]),
            flock("Flock (A1+A2+P)", &[A1, A2, P]),
            flock("Flock (A2)", &[A2]),
            flock("Flock (A1+P)", &[A1, P]),
            netbouncer("NetBouncer (INT)", &[Int]),
            flock("Flock (A1)", &[A1]),
            netbouncer("NetBouncer (A1)", &[A1]),
            seven("007 (A2)", &[A2]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{silent_drop_trace, sim_topology, ExpOpts, Workload};
    use flock_netsim::traffic::TrafficPattern;

    #[test]
    fn evaluate_panel_on_one_trace() {
        let opts = ExpOpts {
            quick: true,
            threads: 2,
        };
        let topo = sim_topology(&opts);
        let traces = vec![silent_drop_trace(
            &topo,
            1,
            &Workload::with_flows(800, TrafficPattern::Uniform),
            7,
        )];
        for s in defaults::figure2_panel() {
            let pr = s.evaluate(&traces);
            assert!((0.0..=1.0).contains(&pr.precision), "{}", s.label);
            assert!((0.0..=1.0).contains(&pr.recall), "{}", s.label);
        }
    }
}
