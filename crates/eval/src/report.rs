//! Minimal table formatting for experiment output (markdown-flavored, so
//! reports paste directly into EXPERIMENTS.md).

/// A simple column-aligned markdown table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as a markdown table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            s
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration in adaptive units.
pub fn dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["scheme", "precision"]);
        t.row(vec!["Flock".into(), f3(0.987)]);
        t.row(vec!["007".into(), f3(0.5)]);
        let s = t.render();
        assert!(s.contains("| scheme |"));
        assert!(s.contains("| 0.987"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn duration_units() {
        assert!(dur(std::time::Duration::from_millis(5)).contains("ms"));
        assert!(dur(std::time::Duration::from_secs(3)).ends_with("s"));
    }
}
