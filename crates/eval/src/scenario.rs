//! Trace generation: the glue between the simulators and the inference
//! input assembly, shared by every experiment.

use flock_netsim::des::{simulate_des, DesConfig, DesFaults, Flap, WredParams};
use flock_netsim::failure::{self, FailureScenario, DEFAULT_NOISE_MAX};
use flock_netsim::flowsim::{run_probes, simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_telemetry::input::{assemble, AnalysisMode, InputKind, ObservationSet};
use flock_telemetry::{plan_a1_probes, MonitoredFlow};
use flock_topology::{ClosParams, GroundTruth, LeafSpineParams, Router, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Global experiment options.
#[derive(Debug, Clone, Copy)]
pub struct ExpOpts {
    /// Shrink workloads for fast runs.
    pub quick: bool,
    /// Worker threads for calibration sweeps.
    pub threads: usize,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            quick: false,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

impl ExpOpts {
    /// `quick ? a : b`
    pub fn pick(&self, quick: usize, full: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// A generated trace: the monitored flows of one fault episode plus its
/// ground truth. Input kinds are applied afterwards via
/// [`TraceBundle::assemble`], so one trace serves every scheme.
#[derive(Clone)]
pub struct TraceBundle {
    /// The topology of this trace.
    pub topo: Arc<Topology>,
    /// All monitored flows (probes and passive traffic).
    pub flows: Vec<MonitoredFlow>,
    /// Ground truth.
    pub truth: GroundTruth,
}

impl TraceBundle {
    /// Assemble the inference input for the given telemetry kinds.
    pub fn assemble(&self, kinds: &[InputKind], mode: AnalysisMode) -> ObservationSet {
        let router = Router::new(&self.topo);
        assemble(&self.topo, &router, &self.flows, kinds, mode)
    }
}

/// The simulation topology of §6.3 (NS3-scale: ~2500 links); quick mode
/// uses a quarter-size fabric.
pub fn sim_topology(opts: &ExpOpts) -> Arc<Topology> {
    let params = if opts.quick {
        ClosParams {
            pods: 4,
            tors_per_pod: 4,
            aggs_per_pod: 2,
            spines_per_plane: 4,
            hosts_per_tor: 6,
        }
    } else {
        ClosParams::ns3_scale()
    };
    Arc::new(flock_topology::clos::three_tier(params))
}

/// The hardware-testbed topology (2 spines, 8 leaves, 6 hosts per rack).
pub fn testbed_topology() -> Arc<Topology> {
    Arc::new(flock_topology::clos::leaf_spine(LeafSpineParams::testbed()))
}

/// Workload knobs shared by the accuracy experiments.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Passive flows per trace.
    pub passive_flows: usize,
    /// Probe packets per (host, spine, path) triple.
    pub probe_packets: u64,
    /// Cap on the number of probe streams.
    pub probe_budget: usize,
    /// Traffic matrix shape.
    pub pattern: TrafficPattern,
}

impl Workload {
    /// The paper's default workload with the given passive-flow count.
    pub fn with_flows(passive_flows: usize, pattern: TrafficPattern) -> Self {
        Workload {
            passive_flows,
            probe_packets: 50,
            probe_budget: 8192,
            pattern,
        }
    }
}

/// Simulate one trace under an arbitrary failure scenario.
pub fn run_scenario(
    topo: &Arc<Topology>,
    scenario: &FailureScenario,
    workload: &Workload,
    seed: u64,
) -> TraceBundle {
    let router = Router::new(topo);
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = FlowSimConfig::default();
    let demands = generate_demands(
        topo,
        &TrafficConfig::paper(workload.passive_flows, workload.pattern),
        &mut rng,
    );
    let mut flows = simulate_flows(topo, &router, scenario, &demands, &cfg, &mut rng);
    let specs = plan_a1_probes(
        topo,
        &router,
        workload.probe_packets,
        Some(workload.probe_budget),
    );
    flows.extend(run_probes(scenario, &specs, &cfg, &mut rng));
    TraceBundle {
        topo: Arc::clone(topo),
        flows,
        truth: scenario.truth.clone(),
    }
}

/// Silent-link-drop trace (§7.1): 1–8 failed links, drop rates 0.1–1%.
pub fn silent_drop_trace(
    topo: &Arc<Topology>,
    n_failed: usize,
    workload: &Workload,
    seed: u64,
) -> TraceBundle {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    let scenario =
        failure::silent_link_drops(topo, n_failed, (0.001, 0.01), DEFAULT_NOISE_MAX, &mut rng);
    run_scenario(topo, &scenario, workload, seed)
}

/// Device-failure trace (§7.2): up to `n_devices` devices with
/// `frac_links` of their cables failed.
pub fn device_failure_trace(
    topo: &Arc<Topology>,
    n_devices: usize,
    frac_links: f64,
    workload: &Workload,
    seed: u64,
) -> TraceBundle {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xc2b2_ae35));
    let scenario = failure::device_failure(
        topo,
        n_devices,
        frac_links,
        (0.001, 0.01),
        DEFAULT_NOISE_MAX,
        &mut rng,
    );
    run_scenario(topo, &scenario, workload, seed)
}

/// Soft-gray-failure trace (§7.3): one failed link with an exact rate.
pub fn soft_failure_trace(
    topo: &Arc<Topology>,
    drop_rate: f64,
    workload: &Workload,
    seed: u64,
) -> TraceBundle {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x1656_67b1));
    let scenario = failure::single_soft_failure(topo, drop_rate, DEFAULT_NOISE_MAX, &mut rng);
    run_scenario(topo, &scenario, workload, seed)
}

/// Testbed misconfigured-WRED trace (§7.4), generated by the DES.
pub fn testbed_wred_trace(topo: &Arc<Topology>, flows: usize, seed: u64) -> TraceBundle {
    let router = Router::new(topo);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x27d4_eb2f));
    use rand::seq::IndexedRandom;
    let bad = *topo.fabric_links().choose(&mut rng).unwrap();
    let faults = DesFaults {
        wred: vec![(
            bad,
            WredParams {
                threshold: 0,
                drop_prob: 0.01,
            },
        )],
        ..Default::default()
    };
    let demands = generate_demands(
        topo,
        &TrafficConfig::paper(flows, TrafficPattern::Uniform),
        &mut rng,
    );
    let telemetry = simulate_des(
        topo,
        &router,
        &DesConfig::default(),
        &faults,
        &demands,
        &mut rng,
    );
    // A2-style path tracing is available on the testbed; A1 probing is not
    // (no IP-in-IP switch support, §6.3), so no probe records here.
    TraceBundle {
        topo: Arc::clone(topo),
        flows: telemetry,
        truth: GroundTruth {
            failed_links: vec![bad],
            failed_devices: vec![],
        },
    }
}

/// Testbed link-flap trace (§7.5): the link buffers for the flap duration.
pub fn testbed_flap_trace(topo: &Arc<Topology>, flows: usize, seed: u64) -> TraceBundle {
    let router = Router::new(topo);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x85eb_ca6b));
    use rand::seq::IndexedRandom;
    let bad = *topo.fabric_links().choose(&mut rng).unwrap();
    let cfg = DesConfig {
        horizon_ns: 1_000_000_000,
        ..Default::default()
    };
    let faults = DesFaults {
        flaps: vec![Flap {
            link: bad,
            start_ns: 0,
            duration_ns: 800_000_000, // 800 ms: most flows overlap it
        }],
        ..Default::default()
    };
    let demands = generate_demands(
        topo,
        &TrafficConfig::paper(flows, TrafficPattern::Uniform),
        &mut rng,
    );
    let telemetry = simulate_des(topo, &router, &cfg, &faults, &demands, &mut rng);
    TraceBundle {
        topo: Arc::clone(topo),
        flows: telemetry,
        truth: GroundTruth {
            failed_links: vec![bad],
            failed_devices: vec![],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_drop_trace_contains_probes_and_passive() {
        let opts = ExpOpts {
            quick: true,
            threads: 1,
        };
        let topo = sim_topology(&opts);
        let workload = Workload::with_flows(500, TrafficPattern::Uniform);
        let t = silent_drop_trace(&topo, 2, &workload, 1);
        assert_eq!(t.truth.failed_links.len(), 2);
        let probes = t
            .flows
            .iter()
            .filter(|f| f.class == flock_telemetry::TrafficClass::Probe)
            .count();
        assert!(probes > 0 && probes <= 8192);
        assert!(t.flows.len() > probes, "passive flows present");
        // Assembly produces non-empty inputs for all kinds.
        for kinds in [
            vec![InputKind::A1],
            vec![InputKind::A2],
            vec![InputKind::P],
            vec![InputKind::Int],
        ] {
            let obs = t.assemble(&kinds, AnalysisMode::PerPacket);
            if kinds != [InputKind::A2] {
                assert!(!obs.flows.is_empty(), "{kinds:?} input empty");
            }
        }
    }

    #[test]
    fn testbed_traces_have_single_truth_link() {
        let topo = testbed_topology();
        let t = testbed_wred_trace(&topo, 60, 3);
        assert_eq!(t.truth.failed_links.len(), 1);
        let t2 = testbed_flap_trace(&topo, 40, 4);
        assert_eq!(t2.truth.failed_links.len(), 1);
        // Flap: some flow has a big RTT.
        assert!(t2.flows.iter().any(|f| f.stats.rtt_max_us > 10_000));
    }
}
