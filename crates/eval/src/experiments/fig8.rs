//! Fig. 8 (appendix) — Flock's parameter sensitivity.
//!
//! 8a: Fscore as `p_b` sweeps 0.2–1.0 ×10⁻² for several `p_g` values.
//! 8b: precision/recall as the prior strength `−ln ρ` varies
//! (stronger priors → fewer false positives → points move right).

use crate::report::{f3, Table};
use crate::scenario::{silent_drop_trace, sim_topology, ExpOpts, TraceBundle, Workload};
use crate::schemes::SchemeUnderTest;
use flock_calibrate::SchemeConfig;
use flock_core::{fscore, HyperParams};
use flock_netsim::traffic::TrafficPattern;
use flock_telemetry::InputKind::*;

fn traces(opts: &ExpOpts) -> Vec<TraceBundle> {
    let topo = sim_topology(opts);
    let flows = opts.pick(8_000, 60_000);
    (0..opts.pick(4, 12))
        .map(|i| {
            silent_drop_trace(
                &topo,
                1 + i % 4,
                &Workload::with_flows(flows, TrafficPattern::Uniform),
                11_000 + i as u64,
            )
        })
        .collect()
}

/// Fig. 8a.
pub fn run_sensitivity(opts: &ExpOpts) -> String {
    let ts = traces(opts);
    let p_gs = [1e-4, 3e-4, 5e-4, 7e-4];
    let p_bs = [2e-3, 4e-3, 6e-3, 8e-3, 1e-2];

    let mut out = String::from("# Fig 8a: Fscore over (p_g, p_b) — input A1+A2+P\n\n");
    let mut header = vec!["p_b".to_string()];
    header.extend(p_gs.iter().map(|g| format!("p_g={g:.0e}")));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut tbl = Table::new(&hdr);
    for p_b in p_bs {
        let mut row = vec![format!("{:.1e}", p_b)];
        for p_g in p_gs {
            let scheme = SchemeUnderTest::new(
                "Flock",
                &[A1, A2, P],
                SchemeConfig::Flock(HyperParams {
                    p_g,
                    p_b,
                    ..Default::default()
                }),
            );
            let pr = scheme.evaluate(&ts);
            row.push(f3(fscore(pr.precision, pr.recall)));
        }
        tbl.row(row);
    }
    out.push_str(&tbl.render());
    out
}

/// Fig. 8b.
pub fn run_priors(opts: &ExpOpts) -> String {
    let ts = traces(opts);
    let mut out = String::from("# Fig 8b: effect of the prior strength — input A1+A2+P\n\n");
    let mut tbl = Table::new(&["-ln(rho)", "precision", "recall"]);
    for neg_ln_rho in [5.0f64, 10.0, 15.0, 20.0] {
        let scheme = SchemeUnderTest::new(
            "Flock",
            &[A1, A2, P],
            SchemeConfig::Flock(HyperParams {
                rho_link: (-neg_ln_rho).exp(),
                ..Default::default()
            }),
        );
        let pr = scheme.evaluate(&ts);
        tbl.row(vec![
            format!("{neg_ln_rho:.0}"),
            f3(pr.precision),
            f3(pr.recall),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str("\nStronger priors trade recall for precision (points move right in Fig. 8b).\n");
    out
}
