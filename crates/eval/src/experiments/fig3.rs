//! Fig. 3 — soft gray failures (§7.3): Fscore as a function of the failed
//! link's drop rate, under uniform (3a) and skewed (3b) traffic. The
//! paper's conclusion: Flock detects > 1% drop rate with A2, and > 0.4%
//! once passive telemetry (INT or A1+A2+P) is added; 007's recall
//! collapses under skew.

use crate::report::{f3, Table};
use crate::scenario::{sim_topology, soft_failure_trace, ExpOpts, TraceBundle, Workload};
use crate::schemes::{defaults, SchemeUnderTest};
use flock_core::fscore;
use flock_netsim::traffic::TrafficPattern;
use flock_telemetry::InputKind::*;

fn panel(skewed: bool) -> Vec<SchemeUnderTest> {
    let mut v = vec![
        defaults::flock("Flock (INT)", &[Int]),
        defaults::flock("Flock (A1+A2+P)", &[A1, A2, P]),
        defaults::flock("Flock (A2)", &[A2]),
        defaults::seven("007 (A2)", &[A2]),
    ];
    if !skewed {
        // Schemes on active probes are unaffected by application-traffic
        // skew and are omitted from Fig. 3b (§7.3).
        v.push(defaults::flock("Flock (A1)", &[A1]));
        v.push(defaults::netbouncer("NetBouncer (A1)", &[A1]));
    }
    v
}

/// Run the drop-rate sweep.
pub fn run(opts: &ExpOpts, skewed: bool) -> String {
    let topo = sim_topology(opts);
    let flows = opts.pick(8_000, 100_000);
    let traces_per_point = opts.pick(4, 16);
    let rates = [0.002, 0.004, 0.006, 0.008, 0.010, 0.012, 0.014];
    let pattern = if skewed {
        TrafficPattern::paper_skewed()
    } else {
        TrafficPattern::Uniform
    };

    // Calibrate once on mid-rate traces (§6.1: parameters calibrated on
    // random-drop simulations and reused; 007 recalibrated separately for
    // skewed traffic, as the paper had to).
    let train: Vec<TraceBundle> = (0..opts.pick(3, 6))
        .map(|i| {
            soft_failure_trace(
                &topo,
                0.005,
                &Workload::with_flows(flows, pattern),
                7000 + i as u64,
            )
        })
        .collect();
    let schemes: Vec<SchemeUnderTest> = panel(skewed)
        .into_iter()
        .map(|s| s.calibrated(&train, opts.quick, opts.threads))
        .collect();

    let name = if skewed {
        "Fig 3b (skewed)"
    } else {
        "Fig 3a (uniform)"
    };
    let mut out = format!("# {name}: Fscore vs drop rate, {traces_per_point} traces/point\n\n");
    let mut header: Vec<&str> = vec!["drop rate %"];
    let labels: Vec<String> = schemes.iter().map(|s| s.label.clone()).collect();
    header.extend(labels.iter().map(|s| s.as_str()));
    let mut tbl = Table::new(&header);

    for (ri, rate) in rates.iter().enumerate() {
        let traces: Vec<TraceBundle> = (0..traces_per_point)
            .map(|i| {
                soft_failure_trace(
                    &topo,
                    *rate,
                    &Workload::with_flows(flows, pattern),
                    (3000 + ri * 100 + i) as u64,
                )
            })
            .collect();
        let mut row = vec![format!("{:.1}", rate * 100.0)];
        for s in &schemes {
            let pr = s.evaluate(&traces);
            row.push(f3(fscore(pr.precision, pr.recall)));
        }
        tbl.row(row);
    }
    out.push_str(&tbl.render());
    out
}
