//! One module per paper figure/table. See the crate docs for the mapping
//! and DESIGN.md §5 for workloads and parameters.

pub mod fig2;
pub mod fig3;
pub mod fig4ab;
pub mod fig4cd;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod headline;
pub mod table1;

use crate::scenario::ExpOpts;

/// All experiment ids in run order.
pub const ALL: &[&str] = &[
    "fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig4a", "fig4b", "fig4c", "fig4d", "fig5ab",
    "fig5c", "fig6", "fig7", "fig8a", "fig8b", "table1", "headline",
];

/// Run one experiment by id; returns its report text.
pub fn run(name: &str, opts: &ExpOpts) -> Result<String, String> {
    match name {
        "fig2a" => Ok(fig2::run_silent_drops(opts, false)),
        "fig2b" => Ok(fig2::run_silent_drops(opts, true)),
        "fig2c" => Ok(fig2::run_device_failures(opts)),
        "fig3a" => Ok(fig3::run(opts, false)),
        "fig3b" => Ok(fig3::run(opts, true)),
        "fig4a" => Ok(fig4ab::run_wred(opts)),
        "fig4b" => Ok(fig4ab::run_flap(opts)),
        "fig4c" => Ok(fig4cd::run_inference_scaling(opts)),
        "fig4d" => Ok(fig4cd::run_scheme_runtime(opts)),
        "fig5ab" => Ok(fig5::run_irregular(opts)),
        "fig5c" => Ok(fig5::run_passive_hard(opts)),
        "fig6" => Ok(fig6::run()),
        "fig7" => Ok(fig7::run(opts)),
        "fig8a" => Ok(fig8::run_sensitivity(opts)),
        "fig8b" => Ok(fig8::run_priors(opts)),
        "table1" => Ok(table1::run(opts)),
        "headline" => Ok(headline::run(opts, None)),
        other => Err(format!(
            "unknown experiment '{other}'; available: {}",
            ALL.join(", ")
        )),
    }
}
