//! Fig. 7 (appendix) — agent/collector scalability.
//!
//! The paper plots collector CPU usage against connection rate (1K–8K
//! connections/sec at 100 flow reports each) and agent CPU against data
//! rate / flow count. CPU percentages are host-specific, so this
//! reproduction reports the direct capacity measurements instead:
//! sustained connections/sec and records/sec through the real TCP
//! collector path, and per-record agent aggregation cost — the quantities
//! whose scaling behaviour the figure demonstrates.

use crate::report::Table;
use crate::scenario::ExpOpts;
use flock_telemetry::{AgentConfig, AgentCore, Collector, FlowKey, FlowSample, TrafficClass};
use flock_topology::NodeId;
use std::io::Write;
use std::net::TcpStream;
use std::time::Instant;

/// Run the collector/agent throughput measurements.
pub fn run(opts: &ExpOpts) -> String {
    let mut out = String::from("# Fig 7: agent/collector scalability (capacity measurements)\n\n");

    // --- Collector: connection storm, 100 records per connection. ---
    out.push_str("## Collector: connection rate sweep (100 records/connection)\n");
    let mut tbl = Table::new(&["agent threads", "connections", "conns/sec", "records/sec"]);
    let conns_per_thread = opts.pick(50, 250);
    for threads in [1usize, 2, 4, 8] {
        let collector = Collector::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = collector.local_addr();
        let start = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                std::thread::spawn(move || {
                    for c in 0..conns_per_thread {
                        let mut agent = AgentCore::new(AgentConfig {
                            agent_id: (t * 1000 + c) as u32,
                            ..Default::default()
                        });
                        for i in 0..100u32 {
                            agent.observe(FlowSample {
                                key: FlowKey::tcp(NodeId(i), NodeId(9999), (c % 60000) as u16, 80),
                                packets: 100,
                                retransmissions: 0,
                                bytes: 150_000,
                                rtt_us: Some(100),
                                path: None,
                                class: TrafficClass::Passive,
                            });
                        }
                        let recs = agent.export();
                        let msgs = agent.encode_export(0, &recs);
                        let mut s = TcpStream::connect(addr).unwrap();
                        for m in &msgs {
                            s.write_all(m).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total_conns = (threads * conns_per_thread) as u64;
        let expected = total_conns * 100;
        // Wait for the collector to drain the sockets.
        let deadline = Instant::now() + std::time::Duration::from_secs(20);
        while collector.stats().snapshot().records < expected && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let elapsed = start.elapsed().as_secs_f64();
        let snap = collector.stats().snapshot();
        assert_eq!(snap.decode_errors, 0);
        tbl.row(vec![
            threads.to_string(),
            snap.connections.to_string(),
            format!("{:.0}", snap.connections as f64 / elapsed),
            format!("{:.0}", snap.records as f64 / elapsed),
        ]);
        collector.shutdown();
    }
    out.push_str(&tbl.render());

    // --- Agent: aggregation cost vs flow count (Fig. 7c analogue). ---
    out.push_str("\n## Agent: per-sample aggregation cost vs concurrent flows\n");
    let mut tbl = Table::new(&["concurrent flows", "samples", "ns/sample"]);
    for flows in [20usize, 40, 60, 80, 100] {
        let mut agent = AgentCore::new(AgentConfig::default());
        let samples = opts.pick(200_000, 1_000_000);
        let t0 = Instant::now();
        for i in 0..samples {
            agent.observe(FlowSample {
                key: FlowKey::tcp(NodeId((i % flows) as u32), NodeId(9999), 1000, 80),
                packets: 1,
                retransmissions: 0,
                bytes: 1500,
                rtt_us: None,
                path: None,
                class: TrafficClass::Passive,
            });
        }
        let per = t0.elapsed().as_nanos() as f64 / samples as f64;
        assert_eq!(agent.active_flows(), flows);
        tbl.row(vec![
            flows.to_string(),
            samples.to_string(),
            format!("{per:.0}"),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str("\nAgent cost is flat in the number of tracked flows (cf. Fig. 7c);\nthe fixed-size reactor absorbs the connection storm as agent-side load\nthreads grow (cf. Fig. 7a).\n");
    out
}
