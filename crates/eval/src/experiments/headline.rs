//! The §1/§7.8 headline experiment: Flock's inference on a Clos with
//! ~88K links and ~9.5M flows — "scanning ~3.5M hypotheses in 17 sec,
//! over 10⁴× faster than Sherlock", with Sherlock's runtime extrapolated
//! from a partial run exactly as the paper does.

use crate::report::{dur, Table};
use crate::scenario::{silent_drop_trace, ExpOpts, Workload};
use flock_core::{FlockGreedy, HyperParams, Localizer, SherlockFerret};
use flock_netsim::traffic::TrafficPattern;
use flock_telemetry::input::AnalysisMode;
use flock_telemetry::InputKind::*;
use flock_topology::ClosParams;
use std::sync::Arc;

/// Run the headline measurement; `flows_override` adjusts the passive
/// flow count (default ~9.5M; quick mode uses 500K on a smaller fabric).
pub fn run(opts: &ExpOpts, flows_override: Option<usize>) -> String {
    let (params, flows) = if opts.quick {
        (
            ClosParams {
                pods: 12,
                tors_per_pod: 12,
                aggs_per_pod: 6,
                spines_per_plane: 4,
                hosts_per_tor: 16,
            },
            flows_override.unwrap_or(500_000),
        )
    } else {
        // 2·(24·24·12 + 24·12·6 + 24·24·61) = 87,552 directed links — the
        // paper's "88K links".
        (
            ClosParams {
                pods: 24,
                tors_per_pod: 24,
                aggs_per_pod: 12,
                spines_per_plane: 6,
                hosts_per_tor: 61,
            },
            flows_override.unwrap_or(9_500_000),
        )
    };
    let topo = Arc::new(flock_topology::clos::three_tier(params));
    let mut out = format!(
        "# Headline (§7.8): {} directed links, {} hosts, {} flows\n\n",
        topo.link_count(),
        topo.hosts().len(),
        flows
    );

    let gen_start = std::time::Instant::now();
    let trace = silent_drop_trace(
        &topo,
        5,
        &Workload::with_flows(flows, TrafficPattern::Uniform),
        424_242,
    );
    out.push_str(&format!("trace generation: {}\n", dur(gen_start.elapsed())));

    let asm_start = std::time::Instant::now();
    let obs = trace.assemble(&[A1, A2, P], AnalysisMode::PerPacket);
    out.push_str(&format!(
        "input assembly (A1+A2+P): {} ({} aggregated observations from {} flows; \
         {} super-flows after evidence coalescing, x{:.1})\n\n",
        dur(asm_start.elapsed()),
        obs.flows.len(),
        obs.flow_count(),
        obs.coalesced_count(),
        obs.flows.len() as f64 / obs.coalesced_count().max(1) as f64,
    ));

    let mut tbl = Table::new(&[
        "scheme",
        "runtime",
        "hypotheses scanned",
        "found/true failures",
    ]);

    let flock = FlockGreedy::default();
    let r = flock.localize(&topo, &obs);
    let pr = flock_core::evaluate(&topo, &r.predicted, &trace.truth);
    tbl.row(vec![
        "Flock (A1+A2+P)".into(),
        dur(r.runtime),
        r.hypotheses_scanned.to_string(),
        format!(
            "{}/{} (precision {:.2})",
            r.predicted.len(),
            trace.truth.len(),
            pr.precision
        ),
    ]);
    let flock_secs = r.runtime.as_secs_f64();

    // Sherlock: partial run, extrapolated (the paper estimated 19 days).
    let n = (topo.link_count() + topo.switch_count()) as u64;
    let total_k2 = 1 + n + n * (n - 1) / 2;
    let mut sherlock = SherlockFerret::new(HyperParams::default(), 2);
    sherlock.hypothesis_budget = Some(if opts.quick { 500 } else { 2_000 });
    let r = sherlock.localize(&topo, &obs);
    let est = r.runtime.as_secs_f64() * total_k2 as f64 / r.hypotheses_scanned as f64;
    tbl.row(vec![
        "Sherlock K=2 (extrapolated)".into(),
        format!("{:.1} days", est / 86_400.0),
        format!("{total_k2} (total)"),
        "-".into(),
    ]);
    out.push_str(&tbl.render());
    out.push_str(&format!(
        "\nSpeedup over Sherlock: {:.0}x\n",
        est / flock_secs.max(1e-9)
    ));
    out
}
