//! Fig. 6 (appendix) — the worked example showing why PGM inference
//! localizes more accurately than voting or drop-rate solving.
//!
//! This is a *reconstruction* (the paper's figure omits exact wiring):
//! five links — two source-host uplinks into switch I1, the fabric link
//! I1→I2, and two downlinks from I2 to the destination hosts — and five
//! flows with the paper's drop counts (543/10K, 2/10K, 461/10K, 0/10K,
//! 0/10K). The true failure is the I2→D2 downlink.
//!
//! * 007's bad flows (F1, F3) vote 1/3 for each of their three links, so
//!   the shared I1→I2 link ties with the true culprit and wins the first
//!   pick — mislocalization by vote splitting.
//! * Flock's model weighs the *clean* flows too: F2/F4/F5 crossing I1→I2
//!   without drops exculpate it, leaving I2→D2 as the only explanation.

use crate::report::Table;
use flock_baselines::{NetBouncer, ZeroZeroSeven};
use flock_core::{FlockGreedy, Localizer};
use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, TrafficClass};
use flock_topology::graph::{NodeRole, TopologyBuilder};
use flock_topology::{Component, Router};

/// Run the worked example.
pub fn run() -> String {
    // Topology: hosts S1,S2 under switch I1; hosts D1,D2 under switch I2.
    let mut b = TopologyBuilder::new("fig6");
    let s1 = b.add_node(NodeRole::Host, 0, 0);
    let s2 = b.add_node(NodeRole::Host, 0, 1);
    let d1 = b.add_node(NodeRole::Host, 1, 0);
    let d2 = b.add_node(NodeRole::Host, 1, 1);
    let i1 = b.add_node(NodeRole::Leaf, 0, 0);
    let i2 = b.add_node(NodeRole::Agg, 1, 0);
    let (s1_i1, _) = b.connect(s1, i1);
    let (s2_i1, _) = b.connect(s2, i1);
    let (i1_i2, _) = b.connect(i1, i2);
    let (_, i2_d1) = b.connect(d1, i2);
    let (_, i2_d2) = b.connect(d2, i2);
    let topo = b.build();
    let truth = i2_d2;

    // Five flows with the paper's drop counts.
    let mk = |src, dst, path: Vec<flock_topology::LinkId>, bad: u64, port: u16| MonitoredFlow {
        key: FlowKey::tcp(src, dst, port, 80),
        stats: FlowStats {
            packets: 10_000,
            retransmissions: bad,
            bytes: 15_000_000,
            rtt_sum_us: 0,
            rtt_count: 0,
            rtt_max_us: 0,
        },
        class: TrafficClass::Passive,
        true_path: path,
    };
    let flows = vec![
        mk(s1, d2, vec![s1_i1, i1_i2, i2_d2], 543, 1),
        mk(s1, d1, vec![s1_i1, i1_i2, i2_d1], 2, 2),
        mk(s2, d2, vec![s2_i1, i1_i2, i2_d2], 461, 3),
        mk(s2, d1, vec![s2_i1, i1_i2, i2_d1], 0, 4),
        mk(s1, d1, vec![s1_i1, i1_i2, i2_d1], 0, 5),
    ];
    let router = Router::new(&topo);
    let obs = assemble(
        &topo,
        &router,
        &flows,
        &[InputKind::Int],
        AnalysisMode::PerPacket,
    );

    let name_of = |c: &Component| -> String {
        match c {
            Component::Link(l) => {
                let names = [
                    (s1_i1, "(S1,I1)"),
                    (s2_i1, "(S2,I1)"),
                    (i1_i2, "(I1,I2)"),
                    (i2_d1, "(I2,D1)"),
                    (i2_d2, "(I2,D2)"),
                ];
                names
                    .iter()
                    .find(|(id, _)| id == l)
                    .map(|(_, n)| n.to_string())
                    .unwrap_or_else(|| format!("{l:?}"))
            }
            Component::Device(n) => {
                if *n == i1 {
                    "I1".into()
                } else if *n == i2 {
                    "I2".into()
                } else {
                    format!("{n:?}")
                }
            }
        }
    };

    let mut out = String::from("# Fig 6: worked example (reconstruction)\n\n");
    out.push_str(&format!(
        "True failed link: {}\n\n",
        name_of(&Component::Link(truth))
    ));
    let mut tbl = Table::new(&["scheme", "predicted failed links"]);

    let seven = ZeroZeroSeven::new(0.5).localize(&topo, &obs);
    let nb = NetBouncer::new(1.0, 0.005).localize(&topo, &obs);
    let flock = FlockGreedy::default().localize(&topo, &obs);
    for (name, r) in [("007", &seven), ("NetBouncer", &nb), ("Flock", &flock)] {
        let preds: Vec<String> = r.predicted.iter().map(&name_of).collect();
        tbl.row(vec![name.into(), preds.join(", ")]);
    }
    out.push_str(&tbl.render());
    out.push_str("\nFlock correctly isolates the failed downlink; 007's vote\nsplitting favors the shared (I1,I2) hop.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flock_alone_localizes_correctly() {
        let report = run();
        // Flock's row must contain exactly the true link.
        let flock_line = report
            .lines()
            .find(|l| l.starts_with("| Flock"))
            .expect("flock row");
        assert!(flock_line.contains("(I2,D2)"), "{flock_line}");
        assert!(!flock_line.contains("(I1,I2)"), "{flock_line}");
        // 007 mislocalizes onto the shared hop.
        let seven_line = report
            .lines()
            .find(|l| l.starts_with("| 007"))
            .expect("007 row");
        assert!(seven_line.contains("(I1,I2)"), "{seven_line}");
    }
}
