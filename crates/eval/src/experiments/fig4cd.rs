//! Fig. 4c/4d — inference runtime and scalability (§7.8).
//!
//! Fig. 4c compares Flock's inference against Sherlock across topology
//! sizes, plus the two single-optimization ablations: "greedy only"
//! (greedy search, per-candidate likelihood evaluation) and "JLE only"
//! (exhaustive K=2 search with the JLE Δ array, i.e. Sherlock+JLE /
//! Algorithm 3). Like the paper, the slow configurations are measured on
//! a bounded partial run and extrapolated ("whose runtime on a large
//! network was estimated to be 19 days, based on extrapolating a partial
//! run").
//!
//! Fig. 4d reports wall-clock inference time of every scheme×input cell
//! at the same sizes.

use crate::report::{dur, Table};
use crate::scenario::{silent_drop_trace, ExpOpts, TraceBundle, Workload};
use crate::schemes::defaults;
use flock_core::{Engine, FlockGreedy, HyperParams, SherlockFerret};
use flock_netsim::traffic::TrafficPattern;
use flock_telemetry::input::AnalysisMode;
use flock_telemetry::InputKind::{self, *};
use flock_topology::ClosParams;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sizes(opts: &ExpOpts) -> Vec<u32> {
    if opts.quick {
        vec![512, 1024]
    } else {
        vec![4096, 8192, 16384, 32768]
    }
}

fn scale_trace(servers: u32, opts: &ExpOpts) -> TraceBundle {
    let topo = Arc::new(flock_topology::clos::three_tier(ClosParams::with_servers(
        servers,
    )));
    let flows = servers as usize * opts.pick(4, 12);
    silent_drop_trace(
        &topo,
        3,
        &Workload::with_flows(flows, TrafficPattern::Uniform),
        servers as u64,
    )
}

/// Total hypotheses a K≤2 exhaustive search examines.
fn k2_hypotheses(n: u64) -> u64 {
    1 + n + n * (n - 1) / 2
}

/// Fig. 4c.
pub fn run_inference_scaling(opts: &ExpOpts) -> String {
    let mut out = String::from("# Fig 4c: inference runtime vs topology size (INT input)\n\n");
    let mut tbl = Table::new(&[
        "servers",
        "links",
        "flows",
        "Flock",
        "Flock (JLE only, est)",
        "Flock (greedy only, est)",
        "Sherlock (est)",
    ]);
    for servers in sizes(opts) {
        let trace = scale_trace(servers, opts);
        let obs = trace.assemble(&[Int], AnalysisMode::PerPacket);
        let n_links = trace.topo.link_count();
        let flows = obs.flow_count();

        // Flock proper: full measured run.
        let flock = FlockGreedy::default().localize_timed(&trace.topo, &obs);
        let (flock_time, iters) = flock;

        // Greedy-only: time a sample of per-candidate evaluations and
        // scale to n candidates × (iterations + 1) scans.
        let engine = Engine::new(&trace.topo, &obs, HyperParams::default());
        let n = engine.n_comps() as u64;
        let sample = 128usize.min(n as usize);
        let t0 = Instant::now();
        let mut sink = 0.0;
        for i in 0..sample {
            let c = (i as u64 * n / sample as u64) as u32;
            sink += engine.delta_single(c);
        }
        let per_candidate = t0.elapsed().as_secs_f64() / sample as f64;
        std::hint::black_box(sink);
        let greedy_only_est =
            Duration::from_secs_f64(per_candidate * n as f64 * (iters + 1) as f64);

        // JLE-only (Sherlock+JLE, K=2): bounded partial run, extrapolated.
        let jle_budget = if opts.quick { 200_000 } else { 400_000 };
        let mut sj = SherlockFerret::with_jle(HyperParams::default(), 2);
        sj.hypothesis_budget = Some(jle_budget);
        let r = flock_core::Localizer::localize(&sj, &trace.topo, &obs);
        let jle_only_est = extrapolate(r.runtime, r.hypotheses_scanned, k2_hypotheses(n));

        // Plain Sherlock: smaller budget (each hypothesis needs a state
        // flip), extrapolated.
        let sh_budget = if opts.quick { 3_000 } else { 10_000 };
        let mut sp = SherlockFerret::new(HyperParams::default(), 2);
        sp.hypothesis_budget = Some(sh_budget);
        let r = flock_core::Localizer::localize(&sp, &trace.topo, &obs);
        let sherlock_est = extrapolate(r.runtime, r.hypotheses_scanned, k2_hypotheses(n));

        tbl.row(vec![
            servers.to_string(),
            n_links.to_string(),
            flows.to_string(),
            dur(flock_time),
            dur(jle_only_est),
            dur(greedy_only_est),
            dur(sherlock_est),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str("\n(est) = extrapolated from a bounded partial run, as in §7.8.\n");
    out
}

fn extrapolate(measured: Duration, scanned: u64, total: u64) -> Duration {
    if scanned == 0 {
        return measured;
    }
    Duration::from_secs_f64(measured.as_secs_f64() * total as f64 / scanned as f64)
}

trait LocalizeTimed {
    /// Run and return (runtime, greedy iterations).
    fn localize_timed(
        &self,
        topo: &flock_topology::Topology,
        obs: &flock_telemetry::ObservationSet,
    ) -> (Duration, u64);
}

impl LocalizeTimed for FlockGreedy {
    fn localize_timed(
        &self,
        topo: &flock_topology::Topology,
        obs: &flock_telemetry::ObservationSet,
    ) -> (Duration, u64) {
        let r = flock_core::Localizer::localize(self, topo, obs);
        (r.runtime, r.iterations)
    }
}

/// Fig. 4d.
pub fn run_scheme_runtime(opts: &ExpOpts) -> String {
    let mut out = String::from("# Fig 4d: scheme runtime vs topology size\n\n");
    let cells: Vec<(&str, Vec<InputKind>)> = vec![
        ("NetBouncer (INT)", vec![Int]),
        ("Flock (A1+A2+P)", vec![A1, A2, P]),
        ("Flock (INT)", vec![Int]),
        ("NetBouncer (A1)", vec![A1]),
        ("Flock (A1)", vec![A1]),
        ("Flock (A2)", vec![A2]),
        ("007 (A2)", vec![A2]),
    ];
    let mut header = vec!["servers".to_string(), "links".to_string()];
    header.extend(cells.iter().map(|(l, _)| l.to_string()));
    let hdr_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut tbl = Table::new(&hdr_refs);

    for servers in sizes(opts) {
        let trace = scale_trace(servers, opts);
        let mut row = vec![servers.to_string(), trace.topo.link_count().to_string()];
        for (label, kinds) in &cells {
            let obs = trace.assemble(kinds, AnalysisMode::PerPacket);
            let scheme = if label.starts_with("Flock") {
                defaults::flock(label, kinds)
            } else if label.starts_with("NetBouncer") {
                defaults::netbouncer(label, kinds)
            } else {
                defaults::seven(label, kinds)
            };
            let localizer = scheme.config.build();
            let r = localizer.localize(&trace.topo, &obs);
            row.push(dur(r.runtime));
        }
        tbl.row(row);
    }
    out.push_str(&tbl.render());
    out
}
