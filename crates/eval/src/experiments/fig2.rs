//! Fig. 2 — accuracy on silent packet drops (§7.1) and device failures
//! (§7.2): the headline accuracy comparison of Flock vs. NetBouncer vs.
//! 007 across telemetry kinds.
//!
//! For each scheme×input cell the harness (a) calibrates parameters on a
//! training set of silent-drop traces (§5.2), (b) reports the chosen
//! point's precision/recall/Fscore on a disjoint test set, and (c) prints
//! the Pareto tradeoff curve over the parameter grid — the curves of
//! Figs. 2a/2b.

use crate::report::{f3, Table};
use crate::scenario::{
    device_failure_trace, silent_drop_trace, sim_topology, ExpOpts, TraceBundle, Workload,
};
use crate::schemes::defaults;
use flock_core::fscore;
use flock_netsim::traffic::TrafficPattern;

/// Half the traces use uniform traffic, half the paper's skewed pattern
/// (§6.3), with 1–8 failed links cycling across traces (§7.1).
pub fn silent_test_set(
    topo: &std::sync::Arc<flock_topology::Topology>,
    n_traces: usize,
    flows: usize,
    seed0: u64,
) -> Vec<TraceBundle> {
    (0..n_traces)
        .map(|i| {
            let pattern = if i % 2 == 0 {
                TrafficPattern::Uniform
            } else {
                TrafficPattern::paper_skewed()
            };
            let n_failed = 1 + (i % 8);
            silent_drop_trace(
                topo,
                n_failed,
                &Workload::with_flows(flows, pattern),
                seed0 + i as u64,
            )
        })
        .collect()
}

/// Fig. 2a (100K flows) / Fig. 2b (400K flows).
pub fn run_silent_drops(opts: &ExpOpts, big: bool) -> String {
    let topo = sim_topology(opts);
    let flows = match (opts.quick, big) {
        (true, false) => 5_000,
        (true, true) => 20_000,
        (false, false) => 100_000,
        (false, true) => 400_000,
    };
    let n_test = opts.pick(8, 24);
    let n_train = opts.pick(4, 8);
    let n_curve = opts.pick(4, 8);

    let test = silent_test_set(&topo, n_test, flows, 1000);
    let train = silent_test_set(&topo, n_train, flows, 9000);

    let fig = if big { "Fig 2b" } else { "Fig 2a" };
    let mut out =
        format!("# {fig}: silent packet drops, {flows} passive flows, {n_test} test traces\n\n");

    let mut chosen_tbl = Table::new(&["scheme", "precision", "recall", "fscore", "params"]);
    let mut curves = String::new();
    for scheme in defaults::figure2_panel() {
        let calibrated = scheme.calibrated(&train, opts.quick, opts.threads);
        let pr = calibrated.evaluate(&test);
        chosen_tbl.row(vec![
            calibrated.label.clone(),
            f3(pr.precision),
            f3(pr.recall),
            f3(fscore(pr.precision, pr.recall)),
            calibrated.config.describe(),
        ]);
        // Tradeoff curve on a test subset (Fig. 2's curves).
        let curve = scheme.tradeoff_curve(&test[..n_curve.min(test.len())], true, opts.threads);
        curves.push_str(&format!("\n## Tradeoff curve: {}\n", scheme.label));
        let mut t = Table::new(&["precision", "recall"]);
        for (_, m) in &curve {
            t.row(vec![f3(m.precision), f3(m.recall)]);
        }
        curves.push_str(&t.render());
    }
    out.push_str(&chosen_tbl.render());
    out.push_str(&curves);
    out
}

/// Fig. 2c — device failures: up to 2 devices, 25–100% of their links.
pub fn run_device_failures(opts: &ExpOpts) -> String {
    let topo = sim_topology(opts);
    let flows = opts.pick(10_000, 100_000);
    let n_test = opts.pick(8, 24);
    let n_train = opts.pick(4, 8);

    let test: Vec<TraceBundle> = (0..n_test)
        .map(|i| {
            let frac = [0.25, 0.5, 0.75, 1.0][i % 4];
            let n_dev = 1 + (i % 2);
            let pattern = if i % 2 == 0 {
                TrafficPattern::Uniform
            } else {
                TrafficPattern::paper_skewed()
            };
            device_failure_trace(
                &topo,
                n_dev,
                frac,
                &Workload::with_flows(flows, pattern),
                2000 + i as u64,
            )
        })
        .collect();
    // Per §7.2 the link-failure parameters are reused; only NetBouncer's
    // device threshold is calibrated. We calibrate every scheme on the
    // silent-drop training set for parity with fig2a, enabling
    // NetBouncer's device grid.
    let train = silent_test_set(&topo, n_train, flows, 9500);

    let mut out = format!("# Fig 2c: device failures, {n_test} traces\n\n");
    let mut tbl = Table::new(&["scheme", "precision", "recall", "fscore", "params"]);
    for mut scheme in defaults::figure2_panel() {
        if let flock_calibrate::SchemeConfig::NetBouncer {
            device_flow_threshold,
            ..
        } = &mut scheme.config
        {
            *device_flow_threshold = 20; // enable the device grid
        }
        let calibrated = scheme.calibrated(&train, opts.quick, opts.threads);
        let pr = calibrated.evaluate(&test);
        tbl.row(vec![
            calibrated.label.clone(),
            f3(pr.precision),
            f3(pr.recall),
            f3(fscore(pr.precision, pr.recall)),
            calibrated.config.describe(),
        ]);
    }
    out.push_str(&tbl.render());
    out
}
