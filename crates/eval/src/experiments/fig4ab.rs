//! Fig. 4a/4b — hardware-testbed fault scenarios, reproduced on the
//! packet-level DES: a misconfigured WRED queue (per-packet analysis) and
//! a link flap (per-flow RTT analysis, threshold 10 ms). A1 schemes are
//! omitted: the testbed switches lack IP-in-IP probing support (§6.3).
//!
//! Both default ("same parameters as §7.1") and testbed-recalibrated
//! results are reported, matching the solid vs. hollow markers.

use crate::report::{f3, Table};
use crate::scenario::{
    testbed_flap_trace, testbed_topology, testbed_wred_trace, ExpOpts, TraceBundle,
};
use crate::schemes::{defaults, SchemeUnderTest};
use flock_core::fscore;
use flock_telemetry::input::AnalysisMode;
use flock_telemetry::InputKind::*;

fn testbed_panel() -> Vec<SchemeUnderTest> {
    vec![
        defaults::flock("Flock (INT)", &[Int]),
        defaults::flock("Flock (A2+P)", &[A2, P]),
        defaults::flock("Flock (A2)", &[A2]),
        defaults::netbouncer("NetBouncer (INT)", &[Int]),
        defaults::seven("007 (A2)", &[A2]),
    ]
}

/// Fig. 4a: misconfigured WRED queue.
pub fn run_wred(opts: &ExpOpts) -> String {
    let topo = testbed_topology();
    let flows = opts.pick(150, 600);
    let n_test = opts.pick(4, 12);
    let n_train = opts.pick(3, 6);

    let test: Vec<TraceBundle> = (0..n_test)
        .map(|i| testbed_wred_trace(&topo, flows, 100 + i as u64))
        .collect();
    let train: Vec<TraceBundle> = (0..n_train)
        .map(|i| testbed_wred_trace(&topo, flows, 900 + i as u64))
        .collect();

    let mut out = format!("# Fig 4a: misconfigured WRED queue on the testbed, {n_test} traces\n\n");
    let mut tbl = Table::new(&["scheme", "calibration", "precision", "recall", "fscore"]);
    for scheme in testbed_panel() {
        // Default parameters (solid markers).
        let pr = scheme.evaluate(&test);
        tbl.row(vec![
            scheme.label.clone(),
            "default".into(),
            f3(pr.precision),
            f3(pr.recall),
            f3(fscore(pr.precision, pr.recall)),
        ]);
        // Recalibrated on testbed traces (hollow markers).
        let recal = scheme.calibrated(&train, opts.quick, opts.threads);
        let pr = recal.evaluate(&test);
        tbl.row(vec![
            scheme.label.clone(),
            "testbed-recalibrated".into(),
            f3(pr.precision),
            f3(pr.recall),
            f3(fscore(pr.precision, pr.recall)),
        ]);
    }
    out.push_str(&tbl.render());
    out
}

/// Fig. 4b: link flap, per-flow analysis (flow bad iff RTT > 10 ms).
pub fn run_flap(opts: &ExpOpts) -> String {
    let topo = testbed_topology();
    let flows = opts.pick(120, 500);
    let n_test = opts.pick(4, 12);
    let n_train = opts.pick(3, 6);
    let mode = AnalysisMode::PerFlow {
        rtt_threshold_us: 10_000,
    };

    let test: Vec<TraceBundle> = (0..n_test)
        .map(|i| testbed_flap_trace(&topo, flows, 300 + i as u64))
        .collect();
    let train: Vec<TraceBundle> = (0..n_train)
        .map(|i| testbed_flap_trace(&topo, flows, 1300 + i as u64))
        .collect();

    let mut out = format!(
        "# Fig 4b: link flap on the testbed (per-flow analysis, RTT > 10 ms), {n_test} traces\n\n"
    );
    let mut tbl = Table::new(&["scheme", "precision", "recall", "fscore", "params"]);
    for mut scheme in testbed_panel() {
        scheme.mode = mode;
        // The per-flow analysis requires recalibration (§7.5).
        let recal = scheme.calibrated(&train, opts.quick, opts.threads);
        let pr = recal.evaluate(&test);
        tbl.row(vec![
            recal.label.clone(),
            f3(pr.precision),
            f3(pr.recall),
            f3(fscore(pr.precision, pr.recall)),
            recal.config.describe(),
        ]);
    }
    out.push_str(&tbl.render());
    out
}
