//! Table 1 — parameter-calibration robustness (§7.7).
//!
//! Each scheme is calibrated on one environment and tested on another
//! ("D" rows), against calibrating on the test environment itself ("S"
//! rows). Four environment shifts, as in the paper:
//!
//! * **different topology** — calibrated on the simulated Clos with
//!   random silent drops, tested on DES misconfigured-queue traces in the
//!   20× smaller testbed fabric;
//! * **different failure rate** — tested on traces whose failed links
//!   drop at 2–5% instead of the training 0.1–1%;
//! * **different monitoring interval** — tested on traces with a quarter
//!   of the flows (shorter monitoring);
//! * **different failure scenario** — tested on device failures.

use crate::report::{f3, Table};
use crate::scenario::{
    device_failure_trace, run_scenario, silent_drop_trace, sim_topology, testbed_topology,
    testbed_wred_trace, ExpOpts, TraceBundle, Workload,
};
use crate::schemes::{defaults, SchemeUnderTest};
use flock_core::fscore;
use flock_netsim::failure;
use flock_netsim::traffic::TrafficPattern;
use flock_telemetry::InputKind::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn panel() -> Vec<SchemeUnderTest> {
    vec![
        defaults::flock("Flock (A1+A2+P)", &[A1, A2, P]),
        defaults::flock("Flock (A2)", &[A2]),
        defaults::flock("Flock (INT)", &[Int]),
        defaults::seven("007 (A2)", &[A2]),
        defaults::netbouncer("NetBouncer (INT)", &[Int]),
    ]
}

struct Environment {
    name: &'static str,
    test: Vec<TraceBundle>,
    /// Same-distribution training set for the "S" rows.
    train_same: Vec<TraceBundle>,
}

fn environments(opts: &ExpOpts) -> Vec<Environment> {
    let topo = sim_topology(opts);
    let flows = opts.pick(6_000, 60_000);
    let n_test = opts.pick(4, 10);
    let n_train = opts.pick(3, 6);
    let wl = |f| Workload::with_flows(f, TrafficPattern::Uniform);

    // (a) different topology: DES testbed, WRED misconfiguration.
    let tb = testbed_topology();
    let env_topology = Environment {
        name: "different topology",
        test: (0..n_test)
            .map(|i| testbed_wred_trace(&tb, opts.pick(150, 500), 20_000 + i as u64))
            .collect(),
        train_same: (0..n_train)
            .map(|i| testbed_wred_trace(&tb, opts.pick(150, 500), 21_000 + i as u64))
            .collect(),
    };

    // (b) different failure rate: 2–5% drops instead of 0.1–1%.
    let hot = |seed0: u64, n: usize| -> Vec<TraceBundle> {
        (0..n)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seed0 + i as u64);
                let sc = failure::silent_link_drops(
                    &topo,
                    1 + i % 4,
                    (0.02, 0.05),
                    failure::DEFAULT_NOISE_MAX,
                    &mut rng,
                );
                run_scenario(&topo, &sc, &wl(flows), seed0 + i as u64)
            })
            .collect()
    };
    let env_rate = Environment {
        name: "different failure rate",
        test: hot(22_000, n_test),
        train_same: hot(23_000, n_train),
    };

    // (c) different monitoring interval: a quarter of the flows.
    let env_interval = Environment {
        name: "different monitoring interval",
        test: (0..n_test)
            .map(|i| silent_drop_trace(&topo, 1 + i % 4, &wl(flows / 4), 24_000 + i as u64))
            .collect(),
        train_same: (0..n_train)
            .map(|i| silent_drop_trace(&topo, 1 + i % 4, &wl(flows / 4), 25_000 + i as u64))
            .collect(),
    };

    // (d) different failure scenario: device failures.
    let env_scenario = Environment {
        name: "different failure scenario",
        test: (0..n_test)
            .map(|i| {
                device_failure_trace(
                    &topo,
                    1 + i % 2,
                    [0.25, 0.5, 0.75, 1.0][i % 4],
                    &wl(flows),
                    26_000 + i as u64,
                )
            })
            .collect(),
        train_same: (0..n_train)
            .map(|i| {
                device_failure_trace(
                    &topo,
                    1 + i % 2,
                    [0.5, 1.0][i % 2],
                    &wl(flows),
                    27_000 + i as u64,
                )
            })
            .collect(),
    };

    vec![env_topology, env_rate, env_interval, env_scenario]
}

/// Run the robustness table.
pub fn run(opts: &ExpOpts) -> String {
    let topo = sim_topology(opts);
    let flows = opts.pick(6_000, 60_000);
    let n_train = opts.pick(3, 6);
    // The base training environment: simulated random silent drops (§5.2).
    let base_train: Vec<TraceBundle> = (0..n_train)
        .map(|i| {
            silent_drop_trace(
                &topo,
                1 + i % 4,
                &Workload::with_flows(flows, TrafficPattern::Uniform),
                28_000 + i as u64,
            )
        })
        .collect();

    let envs = environments(opts);
    let mut out = String::from("# Table 1: parameter-calibration robustness\n\n");
    let mut header = vec!["scheme".to_string(), "calibrated".to_string()];
    for e in &envs {
        header.push(format!("{} p", e.name));
        header.push(format!("{} r", e.name));
    }
    header.push("aggregate fscore".to_string());
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut tbl = Table::new(&hdr);

    for scheme in panel() {
        // D: calibrated on the base environment.
        let d_cal = scheme.calibrated(&base_train, opts.quick, opts.threads);
        let mut d_row = vec![scheme.label.clone(), "D".to_string()];
        let mut d_f = 0.0;
        // S: calibrated per environment.
        let mut s_row = vec![scheme.label.clone(), "S".to_string()];
        let mut s_f = 0.0;
        for env in &envs {
            let pr = d_cal.evaluate(&env.test);
            d_row.push(f3(pr.precision));
            d_row.push(f3(pr.recall));
            d_f += fscore(pr.precision, pr.recall);

            let s_cal = scheme.calibrated(&env.train_same, opts.quick, opts.threads);
            let pr = s_cal.evaluate(&env.test);
            s_row.push(f3(pr.precision));
            s_row.push(f3(pr.recall));
            s_f += fscore(pr.precision, pr.recall);
        }
        d_row.push(f3(d_f / envs.len() as f64));
        s_row.push(f3(s_f / envs.len() as f64));
        tbl.row(d_row);
        tbl.row(s_row);
    }
    out.push_str(&tbl.render());
    out
}
