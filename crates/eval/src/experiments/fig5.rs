//! Fig. 5 — irregular Clos topologies (§7.6).
//!
//! 5a/5b: precision and recall as links are omitted from the fat tree
//! (0–20%), including the passive-only Flock (P) series whose accuracy
//! *improves* with irregularity (broken ECMP symmetry shrinks link
//! equivalence classes).
//!
//! 5c: the fully-passive hard scenario — a single failed link inside a
//! near-symmetric topology (< 5% omitted links) — against the theoretical
//! maximum precision derived from the link equivalence classes.

use crate::report::{f3, Table};
use crate::scenario::{silent_drop_trace, sim_topology, ExpOpts, TraceBundle, Workload};
use crate::schemes::{defaults, SchemeUnderTest};
use flock_netsim::traffic::TrafficPattern;
use flock_telemetry::InputKind::*;
use flock_topology::{irregular, EquivalenceClasses, NodeRole, Router, Topology};
use std::sync::Arc;

fn irregular_panel() -> Vec<SchemeUnderTest> {
    vec![
        defaults::flock("Flock (INT)", &[Int]),
        defaults::flock("Flock (A2+P)", &[A2, P]),
        defaults::flock("Flock (A2)", &[A2]),
        defaults::flock("Flock (P)", &[P]),
        defaults::netbouncer("NetBouncer (INT)", &[Int]),
        defaults::seven("007 (A2)", &[A2]),
    ]
}

/// Derive an irregular topology, preferring a fully-routable degradation
/// but falling back to a best-effort one (the traffic generator skips
/// unroutable pairs, mirroring a real fabric where some rack pairs lose
/// connectivity during heavy degradation).
fn degrade(base: &Topology, frac: f64, seed: u64) -> Topology {
    use rand::SeedableRng;
    match irregular::omit_links_routable(base, frac, seed, 16) {
        Some((t, _)) => t,
        None => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            irregular::omit_links(base, frac, &mut rng).0
        }
    }
}

/// Fig. 5a/5b.
pub fn run_irregular(opts: &ExpOpts) -> String {
    let base = sim_topology(opts);
    let fractions = [0.0, 0.05, 0.10, 0.15, 0.20];
    let flows = opts.pick(8_000, 60_000);
    let n_test = opts.pick(4, 12);
    let n_train = opts.pick(3, 6);

    let mut out = String::from("# Fig 5a/5b: irregular Clos (links omitted)\n");
    let labels: Vec<String> = irregular_panel().iter().map(|s| s.label.clone()).collect();
    let mut header = vec!["% omitted".to_string()];
    header.extend(labels.clone());
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut ptbl = Table::new(&hdr);
    let mut rtbl = Table::new(&hdr);

    for (fi, frac) in fractions.iter().enumerate() {
        let topo: Arc<Topology> = if *frac == 0.0 {
            Arc::clone(&base)
        } else {
            Arc::new(degrade(&base, *frac, 50 + fi as u64))
        };
        let mk = |seed0: u64, n: usize| -> Vec<TraceBundle> {
            (0..n)
                .map(|i| {
                    silent_drop_trace(
                        &topo,
                        1 + i % 3,
                        &Workload::with_flows(flows, TrafficPattern::Uniform),
                        seed0 + i as u64,
                    )
                })
                .collect()
        };
        let test = mk(4000 + 100 * fi as u64, n_test);
        let train = mk(8000 + 100 * fi as u64, n_train);
        let mut prow = vec![format!("{:.0}", frac * 100.0)];
        let mut rrow = prow.clone();
        // Per §7.6 parameters are recalibrated per topology (it is known
        // in advance).
        for scheme in irregular_panel() {
            let cal = scheme.calibrated(&train, opts.quick, opts.threads);
            let pr = cal.evaluate(&test);
            prow.push(f3(pr.precision));
            rrow.push(f3(pr.recall));
        }
        ptbl.row(prow);
        rtbl.row(rrow);
    }
    out.push_str("\n## Precision (Fig 5a)\n");
    out.push_str(&ptbl.render());
    out.push_str("\n## Recall (Fig 5b)\n");
    out.push_str(&rtbl.render());
    out
}

/// Fig. 5c: Flock (P) in the hard near-symmetric scenario.
pub fn run_passive_hard(opts: &ExpOpts) -> String {
    let base = sim_topology(opts);
    let fractions = [0.01, 0.02, 0.03, 0.04];
    let flows = opts.pick(10_000, 80_000);
    let n_test = opts.pick(4, 12);

    let mut out = String::from(
        "# Fig 5c: Flock (P) on a hard passive-only scenario (single failed link)\n\n",
    );
    let mut tbl = Table::new(&[
        "% omitted",
        "precision",
        "recall",
        "theoretical max precision",
    ]);
    for (fi, frac) in fractions.iter().enumerate() {
        let topo = Arc::new(degrade(&base, *frac, 70 + fi as u64));
        // Theoretical max precision from the equivalence classes of the
        // leaf-pair path sets (the passive observables).
        let router = Router::new(&topo);
        let leaves: Vec<_> = topo
            .switches()
            .iter()
            .copied()
            .filter(|s| topo.node(*s).role == NodeRole::Leaf)
            .collect();
        let mut sets = Vec::new();
        for a in &leaves {
            for b in &leaves {
                if a != b {
                    sets.push(router.paths(*a, *b).to_vec());
                }
            }
        }
        let eq = EquivalenceClasses::compute(topo.link_count(), sets.iter().map(|s| s.iter()));
        let max_p = eq.max_precision(&topo.fabric_links());

        let scheme = defaults::flock("Flock (P)", &[P]);
        let traces: Vec<TraceBundle> = (0..n_test)
            .map(|i| {
                silent_drop_trace(
                    &topo,
                    1,
                    &Workload::with_flows(flows, TrafficPattern::Uniform),
                    6000 + 100 * fi as u64 + i as u64,
                )
            })
            .collect();
        let pr = scheme.evaluate(&traces);
        tbl.row(vec![
            format!("{:.0}", frac * 100.0),
            f3(pr.precision),
            f3(pr.recall),
            f3(max_p),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str("\n40% precision means the faulty link was narrowed to ~2-3 candidates (§7.6).\n");
    out
}
