//! `flock-exp` — regenerate the paper's figures and tables.
//!
//! ```text
//! flock-exp <experiment>... [--quick] [--threads N] [--out DIR]
//! flock-exp all [--quick]
//! flock-exp list
//! ```

use flock_eval::experiments;
use flock_eval::scenario::ExpOpts;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExpOpts::default();
    let mut names: Vec<String> = Vec::new();
    let mut out_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                i += 1;
                opts.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--out" => {
                i += 1;
                out_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a directory")),
                );
            }
            "list" => {
                println!("available experiments: {}", experiments::ALL.join(", "));
                return;
            }
            "all" => names.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => names.push(other.to_string()),
        }
        i += 1;
    }
    if names.is_empty() {
        die("usage: flock-exp <experiment>|all [--quick] [--threads N] [--out DIR]; `flock-exp list` shows ids");
    }
    names.dedup();

    for name in &names {
        eprintln!(
            "== running {name}{} ==",
            if opts.quick { " (quick)" } else { "" }
        );
        let started = std::time::Instant::now();
        match experiments::run(name, &opts) {
            Ok(report) => {
                println!("{report}");
                eprintln!("== {name} done in {:.1?} ==\n", started.elapsed());
                if let Some(dir) = &out_dir {
                    std::fs::create_dir_all(dir).expect("create output dir");
                    let path = format!("{dir}/{name}.md");
                    let mut f = std::fs::File::create(&path).expect("create report file");
                    f.write_all(report.as_bytes()).expect("write report");
                }
            }
            Err(e) => die(&e),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("flock-exp: {msg}");
    std::process::exit(2);
}
