//! Inference input assembly (§6.2).
//!
//! Every localization scheme in the suite consumes the same structure, an
//! [`ObservationSet`]: a list of aggregated flow observations, each with a
//! number of packets sent, a number of "bad" packets, and a *path set* —
//! a single pinned path for known-path telemetry (A1 probes, A2 traced
//! flows, INT) or the full ECMP set for passive flows.
//!
//! Paths are split into a per-flow *prefix* (the host attachment links,
//! shared by every member of the flow's path set) and an interned *fabric
//! path set* (switch-to-switch). The split keeps memory linear in the
//! number of distinct ToR pairs rather than host pairs, which is what
//! makes the 9.5M-flow headline experiment feasible; the inference engine
//! exploits the same split to share path state across flows.
//!
//! Observations that are fully identical — same prefix, same path set,
//! same `(sent, bad)` — are merged with a `weight` multiplier. The
//! per-flow likelihood of Eq. 1 depends only on these fields, so the merge
//! is exact. Active-probe inputs compress dramatically (most probes lose
//! zero packets).

use crate::flow::{MonitoredFlow, TrafficClass};
use flock_topology::{FxHashMap, LinkId, NodeRole, Router, Topology};
use serde::{Deserialize, Serialize};

/// Content hash used by the arena's hashed-over-storage dedup indexes.
/// A weak hash only costs an extra content compare on collision — the
/// indexes map hashes to candidate-id lists, never trust the hash alone.
fn content_hash<T: std::hash::Hash>(xs: &[T]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = flock_topology::fasthash::FxHasher::default();
    xs.hash(&mut h);
    h.finish()
}

/// Index of an interned fabric path in a [`PathArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathId(pub u32);

/// Index of an interned fabric path *set* in a [`PathArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathSetId(pub u32);

/// Interning arena for fabric paths and path sets.
///
/// The dedup indexes hash *over the stored content* — they map a content
/// hash to the candidate ids whose stored path/set must be compared — so
/// interning keeps exactly one copy of every link/path sequence. The
/// naive `HashMap<Vec<_>, id>` alternative clones each sequence into its
/// key: at millions of interned sets that doubles the arena's memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathArena {
    paths: Vec<Vec<LinkId>>,
    sets: Vec<Vec<PathId>>,
    #[serde(skip)]
    path_lookup: FxHashMap<u64, Vec<PathId>>,
    #[serde(skip)]
    set_lookup: FxHashMap<u64, Vec<PathSetId>>,
    /// Process-unique lineage token, stamped at creation and preserved by
    /// `Clone` (a clone shares content, so ids interned against either
    /// copy resolve identically). Lets holders of interned ids
    /// ([`Assembler`]) verify an arena is the one they interned against.
    #[serde(skip)]
    lineage: u64,
}

impl Default for PathArena {
    fn default() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_LINEAGE: AtomicU64 = AtomicU64::new(1);
        PathArena {
            paths: Vec::new(),
            sets: Vec::new(),
            path_lookup: FxHashMap::default(),
            set_lookup: FxHashMap::default(),
            lineage: NEXT_LINEAGE.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl PathArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The arena's process-unique lineage token.
    pub fn lineage(&self) -> u64 {
        self.lineage
    }

    /// Intern a fabric path (a link sequence; may be empty for same-ToR
    /// traffic).
    pub fn intern_path(&mut self, links: &[LinkId]) -> PathId {
        let h = content_hash(links);
        if let Some(cands) = self.path_lookup.get(&h) {
            for &id in cands {
                if self.paths[id.0 as usize] == links {
                    return id;
                }
            }
        }
        let id = PathId(self.paths.len() as u32);
        self.paths.push(links.to_vec());
        self.path_lookup.entry(h).or_default().push(id);
        id
    }

    /// Intern a path *without* dedup lookup. ECMP fabric paths are unique
    /// to their ToR pair (every member contains both endpoint ToRs), so
    /// the assembler skips the lookup map for them — at the headline scale
    /// (tens of millions of paths) the map's key copies would dominate
    /// memory.
    pub fn intern_path_nodedup(&mut self, links: &[LinkId]) -> PathId {
        let id = PathId(self.paths.len() as u32);
        self.paths.push(links.to_vec());
        id
    }

    /// Intern a set of already-interned paths. Order-insensitive: the set
    /// is canonicalized by sorting. The canonical vector is stored once —
    /// the dedup index holds only a content hash, not a key copy.
    pub fn intern_set(&mut self, mut paths: Vec<PathId>) -> PathSetId {
        paths.sort_unstable_by_key(|p| p.0);
        paths.dedup();
        let h = content_hash(&paths);
        if let Some(cands) = self.set_lookup.get(&h) {
            for &id in cands {
                if self.sets[id.0 as usize] == paths {
                    return id;
                }
            }
        }
        let id = PathSetId(self.sets.len() as u32);
        self.sets.push(paths);
        self.set_lookup.entry(h).or_default().push(id);
        id
    }

    /// Intern a singleton set for a known path.
    pub fn intern_single(&mut self, links: &[LinkId]) -> PathSetId {
        let p = self.intern_path(links);
        self.intern_set(vec![p])
    }

    /// The links of an interned path.
    #[inline]
    pub fn path(&self, id: PathId) -> &[LinkId] {
        &self.paths[id.0 as usize]
    }

    /// The member paths of an interned set.
    #[inline]
    pub fn set(&self, id: PathSetId) -> &[PathId] {
        &self.sets[id.0 as usize]
    }

    /// Number of interned paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Number of interned sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Capture everything interned since the `(from_paths, from_sets)`
    /// watermark as a replayable [`ArenaDelta`].
    ///
    /// The delta records, per new path, whether the path was *indexed*
    /// (interned through the dedup lookup) or appended via
    /// [`intern_path_nodedup`](Self::intern_path_nodedup): a twin arena
    /// replaying the delta must mirror that choice exactly, or its future
    /// dedup decisions — and therefore the ids it hands out — diverge
    /// from the original's.
    pub fn delta_since(&self, from_paths: usize, from_sets: usize) -> ArenaDelta {
        let paths = self.paths[from_paths..]
            .iter()
            .enumerate()
            .map(|(i, links)| {
                let id = PathId((from_paths + i) as u32);
                let indexed = self
                    .path_lookup
                    .get(&content_hash(links))
                    .is_some_and(|cands| cands.contains(&id));
                (links.clone(), indexed)
            })
            .collect();
        ArenaDelta {
            from_paths,
            from_sets,
            lineage: self.lineage,
            paths,
            sets: self.sets[from_sets..].to_vec(),
        }
    }

    /// Replay a delta captured from this arena's twin (same lineage, via
    /// `Clone`), appending exactly the paths and sets the twin interned —
    /// index membership included — so both copies keep resolving every
    /// id identically and making identical future dedup decisions.
    ///
    /// Fails without modifying the arena if the delta is from a different
    /// lineage or this arena is not exactly at the delta's watermark
    /// (replaying out of order would assign different ids).
    pub fn apply_delta(&mut self, delta: &ArenaDelta) -> Result<(), DeltaError> {
        if delta.lineage != self.lineage {
            return Err(DeltaError::LineageMismatch {
                expected: delta.lineage,
                actual: self.lineage,
            });
        }
        if (self.paths.len(), self.sets.len()) != (delta.from_paths, delta.from_sets) {
            return Err(DeltaError::WatermarkMismatch {
                expected: (delta.from_paths, delta.from_sets),
                actual: (self.paths.len(), self.sets.len()),
            });
        }
        for (links, indexed) in &delta.paths {
            let id = PathId(self.paths.len() as u32);
            if *indexed {
                self.path_lookup
                    .entry(content_hash(links))
                    .or_default()
                    .push(id);
            }
            self.paths.push(links.clone());
        }
        for members in &delta.sets {
            let id = PathSetId(self.sets.len() as u32);
            self.set_lookup
                .entry(content_hash(members))
                .or_default()
                .push(id);
            self.sets.push(members.clone());
        }
        Ok(())
    }
}

/// Everything a [`PathArena`] interned past a watermark, in intern order,
/// captured by [`PathArena::delta_since`] and replayed onto a same-lineage
/// twin by [`PathArena::apply_delta`].
///
/// This is the handoff mechanism behind double-buffered assembly: while
/// one arena copy is out with an epoch's [`ObservationSet`], the
/// assembler extends the other, and the delta catches the returning copy
/// up so the two stay content- and index-identical.
#[derive(Debug, Clone)]
pub struct ArenaDelta {
    from_paths: usize,
    from_sets: usize,
    lineage: u64,
    /// New paths with their dedup-index membership (nodedup'd ECMP
    /// fabric paths are unindexed and must stay so in the twin).
    paths: Vec<(Vec<LinkId>, bool)>,
    sets: Vec<Vec<PathId>>,
}

impl ArenaDelta {
    /// The `(paths, sets)` watermark the delta starts from.
    pub fn from_watermarks(&self) -> (usize, usize) {
        (self.from_paths, self.from_sets)
    }

    /// Lineage of the arena the delta was captured from.
    pub fn lineage(&self) -> u64 {
        self.lineage
    }

    /// Whether the delta carries no growth.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty() && self.sets.is_empty()
    }
}

/// Why [`PathArena::apply_delta`] refused a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta was captured from an arena of a different lineage.
    LineageMismatch {
        /// Lineage the delta was captured from.
        expected: u64,
        /// Lineage of the arena it was applied to.
        actual: u64,
    },
    /// The arena is not at the delta's starting watermark.
    WatermarkMismatch {
        /// `(paths, sets)` watermark the delta starts from.
        expected: (usize, usize),
        /// The arena's actual `(paths, sets)` counts.
        actual: (usize, usize),
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::LineageMismatch { expected, actual } => write!(
                f,
                "arena delta lineage {expected} does not match arena lineage {actual}"
            ),
            DeltaError::WatermarkMismatch { expected, actual } => write!(
                f,
                "arena delta expects watermark {expected:?}, arena is at {actual:?}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// How flow metrics are turned into the model's `(sent, bad)` counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AnalysisMode {
    /// Per-packet analysis (§3.2): `sent` = packets, `bad` =
    /// retransmissions (proxy for lost/corrupted packets).
    PerPacket,
    /// Per-flow analysis (§3.2, used for latency faults like link flaps,
    /// §7.5): `sent` = 1, `bad` = 1 iff the flow's max RTT exceeds the
    /// threshold.
    PerFlow {
        /// RTT threshold in microseconds above which the flow is "bad".
        rtt_threshold_us: u32,
    },
}

/// How near-identical observations coalesce into weighted super-flows.
///
/// [`Exact`](CoalesceMode::Exact) merges only observations with equal
/// `(path set, sent, bad)` evidence keys — lossless, because the flow
/// likelihood is linear in the aggregation weight. Under the paper's
/// heavy-tailed (Pareto, shape ≈ 1) flow sizes almost no two flows share
/// an exact `(sent, bad)` pair, so [`Approx`](CoalesceMode::Approx)
/// additionally buckets `sent` and `bad` into log-spaced bins of relative
/// width `eps` (see [`FlowObs::bucket_key`]): within one `sent` bucket,
/// log-spaced `bad` buckets *are* log-spaced loss-rate buckets. The
/// inference engine measures the exact likelihood drift each merge
/// introduces and exposes it as a provable bound on the verdict (see
/// `flock_core::Engine::drift_bound`), so approximate verdicts can be
/// certified identical to exact ones — not just empirically so.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CoalesceMode {
    /// Lossless merging on equal `(set, sent, bad)` keys. The default.
    #[default]
    Exact,
    /// Bucketed merging with relative tolerance `eps` (`eps <= 0` behaves
    /// exactly like [`Exact`](CoalesceMode::Exact), including bitwise).
    Approx {
        /// Relative bucket width: counts within a factor of `1 + eps`
        /// land in the same bucket.
        eps: f64,
    },
}

impl CoalesceMode {
    /// Default relative tolerance for approximate coalescing: counts
    /// within 10% merge. Small enough that every headline-scenario
    /// verdict stays identical to exact inference (pinned by
    /// `prop_approx`), large enough to collapse heavy-tailed traffic by
    /// well over the exact ratio.
    pub const DEFAULT_EPS: f64 = 0.1;

    /// Approximate mode at [`DEFAULT_EPS`](Self::DEFAULT_EPS).
    pub fn approx_default() -> Self {
        CoalesceMode::Approx {
            eps: Self::DEFAULT_EPS,
        }
    }

    /// The effective tolerance: 0 for exact (or degenerate approx) mode.
    pub fn eps(self) -> f64 {
        match self {
            CoalesceMode::Exact => 0.0,
            CoalesceMode::Approx { eps } => eps.max(0.0),
        }
    }

    /// Whether this mode actually buckets (approx with `eps > 0`).
    pub fn is_approx(self) -> bool {
        self.eps() > 0.0
    }

    /// Human/log label, e.g. `exact` or `approx(eps=0.05)`.
    pub fn label(self) -> String {
        if self.is_approx() {
            format!("approx(eps={})", self.eps())
        } else {
            "exact".to_string()
        }
    }
}

/// One aggregated observation handed to inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowObs {
    /// Host attachment links traversed by *every* possible path of this
    /// flow (source uplink and/or destination downlink); `None` for
    /// switch-terminated traffic.
    pub prefix: [Option<LinkId>; 2],
    /// The fabric path set (singleton when the path is known).
    pub set: PathSetId,
    /// Packets sent (or 1 in per-flow mode).
    pub sent: u64,
    /// Bad packets (or 0/1 in per-flow mode).
    pub bad: u64,
    /// Number of identical underlying flows merged into this observation.
    pub weight: u32,
}

impl FlowObs {
    /// Whether the exact path of this observation is known.
    pub fn path_known(&self, arena: &PathArena) -> bool {
        arena.set(self.set).len() == 1
    }

    /// The observation's *evidence key*: everything the flow likelihood
    /// (Eq. 1) depends on besides the per-prefix extras. Observations
    /// sharing this key coalesce exactly into one weighted super-flow;
    /// the assembler sorts by it, [`ObservationSet::coalesced_count`]
    /// counts runs of it, and the inference engine collapses on it —
    /// one definition keeps the three in lockstep.
    #[inline]
    pub fn evidence_key(&self) -> (u32, u64, u64) {
        (self.set.0, self.sent, self.bad)
    }

    /// The observation's *bucket key* under a coalesce mode: the
    /// `(sent, bad)` component of the evidence key, bucketed when the
    /// mode is approximate (see [`BucketQuantizer`]). Exact mode (and
    /// `eps <= 0`) returns the raw counts, so the bucket key degenerates
    /// to the exact key. Convenience for one-off keys — hot paths build
    /// the quantizer once and call [`BucketQuantizer::key`] per count
    /// pair.
    #[inline]
    pub fn bucket_key(&self, mode: CoalesceMode) -> (u64, u64) {
        BucketQuantizer::new(mode).key(self.sent, self.bad)
    }
}

/// Precomputed log-spaced quantizer for a [`CoalesceMode`]: resolves the
/// mode's tolerance into a float-bits shift once, so per-observation keys
/// cost two shifts instead of two `ln` calls.
///
/// A positive count is quantized by keeping the exponent and the top `m`
/// mantissa bits of its `f64` representation — log-spaced buckets of
/// relative width `2^(2^-m)`, with `m` the smallest bit count whose
/// width stays within `1 + eps`. The advertised tolerance is therefore
/// an upper bound: two counts sharing a bucket are always within a
/// factor of `1 + eps`. The mapping is monotone in the count, which is
/// all the assembler's sort order and the engine's run collapse rely on;
/// the drift bound never depends on bucket geometry, because the engine
/// measures the likelihood drift of each merge it actually performs.
///
/// `bad` counts use the same spacing as `sent`: within one `sent`
/// bucket, log-spaced `bad` buckets *are* log-spaced loss-rate buckets.
/// Zero-loss observations are isolated in `bad` bucket 0 — their
/// likelihood ladder has exactly zero drift against each other, and
/// merging them with lossy flows would inflate the drift bound for no
/// reduction gain.
#[derive(Debug, Clone, Copy)]
pub struct BucketQuantizer {
    shift: u32,
    exact: bool,
}

impl BucketQuantizer {
    /// Resolve a coalesce mode into a quantizer.
    pub fn new(mode: CoalesceMode) -> Self {
        let eps = mode.eps();
        if eps <= 0.0 {
            return BucketQuantizer {
                shift: 0,
                exact: true,
            };
        }
        // Smallest m with bucket width 2^(2^-m) ≤ 1 + eps, i.e.
        // 2^-m ≤ log2(1+eps); clamped to the f64 mantissa.
        let m = (-(1.0 + eps).log2().log2()).ceil().max(0.0) as u32;
        BucketQuantizer {
            shift: 52 - m.min(52),
            exact: false,
        }
    }

    /// The `(sent bucket, bad bucket)` key for a count pair. Exact mode
    /// returns the raw counts (bitwise-identical behavior to no
    /// bucketing).
    #[inline]
    pub fn key(&self, sent: u64, bad: u64) -> (u64, u64) {
        if self.exact {
            return (sent, bad);
        }
        let sb = (sent.max(1) as f64).to_bits() >> self.shift;
        let rb = if bad == 0 {
            0
        } else {
            1 + ((bad as f64).to_bits() >> self.shift)
        };
        (sb, rb)
    }
}

/// The input to every inference scheme: interned paths plus aggregated
/// flow observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObservationSet {
    /// Path/set interning arena.
    pub arena: PathArena,
    /// Aggregated observations.
    pub flows: Vec<FlowObs>,
    /// The analysis mode the observations were assembled under.
    pub mode: AnalysisMode,
}

impl ObservationSet {
    /// Total underlying flows (sum of weights).
    pub fn flow_count(&self) -> u64 {
        self.flows.iter().map(|f| u64::from(f.weight)).sum()
    }

    /// Number of distinct `(set, sent, bad)` evidence keys, counted over
    /// adjacent runs — the super-flow count an engine coalesces to
    /// (observations are emitted sorted by exactly that key). The ratio
    /// `flows.len() / coalesced_count()` is the epoch's coalesce factor.
    pub fn coalesced_count(&self) -> usize {
        let mut n = 0;
        let mut last: Option<(u32, u64, u64)> = None;
        for o in &self.flows {
            let key = o.evidence_key();
            if last != Some(key) {
                n += 1;
                last = Some(key);
            }
        }
        n
    }

    /// Iterate the full link sequence (prefix + fabric) of one member path
    /// of an observation.
    pub fn full_path_links<'a>(
        &'a self,
        obs: &'a FlowObs,
        path: PathId,
    ) -> impl Iterator<Item = LinkId> + 'a {
        obs.prefix
            .iter()
            .take(1)
            .filter_map(|l| *l)
            .chain(self.arena.path(path).iter().copied())
            .chain(obs.prefix.iter().skip(1).filter_map(|l| *l))
    }
}

/// Telemetry kinds per §6.2. Combinations are expressed as slices, e.g.
/// `&[InputKind::A1, InputKind::P]` for "A1+P".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputKind {
    /// Active host↔spine probes with known paths (NetBouncer-style).
    A1,
    /// Flagged flows (≥1 bad packet) with traced paths (007-style).
    A2,
    /// Passive flow reports with ECMP path *sets* (NetFlow/IPFIX-style).
    P,
    /// INT: paths known for all reported traffic (probes and passive).
    Int,
}

/// Assemble an [`ObservationSet`] from monitored flows under the given
/// telemetry kinds and analysis mode.
///
/// Selection rules (§6.2):
/// * probes are included under A1 or INT, always with their known path;
/// * passive flows are included with known paths under INT;
/// * under A2, passive flows with at least one bad packet are included
///   with known (traced) paths;
/// * under P, remaining passive flows are included with their ECMP path
///   set (resolved through `router`).
pub fn assemble(
    topo: &Topology,
    router: &Router<'_>,
    flows: &[MonitoredFlow],
    kinds: &[InputKind],
    mode: AnalysisMode,
) -> ObservationSet {
    Assembler::new().assemble(topo, router, flows, kinds, mode)
}

/// Reusable input assembler with a *persistent* path arena.
///
/// The one-shot [`assemble`] builds a fresh [`PathArena`] per call. The
/// online pipeline instead assembles one [`ObservationSet`] per epoch over
/// the **same** arena: interning is append-only, so a `PathId`/[`PathSetId`]
/// handed out in epoch `k` denotes the identical path in every later
/// epoch. That stability is what lets a warm inference engine keep its
/// per-path/per-set structures across epochs instead of rebuilding them
/// (see `flock_core::Engine::rebind`). The ECMP set cache persists for the
/// same reason — per ToR pair, the set is interned exactly once, ever.
///
/// The arena physically moves into the returned `ObservationSet` (every
/// consumer expects an owning set); hand the set back via
/// [`Assembler::recycle`] once inference is done to keep the lineage.
/// Assembling again *without* recycling is safe but forfeits the lineage:
/// the assembler starts a fresh arena (and drops its set-id cache, which
/// would otherwise refer into the departed arena).
#[derive(Debug, Default)]
pub struct Assembler {
    arena: PathArena,
    ecmp_cache: FxHashMap<(flock_topology::NodeId, flock_topology::NodeId), PathSetId>,
    /// Whether the arena is currently out with an un-recycled
    /// `ObservationSet` (the struct's `arena` is then a fresh default).
    arena_out: bool,
    /// Lineage token and path/set counts of the arena as last emitted,
    /// used by [`Assembler::recycle`] to recognize its own lineage.
    emitted_lineage: u64,
    emitted_paths: usize,
    emitted_sets: usize,
    /// Scratch for the counting scatter in [`Assembler::assemble`],
    /// reused across epochs so steady-state assembly allocates nothing.
    sort_scratch: Vec<FlowObs>,
    set_cursors: Vec<u32>,
    /// The coalesce mode observations are sorted for. Exact by default;
    /// approximate mode orders within-set runs by bucket key first so
    /// the engine can collapse whole buckets from adjacent runs.
    coalesce: CoalesceMode,
    /// Scratch of `(bucket key, obs)` pairs for the approx within-set
    /// sort — precomputing the key keeps it out of the comparator.
    bucket_scratch: Vec<((u64, u64), FlowObs)>,
}

impl Assembler {
    /// An assembler with an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the coalesce mode future [`Assembler::assemble`] calls sort
    /// for. Changing the mode never invalidates the arena or lineage —
    /// it only changes the within-set observation order (an engine in a
    /// different mode still coalesces correctly, just less).
    pub fn set_coalesce(&mut self, mode: CoalesceMode) {
        self.coalesce = mode;
    }

    /// The coalesce mode observations are currently sorted for.
    pub fn coalesce_mode(&self) -> CoalesceMode {
        self.coalesce
    }

    /// Number of paths interned so far (across all epochs).
    pub fn path_count(&self) -> usize {
        self.arena.path_count()
    }

    /// Reclaim the arena from an observation set produced by the **last**
    /// [`Assembler::assemble`] call on this assembler.
    ///
    /// The set is recognized by its arena's process-unique lineage token
    /// plus size monotonicity (append-only interning means a legitimate
    /// descendant has at least the emitted path/set counts). Handing back
    /// a set from a different lineage replaces the arena wholesale and
    /// drops the ECMP set cache, whose ids would otherwise dangle into
    /// the departed arena.
    pub fn recycle(&mut self, obs: ObservationSet) {
        self.recycle_arena(obs.arena);
    }

    /// [`recycle`](Self::recycle) for a bare arena — the double-buffered
    /// pipeline hands back an arena *twin* (same lineage via `Clone`,
    /// caught up by [`PathArena::apply_delta`]) rather than the emitted
    /// observation set itself, which is still feeding the in-flight
    /// epoch's shard engines.
    pub fn recycle_arena(&mut self, arena: PathArena) {
        let ours = self.arena_out
            && arena.lineage() == self.emitted_lineage
            && arena.path_count() >= self.emitted_paths
            && arena.set_count() >= self.emitted_sets;
        if !ours {
            self.ecmp_cache.clear();
        }
        self.arena = arena;
        self.arena_out = false;
    }

    /// Whether the arena is currently out with an un-recycled
    /// [`ObservationSet`] — assembling in that state starts a fresh
    /// lineage (and invalidates every view bound to the old one).
    pub fn arena_is_out(&self) -> bool {
        self.arena_out
    }

    /// Assemble one observation set against the persistent arena. See
    /// [`assemble`] for the §6.2 selection rules.
    pub fn assemble(
        &mut self,
        topo: &Topology,
        router: &Router<'_>,
        flows: &[MonitoredFlow],
        kinds: &[InputKind],
        mode: AnalysisMode,
    ) -> ObservationSet {
        let has = |k: InputKind| kinds.contains(&k);
        if self.arena_out {
            // The previous set was never recycled: the cached set ids
            // refer into an arena we no longer hold. Start clean.
            self.ecmp_cache.clear();
            self.arena = PathArena::new();
        }
        let arena = &mut self.arena;
        let ecmp_cache = &mut self.ecmp_cache;
        let mut out: Vec<FlowObs> = Vec::with_capacity(flows.len());

        for mf in flows {
            let (sent, bad) = metrics(mf, mode);
            if sent == 0 {
                continue;
            }
            let obs = match mf.class {
                TrafficClass::Probe => {
                    // A probe whose path is unknown (possible for flows
                    // reconstructed from wire records that carried no
                    // attachment) carries no localizable evidence.
                    if !(has(InputKind::A1) || has(InputKind::Int)) || mf.true_path.is_empty() {
                        continue;
                    }
                    known_path_obs(topo, arena, &mf.true_path, sent, bad)
                }
                TrafficClass::Passive => {
                    // "Known path" requires an actual recorded path: a
                    // reconstructed flow whose record carried no path
                    // attachment has an empty `true_path` and must fall
                    // back to the ECMP path set (or be dropped), not be
                    // modeled as a zero-component pinned path.
                    let known = (has(InputKind::Int) || (has(InputKind::A2) && bad > 0))
                        && !mf.true_path.is_empty();
                    if known {
                        known_path_obs(topo, arena, &mf.true_path, sent, bad)
                    } else if has(InputKind::P) {
                        let src_leaf = topo.host_leaf(mf.key.src);
                        let dst_leaf = topo.host_leaf(mf.key.dst);
                        let set = *ecmp_cache.entry((src_leaf, dst_leaf)).or_insert_with(|| {
                            let paths = router.paths(src_leaf, dst_leaf);
                            let ids: Vec<PathId> = paths
                                .iter()
                                .map(|p| arena.intern_path_nodedup(&p.links))
                                .collect();
                            arena.intern_set(ids)
                        });
                        FlowObs {
                            prefix: [
                                Some(topo.host_uplink(mf.key.src)),
                                Some(topo.host_downlink(mf.key.dst)),
                            ],
                            set,
                            sent,
                            bad,
                            weight: 1,
                        }
                    } else {
                        continue;
                    }
                }
            };
            out.push(obs);
        }

        // Deterministic order keyed so observations sharing the
        // `(set, sent, bad)` evidence key are adjacent: downstream
        // consumers (the inference engine) coalesce contiguous runs into
        // weighted super-flows. The `(evidence_key, prefix)` sort key
        // covers every `FlowObs` field except `weight` (all 1 here), so
        // equal-key neighbors are *identical* observations — the
        // run-merge below is the exact weighted merge a hash-keyed
        // aggregation would produce, without a per-flow hash insert on
        // the assembly stage.
        //
        // The sort key's leading component is the *dense* arena set id,
        // so instead of one comparison sort over all observations we
        // counting-scatter by set (O(n + sets)) and comparison-sort only
        // the `(sent, bad, prefix)` tail within each set's run — the
        // same total order, at a fraction of the cost (the full sort was
        // the dominant term of the pipelined prepare stage).
        let sets = arena.set_count();
        self.set_cursors.clear();
        self.set_cursors.resize(sets + 1, 0);
        for o in &out {
            self.set_cursors[o.set.0 as usize + 1] += 1;
        }
        for i in 0..sets {
            self.set_cursors[i + 1] += self.set_cursors[i];
        }
        self.sort_scratch.clear();
        self.sort_scratch.extend_from_slice(&out);
        for &o in &self.sort_scratch {
            let cursor = &mut self.set_cursors[o.set.0 as usize];
            out[*cursor as usize] = o;
            *cursor += 1;
        }
        // After scattering, `set_cursors[s]` is the *end* of set `s`'s run.
        // In approximate mode the bucket key leads the within-set order so
        // the engine can collapse whole buckets; the bucket key is a pure
        // function of the exact key, so equal exact keys stay adjacent and
        // the exact run-merge below is unchanged. Keys are precomputed
        // into a reusable scratch — `sort_unstable_by_key` recomputes
        // keys per comparison, which would dominate the pipelined
        // prepare stage at scale.
        let approx = self.coalesce.is_approx();
        let quant = BucketQuantizer::new(self.coalesce);
        let mut start = 0usize;
        for i in 0..sets {
            let end = self.set_cursors[i] as usize;
            if end - start > 1 {
                if approx {
                    self.bucket_scratch.clear();
                    self.bucket_scratch.extend(
                        out[start..end]
                            .iter()
                            .map(|&o| (quant.key(o.sent, o.bad), o)),
                    );
                    self.bucket_scratch.sort_unstable_by(|(ka, a), (kb, b)| {
                        (ka, a.sent, a.bad, a.prefix).cmp(&(kb, b.sent, b.bad, b.prefix))
                    });
                    for (slot, (_, o)) in out[start..end].iter_mut().zip(&self.bucket_scratch) {
                        *slot = *o;
                    }
                } else {
                    out[start..end].sort_unstable_by_key(|o| (o.sent, o.bad, o.prefix));
                }
            }
            start = end;
        }
        debug_assert!(out.is_sorted_by_key(|o| {
            (
                o.set.0,
                o.bucket_key(self.coalesce),
                o.sent,
                o.bad,
                o.prefix,
            )
        }));
        out.dedup_by(|dup, keep| {
            if dup.set == keep.set
                && dup.sent == keep.sent
                && dup.bad == keep.bad
                && dup.prefix == keep.prefix
            {
                keep.weight += dup.weight;
                true
            } else {
                false
            }
        });
        self.arena_out = true;
        self.emitted_lineage = self.arena.lineage();
        self.emitted_paths = self.arena.path_count();
        self.emitted_sets = self.arena.set_count();
        ObservationSet {
            arena: std::mem::take(&mut self.arena),
            flows: out,
            mode,
        }
    }
}

fn metrics(mf: &MonitoredFlow, mode: AnalysisMode) -> (u64, u64) {
    match mode {
        AnalysisMode::PerPacket => (
            mf.stats.packets,
            mf.stats.retransmissions.min(mf.stats.packets),
        ),
        AnalysisMode::PerFlow { rtt_threshold_us } => {
            (1, u64::from(mf.stats.rtt_max_us > rtt_threshold_us))
        }
    }
}

/// Build a known-path observation, splitting host attachment links off
/// into the prefix.
fn known_path_obs(
    topo: &Topology,
    arena: &mut PathArena,
    true_path: &[LinkId],
    sent: u64,
    bad: u64,
) -> FlowObs {
    let mut start = 0;
    let mut end = true_path.len();
    let mut prefix = [None, None];
    if end > start {
        let first = true_path[start];
        if topo.node(topo.link(first).src).role == NodeRole::Host {
            prefix[0] = Some(first);
            start += 1;
        }
    }
    if end > start {
        let last = true_path[end - 1];
        if topo.node(topo.link(last).dst).role == NodeRole::Host {
            prefix[1] = Some(last);
            end -= 1;
        }
    }
    let set = arena.intern_single(&true_path[start..end]);
    FlowObs {
        prefix,
        set,
        sent,
        bad,
        weight: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowKey, FlowStats};
    use flock_topology::clos::{three_tier, ClosParams};
    use flock_topology::NodeId;

    fn mk_passive(
        topo: &Topology,
        router: &Router<'_>,
        src: NodeId,
        dst: NodeId,
        packets: u64,
        retrans: u64,
    ) -> MonitoredFlow {
        // True path: first ECMP option.
        let paths = router.paths(topo.host_leaf(src), topo.host_leaf(dst));
        let mut path = vec![topo.host_uplink(src)];
        path.extend_from_slice(&paths[0].links);
        path.push(topo.host_downlink(dst));
        MonitoredFlow {
            key: FlowKey::tcp(src, dst, 4000, 80),
            stats: FlowStats {
                packets,
                retransmissions: retrans,
                bytes: packets * 1500,
                rtt_sum_us: 100,
                rtt_count: 1,
                rtt_max_us: 100,
            },
            class: TrafficClass::Passive,
            true_path: path,
        }
    }

    #[test]
    fn arena_interns_and_dedups() {
        let mut a = PathArena::new();
        let p1 = a.intern_path(&[LinkId(1), LinkId(2)]);
        let p2 = a.intern_path(&[LinkId(1), LinkId(2)]);
        let p3 = a.intern_path(&[LinkId(3)]);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        let s1 = a.intern_set(vec![p1, p3]);
        let s2 = a.intern_set(vec![p3, p1, p1]);
        assert_eq!(s1, s2, "sets canonicalize order and duplicates");
        assert_eq!(a.path_count(), 2);
        assert_eq!(a.set_count(), 1);
    }

    #[test]
    fn passive_only_uses_path_sets() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        // Cross-pod flow: should carry the full ECMP set.
        let f = mk_passive(&topo, &router, hosts[0], hosts[11], 100, 1);
        let obs = assemble(
            &topo,
            &router,
            &[f],
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs.flows.len(), 1);
        let o = &obs.flows[0];
        assert!(!o.path_known(&obs.arena));
        assert_eq!(
            obs.arena.set(o.set).len(),
            4,
            "tiny Clos inter-pod ECMP width is aggs*spines = 4"
        );
        assert!(o.prefix[0].is_some() && o.prefix[1].is_some());
    }

    #[test]
    fn int_reveals_paths() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        let f = mk_passive(&topo, &router, hosts[0], hosts[11], 100, 0);
        let obs = assemble(
            &topo,
            &router,
            &[f],
            &[InputKind::Int],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs.flows.len(), 1);
        assert!(obs.flows[0].path_known(&obs.arena));
    }

    #[test]
    fn a2_reveals_only_flagged_flows() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        let clean = mk_passive(&topo, &router, hosts[0], hosts[11], 100, 0);
        let flagged = mk_passive(&topo, &router, hosts[1], hosts[10], 100, 3);
        let obs = assemble(
            &topo,
            &router,
            &[clean.clone(), flagged.clone()],
            &[InputKind::A2],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs.flows.len(), 1, "only the flagged flow is included");
        assert!(obs.flows[0].path_known(&obs.arena));
        assert_eq!(obs.flows[0].bad, 3);

        // A2+P: flagged flow known, clean flow as a path set.
        let obs2 = assemble(
            &topo,
            &router,
            &[clean, flagged],
            &[InputKind::A2, InputKind::P],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs2.flows.len(), 2);
        let known: Vec<bool> = obs2
            .flows
            .iter()
            .map(|o| o.path_known(&obs2.arena))
            .collect();
        assert_eq!(known.iter().filter(|k| **k).count(), 1);
    }

    #[test]
    fn identical_observations_merge_with_weight() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        // Two identical flows (same endpoints, same metrics).
        let f1 = mk_passive(&topo, &router, hosts[0], hosts[11], 50, 0);
        let f2 = mk_passive(&topo, &router, hosts[0], hosts[11], 50, 0);
        let obs = assemble(
            &topo,
            &router,
            &[f1, f2],
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs.flows.len(), 1);
        assert_eq!(obs.flows[0].weight, 2);
        assert_eq!(obs.flow_count(), 2);
    }

    #[test]
    fn observations_sort_by_evidence_key_and_count_coalesced_runs() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        // Four flows over the same ToR pair: three share the (sent, bad)
        // evidence key across two distinct host pairs, one differs.
        let flows = vec![
            mk_passive(&topo, &router, hosts[0], hosts[11], 50, 0),
            mk_passive(&topo, &router, hosts[1], hosts[10], 50, 0),
            mk_passive(&topo, &router, hosts[0], hosts[10], 50, 0),
            mk_passive(&topo, &router, hosts[1], hosts[11], 70, 1),
        ];
        let obs = assemble(
            &topo,
            &router,
            &flows,
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs.flows.len(), 4, "distinct prefixes stay distinct");
        // Same-key observations are adjacent…
        assert!(obs
            .flows
            .windows(2)
            .all(|w| (w[0].set.0, w[0].sent, w[0].bad) <= (w[1].set.0, w[1].sent, w[1].bad)));
        // …and collapse to two evidence keys.
        assert_eq!(obs.coalesced_count(), 2);
    }

    #[test]
    fn arena_interning_survives_hash_bucketing_at_scale() {
        // Many distinct single-link paths and sets: every id must resolve
        // to its own content, and re-interning must dedup (the
        // hashed-over-storage index has no key copies to fall back on).
        let mut a = PathArena::new();
        let ids: Vec<PathId> = (0..500).map(|i| a.intern_path(&[LinkId(i)])).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(a.path(*id), &[LinkId(i as u32)]);
            assert_eq!(a.intern_path(&[LinkId(i as u32)]), *id);
        }
        assert_eq!(a.path_count(), 500);
        let sets: Vec<PathSetId> = ids.chunks(2).map(|c| a.intern_set(c.to_vec())).collect();
        for (i, sid) in sets.iter().enumerate() {
            assert_eq!(a.set(*sid), &ids[i * 2..i * 2 + 2]);
            assert_eq!(a.intern_set(vec![ids[i * 2 + 1], ids[i * 2]]), *sid);
        }
        assert_eq!(a.set_count(), 250);
    }

    #[test]
    fn delta_replay_keeps_twins_identical() {
        // A twin cloned at a watermark and caught up via apply_delta must
        // resolve every id identically AND keep making the same dedup
        // decisions as the original afterwards.
        let mut a = PathArena::new();
        a.intern_path(&[LinkId(1)]);
        a.intern_set(vec![PathId(0)]);
        let mut twin = a.clone();
        let wm = (a.path_count(), a.set_count());

        // Growth past the watermark: an indexed path, a nodedup'd path
        // (same content as nothing else), and a set over both.
        let p1 = a.intern_path(&[LinkId(2), LinkId(3)]);
        let p2 = a.intern_path_nodedup(&[LinkId(4), LinkId(5)]);
        let s = a.intern_set(vec![p1, p2]);

        let delta = a.delta_since(wm.0, wm.1);
        assert!(!delta.is_empty());
        assert_eq!(delta.from_watermarks(), wm);
        twin.apply_delta(&delta)
            .expect("same lineage, exact watermark");

        assert_eq!(twin.path_count(), a.path_count());
        assert_eq!(twin.set_count(), a.set_count());
        for i in 0..a.path_count() {
            assert_eq!(twin.path(PathId(i as u32)), a.path(PathId(i as u32)));
        }
        // Indexed path dedups in both copies…
        assert_eq!(twin.intern_path(&[LinkId(2), LinkId(3)]), p1);
        assert_eq!(a.intern_path(&[LinkId(2), LinkId(3)]), p1);
        // …the nodedup'd path stays unindexed in both (re-interning it
        // allocates a fresh id in each, and both pick the same id).
        let fresh_twin = twin.intern_path(&[LinkId(4), LinkId(5)]);
        let fresh_a = a.intern_path(&[LinkId(4), LinkId(5)]);
        assert_eq!(fresh_twin, fresh_a);
        assert_ne!(fresh_twin, p2);
        // Sets dedup in both.
        assert_eq!(twin.intern_set(vec![p2, p1]), s);
        assert_eq!(a.intern_set(vec![p2, p1]), s);
    }

    #[test]
    fn delta_refuses_wrong_lineage_and_watermark() {
        let mut a = PathArena::new();
        a.intern_path(&[LinkId(1)]);
        let delta = a.delta_since(0, 0);

        let mut foreign = PathArena::new();
        assert!(matches!(
            foreign.apply_delta(&delta),
            Err(DeltaError::LineageMismatch { .. })
        ));

        let mut late = a.clone();
        assert!(matches!(
            late.apply_delta(&delta),
            Err(DeltaError::WatermarkMismatch { .. })
        ));
        // Refusal leaves the arena untouched.
        assert_eq!(late.path_count(), 1);
    }

    #[test]
    fn per_flow_mode_thresholds_rtt() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        let mut f = mk_passive(&topo, &router, hosts[0], hosts[11], 100, 0);
        f.stats.rtt_max_us = 20_000;
        let obs = assemble(
            &topo,
            &router,
            &[f],
            &[InputKind::P],
            AnalysisMode::PerFlow {
                rtt_threshold_us: 10_000,
            },
        );
        assert_eq!(obs.flows[0].sent, 1);
        assert_eq!(obs.flows[0].bad, 1);
    }

    #[test]
    fn probes_excluded_without_a1() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let probe = MonitoredFlow {
            key: FlowKey::probe(topo.hosts()[0], topo.switches()[0], 1),
            stats: FlowStats {
                packets: 40,
                ..Default::default()
            },
            class: TrafficClass::Probe,
            true_path: vec![topo.host_uplink(topo.hosts()[0])],
        };
        let obs = assemble(
            &topo,
            &router,
            std::slice::from_ref(&probe),
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        assert!(obs.flows.is_empty());
        let obs2 = assemble(
            &topo,
            &router,
            &[probe],
            &[InputKind::A1],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs2.flows.len(), 1);
    }

    #[test]
    fn assembler_arena_is_stable_across_epochs() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        let mut asm = Assembler::new();

        // Epoch 1: one passive flow.
        let f1 = mk_passive(&topo, &router, hosts[0], hosts[11], 50, 0);
        let obs1 = asm.assemble(
            &topo,
            &router,
            &[f1],
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        let set1 = obs1.flows[0].set;
        let paths1: Vec<Vec<LinkId>> = obs1
            .arena
            .set(set1)
            .iter()
            .map(|p| obs1.arena.path(*p).to_vec())
            .collect();
        let count1 = obs1.arena.path_count();
        asm.recycle(obs1);

        // Epoch 2: the same ToR pair plus a new (intra-pod) pair.
        let f2 = mk_passive(&topo, &router, hosts[0], hosts[11], 70, 1);
        let f3 = mk_passive(&topo, &router, hosts[1], hosts[4], 30, 0);
        let obs2 = asm.assemble(
            &topo,
            &router,
            &[f2, f3],
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        // The repeated pair reuses the interned set id and path contents.
        let same: Vec<&FlowObs> = obs2.flows.iter().filter(|o| o.set == set1).collect();
        assert_eq!(same.len(), 1, "same ToR pair must map to the same set id");
        let paths2: Vec<Vec<LinkId>> = obs2
            .arena
            .set(set1)
            .iter()
            .map(|p| obs2.arena.path(*p).to_vec())
            .collect();
        assert_eq!(paths1, paths2, "interned path contents must be stable");
        assert!(
            obs2.arena.path_count() > count1,
            "the new pair extends the arena"
        );
    }

    #[test]
    fn assemble_without_recycle_starts_a_fresh_lineage() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        let mut asm = Assembler::new();
        let f = mk_passive(&topo, &router, hosts[0], hosts[11], 50, 0);
        let obs1 = asm.assemble(
            &topo,
            &router,
            std::slice::from_ref(&f),
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        // obs1 deliberately NOT recycled: the cached set id must not leak
        // into the next (fresh-arena) assembly.
        let obs2 = asm.assemble(
            &topo,
            &router,
            std::slice::from_ref(&f),
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs2.flows.len(), 1);
        let set = obs2.flows[0].set;
        assert!(
            (set.0 as usize) < obs2.arena.set_count(),
            "set id must refer into obs2's own arena"
        );
        assert_eq!(
            obs2.arena.set(set).len(),
            obs1.arena.set(obs1.flows[0].set).len()
        );
    }

    #[test]
    fn recycling_a_foreign_set_drops_the_cache() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        let mut asm = Assembler::new();
        let f = mk_passive(&topo, &router, hosts[0], hosts[11], 50, 0);
        let obs = asm.assemble(
            &topo,
            &router,
            std::slice::from_ref(&f),
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        drop(obs);
        // Hand back an empty, unrelated set: the assembler must not keep
        // serving cached ids into it.
        asm.recycle(ObservationSet {
            arena: PathArena::new(),
            flows: Vec::new(),
            mode: AnalysisMode::PerPacket,
        });
        let obs2 = asm.assemble(
            &topo,
            &router,
            std::slice::from_ref(&f),
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs2.flows.len(), 1);
        assert!((obs2.flows[0].set.0 as usize) < obs2.arena.set_count());
    }

    #[test]
    fn empty_reconstructed_path_falls_back_to_ecmp_set() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        // A flagged flow whose record carried no path attachment: under
        // A2+P it must enter as a path-*set* observation, not a
        // zero-component "known" path.
        let mut f = mk_passive(&topo, &router, hosts[0], hosts[11], 100, 3);
        f.true_path.clear();
        let obs = assemble(
            &topo,
            &router,
            std::slice::from_ref(&f),
            &[InputKind::A2, InputKind::P],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs.flows.len(), 1);
        assert!(
            !obs.flows[0].path_known(&obs.arena),
            "pathless flagged flow must use the ECMP set"
        );
        assert_eq!(obs.flows[0].bad, 3, "its drop evidence is preserved");

        // Under Int alone (no P fallback) the flow is dropped, not faked.
        let obs2 = assemble(
            &topo,
            &router,
            std::slice::from_ref(&f),
            &[InputKind::Int],
            AnalysisMode::PerPacket,
        );
        assert!(obs2.flows.is_empty());

        // A pathless probe likewise carries no evidence.
        let probe = MonitoredFlow {
            key: FlowKey::probe(hosts[0], topo.switches()[0], 1),
            stats: FlowStats {
                packets: 40,
                ..Default::default()
            },
            class: TrafficClass::Probe,
            true_path: Vec::new(),
        };
        let obs3 = assemble(
            &topo,
            &router,
            std::slice::from_ref(&probe),
            &[InputKind::A1],
            AnalysisMode::PerPacket,
        );
        assert!(obs3.flows.is_empty());
    }

    #[test]
    fn full_path_links_includes_prefix() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts();
        let f = mk_passive(&topo, &router, hosts[0], hosts[11], 10, 1);
        let true_path = f.true_path.clone();
        let obs = assemble(
            &topo,
            &router,
            &[f],
            &[InputKind::Int],
            AnalysisMode::PerPacket,
        );
        let o = &obs.flows[0];
        let pid = obs.arena.set(o.set)[0];
        let links: Vec<LinkId> = obs.full_path_links(o, pid).collect();
        assert_eq!(links, true_path);
    }
}
