//! Active-probe planning.
//!
//! A1 (NetBouncer-style): every host probes every spine switch over every
//! ECMP path, and the probe bounces back along the same path (the paper's
//! testbed lacked the IP-in-IP switch feature for this; our simulator
//! provides it). The round-trip path — host uplink, fabric up-path, the
//! same fabric path reversed, host downlink — is *known* to the prober, so
//! A1 observations enter inference with a pinned path and cover both
//! directions of every traversed link.
//!
//! A2 (007-style) path disclosure is not planned here: it is the input
//! assembler revealing the traced path of flagged flows (see
//! [`crate::input`]), mirroring 007's traceroute-on-anomaly agents.

use crate::flow::FlowKey;
use flock_topology::{LinkId, NodeId, NodeRole, Router, Topology};

/// One planned active probe: `packets` probe packets from `src_host`
/// bounced off `target_spine` along a pinned round-trip path.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// Originating host.
    pub src_host: NodeId,
    /// Spine switch the probe bounces off.
    pub target_spine: NodeId,
    /// Flow key used for the probe stream.
    pub key: FlowKey,
    /// Full round-trip path: host uplink, fabric up-path, reversed fabric
    /// path, host downlink.
    pub round_trip_path: Vec<LinkId>,
    /// Number of probe packets to send.
    pub packets: u64,
}

/// Plan A1 probes: for every (host, spine, ECMP path) triple, one probe
/// stream of `packets_per_path` packets.
///
/// `max_specs`, when set, deterministically subsamples the plan (uniform
/// stride) to bound probe volume on large fabrics while retaining
/// near-uniform link coverage.
pub fn plan_a1_probes(
    topo: &Topology,
    router: &Router<'_>,
    packets_per_path: u64,
    max_specs: Option<usize>,
) -> Vec<ProbeSpec> {
    let spines: Vec<NodeId> = topo
        .switches()
        .iter()
        .copied()
        .filter(|s| topo.node(*s).role == NodeRole::Spine)
        .collect();

    let mut specs = Vec::new();
    for &host in topo.hosts() {
        let leaf = topo.host_leaf(host);
        let uplink = topo.host_uplink(host);
        let downlink = topo.host_downlink(host);
        for (si, &spine) in spines.iter().enumerate() {
            let paths = router.paths(leaf, spine);
            for (pi, path) in paths.iter().enumerate() {
                let mut rt = Vec::with_capacity(2 + 2 * path.links.len());
                rt.push(uplink);
                rt.extend_from_slice(&path.links);
                rt.extend(path.links.iter().rev().map(|l| topo.link(*l).reverse));
                rt.push(downlink);
                specs.push(ProbeSpec {
                    src_host: host,
                    target_spine: spine,
                    key: FlowKey::probe(host, spine, (si * 251 + pi) as u16),
                    round_trip_path: rt,
                    packets: packets_per_path,
                });
            }
        }
    }

    if let Some(cap) = max_specs {
        if specs.len() > cap && cap > 0 {
            let stride = specs.len() as f64 / cap as f64;
            let mut sampled = Vec::with_capacity(cap);
            let mut cursor = 0.0f64;
            while (cursor as usize) < specs.len() && sampled.len() < cap {
                sampled.push(specs[cursor as usize].clone());
                cursor += stride;
            }
            specs = sampled;
        }
    }
    specs
}

/// Total probe packets in a plan.
pub fn plan_packet_volume(specs: &[ProbeSpec]) -> u64 {
    specs.iter().map(|s| s.packets).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::clos::{three_tier, ClosParams};
    use std::collections::HashSet;

    #[test]
    fn a1_covers_every_fabric_link() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let specs = plan_a1_probes(&topo, &router, 10, None);
        let covered: HashSet<LinkId> = specs
            .iter()
            .flat_map(|s| s.round_trip_path.iter().copied())
            .collect();
        for l in topo.fabric_links() {
            assert!(covered.contains(&l), "fabric link {l:?} not covered");
        }
        // Host links are covered too (both directions).
        for &h in topo.hosts() {
            assert!(covered.contains(&topo.host_uplink(h)));
            assert!(covered.contains(&topo.host_downlink(h)));
        }
    }

    #[test]
    fn round_trip_paths_are_contiguous() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        for spec in plan_a1_probes(&topo, &router, 1, None) {
            let mut at = spec.src_host;
            for l in &spec.round_trip_path {
                assert_eq!(topo.link(*l).src, at, "discontinuous probe path");
                at = topo.link(*l).dst;
            }
            assert_eq!(at, spec.src_host, "probe must return to source");
        }
    }

    #[test]
    fn plan_size_and_budget() {
        let p = ClosParams::tiny();
        let topo = three_tier(p);
        let router = Router::new(&topo);
        let specs = plan_a1_probes(&topo, &router, 5, None);
        // hosts × spines × paths(leaf→spine); in the tiny Clos each
        // leaf has exactly 1 path to each spine.
        let spines = (p.aggs_per_pod * p.spines_per_plane) as usize;
        assert_eq!(specs.len(), topo.hosts().len() * spines);
        assert_eq!(plan_packet_volume(&specs), specs.len() as u64 * 5);

        let capped = plan_a1_probes(&topo, &router, 5, Some(10));
        assert!(capped.len() <= 10);
        // Budgeted plans keep multiple distinct hosts (coverage spread).
        let hosts: HashSet<NodeId> = capped.iter().map(|s| s.src_host).collect();
        assert!(hosts.len() > 1);
    }
}
