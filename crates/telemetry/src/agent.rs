//! The end-host monitoring agent (§3.1, §5.1).
//!
//! The paper's agent dumps packet headers via PF_RING, aggregates them into
//! per-flow statistics and periodically exports 52-byte IPFIX records to a
//! collector. Here the capture backend is abstracted as a stream of
//! [`FlowSample`]s (the simulators produce them; a PF_RING/eBPF backend
//! would too), and the agent core is sans-IO: [`AgentCore::observe`] folds
//! samples into the flow table and [`AgentCore::export`] drains it into
//! records. [`Exporter`] ships records to a collector over TCP.

use crate::flow::{FlowKey, FlowRecord, FlowStats, TrafficClass};
use crate::wire::{self, encode_message, encode_message_v2};
use flock_topology::LinkId;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Agent configuration.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Identifier reported in export message headers.
    pub agent_id: u32,
    /// Flow sampling rate in `[0, 1]`: a flow is monitored iff
    /// `hash(key) mod 2^16 < rate * 2^16`. Sampling is by *flow*, not by
    /// packet, so a sampled flow's statistics stay complete (§3.1's
    /// "optionally randomly sampled to reduce volume").
    pub sample_rate: f64,
    /// Maximum records per export message; larger exports are chunked.
    pub max_records_per_message: usize,
    /// Wire protocol version to emit (1 or 2). v2 frames additionally
    /// carry the epoch hint when [`AgentConfig::epoch_hint_ms`] is set;
    /// without a hint the agent falls back to v1 frames, so the default
    /// config is wire-compatible with a v1 collector.
    pub wire_version: u16,
    /// Collector-agreed tumbling epoch length in milliseconds. When set
    /// (and `wire_version >= 2`), every export message is stamped with
    /// `epoch_seq = export_time_ms / epoch_hint_ms`, letting the
    /// collector pre-bucket records by epoch as it decodes.
    pub epoch_hint_ms: Option<u64>,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            agent_id: 0,
            sample_rate: 1.0,
            max_records_per_message: 4096,
            wire_version: wire::VERSION,
            epoch_hint_ms: None,
        }
    }
}

/// One monitoring observation delivered to the agent: a batch of packets
/// (or a whole flow) with optional RTT sample and known path.
#[derive(Debug, Clone)]
pub struct FlowSample {
    /// Flow identity.
    pub key: FlowKey,
    /// Packets newly observed.
    pub packets: u64,
    /// Retransmissions newly observed.
    pub retransmissions: u64,
    /// Bytes newly observed.
    pub bytes: u64,
    /// An RTT sample in microseconds, if one was measured.
    pub rtt_us: Option<u32>,
    /// Exact path if known to the monitor (probe or INT).
    pub path: Option<Vec<LinkId>>,
    /// Traffic class.
    pub class: TrafficClass,
}

#[derive(Debug)]
struct FlowEntry {
    stats: FlowStats,
    class: TrafficClass,
    path: Option<Vec<LinkId>>,
}

/// Sans-IO agent core: a flow table keyed by [`FlowKey`].
#[derive(Debug)]
pub struct AgentCore {
    cfg: AgentConfig,
    table: HashMap<FlowKey, FlowEntry>,
    sequence: u64,
    samples_seen: u64,
    samples_kept: u64,
}

impl AgentCore {
    /// Create an agent core.
    pub fn new(cfg: AgentConfig) -> Self {
        assert!((0.0..=1.0).contains(&cfg.sample_rate));
        assert!(
            cfg.wire_version == wire::VERSION_V1 || cfg.wire_version == wire::VERSION,
            "unsupported wire version {}",
            cfg.wire_version
        );
        assert!(
            cfg.epoch_hint_ms != Some(0),
            "epoch hint length must be positive"
        );
        AgentCore {
            cfg,
            table: HashMap::new(),
            sequence: 0,
            samples_seen: 0,
            samples_kept: 0,
        }
    }

    /// Whether `key` passes the deterministic flow-sampling filter.
    pub fn sampled(&self, key: &FlowKey) -> bool {
        if self.cfg.sample_rate >= 1.0 {
            return true;
        }
        let h = fnv1a(key);
        ((h & 0xffff) as f64) < self.cfg.sample_rate * 65536.0
    }

    /// Fold a sample into the flow table (dropped if not sampled).
    pub fn observe(&mut self, sample: FlowSample) {
        self.samples_seen += 1;
        if !self.sampled(&sample.key) {
            return;
        }
        self.samples_kept += 1;
        let delta = FlowStats {
            packets: sample.packets,
            retransmissions: sample.retransmissions,
            bytes: sample.bytes,
            rtt_sum_us: sample.rtt_us.map_or(0, u64::from),
            rtt_count: sample.rtt_us.map_or(0, |_| 1),
            rtt_max_us: sample.rtt_us.unwrap_or(0),
        };
        match self.table.entry(sample.key) {
            Entry::Occupied(mut e) => {
                let entry = e.get_mut();
                entry.stats.merge(&delta);
                if entry.path.is_none() {
                    entry.path = sample.path;
                }
                if sample.class == TrafficClass::Probe {
                    entry.class = TrafficClass::Probe;
                }
            }
            Entry::Vacant(v) => {
                v.insert(FlowEntry {
                    stats: delta,
                    class: sample.class,
                    path: sample.path,
                });
            }
        }
    }

    /// Number of flows currently tracked.
    pub fn active_flows(&self) -> usize {
        self.table.len()
    }

    /// Fraction of samples kept by the sampling filter so far.
    pub fn keep_ratio(&self) -> f64 {
        if self.samples_seen == 0 {
            1.0
        } else {
            self.samples_kept as f64 / self.samples_seen as f64
        }
    }

    /// Drain the flow table into export records.
    pub fn export(&mut self) -> Vec<FlowRecord> {
        let mut out: Vec<FlowRecord> = self
            .table
            .drain()
            .map(|(key, e)| FlowRecord {
                key,
                stats: e.stats,
                class: e.class,
                path: e.path,
            })
            .collect();
        // Deterministic export order (HashMap drain order is not).
        out.sort_by_key(|r| (r.key.src, r.key.dst, r.key.src_port, r.key.dst_port));
        out
    }

    /// Encode `records` into wire messages (chunked), advancing the
    /// sequence counter. Emits v2 frames stamped with the epoch index
    /// when the config carries an epoch hint, v1 frames otherwise.
    pub fn encode_export(
        &mut self,
        export_time_ms: u64,
        records: &[FlowRecord],
    ) -> Vec<bytes::Bytes> {
        let epoch_seq = match self.cfg.epoch_hint_ms {
            Some(ms) if self.cfg.wire_version >= wire::VERSION => Some(export_time_ms / ms),
            _ => None,
        };
        let mut msgs = Vec::new();
        for chunk in records.chunks(self.cfg.max_records_per_message.max(1)) {
            msgs.push(match epoch_seq {
                Some(seq) => {
                    encode_message_v2(self.cfg.agent_id, export_time_ms, self.sequence, seq, chunk)
                }
                None => encode_message(self.cfg.agent_id, export_time_ms, self.sequence, chunk),
            });
            self.sequence += 1;
        }
        msgs
    }
}

/// TCP exporter: connects to a collector and ships encoded messages.
pub struct Exporter {
    stream: TcpStream,
}

impl Exporter {
    /// Connect to a collector.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Exporter { stream })
    }

    /// Send one encoded message.
    pub fn send(&mut self, msg: &[u8]) -> io::Result<()> {
        self.stream.write_all(msg)
    }

    /// Flush and close the connection.
    pub fn finish(mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// Reconnect policy for [`ResilientExporter`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Reconnect attempts per failed send before giving up.
    pub max_attempts: u32,
    /// Backoff before the first reconnect attempt.
    pub base_backoff: Duration,
    /// Backoff cap (doubles per attempt up to this).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// A TCP exporter that survives collector restarts and connection drops:
/// on a send failure it reconnects with exponential backoff and resends
/// the failed message.
///
/// Delivery is at-least-once, not exactly-once: a connection that dies
/// mid-`write_all` may have delivered a torn frame prefix (the collector's
/// decoder resyncs past it) and the retry then delivers the full message
/// again. The stream pipeline's evidence model tolerates duplicates the
/// same way it tolerates re-exports after an agent restart.
pub struct ResilientExporter {
    addr: SocketAddr,
    policy: RetryPolicy,
    stream: Option<TcpStream>,
    ever_connected: bool,
    reconnects: u64,
}

impl ResilientExporter {
    /// Create an exporter for `addr`; the first connection is made lazily
    /// on the first send, so construction never fails.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Self {
        ResilientExporter {
            addr,
            policy,
            stream: None,
            ever_connected: false,
            reconnects: 0,
        }
    }

    /// Times a dead connection was successfully re-established.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Whether a connection is currently established.
    pub fn connected(&self) -> bool {
        self.stream.is_some()
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect(self.addr)?;
            s.set_nodelay(true)?;
            if self.ever_connected {
                self.reconnects += 1;
            }
            self.ever_connected = true;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().unwrap())
    }

    /// Send one encoded message, reconnecting with backoff on failure.
    /// Returns the last IO error once the retry budget is exhausted.
    pub fn send(&mut self, msg: &[u8]) -> io::Result<()> {
        let mut backoff = self.policy.base_backoff;
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..=self.policy.max_attempts {
            match self.connect().and_then(|s| s.write_all(msg)) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    // Drop the dead socket; the next attempt redials.
                    self.stream = None;
                    last_err = Some(e);
                    if attempt < self.policy.max_attempts {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(self.policy.max_backoff);
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("send failed")))
    }

    /// Flush and drop the current connection (if any).
    pub fn finish(mut self) -> io::Result<()> {
        match self.stream.take() {
            Some(mut s) => s.flush(),
            None => Ok(()),
        }
    }
}

fn fnv1a(key: &FlowKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for b in key.src.0.to_be_bytes() {
        step(b);
    }
    for b in key.dst.0.to_be_bytes() {
        step(b);
    }
    for b in key.src_port.to_be_bytes() {
        step(b);
    }
    for b in key.dst_port.to_be_bytes() {
        step(b);
    }
    step(key.proto);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::NodeId;

    fn sample(src: u32, port: u16, retrans: u64) -> FlowSample {
        FlowSample {
            key: FlowKey::tcp(NodeId(src), NodeId(99), port, 80),
            packets: 10,
            retransmissions: retrans,
            bytes: 1000,
            rtt_us: Some(120),
            path: None,
            class: TrafficClass::Passive,
        }
    }

    #[test]
    fn observe_aggregates_by_key() {
        let mut agent = AgentCore::new(AgentConfig::default());
        agent.observe(sample(1, 1000, 0));
        agent.observe(sample(1, 1000, 2));
        agent.observe(sample(2, 1000, 1));
        assert_eq!(agent.active_flows(), 2);
        let recs = agent.export();
        assert_eq!(recs.len(), 2);
        let f1 = recs.iter().find(|r| r.key.src == NodeId(1)).unwrap();
        assert_eq!(f1.stats.packets, 20);
        assert_eq!(f1.stats.retransmissions, 2);
        assert_eq!(f1.stats.rtt_count, 2);
        assert_eq!(agent.active_flows(), 0, "export drains");
    }

    #[test]
    fn path_is_kept_once_known() {
        let mut agent = AgentCore::new(AgentConfig::default());
        let mut s = sample(1, 1000, 0);
        s.path = Some(vec![LinkId(5)]);
        agent.observe(s);
        agent.observe(sample(1, 1000, 0));
        let recs = agent.export();
        assert_eq!(recs[0].path.as_deref(), Some(&[LinkId(5)][..]));
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_proportional() {
        let cfg = AgentConfig {
            sample_rate: 0.25,
            ..Default::default()
        };
        let mut agent = AgentCore::new(cfg);
        for i in 0..4000u32 {
            agent.observe(sample(i, (i % 50000) as u16, 0));
        }
        let ratio = agent.keep_ratio();
        assert!(
            (0.18..0.32).contains(&ratio),
            "keep ratio {ratio} too far from 0.25"
        );
        // Determinism: the same key always gets the same verdict.
        let a2 = AgentCore::new(AgentConfig {
            sample_rate: 0.25,
            ..Default::default()
        });
        for i in 0..4000u32 {
            let k = FlowKey::tcp(NodeId(i), NodeId(99), (i % 50000) as u16, 80);
            assert_eq!(a2.sampled(&k), a2.sampled(&k));
        }
    }

    #[test]
    fn export_chunks_messages() {
        let mut agent = AgentCore::new(AgentConfig {
            max_records_per_message: 2,
            ..Default::default()
        });
        for i in 0..5u32 {
            agent.observe(sample(i, 1000, 0));
        }
        let recs = agent.export();
        let msgs = agent.encode_export(0, &recs);
        assert_eq!(msgs.len(), 3, "5 records at 2/message = 3 messages");
        // Sequences advance per message.
        let m0 = crate::wire::decode_message(&msgs[0]).unwrap();
        let m2 = crate::wire::decode_message(&msgs[2]).unwrap();
        assert_eq!(m0.sequence, 0);
        assert_eq!(m2.sequence, 2);
    }

    #[test]
    fn epoch_hint_stamps_v2_frames() {
        let mut agent = AgentCore::new(AgentConfig {
            epoch_hint_ms: Some(1_000),
            max_records_per_message: 2,
            ..Default::default()
        });
        for i in 0..5u32 {
            agent.observe(sample(i, 1000, 0));
        }
        let recs = agent.export();
        let msgs = agent.encode_export(3_500, &recs);
        assert_eq!(msgs.len(), 3);
        for m in &msgs {
            let decoded = crate::wire::decode_message(m).unwrap();
            assert_eq!(decoded.epoch_seq, Some(3), "3500ms / 1000ms = epoch 3");
        }
        // Forcing v1 drops the hint even when configured.
        let mut v1 = AgentCore::new(AgentConfig {
            epoch_hint_ms: Some(1_000),
            wire_version: crate::wire::VERSION_V1,
            ..Default::default()
        });
        v1.observe(sample(1, 1000, 0));
        let recs = v1.export();
        let msgs = v1.encode_export(3_500, &recs);
        assert_eq!(
            crate::wire::decode_message(&msgs[0]).unwrap().epoch_seq,
            None
        );
    }

    #[test]
    fn resilient_exporter_reconnects_after_peer_close() {
        use crate::wire::encode_message;
        use std::io::Read;
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut exp = ResilientExporter::new(
            addr,
            RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
            },
        );
        let msg = encode_message(1, 0, 0, &[]);
        exp.send(&msg).unwrap();
        assert!(exp.connected());
        assert_eq!(exp.reconnects(), 0);

        // The collector side drops the connection (simulated restart).
        let (mut sock, _) = listener.accept().unwrap();
        let mut sink = [0u8; 256];
        let _ = sock.read(&mut sink);
        drop(sock);

        // Keep exporting: once the dead socket surfaces as a write error
        // the exporter redials (the listener is still accepting).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while exp.reconnects() == 0 && std::time::Instant::now() < deadline {
            exp.send(&msg)
                .expect("send must succeed while redial works");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(exp.reconnects() >= 1, "exporter never re-established");
        let (_replacement, _) = listener.accept().unwrap();
        exp.finish().unwrap();
    }

    #[test]
    fn resilient_exporter_exhausts_retry_budget() {
        // Nothing listens here: connect fails, backoff runs, and the last
        // error is surfaced after max_attempts.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut exp = ResilientExporter::new(
            addr,
            RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
        );
        assert!(exp.send(&[0u8; 4]).is_err());
        assert!(!exp.connected());
        assert_eq!(exp.reconnects(), 0);
    }

    #[test]
    fn probe_class_upgrades_entry() {
        let mut agent = AgentCore::new(AgentConfig::default());
        agent.observe(sample(1, 1000, 0));
        let mut s = sample(1, 1000, 0);
        s.class = TrafficClass::Probe;
        agent.observe(s);
        let recs = agent.export();
        assert_eq!(recs[0].class, TrafficClass::Probe);
    }
}
