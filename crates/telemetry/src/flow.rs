//! Flow identification and per-flow statistics.

use flock_topology::{LinkId, NodeId};
use serde::{Deserialize, Serialize};

/// Identifies a monitored flow.
///
/// Endpoints are topology nodes: hosts for regular traffic, and the target
/// switch for host→spine active probes (A1), mirroring how NetBouncer's
/// IP-in-IP probes address a core switch directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source endpoint (always a host in this suite).
    pub src: NodeId,
    /// Destination endpoint (host, or spine switch for A1 probes).
    pub dst: NodeId,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP for passive flows, 17 = UDP probes).
    pub proto: u8,
}

impl FlowKey {
    /// A TCP flow between two hosts.
    pub fn tcp(src: NodeId, dst: NodeId, src_port: u16, dst_port: u16) -> Self {
        FlowKey {
            src,
            dst,
            src_port,
            dst_port,
            proto: 6,
        }
    }

    /// A UDP probe flow towards a switch.
    pub fn probe(src: NodeId, dst: NodeId, seq: u16) -> Self {
        FlowKey {
            src,
            dst,
            src_port: 33434,
            dst_port: seq,
            proto: 17,
        }
    }
}

/// Aggregated per-flow statistics, as exported by the agent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Data packets sent by the flow source.
    pub packets: u64,
    /// Retransmitted packets — the paper's proxy for "bad packets" in
    /// per-packet analysis (§3.2).
    pub retransmissions: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Sum of sampled RTTs, in microseconds.
    pub rtt_sum_us: u64,
    /// Number of RTT samples folded into `rtt_sum_us`.
    pub rtt_count: u32,
    /// Maximum sampled RTT, in microseconds. Drives the per-flow analysis
    /// mode (flow is "bad" when RTT exceeds a threshold, §3.2/§7.5).
    pub rtt_max_us: u32,
}

impl FlowStats {
    /// Merge another stats record into this one (same flow key).
    pub fn merge(&mut self, other: &FlowStats) {
        self.packets += other.packets;
        self.retransmissions += other.retransmissions;
        self.bytes += other.bytes;
        self.rtt_sum_us += other.rtt_sum_us;
        self.rtt_count += other.rtt_count;
        self.rtt_max_us = self.rtt_max_us.max(other.rtt_max_us);
    }

    /// Mean RTT in microseconds, if any samples were recorded.
    pub fn rtt_mean_us(&self) -> Option<f64> {
        if self.rtt_count == 0 {
            None
        } else {
            Some(self.rtt_sum_us as f64 / self.rtt_count as f64)
        }
    }
}

/// Whether a flow is an active probe or regular application traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// NetBouncer-style active probe with a pinned, known path (A1).
    Probe,
    /// Regular application traffic observed passively (P); its path is
    /// known only if revealed by A2 path tracing or INT.
    Passive,
}

/// A flow record as exported on the wire by an agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Flow identity.
    pub key: FlowKey,
    /// Aggregated statistics.
    pub stats: FlowStats,
    /// Traffic class.
    pub class: TrafficClass,
    /// Exact traversed path (all links, including host attachment links),
    /// when known to the exporter: always for probes, and for passive flows
    /// under INT or after A2 path tracing.
    pub path: Option<Vec<LinkId>>,
}

/// A fully-described monitored flow, as produced by the simulators (which
/// know the ground-truth path) or reconstructed by the collector.
///
/// `true_path` is what the flow *actually* traversed; whether inference
/// gets to see it depends on the telemetry kind selected during input
/// assembly ([`crate::input`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitoredFlow {
    /// Flow identity.
    pub key: FlowKey,
    /// Aggregated statistics.
    pub stats: FlowStats,
    /// Traffic class.
    pub class: TrafficClass,
    /// Ground-truth traversed path (all links, including host links).
    pub true_path: Vec<LinkId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_maxes() {
        let mut a = FlowStats {
            packets: 10,
            retransmissions: 1,
            bytes: 1000,
            rtt_sum_us: 300,
            rtt_count: 3,
            rtt_max_us: 150,
        };
        let b = FlowStats {
            packets: 5,
            retransmissions: 2,
            bytes: 500,
            rtt_sum_us: 400,
            rtt_count: 1,
            rtt_max_us: 400,
        };
        a.merge(&b);
        assert_eq!(a.packets, 15);
        assert_eq!(a.retransmissions, 3);
        assert_eq!(a.bytes, 1500);
        assert_eq!(a.rtt_count, 4);
        assert_eq!(a.rtt_max_us, 400);
        assert!((a.rtt_mean_us().unwrap() - 175.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_mean_empty_is_none() {
        assert_eq!(FlowStats::default().rtt_mean_us(), None);
    }

    #[test]
    fn key_constructors() {
        let k = FlowKey::tcp(NodeId(1), NodeId(2), 4000, 80);
        assert_eq!(k.proto, 6);
        let p = FlowKey::probe(NodeId(1), NodeId(9), 7);
        assert_eq!(p.proto, 17);
        assert_eq!(p.dst_port, 7);
    }
}
