//! The IPFIX-style export wire format.
//!
//! An export *message* carries a fixed header followed by a run of flow
//! records. Each record is a fixed 52-byte stats block — matching the
//! paper's "52 bytes per flow" (§5.1) — optionally followed by a
//! variable-length path attachment when the exporter knows the flow's
//! exact route (probes, INT, A2 traceroutes).
//!
//! Two header versions are in the field. v1 is the original 32-byte
//! header; v2 appends an agent-stamped `epoch_seq:u64` — the index of
//! the collector-agreed tumbling epoch the export belongs to — which
//! lets the collector pre-bucket records by epoch as it decodes and the
//! stream layer skip per-record window re-assignment on drain.
//! Negotiation is per-message and passive: each frame declares its
//! version, a v2 decoder accepts both, so v1 agents keep working against
//! a v2 collector unchanged.
//!
//! ```text
//! message   := header record*
//! header_v1 := magic:u32 version:u16 record_count:u16 msg_len:u32
//!              agent_id:u32 export_time_ms:u64 sequence:u64       (32 B)
//! header_v2 := header_v1 epoch_seq:u64                            (40 B)
//! record    := src:u32 dst:u32 sport:u16 dport:u16 proto:u8 flags:u8
//!              packets:u48 retrans:u48 bytes:u64 rtt_sum_us:u64
//!              rtt_count:u32 rtt_max_us:u32 reserved:u16          (52 B)
//! path      := len:u16 link:u32{len}       (present iff flags & HAS_PATH)
//! ```
//!
//! All integers are big-endian. `msg_len` is the total encoded size of the
//! message including the header, which makes stream framing trivial: a
//! decoder buffers bytes until `msg_len` are available.

use crate::flow::{FlowKey, FlowRecord, FlowStats, TrafficClass};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use flock_topology::{LinkId, NodeId};
use std::fmt;

/// Message magic: `"FLK1"`.
pub const MAGIC: u32 = 0x464c_4b31;
/// The original wire protocol version (no epoch hint).
pub const VERSION_V1: u16 = 1;
/// Current wire protocol version: v2, with the `epoch_seq` header field.
pub const VERSION: u16 = 2;
/// Size of the v1 message header in bytes.
pub const HEADER_LEN: usize = 32;
/// Size of the v2 message header in bytes (v1 plus `epoch_seq:u64`).
pub const HEADER_LEN_V2: usize = 40;
/// Size of the fixed flow-stats record in bytes.
pub const RECORD_LEN: usize = 52;

/// Header size for a given protocol version (panics on unknown versions;
/// decoders reject those before asking).
pub fn header_len(version: u16) -> usize {
    match version {
        VERSION_V1 => HEADER_LEN,
        VERSION => HEADER_LEN_V2,
        v => panic!("unknown wire version {v}"),
    }
}

/// Record flag: a path attachment follows the fixed record.
pub const FLAG_HAS_PATH: u8 = 0b0000_0001;
/// Record flag: the flow is an active probe.
pub const FLAG_PROBE: u8 = 0b0000_0010;

const MAX_PATH_LEN: usize = 64;
const MAX_RECORDS: usize = u16::MAX as usize;

/// Largest `msg_len` a header can legitimately declare: a full v2 header
/// plus `MAX_RECORDS` records each carrying a maximal path attachment.
/// Anything larger is corruption — the framing layer refuses to buffer
/// toward it and resyncs instead.
pub const MAX_MSG_LEN: usize = HEADER_LEN_V2 + MAX_RECORDS * (RECORD_LEN + 2 + MAX_PATH_LEN * 4);

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Magic bytes did not match.
    BadMagic(u32),
    /// Unsupported protocol version.
    BadVersion(u16),
    /// Header-declared length is inconsistent with the decoded content.
    LengthMismatch {
        /// Length the header declared.
        declared: u32,
        /// Length actually consumed.
        consumed: u32,
    },
    /// A path attachment exceeded `MAX_PATH_LEN` entries.
    PathTooLong(u16),
    /// The message was truncated mid-record.
    Truncated,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::LengthMismatch { declared, consumed } => {
                write!(
                    f,
                    "length mismatch: declared {declared}, consumed {consumed}"
                )
            }
            WireError::PathTooLong(n) => write!(f, "path attachment too long: {n}"),
            WireError::Truncated => write!(f, "message truncated"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded export message.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportMessage {
    /// Identifier of the exporting agent.
    pub agent_id: u32,
    /// Export timestamp, milliseconds since an agent-chosen epoch.
    pub export_time_ms: u64,
    /// Per-agent message sequence number.
    pub sequence: u64,
    /// Agent-stamped epoch index (v2 frames only; `None` for v1).
    pub epoch_seq: Option<u64>,
    /// The flow records.
    pub records: Vec<FlowRecord>,
}

/// Encode a v1 export message (no epoch hint). Panics if more than
/// `u16::MAX` records are passed (the agent's exporter chunks before
/// calling this).
pub fn encode_message(
    agent_id: u32,
    export_time_ms: u64,
    sequence: u64,
    records: &[FlowRecord],
) -> Bytes {
    encode_message_impl(agent_id, export_time_ms, sequence, None, records)
}

/// Encode a v2 export message carrying the agent-stamped epoch index.
pub fn encode_message_v2(
    agent_id: u32,
    export_time_ms: u64,
    sequence: u64,
    epoch_seq: u64,
    records: &[FlowRecord],
) -> Bytes {
    encode_message_impl(agent_id, export_time_ms, sequence, Some(epoch_seq), records)
}

fn encode_message_impl(
    agent_id: u32,
    export_time_ms: u64,
    sequence: u64,
    epoch_seq: Option<u64>,
    records: &[FlowRecord],
) -> Bytes {
    assert!(
        records.len() <= MAX_RECORDS,
        "too many records in one message"
    );
    let header = if epoch_seq.is_some() {
        HEADER_LEN_V2
    } else {
        HEADER_LEN
    };
    let mut body = BytesMut::with_capacity(header + records.len() * (RECORD_LEN + 8));
    body.put_u32(MAGIC);
    body.put_u16(if epoch_seq.is_some() {
        VERSION
    } else {
        VERSION_V1
    });
    body.put_u16(records.len() as u16);
    body.put_u32(0); // msg_len backpatched below
    body.put_u32(agent_id);
    body.put_u64(export_time_ms);
    body.put_u64(sequence);
    if let Some(seq) = epoch_seq {
        body.put_u64(seq);
    }
    debug_assert_eq!(body.len(), header);

    for rec in records {
        encode_record(&mut body, rec);
    }
    let len = body.len() as u32;
    body[8..12].copy_from_slice(&len.to_be_bytes());
    body.freeze()
}

fn encode_record(out: &mut BytesMut, rec: &FlowRecord) {
    let mut flags = 0u8;
    if rec.path.is_some() {
        flags |= FLAG_HAS_PATH;
    }
    if rec.class == TrafficClass::Probe {
        flags |= FLAG_PROBE;
    }
    let start = out.len();
    out.put_u32(rec.key.src.0);
    out.put_u32(rec.key.dst.0);
    out.put_u16(rec.key.src_port);
    out.put_u16(rec.key.dst_port);
    out.put_u8(rec.key.proto);
    out.put_u8(flags);
    out.put_uint(rec.stats.packets.min((1 << 48) - 1), 6);
    out.put_uint(rec.stats.retransmissions.min((1 << 48) - 1), 6);
    out.put_u64(rec.stats.bytes);
    out.put_u64(rec.stats.rtt_sum_us);
    out.put_u32(rec.stats.rtt_count);
    out.put_u32(rec.stats.rtt_max_us);
    out.put_u16(0); // reserved
    debug_assert_eq!(out.len() - start, RECORD_LEN);

    if let Some(path) = &rec.path {
        assert!(path.len() <= MAX_PATH_LEN, "path longer than wire maximum");
        out.put_u16(path.len() as u16);
        for l in path {
            out.put_u32(l.0);
        }
    }
}

/// Decode one complete export message from `buf`.
///
/// `buf` must contain exactly one message (as framed by
/// [`StreamDecoder`] or a one-shot caller).
pub fn decode_message(mut buf: &[u8]) -> Result<ExportMessage, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let total = buf.len();
    let magic = buf.get_u32();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = buf.get_u16();
    if version != VERSION_V1 && version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let record_count = buf.get_u16() as usize;
    let msg_len = buf.get_u32();
    let agent_id = buf.get_u32();
    let export_time_ms = buf.get_u64();
    let sequence = buf.get_u64();
    let epoch_seq = if version == VERSION {
        if buf.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        Some(buf.get_u64())
    } else {
        None
    };

    let mut records = Vec::with_capacity(record_count);
    for _ in 0..record_count {
        if buf.remaining() < RECORD_LEN {
            return Err(WireError::Truncated);
        }
        let src = NodeId(buf.get_u32());
        let dst = NodeId(buf.get_u32());
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let proto = buf.get_u8();
        let flags = buf.get_u8();
        let packets = buf.get_uint(6);
        let retransmissions = buf.get_uint(6);
        let bytes = buf.get_u64();
        let rtt_sum_us = buf.get_u64();
        let rtt_count = buf.get_u32();
        let rtt_max_us = buf.get_u32();
        let _reserved = buf.get_u16();

        let path = if flags & FLAG_HAS_PATH != 0 {
            if buf.remaining() < 2 {
                return Err(WireError::Truncated);
            }
            let n = buf.get_u16();
            if n as usize > MAX_PATH_LEN {
                return Err(WireError::PathTooLong(n));
            }
            if buf.remaining() < n as usize * 4 {
                return Err(WireError::Truncated);
            }
            Some((0..n).map(|_| LinkId(buf.get_u32())).collect())
        } else {
            None
        };

        records.push(FlowRecord {
            key: FlowKey {
                src,
                dst,
                src_port,
                dst_port,
                proto,
            },
            stats: FlowStats {
                packets,
                retransmissions,
                bytes,
                rtt_sum_us,
                rtt_count,
                rtt_max_us,
            },
            class: if flags & FLAG_PROBE != 0 {
                TrafficClass::Probe
            } else {
                TrafficClass::Passive
            },
            path,
        });
    }
    let consumed = (total - buf.remaining()) as u32;
    if consumed != msg_len {
        return Err(WireError::LengthMismatch {
            declared: msg_len,
            consumed,
        });
    }
    Ok(ExportMessage {
        agent_id,
        export_time_ms,
        sequence,
        epoch_seq,
        records,
    })
}

/// Incremental stream decoder: feed arbitrary byte chunks, pop complete
/// messages. Used by the collector's per-connection readers.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: BytesMut,
}

impl StreamDecoder {
    /// Create an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append received bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pop the next complete message, if one is fully buffered.
    ///
    /// On a framing/decoding error the buffered data cannot be resynced
    /// (it is a TCP stream we no longer trust), so the decoder drains its
    /// buffer and surfaces the error; the collector drops the connection.
    pub fn next_message(&mut self) -> Result<Option<ExportMessage>, WireError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u32::from_be_bytes(self.buf[0..4].try_into().unwrap());
        if magic != MAGIC {
            self.buf.clear();
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_be_bytes(self.buf[4..6].try_into().unwrap());
        if version != VERSION_V1 && version != VERSION {
            self.buf.clear();
            return Err(WireError::BadVersion(version));
        }
        let msg_len = u32::from_be_bytes(self.buf[8..12].try_into().unwrap()) as usize;
        if msg_len < header_len(version) {
            self.buf.clear();
            return Err(WireError::LengthMismatch {
                declared: msg_len as u32,
                consumed: header_len(version) as u32,
            });
        }
        if self.buf.len() < msg_len {
            return Ok(None);
        }
        let frame = self.buf.split_to(msg_len);
        match decode_message(&frame) {
            Ok(msg) => Ok(Some(msg)),
            Err(e) => {
                self.buf.clear();
                Err(e)
            }
        }
    }

    /// Pop the next decode event without poisoning the stream.
    ///
    /// Unlike [`next_message`](Self::next_message), a malformed region of
    /// the stream does not discard everything buffered: a frame whose
    /// length field is trustworthy but whose content is not is dropped as
    /// a unit ([`DecodeStep::Quarantined`]), and garbage with no usable
    /// header is skipped byte-wise to the next plausible frame boundary
    /// ([`DecodeStep::Resynced`]). The caller decides when accumulated
    /// quarantine/resync volume crosses its kill threshold — teardown is
    /// a policy decision, not a framing side effect.
    pub fn next_step(&mut self) -> DecodeStep {
        if self.buf.len() < HEADER_LEN {
            return DecodeStep::NeedMore;
        }
        let magic = u32::from_be_bytes(self.buf[0..4].try_into().unwrap());
        if magic != MAGIC {
            return self.resync(WireError::BadMagic(magic));
        }
        let version = u16::from_be_bytes(self.buf[4..6].try_into().unwrap());
        let msg_len = u32::from_be_bytes(self.buf[8..12].try_into().unwrap()) as usize;
        let known_version = version == VERSION_V1 || version == VERSION;
        // The declared length is only trusted inside sane bounds; an insane
        // length means the header itself is corrupt, so frame-skipping
        // would desynchronize us further — hunt for the next magic instead.
        let min_len = if known_version {
            header_len(version)
        } else {
            HEADER_LEN
        };
        if msg_len < min_len || msg_len > MAX_MSG_LEN {
            return self.resync(WireError::LengthMismatch {
                declared: msg_len as u32,
                consumed: min_len as u32,
            });
        }
        if self.buf.len() < msg_len {
            return DecodeStep::NeedMore;
        }
        if !known_version {
            // Length-framed but undecodable: drop exactly this frame and
            // keep the boundary for the next one.
            let _ = self.buf.split_to(msg_len);
            return DecodeStep::Quarantined(WireError::BadVersion(version));
        }
        let frame = self.buf.split_to(msg_len);
        match decode_message(&frame) {
            Ok(msg) => DecodeStep::Message(msg),
            // The frame was consumed whole, so the stream position is
            // still aligned; only this message is lost.
            Err(e) => DecodeStep::Quarantined(e),
        }
    }

    /// Skip at least one byte, then scan for the next `MAGIC` occurrence.
    /// Keeps up to 3 tail bytes (a potential partial magic) buffered when
    /// no full match is found.
    fn resync(&mut self, cause: WireError) -> DecodeStep {
        let magic = MAGIC.to_be_bytes();
        let dropped = match self.buf[1..].windows(4).position(|w| w == magic) {
            Some(i) => 1 + i,
            None => self.buf.len().saturating_sub(3).max(1),
        };
        let _ = self.buf.split_to(dropped);
        DecodeStep::Resynced { dropped, cause }
    }

    /// Bytes currently buffered (for tests/diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// One step of fault-tolerant stream decoding ([`StreamDecoder::next_step`]).
///
/// `Quarantined` and `Resynced` are progress, not termination: the caller
/// should count them (per [`WireError`] cause) and keep stepping; the
/// stream stays usable unless the caller's own quarantine budget decides
/// otherwise.
#[derive(Debug)]
pub enum DecodeStep {
    /// A complete, valid message.
    Message(ExportMessage),
    /// Not enough buffered bytes for the next frame; feed more.
    NeedMore,
    /// A length-framed message failed decoding; the whole frame was
    /// discarded and the stream is still aligned on the next boundary.
    Quarantined(WireError),
    /// Garbage at the head of the stream: `dropped` bytes were skipped to
    /// the next plausible frame boundary (or to a 3-byte tail when no
    /// magic was found in the buffered window).
    Resynced {
        /// Bytes discarded while hunting for the next magic.
        dropped: usize,
        /// What made the head undecodable.
        cause: WireError,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<FlowRecord> {
        vec![
            FlowRecord {
                key: FlowKey::tcp(NodeId(3), NodeId(9), 4001, 80),
                stats: FlowStats {
                    packets: 1234,
                    retransmissions: 7,
                    bytes: 1_850_000,
                    rtt_sum_us: 55_000,
                    rtt_count: 11,
                    rtt_max_us: 9_000,
                },
                class: TrafficClass::Passive,
                path: None,
            },
            FlowRecord {
                key: FlowKey::probe(NodeId(3), NodeId(40), 2),
                stats: FlowStats {
                    packets: 40,
                    retransmissions: 1,
                    bytes: 4_000,
                    rtt_sum_us: 2_000,
                    rtt_count: 39,
                    rtt_max_us: 80,
                },
                class: TrafficClass::Probe,
                path: Some(vec![
                    LinkId(0),
                    LinkId(8),
                    LinkId(22),
                    LinkId(23),
                    LinkId(9),
                    LinkId(1),
                ]),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let recs = sample_records();
        let bytes = encode_message(42, 1111, 5, &recs);
        let msg = decode_message(&bytes).unwrap();
        assert_eq!(msg.agent_id, 42);
        assert_eq!(msg.export_time_ms, 1111);
        assert_eq!(msg.sequence, 5);
        assert_eq!(msg.epoch_seq, None, "v1 frames carry no epoch hint");
        assert_eq!(msg.records, recs);
    }

    #[test]
    fn v2_roundtrip_carries_epoch_seq() {
        let recs = sample_records();
        let bytes = encode_message_v2(42, 61_500, 5, 2, &recs);
        let msg = decode_message(&bytes).unwrap();
        assert_eq!(msg.agent_id, 42);
        assert_eq!(msg.export_time_ms, 61_500);
        assert_eq!(msg.sequence, 5);
        assert_eq!(msg.epoch_seq, Some(2));
        assert_eq!(msg.records, recs);
    }

    #[test]
    fn v2_header_is_exactly_40_bytes() {
        let bytes = encode_message_v2(0, 0, 0, 7, &[]);
        assert_eq!(bytes.len(), HEADER_LEN_V2);
        assert_eq!(u16::from_be_bytes(bytes[4..6].try_into().unwrap()), VERSION);
    }

    #[test]
    fn stream_decoder_handles_mixed_versions() {
        let recs = sample_records();
        let mut all = Vec::new();
        all.extend_from_slice(&encode_message(1, 10, 0, &recs));
        all.extend_from_slice(&encode_message_v2(1, 1_500, 1, 1, &recs[..1]));
        all.extend_from_slice(&encode_message(1, 20, 2, &recs));

        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for chunk in all.chunks(11) {
            dec.feed(chunk);
            while let Some(msg) = dec.next_message().unwrap() {
                out.push(msg);
            }
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].epoch_seq, None);
        assert_eq!(out[1].epoch_seq, Some(1));
        assert_eq!(out[1].records.len(), 1);
        assert_eq!(out[2].epoch_seq, None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn stream_decoder_rejects_unknown_version_early() {
        let mut dec = StreamDecoder::new();
        let mut hdr = encode_message(1, 0, 0, &[]).to_vec();
        hdr[4..6].copy_from_slice(&9u16.to_be_bytes());
        dec.feed(&hdr);
        assert!(matches!(dec.next_message(), Err(WireError::BadVersion(9))));
        assert_eq!(dec.buffered(), 0, "poisoned buffer must be dropped");
    }

    #[test]
    fn record_is_exactly_52_bytes_without_path() {
        let recs = vec![FlowRecord {
            key: FlowKey::tcp(NodeId(0), NodeId(1), 1, 2),
            stats: FlowStats::default(),
            class: TrafficClass::Passive,
            path: None,
        }];
        let bytes = encode_message(0, 0, 0, &recs);
        assert_eq!(bytes.len(), HEADER_LEN + RECORD_LEN);
    }

    #[test]
    fn stream_decoder_reassembles_split_messages() {
        let recs = sample_records();
        let m1 = encode_message(1, 10, 0, &recs);
        let m2 = encode_message(1, 20, 1, &recs[..1]);
        let mut all = Vec::new();
        all.extend_from_slice(&m1);
        all.extend_from_slice(&m2);

        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        // Feed in awkward 7-byte chunks.
        for chunk in all.chunks(7) {
            dec.feed(chunk);
            while let Some(msg) = dec.next_message().unwrap() {
                out.push(msg);
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].sequence, 0);
        assert_eq!(out[1].sequence, 1);
        assert_eq!(out[1].records.len(), 1);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut dec = StreamDecoder::new();
        dec.feed(&[0u8; HEADER_LEN]);
        assert!(matches!(dec.next_message(), Err(WireError::BadMagic(0))));
        assert_eq!(dec.buffered(), 0, "poisoned buffer must be dropped");
    }

    #[test]
    fn truncated_message_is_detected() {
        let recs = sample_records();
        let bytes = encode_message(42, 0, 0, &recs);
        // Chop the message: the one-shot decoder must not panic.
        for cut in [HEADER_LEN - 1, HEADER_LEN + 10, bytes.len() - 1] {
            let err = decode_message(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::LengthMismatch { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn version_check() {
        let recs = sample_records();
        let bytes = encode_message(42, 0, 0, &recs);
        let mut bad = bytes.to_vec();
        bad[4..6].copy_from_slice(&99u16.to_be_bytes());
        assert_eq!(decode_message(&bad), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn oversized_path_rejected_on_decode() {
        let recs = vec![FlowRecord {
            key: FlowKey::tcp(NodeId(0), NodeId(1), 1, 2),
            stats: FlowStats::default(),
            class: TrafficClass::Passive,
            path: Some(vec![LinkId(1); 4]),
        }];
        let bytes = encode_message(0, 0, 0, &recs);
        let mut bad = bytes.to_vec();
        // Overwrite the path length field with a huge value.
        let off = HEADER_LEN + RECORD_LEN;
        bad[off..off + 2].copy_from_slice(&1000u16.to_be_bytes());
        assert!(matches!(
            decode_message(&bad),
            Err(WireError::PathTooLong(1000)) | Err(WireError::Truncated)
        ));
    }

    #[test]
    fn next_step_resyncs_across_garbage() {
        let recs = sample_records();
        let good = encode_message_v2(7, 100, 0, 1, &recs);
        let mut all = Vec::new();
        all.extend_from_slice(&good);
        all.extend_from_slice(&[0xde; 57]); // garbage, no magic
        all.extend_from_slice(&good);

        let mut dec = StreamDecoder::new();
        dec.feed(&all);
        let mut msgs = 0;
        let mut resyncs = 0;
        let mut dropped = 0;
        loop {
            match dec.next_step() {
                DecodeStep::Message(_) => msgs += 1,
                DecodeStep::Resynced { dropped: d, cause } => {
                    assert!(matches!(cause, WireError::BadMagic(_)));
                    resyncs += 1;
                    dropped += d;
                }
                DecodeStep::Quarantined(e) => panic!("unexpected quarantine: {e}"),
                DecodeStep::NeedMore => break,
            }
        }
        assert_eq!(msgs, 2, "both framed messages survive the garbage");
        assert!(resyncs >= 1);
        assert_eq!(dropped, 57, "exactly the garbage bytes are dropped");
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn next_step_quarantines_bad_frame_and_keeps_alignment() {
        let recs = sample_records();
        let good = encode_message(7, 100, 0, &recs);
        // Corrupt the path-length field of the second record so the frame
        // decodes inconsistently but the outer length framing is intact.
        let mut bad = good.to_vec();
        let off = HEADER_LEN + RECORD_LEN * 2; // m2's path-length field
        bad[off..off + 2].copy_from_slice(&1000u16.to_be_bytes());

        let mut dec = StreamDecoder::new();
        dec.feed(&bad);
        dec.feed(&good);
        match dec.next_step() {
            DecodeStep::Quarantined(_) => {}
            other => panic!("expected quarantine, got {other:?}"),
        }
        match dec.next_step() {
            DecodeStep::Message(m) => assert_eq!(m.records, recs),
            other => panic!("expected the following message, got {other:?}"),
        }
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn next_step_quarantines_unknown_version_by_frame() {
        let recs = sample_records();
        let good = encode_message(7, 100, 0, &recs);
        let mut bad = good.to_vec();
        bad[4..6].copy_from_slice(&9u16.to_be_bytes());

        let mut dec = StreamDecoder::new();
        dec.feed(&bad);
        dec.feed(&good);
        assert!(matches!(
            dec.next_step(),
            DecodeStep::Quarantined(WireError::BadVersion(9))
        ));
        assert!(matches!(dec.next_step(), DecodeStep::Message(_)));
    }

    #[test]
    fn next_step_resyncs_on_insane_length() {
        let recs = sample_records();
        let good = encode_message(7, 100, 0, &recs);
        let mut bad = good.to_vec();
        bad[8..12].copy_from_slice(&u32::MAX.to_be_bytes());

        let mut dec = StreamDecoder::new();
        dec.feed(&bad);
        dec.feed(&good);
        // The corrupt header is skipped via resync (possibly in several
        // hops), then the good message decodes.
        let mut saw_resync = false;
        loop {
            match dec.next_step() {
                DecodeStep::Resynced { cause, .. } => {
                    saw_resync = true;
                    assert!(matches!(
                        cause,
                        WireError::LengthMismatch { .. } | WireError::BadMagic(_)
                    ));
                }
                DecodeStep::Message(m) => {
                    assert_eq!(m.records, recs);
                    break;
                }
                DecodeStep::Quarantined(_) => {}
                DecodeStep::NeedMore => panic!("decoder stalled"),
            }
        }
        assert!(saw_resync);
    }

    #[test]
    fn u48_saturation() {
        let recs = vec![FlowRecord {
            key: FlowKey::tcp(NodeId(0), NodeId(1), 1, 2),
            stats: FlowStats {
                packets: u64::MAX,
                retransmissions: u64::MAX,
                ..Default::default()
            },
            class: TrafficClass::Passive,
            path: None,
        }];
        let bytes = encode_message(0, 0, 0, &recs);
        let msg = decode_message(&bytes).unwrap();
        assert_eq!(msg.records[0].stats.packets, (1 << 48) - 1);
    }
}
