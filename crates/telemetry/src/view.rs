//! Per-shard arena views: dense local projections of a [`PathArena`].
//!
//! A sharded executor runs one inference engine per shard, each over the
//! subset of the epoch's observations its relevance filter accepts. The
//! shared [`PathArena`] interns *every* shard's paths and sets, so an
//! engine indexing its state by global ids pays O(total arena) fixed
//! costs every epoch — full-array resets on rebind, all-sets sweeps,
//! strided access over globally-indexed arrays — even when its own
//! evidence is a small slice. An [`ArenaView`] removes that coupling:
//! it projects the global arena onto the paths and sets one shard's
//! accepted observations actually touch, with **dense local ids** and
//! local↔global remap tables, so everything an engine allocates and
//! iterates can be sized by the shard's evidence instead of the fleet's.
//!
//! # Ownership and lineage rules
//!
//! * A view binds to one arena **lineage** ([`PathArena::lineage`]) on
//!   first use and is append-only from then on, mirroring the arena's
//!   own contract: local ids, once assigned, permanently denote the same
//!   global path/set. Holders of local ids (an engine's per-path and
//!   per-set structures, a warm-start hypothesis) stay valid across
//!   epochs without re-translation.
//! * [`ArenaView::bind_epoch`] *validates* the arena each epoch and
//!   rejects a shrunk or foreign-lineage arena with a typed
//!   [`ViewError`] — the conditions that were previously only a
//!   `debug_assert` in the engine's rebind path (silent state corruption
//!   in release builds) are now a real error path.
//! * One view serves one shard. The view records which observations the
//!   shard accepted *this epoch* ([`ArenaView::epoch_flows`]); the
//!   projection itself (`sets`/`paths` tables) persists and only grows.
//!
//! # Local-vs-global id conventions
//!
//! Local ids are plain `u32`s dense in `0..n`, assigned in first-touch
//! order. Global ids keep their [`PathId`]/[`PathSetId`] newtypes. APIs
//! on this type take and return global newtypes at the boundary
//! (`local_set(PathSetId)`, `global_path(local) -> PathId`) so the two
//! spaces cannot be confused silently; engines built over a view follow
//! the same convention (dense local component ids internally, global
//! [`Component`](flock_topology::Component)s at report time).

use crate::input::{FlowObs, ObservationSet, PathArena, PathId, PathSetId};

/// Why a view refused to bind an observation set. Both cases mean the
/// caller handed state from a different stream (or rolled an arena
/// back), which would silently scramble every local↔global mapping if
/// accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewError {
    /// The arena's lineage token differs from the one the view bound at
    /// first use: ids interned against one arena are meaningless against
    /// the other.
    ForeignLineage {
        /// Lineage the view is bound to.
        expected: u64,
        /// Lineage of the offered arena.
        got: u64,
    },
    /// The arena has fewer paths or sets than the view has already
    /// projected — arenas are append-only, so a shrunk arena cannot be a
    /// later state of the bound lineage.
    ArenaShrunk {
        /// Paths/sets the view has seen.
        seen_paths: usize,
        /// Sets the view has seen.
        seen_sets: usize,
        /// Paths in the offered arena.
        got_paths: usize,
        /// Sets in the offered arena.
        got_sets: usize,
    },
    /// A consumer of local ids (an engine) was offered a different view
    /// than the one its structures were built over: local ids are only
    /// meaningful against the view that assigned them.
    ForeignView {
        /// View identity the consumer is bound to.
        expected: u64,
        /// Identity of the offered view.
        got: u64,
    },
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::ForeignLineage { expected, got } => write!(
                f,
                "arena lineage {got} does not extend the view's bound lineage {expected}"
            ),
            ViewError::ArenaShrunk {
                seen_paths,
                seen_sets,
                got_paths,
                got_sets,
            } => write!(
                f,
                "arena shrank below the view's coverage \
                 (paths {got_paths} < {seen_paths} or sets {got_sets} < {seen_sets})"
            ),
            ViewError::ForeignView { expected, got } => write!(
                f,
                "view {got} is not the view ({expected}) these local ids were assigned by"
            ),
        }
    }
}

impl std::error::Error for ViewError {}

const NONE: u32 = u32::MAX;

/// A dense first-touch remap between one global id space and local ids:
/// `local(g)` answers from a global-width sentinel table, `assign(g)`
/// hands out the next dense id on first touch, `global(l)` inverts.
/// One implementation serves every localization in the suite — the
/// view's path and set projections here, and the engine's component
/// localization in `flock-core` — so invariants (sentinel handling,
/// id-width growth, a future compaction pass) live in one place.
#[derive(Debug, Clone, Default)]
pub struct DenseRemap {
    /// Global id → local id (`u32::MAX` = unassigned).
    to_local: Vec<u32>,
    /// Local id → global id.
    to_global: Vec<u32>,
}

impl DenseRemap {
    /// An empty remap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Widen the global-id side to cover ids `0..n` (no local ids are
    /// assigned).
    pub fn ensure_ids(&mut self, n: usize) {
        if self.to_local.len() < n {
            self.to_local.resize(n, NONE);
        }
    }

    /// Number of assigned local ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// Whether no local ids have been assigned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }

    /// Local id of `g`, if assigned.
    #[inline]
    pub fn local(&self, g: u32) -> Option<u32> {
        match self.to_local.get(g as usize) {
            Some(&l) if l != NONE => Some(l),
            _ => None,
        }
    }

    /// Global id behind local id `l`.
    #[inline]
    pub fn global(&self, l: u32) -> u32 {
        self.to_global[l as usize]
    }

    /// The full local→global table as a contiguous slice, indexed by
    /// local id. Vectorized scans (e.g. the greedy argmax kernels, which
    /// break gain ties toward the smallest *global* id) read this
    /// directly instead of calling [`DenseRemap::global`] per element.
    #[inline]
    pub fn globals(&self) -> &[u32] {
        &self.to_global
    }

    /// Local id of `g`, assigning the next dense id on first touch.
    /// `g` must be covered by [`DenseRemap::ensure_ids`].
    #[inline]
    pub fn assign(&mut self, g: u32) -> u32 {
        let slot = &mut self.to_local[g as usize];
        if *slot == NONE {
            *slot = self.to_global.len() as u32;
            self.to_global.push(g);
        }
        *slot
    }
}

/// A persistent, incrementally-extended projection of one shard's slice
/// of a global [`PathArena`]. See the module docs for the ownership and
/// id conventions.
#[derive(Debug)]
pub struct ArenaView {
    /// Process-unique identity token. Lets holders of local ids
    /// (engines) verify a view is the one that assigned them; cloning
    /// stamps a *fresh* token, because two clones that diverge after the
    /// copy assign conflicting local ids — a clone serves a new
    /// consumer, never an existing engine.
    id: u64,
    /// Lineage of the bound arena (`None` until the first bind).
    lineage: Option<u64>,
    /// Global↔local path projection.
    paths: DenseRemap,
    /// Global↔local set projection.
    sets: DenseRemap,
    /// Arena growth watermarks at the last successful bind.
    seen_paths: usize,
    seen_sets: usize,
    /// Indices (into `obs.flows`) of the observations the shard's filter
    /// accepted this epoch, in observation order (preserving the
    /// assembler's evidence-key sort, which coalescing relies on).
    epoch_flows: Vec<u32>,
}

impl Clone for ArenaView {
    fn clone(&self) -> Self {
        ArenaView {
            id: next_view_id(),
            lineage: self.lineage,
            paths: self.paths.clone(),
            sets: self.sets.clone(),
            seen_paths: self.seen_paths,
            seen_sets: self.seen_sets,
            epoch_flows: self.epoch_flows.clone(),
        }
    }
}

fn next_view_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

impl Default for ArenaView {
    fn default() -> Self {
        ArenaView {
            id: next_view_id(),
            lineage: None,
            paths: DenseRemap::new(),
            sets: DenseRemap::new(),
            seen_paths: 0,
            seen_sets: 0,
            epoch_flows: Vec::new(),
        }
    }
}

impl ArenaView {
    /// An empty, unbound view.
    pub fn new() -> Self {
        Self::default()
    }

    /// The view's process-unique identity token.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The arena lineage this view is bound to (`None` before first
    /// bind).
    pub fn lineage(&self) -> Option<u64> {
        self.lineage
    }

    /// Number of locally-projected paths.
    pub fn n_paths(&self) -> usize {
        self.paths.len()
    }

    /// Number of locally-projected sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Local id of a global set, if projected.
    #[inline]
    pub fn local_set(&self, g: PathSetId) -> Option<u32> {
        self.sets.local(g.0)
    }

    /// Local id of a global path, if projected.
    #[inline]
    pub fn local_path(&self, g: PathId) -> Option<u32> {
        self.paths.local(g.0)
    }

    /// Global set behind a local id.
    #[inline]
    pub fn global_set(&self, local: u32) -> PathSetId {
        PathSetId(self.sets.global(local))
    }

    /// Global path behind a local id.
    #[inline]
    pub fn global_path(&self, local: u32) -> PathId {
        PathId(self.paths.global(local))
    }

    /// Check that `arena` is a state of the bound lineage at least as
    /// large as the last successful bind — i.e. every global id this
    /// view has handed out resolves in `arena`. Consumers of the view's
    /// local ids (engines) call this before indexing an offered arena,
    /// so a mismatched observation set is a typed error, not silent
    /// misindexing.
    pub fn covers(&self, arena: &PathArena) -> Result<(), ViewError> {
        match self.lineage {
            Some(expected) if expected == arena.lineage() => {}
            other => {
                return Err(ViewError::ForeignLineage {
                    expected: other.unwrap_or(0),
                    got: arena.lineage(),
                });
            }
        }
        if arena.path_count() < self.seen_paths || arena.set_count() < self.seen_sets {
            return Err(ViewError::ArenaShrunk {
                seen_paths: self.seen_paths,
                seen_sets: self.seen_sets,
                got_paths: arena.path_count(),
                got_sets: arena.set_count(),
            });
        }
        Ok(())
    }

    /// The observations accepted this epoch, as indices into the bound
    /// `obs.flows`, in observation order.
    pub fn epoch_flows(&self) -> &[u32] {
        &self.epoch_flows
    }

    /// Validate `obs`'s arena against the bound lineage, record the
    /// epoch's accepted observations, and extend the projection with any
    /// set (and its member paths) an accepted observation touches for
    /// the first time.
    ///
    /// `filter` sees each observation's index in `obs.flows` plus the
    /// observation, exactly like the engine-level flow filters, so
    /// executors can answer from per-epoch precomputed signatures in
    /// O(1). On error the view is unchanged (the epoch flow list is
    /// cleared, never partially filled).
    pub fn bind_epoch(
        &mut self,
        obs: &ObservationSet,
        mut filter: impl FnMut(usize, &FlowObs) -> bool,
    ) -> Result<(), ViewError> {
        self.validate(&obs.arena)?;
        self.epoch_flows.clear();
        // Remap tables cover the whole arena (they are id-width, not
        // content-width — the dense structures an engine sizes by view
        // counts are what sparsity is about).
        self.paths.ensure_ids(obs.arena.path_count());
        self.sets.ensure_ids(obs.arena.set_count());
        for (i, o) in obs.flows.iter().enumerate() {
            if !filter(i, o) {
                continue;
            }
            self.epoch_flows.push(i as u32);
            self.project_set(&obs.arena, o.set);
        }
        self.seen_paths = obs.arena.path_count();
        self.seen_sets = obs.arena.set_count();
        Ok(())
    }

    /// [`bind_epoch`](Self::bind_epoch) from a precomputed accept list:
    /// `accepted` holds the indices (into `obs.flows`, ascending) of the
    /// observations this shard takes. The pipelined executor derives
    /// accept lists for every shard in one pass over the epoch's touch
    /// signatures during the assembly stage, so the per-shard bind on
    /// the inference critical path is O(accepted), not O(observations).
    pub fn bind_epoch_indices(
        &mut self,
        obs: &ObservationSet,
        accepted: &[u32],
    ) -> Result<(), ViewError> {
        self.validate(&obs.arena)?;
        self.epoch_flows.clear();
        self.paths.ensure_ids(obs.arena.path_count());
        self.sets.ensure_ids(obs.arena.set_count());
        for &i in accepted {
            self.epoch_flows.push(i);
            self.project_set(&obs.arena, obs.flows[i as usize].set);
        }
        self.seen_paths = obs.arena.path_count();
        self.seen_sets = obs.arena.set_count();
        Ok(())
    }

    /// Check that `arena` is a later state of the bound lineage.
    fn validate(&mut self, arena: &PathArena) -> Result<(), ViewError> {
        match self.lineage {
            None => self.lineage = Some(arena.lineage()),
            Some(expected) if expected != arena.lineage() => {
                return Err(ViewError::ForeignLineage {
                    expected,
                    got: arena.lineage(),
                });
            }
            Some(_) => {}
        }
        if arena.path_count() < self.seen_paths || arena.set_count() < self.seen_sets {
            return Err(ViewError::ArenaShrunk {
                seen_paths: self.seen_paths,
                seen_sets: self.seen_sets,
                got_paths: arena.path_count(),
                got_sets: arena.set_count(),
            });
        }
        Ok(())
    }

    /// Assign a local id to `g` (and to each of its member paths) if it
    /// has none yet.
    fn project_set(&mut self, arena: &PathArena, g: PathSetId) {
        if self.sets.local(g.0).is_some() {
            return;
        }
        self.sets.assign(g.0);
        for &p in arena.set(g) {
            self.paths.assign(p.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AnalysisMode;
    use flock_topology::LinkId;

    fn obs_with(arena: PathArena, sets: &[PathSetId]) -> ObservationSet {
        let flows = sets
            .iter()
            .map(|&s| FlowObs {
                prefix: [None, None],
                set: s,
                sent: 10,
                bad: 0,
                weight: 1,
            })
            .collect();
        ObservationSet {
            arena,
            flows,
            mode: AnalysisMode::PerPacket,
        }
    }

    fn links(ids: &[u32]) -> Vec<LinkId> {
        ids.iter().map(|&i| LinkId(i)).collect()
    }

    #[test]
    fn projection_is_dense_and_stable_across_epochs() {
        let mut arena = PathArena::new();
        let s0 = arena.intern_single(&links(&[0, 1]));
        let s1 = arena.intern_single(&links(&[2, 3]));
        let obs1 = obs_with(arena, &[s1, s0, s1]);

        let mut view = ArenaView::new();
        view.bind_epoch(&obs1, |_, _| true).unwrap();
        assert_eq!(view.epoch_flows(), &[0, 1, 2]);
        assert_eq!(view.n_sets(), 2);
        assert_eq!(view.n_paths(), 2);
        // First-touch order: s1 before s0.
        assert_eq!(view.local_set(s1), Some(0));
        assert_eq!(view.local_set(s0), Some(1));
        assert_eq!(view.global_set(0), s1);

        // Epoch 2: the arena grows; previously assigned locals persist.
        let mut arena = obs1.arena;
        let s2 = arena.intern_single(&links(&[4]));
        let obs2 = obs_with(arena, &[s2, s0]);
        view.bind_epoch(&obs2, |_, _| true).unwrap();
        assert_eq!(view.local_set(s1), Some(0), "locals are stable");
        assert_eq!(view.local_set(s0), Some(1));
        assert_eq!(view.local_set(s2), Some(2));
        assert_eq!(view.epoch_flows(), &[0, 1]);
    }

    #[test]
    fn filter_restricts_projection() {
        let mut arena = PathArena::new();
        let s0 = arena.intern_single(&links(&[0]));
        let s1 = arena.intern_single(&links(&[1]));
        let obs = obs_with(arena, &[s0, s1, s0]);
        let mut view = ArenaView::new();
        view.bind_epoch(&obs, |i, _| i != 1).unwrap();
        assert_eq!(view.epoch_flows(), &[0, 2]);
        assert_eq!(view.n_sets(), 1, "the filtered-out set is unprojected");
        assert_eq!(view.local_set(s1), None);
    }

    #[test]
    fn foreign_lineage_is_a_typed_error() {
        let mut a = PathArena::new();
        let s = a.intern_single(&links(&[0]));
        let obs_a = obs_with(a, &[s]);
        let mut view = ArenaView::new();
        view.bind_epoch(&obs_a, |_, _| true).unwrap();

        let mut b = PathArena::new();
        let sb = b.intern_single(&links(&[0]));
        let obs_b = obs_with(b, &[sb]);
        let err = view.bind_epoch(&obs_b, |_, _| true).unwrap_err();
        assert!(matches!(err, ViewError::ForeignLineage { .. }), "{err}");
        // The view still works against its own lineage.
        view.bind_epoch(&obs_a, |_, _| true).unwrap();
    }

    #[test]
    fn shrunk_arena_is_a_typed_error() {
        // A clone shares the lineage token, so binding to an extended
        // clone and then offering the original models an arena rolled
        // back to an earlier state of the same lineage.
        let mut arena = PathArena::new();
        let s0 = arena.intern_single(&links(&[0]));
        let s1 = arena.intern_single(&links(&[1]));
        let mut extended = arena.clone();
        extended.intern_single(&links(&[2]));

        let obs_big = obs_with(extended, &[s0, s1]);
        let mut view = ArenaView::new();
        view.bind_epoch(&obs_big, |_, _| true).unwrap();
        let obs_small = obs_with(arena, &[s0]);
        let err = view.bind_epoch(&obs_small, |_, _| true).unwrap_err();
        assert!(matches!(err, ViewError::ArenaShrunk { .. }), "{err}");
    }
}
