//! The central telemetry collector (§5.1, Fig. 7).
//!
//! A TCP listener accepts connections from many agents; each connection is
//! served by a reader thread that frames and decodes export messages and
//! appends the records to a shared store. The inference engine drains the
//! store periodically (every 30 s in the paper). Throughput counters allow
//! the Fig. 7 scalability experiment (connections/sec × records/conn) to
//! be reproduced against the real socket path.

use crate::flow::FlowRecord;
use crate::wire::StreamDecoder;
use parking_lot::Mutex;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A flow record together with the export-message metadata the online
/// pipeline windows on: which agent sent it and the agent's export
/// timestamp (milliseconds, agent-chosen epoch). The offline path
/// ([`Collector::drain`]) discards the stamp; the streaming path
/// ([`Collector::drain_stamped`]) preserves it for epoch assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedRecord {
    /// Agent that exported the record.
    pub agent_id: u32,
    /// `export_time_ms` of the carrying export message.
    pub export_ms: u64,
    /// The flow record itself.
    pub record: FlowRecord,
}

/// Monotonic counters describing collector activity.
#[derive(Debug, Default)]
pub struct CollectorStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Messages decoded.
    pub messages: AtomicU64,
    /// Flow records received.
    pub records: AtomicU64,
    /// Bytes read off sockets.
    pub bytes: AtomicU64,
    /// Connections dropped due to decode errors.
    pub decode_errors: AtomicU64,
}

impl CollectorStats {
    /// Snapshot the counters as plain integers
    /// `(connections, messages, records, bytes, decode_errors)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.connections.load(Ordering::Relaxed),
            self.messages.load(Ordering::Relaxed),
            self.records.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.decode_errors.load(Ordering::Relaxed),
        )
    }
}

/// A running collector. Dropping it (or calling [`Collector::shutdown`])
/// stops the accept loop and joins the reader threads.
pub struct Collector {
    addr: SocketAddr,
    store: Arc<Mutex<Vec<StampedRecord>>>,
    stats: Arc<CollectorStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Collector {
    /// Bind a collector to `addr` (use port 0 for an ephemeral port) and
    /// start accepting agent connections.
    pub fn bind(addr: SocketAddr) -> std::io::Result<Collector> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let store: Arc<Mutex<Vec<StampedRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(CollectorStats::default());
        let stop = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let store = Arc::clone(&store);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("flock-collector-accept".into())
                .spawn(move || accept_loop(listener, store, stats, stop))
                .expect("spawn collector accept thread")
        };

        Ok(Collector {
            addr: local,
            store,
            stats,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drain all records received so far, discarding export stamps.
    pub fn drain(&self) -> Vec<FlowRecord> {
        self.drain_stamped().into_iter().map(|s| s.record).collect()
    }

    /// Drain all records received so far with their agent/export stamps —
    /// the entry point of the epoch-windowing stream layer.
    pub fn drain_stamped(&self) -> Vec<StampedRecord> {
        std::mem::take(&mut *self.store.lock())
    }

    /// Number of records currently buffered.
    pub fn pending(&self) -> usize {
        self.store.lock().len()
    }

    /// Activity counters.
    pub fn stats(&self) -> &CollectorStats {
        &self.stats
    }

    /// Stop the collector and join its threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    store: Arc<Mutex<Vec<StampedRecord>>>,
    stats: Arc<CollectorStats>,
    stop: Arc<AtomicBool>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    'accepting: while !stop.load(Ordering::SeqCst) {
        // Drain every pending connection before sleeping: under a
        // connection storm (Fig. 7's 8K connections/sec) a
        // one-accept-per-poll loop becomes the bottleneck.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    let store = Arc::clone(&store);
                    let stats = Arc::clone(&stats);
                    let stop = Arc::clone(&stop);
                    readers.push(
                        std::thread::Builder::new()
                            .name("flock-collector-conn".into())
                            .spawn(move || reader_loop(stream, store, stats, stop))
                            .expect("spawn collector reader thread"),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break 'accepting,
            }
        }
        std::thread::sleep(Duration::from_micros(200));
        // Reap finished readers opportunistically to bound the vec.
        readers.retain(|h| !h.is_finished());
    }
    for h in readers {
        let _ = h.join();
    }
}

fn reader_loop(
    mut stream: TcpStream,
    store: Arc<Mutex<Vec<StampedRecord>>>,
    stats: Arc<CollectorStats>,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut decoder = StreamDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // agent closed
            Ok(n) => {
                stats.bytes.fetch_add(n as u64, Ordering::Relaxed);
                decoder.feed(&buf[..n]);
                loop {
                    match decoder.next_message() {
                        Ok(Some(msg)) => {
                            stats.messages.fetch_add(1, Ordering::Relaxed);
                            stats
                                .records
                                .fetch_add(msg.records.len() as u64, Ordering::Relaxed);
                            let (agent_id, export_ms) = (msg.agent_id, msg.export_time_ms);
                            store.lock().extend(msg.records.into_iter().map(|record| {
                                StampedRecord {
                                    agent_id,
                                    export_ms,
                                    record,
                                }
                            }));
                        }
                        Ok(None) => break,
                        Err(_) => {
                            stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                            return; // drop poisoned connection
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentConfig, AgentCore, Exporter, FlowSample};
    use crate::flow::{FlowKey, TrafficClass};
    use crate::wire::encode_message;
    use flock_topology::NodeId;
    use std::io::Write;

    fn wait_for<F: Fn() -> bool>(cond: F, ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(ms);
        while std::time::Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    fn ephemeral() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn agent_to_collector_roundtrip() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let mut agent = AgentCore::new(AgentConfig {
            agent_id: 7,
            ..Default::default()
        });
        for i in 0..10u32 {
            agent.observe(FlowSample {
                key: FlowKey::tcp(NodeId(i), NodeId(100), 4000 + i as u16, 80),
                packets: 100,
                retransmissions: u64::from(i % 3),
                bytes: 10_000,
                rtt_us: Some(250),
                path: None,
                class: TrafficClass::Passive,
            });
        }
        let records = agent.export();
        let msgs = agent.encode_export(1234, &records);
        let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
        for m in &msgs {
            exporter.send(m).unwrap();
        }
        exporter.finish().unwrap();

        assert!(wait_for(|| collector.pending() == 10, 2000));
        let got = collector.drain();
        assert_eq!(got.len(), 10);
        assert_eq!(collector.pending(), 0);
        let (conns, _msgs, recs, bytes, errs) = collector.stats().snapshot();
        assert_eq!(conns, 1);
        assert_eq!(recs, 10);
        assert!(bytes > 0);
        assert_eq!(errs, 0);
    }

    #[test]
    fn drain_stamped_preserves_export_metadata() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let mut agent = AgentCore::new(AgentConfig {
            agent_id: 42,
            ..Default::default()
        });
        agent.observe(FlowSample {
            key: FlowKey::tcp(NodeId(1), NodeId(2), 4000, 80),
            packets: 5,
            retransmissions: 0,
            bytes: 500,
            rtt_us: None,
            path: None,
            class: TrafficClass::Passive,
        });
        let records = agent.export();
        let msgs = agent.encode_export(90_500, &records);
        let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
        for m in &msgs {
            exporter.send(m).unwrap();
        }
        exporter.finish().unwrap();
        assert!(wait_for(|| collector.pending() == 1, 2000));
        let stamped = collector.drain_stamped();
        assert_eq!(stamped.len(), 1);
        assert_eq!(stamped[0].agent_id, 42);
        assert_eq!(stamped[0].export_ms, 90_500);
        assert_eq!(stamped[0].record.key.src, NodeId(1));
    }

    #[test]
    fn multiple_agents_concurrently() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let addr = collector.local_addr();
        let n_agents = 8;
        let per_agent = 50u32;
        let handles: Vec<_> = (0..n_agents)
            .map(|a| {
                std::thread::spawn(move || {
                    let mut agent = AgentCore::new(AgentConfig {
                        agent_id: a,
                        ..Default::default()
                    });
                    for i in 0..per_agent {
                        agent.observe(FlowSample {
                            key: FlowKey::tcp(
                                NodeId(a * 1000 + i),
                                NodeId(9999),
                                (i % 60000) as u16,
                                80,
                            ),
                            packets: 1,
                            retransmissions: 0,
                            bytes: 64,
                            rtt_us: None,
                            path: None,
                            class: TrafficClass::Passive,
                        });
                    }
                    let recs = agent.export();
                    let msgs = agent.encode_export(0, &recs);
                    let mut exp = Exporter::connect(addr).unwrap();
                    for m in &msgs {
                        exp.send(m).unwrap();
                    }
                    exp.finish().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = (n_agents * per_agent) as usize;
        assert!(wait_for(|| collector.pending() == expected, 3000));
        let (conns, ..) = collector.stats().snapshot();
        assert_eq!(conns, n_agents as u64);
    }

    #[test]
    fn malformed_stream_increments_error_and_drops_conn() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let mut s = TcpStream::connect(collector.local_addr()).unwrap();
        s.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        s.write_all(&[0u8; 60]).unwrap();
        drop(s);
        assert!(wait_for(
            || collector.stats().decode_errors.load(Ordering::Relaxed) == 1,
            2000
        ));
        // A healthy agent can still connect afterwards.
        let msg = encode_message(1, 0, 0, &[]);
        let mut s2 = TcpStream::connect(collector.local_addr()).unwrap();
        s2.write_all(&msg).unwrap();
        drop(s2);
        assert!(wait_for(
            || collector.stats().messages.load(Ordering::Relaxed) == 1,
            2000
        ));
    }

    #[test]
    fn shutdown_joins_threads() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let addr = collector.local_addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&encode_message(1, 0, 0, &[])).unwrap();
        assert!(wait_for(
            || collector.stats().messages.load(Ordering::Relaxed) == 1,
            2000
        ));
        collector.shutdown();
        // Port should eventually be reusable / connections refused.
        // (We only assert shutdown() returned, i.e. threads joined.)
    }
}
