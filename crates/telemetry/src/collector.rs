//! The central telemetry collector (§5.1, Fig. 7) — a sharded,
//! event-driven reactor.
//!
//! A TCP listener accepts connections from many agents and registers
//! each with one of a small, fixed number of reactor shards
//! (round-robin). Each shard thread owns its connections outright — the
//! per-connection [`StreamDecoder`] state machine and a shard-local
//! record store — and multiplexes them with nonblocking reads in a
//! readiness loop, so thousands of agent connections are served by a
//! handful of threads and no global mutex sits on the decode hot path
//! (the shard store's lock is only ever contended by the periodic
//! drain).
//!
//! Records decoded from v2 frames arrive pre-bucketed: the shard bins
//! them by the agent-stamped `epoch_seq` as it decodes, so
//! [`Collector::drain_buckets`] is an O(connections + buckets) handoff
//! and the stream layer can skip per-record window re-assignment. v1
//! frames (no hint) land in an `unhinted` side-buffer and take the
//! classic re-bucketing path — both versions coexist on one socket.
//!
//! The pending-record store is bounded: past
//! [`CollectorConfig::high_water`] records, newly decoded messages are
//! shed (counted in `dropped_records`) instead of growing without bound
//! when the consumer stalls. Throughput counters allow the Fig. 7
//! scalability experiment (connections/sec × records/conn) to be
//! reproduced against the real socket path; see the `collector_storm`
//! bench for the reactor vs thread-per-connection comparison.

use crate::flow::FlowRecord;
use crate::wire::{DecodeStep, ExportMessage, StreamDecoder, WireError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A flow record together with the export-message metadata the online
/// pipeline windows on: which agent sent it and the agent's export
/// timestamp (milliseconds, agent-chosen epoch). The offline path
/// ([`Collector::drain`]) discards the stamp; the streaming path
/// ([`Collector::drain_stamped`] / [`Collector::drain_buckets`])
/// preserves it for epoch assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedRecord {
    /// Agent that exported the record.
    pub agent_id: u32,
    /// `export_time_ms` of the carrying export message.
    pub export_ms: u64,
    /// The flow record itself.
    pub record: FlowRecord,
}

/// A fault-injection hook run by each reactor shard once per readiness
/// pass (argument: shard index). Chaos harnesses install one to stall a
/// shard (sleep inside the hook) and prove the pipeline tolerates a
/// wedged reactor; production configs leave it `None`.
#[derive(Clone)]
pub struct ReactorHook(Arc<dyn Fn(usize) + Send + Sync>);

impl ReactorHook {
    /// Wrap a closure as a reactor-pass hook.
    pub fn new(f: impl Fn(usize) + Send + Sync + 'static) -> Self {
        ReactorHook(Arc::new(f))
    }

    /// Invoke the hook for shard `idx`.
    pub fn call(&self, idx: usize) {
        (self.0)(idx)
    }
}

impl fmt::Debug for ReactorHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ReactorHook(..)")
    }
}

/// Reactor sizing and back-pressure knobs.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Number of reactor shard threads multiplexing connections.
    pub shards: usize,
    /// High-water mark on buffered records: messages decoded while the
    /// store holds at least this many pending records are shed and
    /// counted in [`CollectorStats::dropped_records`].
    pub high_water: usize,
    /// How long an idle shard sleeps between readiness passes.
    pub idle_sleep: Duration,
    /// Per-connection garbage budget: cumulative bytes discarded while
    /// resyncing before the connection is deliberately killed (counted in
    /// [`CollectorStats::decode_errors`]).
    pub max_resync_bytes: usize,
    /// Per-connection quarantine budget: undecodable-but-framed messages
    /// tolerated before the connection is deliberately killed.
    pub max_quarantined_frames: u64,
    /// Chaos hook run once per shard readiness pass; `None` in production.
    pub stall_hook: Option<ReactorHook>,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        // More reactor threads than cores just adds scheduling pressure
        // (and on one core can starve the accept loop outright).
        let shards = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(4);
        CollectorConfig {
            shards,
            high_water: 1 << 22,
            idle_sleep: Duration::from_micros(200),
            max_resync_bytes: 64 * 1024,
            max_quarantined_frames: 32,
            stall_hook: None,
        }
    }
}

/// Monotonic counters and gauges describing collector activity.
#[derive(Debug, Default)]
pub struct CollectorStats {
    /// Connections accepted (monotonic).
    pub connections: AtomicU64,
    /// Connections currently registered with a reactor shard (gauge).
    pub active_connections: AtomicU64,
    /// Connections closed — agent hangup, IO error, or decode error
    /// (monotonic).
    pub closed_connections: AtomicU64,
    /// Messages decoded.
    pub messages: AtomicU64,
    /// Flow records received (before high-water shedding).
    pub records: AtomicU64,
    /// Bytes read off sockets.
    pub bytes: AtomicU64,
    /// Connections deliberately killed after exhausting their
    /// quarantine/resync budget (the reactor's kill policy, not an
    /// implicit framing side effect).
    pub decode_errors: AtomicU64,
    /// Records shed because the store was at its high-water mark.
    pub dropped_records: AtomicU64,
    /// Decode faults classified as bad magic (resync causes).
    pub decode_bad_magic: AtomicU64,
    /// Decode faults classified as unsupported version.
    pub decode_bad_version: AtomicU64,
    /// Decode faults classified as header/content length mismatch.
    pub decode_length_mismatch: AtomicU64,
    /// Decode faults classified as truncated frames.
    pub decode_truncated: AtomicU64,
    /// Decode faults classified as oversized path attachments.
    pub decode_path_too_long: AtomicU64,
    /// Whole frames dropped with stream alignment intact.
    pub frames_quarantined: AtomicU64,
    /// Byte-wise resync events (garbage skipped to a frame boundary).
    pub resyncs: AtomicU64,
    /// Total bytes discarded across all resync events.
    pub resync_bytes: AtomicU64,
}

/// A point-in-time copy of [`CollectorStats`] as plain integers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted (monotonic).
    pub connections: u64,
    /// Connections currently registered (gauge).
    pub active_connections: u64,
    /// Connections closed (monotonic).
    pub closed_connections: u64,
    /// Messages decoded.
    pub messages: u64,
    /// Flow records received.
    pub records: u64,
    /// Bytes read off sockets.
    pub bytes: u64,
    /// Connections deliberately killed by the quarantine/resync budget.
    pub decode_errors: u64,
    /// Records shed at the high-water mark.
    pub dropped_records: u64,
    /// Decode faults: bad magic.
    pub decode_bad_magic: u64,
    /// Decode faults: unsupported version.
    pub decode_bad_version: u64,
    /// Decode faults: length mismatch.
    pub decode_length_mismatch: u64,
    /// Decode faults: truncated frame.
    pub decode_truncated: u64,
    /// Decode faults: oversized path attachment.
    pub decode_path_too_long: u64,
    /// Whole frames dropped with stream alignment intact.
    pub frames_quarantined: u64,
    /// Byte-wise resync events.
    pub resyncs: u64,
    /// Total bytes discarded while resyncing.
    pub resync_bytes: u64,
}

impl CollectorStats {
    /// Snapshot every counter and gauge.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            closed_connections: self.closed_connections.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            dropped_records: self.dropped_records.load(Ordering::Relaxed),
            decode_bad_magic: self.decode_bad_magic.load(Ordering::Relaxed),
            decode_bad_version: self.decode_bad_version.load(Ordering::Relaxed),
            decode_length_mismatch: self.decode_length_mismatch.load(Ordering::Relaxed),
            decode_truncated: self.decode_truncated.load(Ordering::Relaxed),
            decode_path_too_long: self.decode_path_too_long.load(Ordering::Relaxed),
            frames_quarantined: self.frames_quarantined.load(Ordering::Relaxed),
            resyncs: self.resyncs.load(Ordering::Relaxed),
            resync_bytes: self.resync_bytes.load(Ordering::Relaxed),
        }
    }

    /// Bump the per-cause decode-fault counter for `err`.
    fn count_cause(&self, err: &WireError) {
        let counter = match err {
            WireError::BadMagic(_) => &self.decode_bad_magic,
            WireError::BadVersion(_) => &self.decode_bad_version,
            WireError::LengthMismatch { .. } => &self.decode_length_mismatch,
            WireError::Truncated => &self.decode_truncated,
            WireError::PathTooLong(_) => &self.decode_path_too_long,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Liveness record for one exporting agent, keyed by `agent_id`.
#[derive(Debug, Clone)]
pub struct AgentSeen {
    /// The agent's wire identifier.
    pub agent_id: u32,
    /// `export_time_ms` of the most recent message.
    pub last_export_ms: u64,
    /// Wall-clock instant the most recent message decoded.
    pub last_seen: Instant,
    /// Messages decoded from this agent (monotonic).
    pub messages: u64,
}

/// Records drained from the collector with the reactor's per-epoch
/// pre-bucketing preserved.
#[derive(Debug, Default)]
pub struct DrainBatch {
    /// v2 records grouped by their agent-stamped `epoch_seq`, in
    /// ascending epoch order.
    pub buckets: Vec<(u64, Vec<StampedRecord>)>,
    /// v1 records (no epoch hint on the wire); the stream layer assigns
    /// these per record as before.
    pub unhinted: Vec<StampedRecord>,
}

impl DrainBatch {
    /// Total records in the batch.
    pub fn len(&self) -> usize {
        self.unhinted.len() + self.buckets.iter().map(|(_, b)| b.len()).sum::<usize>()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.unhinted.is_empty() && self.buckets.iter().all(|(_, b)| b.is_empty())
    }

    /// Flatten into a plain stamped-record list (bucketing discarded).
    pub fn into_stamped(self) -> Vec<StampedRecord> {
        let mut out = Vec::with_capacity(self.len());
        for (_, bucket) in self.buckets {
            out.extend(bucket);
        }
        out.extend(self.unhinted);
        out
    }
}

/// One reactor shard's record store. Shared only between the shard
/// thread (producer) and the periodic drain (consumer).
#[derive(Debug, Default)]
struct ShardStore {
    buckets: BTreeMap<u64, Vec<StampedRecord>>,
    unhinted: Vec<StampedRecord>,
}

/// A running collector. Dropping it (or calling [`Collector::shutdown`])
/// stops the accept loop and joins the reactor threads.
pub struct Collector {
    addr: SocketAddr,
    stores: Vec<Arc<Mutex<ShardStore>>>,
    pending: Arc<AtomicUsize>,
    stats: Arc<CollectorStats>,
    liveness: Arc<Mutex<HashMap<u32, AgentSeen>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
}

impl Collector {
    /// Bind a collector to `addr` (use port 0 for an ephemeral port) with
    /// the default reactor configuration.
    pub fn bind(addr: SocketAddr) -> std::io::Result<Collector> {
        Self::bind_with(addr, CollectorConfig::default())
    }

    /// Bind a collector with explicit reactor sizing.
    pub fn bind_with(addr: SocketAddr, config: CollectorConfig) -> std::io::Result<Collector> {
        assert!(config.shards >= 1, "reactor needs at least one shard");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stats = Arc::new(CollectorStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let pending = Arc::new(AtomicUsize::new(0));
        let liveness: Arc<Mutex<HashMap<u32, AgentSeen>>> = Arc::new(Mutex::new(HashMap::new()));

        let mut stores = Vec::with_capacity(config.shards);
        let mut shard_threads = Vec::with_capacity(config.shards);
        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let (tx, rx) = mpsc::channel();
            let store: Arc<Mutex<ShardStore>> = Arc::new(Mutex::new(ShardStore::default()));
            let thread = {
                let store = Arc::clone(&store);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let pending = Arc::clone(&pending);
                let liveness = Arc::clone(&liveness);
                let cfg = config.clone();
                std::thread::Builder::new()
                    .name(format!("flock-reactor-{i}"))
                    .spawn(move || shard_loop(i, rx, store, stats, stop, pending, liveness, cfg))
                    .expect("spawn collector reactor shard")
            };
            stores.push(store);
            shard_threads.push(thread);
            senders.push(tx);
        }

        let accept_thread = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("flock-collector-accept".into())
                .spawn(move || accept_loop(listener, senders, stats, stop))
                .expect("spawn collector accept thread")
        };

        Ok(Collector {
            addr: local,
            stores,
            pending,
            stats,
            liveness,
            stop,
            accept_thread: Some(accept_thread),
            shard_threads,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of reactor shard threads serving connections.
    pub fn reactor_shards(&self) -> usize {
        self.stores.len()
    }

    /// Drain all records received so far, discarding export stamps.
    pub fn drain(&self) -> Vec<FlowRecord> {
        self.drain_stamped().into_iter().map(|s| s.record).collect()
    }

    /// Drain all records received so far with their agent/export stamps,
    /// flattened into one list (epoch pre-bucketing discarded).
    pub fn drain_stamped(&self) -> Vec<StampedRecord> {
        self.drain_buckets().into_stamped()
    }

    /// Drain all records received so far, preserving the reactor's
    /// per-epoch pre-bucketing of v2 input — the entry point of the
    /// epoch-windowing stream layer's fast path.
    pub fn drain_buckets(&self) -> DrainBatch {
        let mut merged: BTreeMap<u64, Vec<StampedRecord>> = BTreeMap::new();
        let mut unhinted = Vec::new();
        for store in &self.stores {
            // The pending counter is adjusted while the shard lock is
            // held (on both the producer and consumer side): releasing
            // the freed capacity only after all stores were taken would
            // leave shards seeing a phantom-full store and shedding
            // messages right after a drain.
            let taken = {
                let mut guard = store.lock();
                let taken = std::mem::take(&mut *guard);
                let count =
                    taken.unhinted.len() + taken.buckets.values().map(Vec::len).sum::<usize>();
                self.pending.fetch_sub(count, Ordering::Relaxed);
                taken
            };
            for (seq, mut bucket) in taken.buckets {
                match merged.entry(seq) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(bucket);
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        o.get_mut().append(&mut bucket);
                    }
                }
            }
            if unhinted.is_empty() {
                unhinted = taken.unhinted;
            } else {
                unhinted.extend(taken.unhinted);
            }
        }
        DrainBatch {
            buckets: merged.into_iter().collect(),
            unhinted,
        }
    }

    /// Number of records currently buffered across all shards.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Activity counters.
    pub fn stats(&self) -> &CollectorStats {
        &self.stats
    }

    /// Per-agent liveness snapshot, sorted by agent id. An agent appears
    /// once its first message decodes and stays until evicted.
    pub fn liveness(&self) -> Vec<AgentSeen> {
        let mut out: Vec<AgentSeen> = self.liveness.lock().values().cloned().collect();
        out.sort_by_key(|a| a.agent_id);
        out
    }

    /// Agents whose most recent message is older than `stale_after`
    /// (non-destructive; pair with [`evict_stale`](Self::evict_stale)).
    pub fn stale_agents(&self, stale_after: Duration) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .liveness
            .lock()
            .values()
            .filter(|a| a.last_seen.elapsed() >= stale_after)
            .map(|a| a.agent_id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Remove liveness entries older than `stale_after`, returning the
    /// evicted agent ids. Eviction forgets a dead agent (its entry would
    /// otherwise read as "stale" forever); a reconnecting agent re-registers
    /// on its next decoded message.
    pub fn evict_stale(&self, stale_after: Duration) -> Vec<u32> {
        let mut map = self.liveness.lock();
        let dead: Vec<u32> = map
            .values()
            .filter(|a| a.last_seen.elapsed() >= stale_after)
            .map(|a| a.agent_id)
            .collect();
        for id in &dead {
            map.remove(id);
        }
        let mut dead = dead;
        dead.sort_unstable();
        dead
    }

    /// Stop the collector and join its threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        for h in self.shard_threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    senders: Vec<Sender<TcpStream>>,
    stats: Arc<CollectorStats>,
    stop: Arc<AtomicBool>,
) {
    let mut next = 0usize;
    while !stop.load(Ordering::SeqCst) {
        // Drain every pending connection before sleeping: under a
        // connection storm (Fig. 7's 8K connections/sec) a
        // one-accept-per-poll loop becomes the bottleneck.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    stats.active_connections.fetch_add(1, Ordering::Relaxed);
                    if stream.set_nonblocking(true).is_err()
                        || senders[next % senders.len()].send(stream).is_err()
                    {
                        // fcntl failure or shard gone (shutdown): the
                        // connection dies here — account for it so the
                        // gauges stay truthful.
                        stats.active_connections.fetch_sub(1, Ordering::Relaxed);
                        stats.closed_connections.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    next += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return,
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// One registered connection: its socket, framing state, and its
/// consumption so far of the shard's quarantine/resync kill budget.
struct Conn {
    stream: TcpStream,
    decoder: StreamDecoder,
    resync_bytes: usize,
    quarantined_frames: u64,
}

enum Pump {
    /// Connection stays registered; `true` if any bytes were read.
    Open(bool),
    /// Connection is done (hangup, IO error, or kill-budget exhaustion).
    Closed,
}

#[allow(clippy::too_many_arguments)]
fn shard_loop(
    shard_idx: usize,
    rx: Receiver<TcpStream>,
    store: Arc<Mutex<ShardStore>>,
    stats: Arc<CollectorStats>,
    stop: Arc<AtomicBool>,
    pending: Arc<AtomicUsize>,
    liveness: Arc<Mutex<HashMap<u32, AgentSeen>>>,
    cfg: CollectorConfig,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    while !stop.load(Ordering::SeqCst) {
        if let Some(hook) = &cfg.stall_hook {
            hook.call(shard_idx);
        }
        // Register connections handed over by the accept loop.
        loop {
            match rx.try_recv() {
                Ok(stream) => conns.push(Conn {
                    stream,
                    decoder: StreamDecoder::new(),
                    resync_bytes: 0,
                    quarantined_frames: 0,
                }),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    if conns.is_empty() {
                        return;
                    }
                    break;
                }
            }
        }

        // One readiness pass over every registered connection.
        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            match pump(
                &mut conns[i],
                &mut buf,
                &store,
                &stats,
                &pending,
                &liveness,
                &cfg,
            ) {
                Pump::Open(read_any) => {
                    progress |= read_any;
                    i += 1;
                }
                Pump::Closed => {
                    stats.active_connections.fetch_sub(1, Ordering::Relaxed);
                    stats.closed_connections.fetch_add(1, Ordering::Relaxed);
                    conns.swap_remove(i);
                }
            }
        }
        if !progress {
            std::thread::sleep(cfg.idle_sleep);
        } else {
            // A busy shard must not monopolize a core: on small machines
            // an un-yielding readiness loop starves the accept thread,
            // the listener backlog fills, and connecting agents eat SYN
            // retransmit timeouts.
            std::thread::yield_now();
        }
    }
    // Stop requested: the sockets still registered here are dropped as
    // the thread exits — move them through the gauges so a post-shutdown
    // snapshot doesn't report phantom live connections.
    stats
        .active_connections
        .fetch_sub(conns.len() as u64, Ordering::Relaxed);
    stats
        .closed_connections
        .fetch_add(conns.len() as u64, Ordering::Relaxed);
}

/// Read whatever one connection has ready (bounded per pass so a chatty
/// agent cannot starve its shard-mates), decode complete frames, and bin
/// the records into the shard store.
///
/// Decode faults no longer tear the connection down implicitly: framed
/// garbage is quarantined per message and unframed garbage is skipped via
/// resync, each under a per-connection budget. Only exhausting a budget
/// kills the connection — a deliberate policy decision, visible in
/// `decode_errors`.
fn pump(
    conn: &mut Conn,
    buf: &mut [u8],
    store: &Mutex<ShardStore>,
    stats: &CollectorStats,
    pending: &AtomicUsize,
    liveness: &Mutex<HashMap<u32, AgentSeen>>,
    cfg: &CollectorConfig,
) -> Pump {
    let mut read_any = false;
    for _ in 0..4 {
        match conn.stream.read(buf) {
            Ok(0) => return Pump::Closed, // agent closed
            Ok(n) => {
                read_any = true;
                stats.bytes.fetch_add(n as u64, Ordering::Relaxed);
                conn.decoder.feed(&buf[..n]);
                loop {
                    match conn.decoder.next_step() {
                        DecodeStep::Message(msg) => {
                            store_message(msg, store, stats, pending, liveness, cfg)
                        }
                        DecodeStep::NeedMore => break,
                        DecodeStep::Quarantined(err) => {
                            stats.count_cause(&err);
                            stats.frames_quarantined.fetch_add(1, Ordering::Relaxed);
                            conn.quarantined_frames += 1;
                            if conn.quarantined_frames > cfg.max_quarantined_frames {
                                stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                                return Pump::Closed;
                            }
                        }
                        DecodeStep::Resynced { dropped, cause } => {
                            stats.count_cause(&cause);
                            stats.resyncs.fetch_add(1, Ordering::Relaxed);
                            stats
                                .resync_bytes
                                .fetch_add(dropped as u64, Ordering::Relaxed);
                            conn.resync_bytes += dropped;
                            if conn.resync_bytes > cfg.max_resync_bytes {
                                stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                                return Pump::Closed;
                            }
                        }
                    }
                }
                if n < buf.len() {
                    return Pump::Open(true); // socket likely drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Pump::Closed,
        }
    }
    Pump::Open(read_any)
}

fn store_message(
    msg: ExportMessage,
    store: &Mutex<ShardStore>,
    stats: &CollectorStats,
    pending: &AtomicUsize,
    liveness: &Mutex<HashMap<u32, AgentSeen>>,
    cfg: &CollectorConfig,
) {
    stats.messages.fetch_add(1, Ordering::Relaxed);
    {
        let mut map = liveness.lock();
        let entry = map.entry(msg.agent_id).or_insert(AgentSeen {
            agent_id: msg.agent_id,
            last_export_ms: 0,
            last_seen: Instant::now(),
            messages: 0,
        });
        entry.last_export_ms = entry.last_export_ms.max(msg.export_time_ms);
        entry.last_seen = Instant::now();
        entry.messages += 1;
    }
    let n = msg.records.len();
    if n == 0 {
        return;
    }
    stats.records.fetch_add(n as u64, Ordering::Relaxed);
    let (agent_id, export_ms) = (msg.agent_id, msg.export_time_ms);
    let stamped = msg.records.into_iter().map(|record| StampedRecord {
        agent_id,
        export_ms,
        record,
    });
    let mut s = store.lock();
    // Back-pressure: shed whole messages once the store is at its
    // high-water mark instead of growing without bound while the
    // consumer stalls. Checked under the shard lock so the count is
    // exact per shard (cross-shard overshoot is bounded by one message
    // per shard). The counter is incremented only after the insert,
    // still under the lock: consumers polling `pending()` use it as an
    // all-records-visible barrier before draining.
    if pending.load(Ordering::Relaxed) + n > cfg.high_water {
        stats.dropped_records.fetch_add(n as u64, Ordering::Relaxed);
        return;
    }
    match msg.epoch_seq {
        Some(seq) => s.buckets.entry(seq).or_default().extend(stamped),
        None => s.unhinted.extend(stamped),
    }
    pending.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentConfig, AgentCore, Exporter, FlowSample};
    use crate::flow::{FlowKey, TrafficClass};
    use crate::wire::encode_message;
    use flock_topology::NodeId;
    use std::io::Write;

    fn wait_for<F: Fn() -> bool>(cond: F, ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(ms);
        while std::time::Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    fn ephemeral() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn passive_sample(src: u32, port: u16) -> FlowSample {
        FlowSample {
            key: FlowKey::tcp(NodeId(src), NodeId(9999), port, 80),
            packets: 10,
            retransmissions: 0,
            bytes: 1_000,
            rtt_us: None,
            path: None,
            class: TrafficClass::Passive,
        }
    }

    #[test]
    fn agent_to_collector_roundtrip() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let mut agent = AgentCore::new(AgentConfig {
            agent_id: 7,
            ..Default::default()
        });
        for i in 0..10u32 {
            agent.observe(FlowSample {
                key: FlowKey::tcp(NodeId(i), NodeId(100), 4000 + i as u16, 80),
                packets: 100,
                retransmissions: u64::from(i % 3),
                bytes: 10_000,
                rtt_us: Some(250),
                path: None,
                class: TrafficClass::Passive,
            });
        }
        let records = agent.export();
        let msgs = agent.encode_export(1234, &records);
        let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
        for m in &msgs {
            exporter.send(m).unwrap();
        }
        exporter.finish().unwrap();

        assert!(wait_for(|| collector.pending() == 10, 2000));
        let got = collector.drain();
        assert_eq!(got.len(), 10);
        assert_eq!(collector.pending(), 0);
        let snap = collector.stats().snapshot();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.records, 10);
        assert!(snap.bytes > 0);
        assert_eq!(snap.decode_errors, 0);
        assert_eq!(snap.dropped_records, 0);
    }

    #[test]
    fn drain_stamped_preserves_export_metadata() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let mut agent = AgentCore::new(AgentConfig {
            agent_id: 42,
            ..Default::default()
        });
        agent.observe(FlowSample {
            key: FlowKey::tcp(NodeId(1), NodeId(2), 4000, 80),
            packets: 5,
            retransmissions: 0,
            bytes: 500,
            rtt_us: None,
            path: None,
            class: TrafficClass::Passive,
        });
        let records = agent.export();
        let msgs = agent.encode_export(90_500, &records);
        let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
        for m in &msgs {
            exporter.send(m).unwrap();
        }
        exporter.finish().unwrap();
        assert!(wait_for(|| collector.pending() == 1, 2000));
        let stamped = collector.drain_stamped();
        assert_eq!(stamped.len(), 1);
        assert_eq!(stamped[0].agent_id, 42);
        assert_eq!(stamped[0].export_ms, 90_500);
        assert_eq!(stamped[0].record.key.src, NodeId(1));
    }

    #[test]
    fn multiple_agents_concurrently() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let addr = collector.local_addr();
        let n_agents = 8;
        let per_agent = 50u32;
        let handles: Vec<_> = (0..n_agents)
            .map(|a| {
                std::thread::spawn(move || {
                    let mut agent = AgentCore::new(AgentConfig {
                        agent_id: a,
                        ..Default::default()
                    });
                    for i in 0..per_agent {
                        agent.observe(FlowSample {
                            key: FlowKey::tcp(
                                NodeId(a * 1000 + i),
                                NodeId(9999),
                                (i % 60000) as u16,
                                80,
                            ),
                            packets: 1,
                            retransmissions: 0,
                            bytes: 64,
                            rtt_us: None,
                            path: None,
                            class: TrafficClass::Passive,
                        });
                    }
                    let recs = agent.export();
                    let msgs = agent.encode_export(0, &recs);
                    let mut exp = Exporter::connect(addr).unwrap();
                    for m in &msgs {
                        exp.send(m).unwrap();
                    }
                    exp.finish().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = (n_agents * per_agent) as usize;
        assert!(wait_for(|| collector.pending() == expected, 3000));
        assert_eq!(collector.stats().snapshot().connections, n_agents as u64);
    }

    #[test]
    fn malformed_stream_resyncs_and_classifies_instead_of_killing() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let mut s = TcpStream::connect(collector.local_addr()).unwrap();
        // Garbage, then a valid message on the SAME connection: the
        // reactor must resync and recover it rather than tear down.
        s.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        s.write_all(&[0u8; 60]).unwrap();
        s.write_all(&encode_message(1, 0, 0, &[])).unwrap();
        assert!(wait_for(
            || collector.stats().messages.load(Ordering::Relaxed) == 1,
            2000
        ));
        drop(s);
        assert!(wait_for(
            || collector.stats().snapshot().closed_connections == 1,
            2000
        ));
        let snap = collector.stats().snapshot();
        assert!(snap.resyncs >= 1, "garbage skipped via resync");
        assert!(snap.decode_bad_magic >= 1, "cause classified");
        assert_eq!(snap.resync_bytes, 64, "all garbage bytes accounted");
        assert_eq!(
            snap.decode_errors, 0,
            "within budget: no deliberate kill, connection survived to EOF"
        );
    }

    #[test]
    fn resync_budget_exhaustion_kills_deliberately() {
        let collector = Collector::bind_with(
            ephemeral(),
            CollectorConfig {
                shards: 1,
                max_resync_bytes: 128,
                ..Default::default()
            },
        )
        .unwrap();
        let mut s = TcpStream::connect(collector.local_addr()).unwrap();
        // Far more garbage than the budget; the socket stays open so only
        // the kill policy (not EOF) can close the connection.
        s.write_all(&[0x5a; 4096]).unwrap();
        assert!(wait_for(
            || collector.stats().snapshot().decode_errors == 1,
            2000
        ));
        assert!(wait_for(
            || collector.stats().snapshot().closed_connections == 1,
            2000
        ));
        // A healthy agent still connects afterwards.
        let mut s2 = TcpStream::connect(collector.local_addr()).unwrap();
        s2.write_all(&encode_message(1, 0, 0, &[])).unwrap();
        assert!(wait_for(
            || collector.stats().snapshot().messages == 1,
            2000
        ));
        drop(s2);
        drop(s);
    }

    #[test]
    fn quarantined_frame_keeps_connection_and_later_messages() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let good = encode_message(1, 0, 0, &[]);
        let mut bad = good.to_vec();
        bad[4..6].copy_from_slice(&9u16.to_be_bytes()); // unknown version
        let mut s = TcpStream::connect(collector.local_addr()).unwrap();
        s.write_all(&bad).unwrap();
        s.write_all(&good).unwrap();
        assert!(wait_for(
            || collector.stats().snapshot().messages == 1,
            2000
        ));
        let snap = collector.stats().snapshot();
        assert_eq!(snap.frames_quarantined, 1);
        assert_eq!(snap.decode_bad_version, 1);
        assert_eq!(snap.decode_errors, 0);
        drop(s);
    }

    #[test]
    fn liveness_tracks_and_evicts_stale_agents() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let addr = collector.local_addr();
        for id in [11u32, 22] {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&encode_message(id, 5_000, 0, &[])).unwrap();
            drop(s);
        }
        assert!(wait_for(|| collector.liveness().len() == 2, 2000));
        let live = collector.liveness();
        assert_eq!(
            live.iter().map(|a| a.agent_id).collect::<Vec<_>>(),
            vec![11, 22]
        );
        assert_eq!(live[0].last_export_ms, 5_000);
        assert_eq!(live[0].messages, 1);

        // Nothing is stale against a generous horizon...
        assert!(collector.stale_agents(Duration::from_secs(60)).is_empty());
        // ...and everything is against a zero horizon.
        assert_eq!(collector.stale_agents(Duration::ZERO), vec![11, 22]);
        assert_eq!(collector.evict_stale(Duration::ZERO), vec![11, 22]);
        assert!(collector.liveness().is_empty());

        // A reconnecting agent re-registers.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&encode_message(11, 6_000, 1, &[])).unwrap();
        drop(s);
        assert!(wait_for(|| collector.liveness().len() == 1, 2000));
    }

    #[test]
    fn stalled_reactor_shard_recovers() {
        use std::sync::atomic::AtomicU32;
        // A stall hook freezes the (single) reactor shard for a while;
        // messages written during the stall must still decode once it
        // unwedges — nothing is lost, the pipeline just sees them late.
        let stalls = Arc::new(AtomicU32::new(0));
        let hook = {
            let stalls = Arc::clone(&stalls);
            ReactorHook::new(move |_shard| {
                if stalls.fetch_add(1, Ordering::Relaxed) == 0 {
                    std::thread::sleep(Duration::from_millis(300));
                }
            })
        };
        let collector = Collector::bind_with(
            ephemeral(),
            CollectorConfig {
                shards: 1,
                stall_hook: Some(hook),
                ..Default::default()
            },
        )
        .unwrap();
        let mut s = TcpStream::connect(collector.local_addr()).unwrap();
        s.write_all(&encode_message(1, 0, 0, &[])).unwrap();
        assert!(wait_for(
            || collector.stats().snapshot().messages == 1,
            3000
        ));
        assert!(stalls.load(Ordering::Relaxed) >= 1);
        drop(s);
    }

    #[test]
    fn shutdown_joins_threads() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let addr = collector.local_addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&encode_message(1, 0, 0, &[])).unwrap();
        assert!(wait_for(
            || collector.stats().messages.load(Ordering::Relaxed) == 1,
            2000
        ));
        collector.shutdown();
        // Port should eventually be reusable / connections refused.
        // (We only assert shutdown() returned, i.e. threads joined.)
    }

    #[test]
    fn v2_records_arrive_pre_bucketed() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let mut agent = AgentCore::new(AgentConfig {
            agent_id: 3,
            epoch_hint_ms: Some(1_000),
            ..Default::default()
        });
        let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
        // Two exports landing in epochs 1 and 4.
        for (export_ms, base) in [(1_500u64, 0u32), (4_250, 100)] {
            for i in 0..5u32 {
                agent.observe(passive_sample(base + i, 4000 + i as u16));
            }
            let records = agent.export();
            for m in &agent.encode_export(export_ms, &records) {
                exporter.send(m).unwrap();
            }
        }
        exporter.finish().unwrap();

        assert!(wait_for(|| collector.pending() == 10, 2000));
        let batch = collector.drain_buckets();
        assert!(batch.unhinted.is_empty(), "all frames were v2");
        let seqs: Vec<u64> = batch.buckets.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 4]);
        for (seq, bucket) in &batch.buckets {
            assert_eq!(bucket.len(), 5);
            for r in bucket {
                assert_eq!(r.export_ms / 1_000, *seq);
            }
        }
        assert_eq!(collector.pending(), 0);
    }

    #[test]
    fn v1_and_v2_agents_coexist() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let addr = collector.local_addr();

        let mut v1 = AgentCore::new(AgentConfig {
            agent_id: 1,
            ..Default::default() // no epoch hint → v1 frames
        });
        v1.observe(passive_sample(1, 1000));
        let recs = v1.export();
        let msgs = v1.encode_export(2_500, &recs);
        let mut e1 = Exporter::connect(addr).unwrap();
        for m in &msgs {
            e1.send(m).unwrap();
        }
        e1.finish().unwrap();

        let mut v2 = AgentCore::new(AgentConfig {
            agent_id: 2,
            epoch_hint_ms: Some(1_000),
            ..Default::default()
        });
        v2.observe(passive_sample(2, 1000));
        v2.observe(passive_sample(3, 1001));
        let recs = v2.export();
        let msgs = v2.encode_export(2_500, &recs);
        let mut e2 = Exporter::connect(addr).unwrap();
        for m in &msgs {
            e2.send(m).unwrap();
        }
        e2.finish().unwrap();

        assert!(wait_for(|| collector.pending() == 3, 2000));
        let batch = collector.drain_buckets();
        assert_eq!(batch.unhinted.len(), 1, "the v1 agent's record");
        assert_eq!(batch.unhinted[0].agent_id, 1);
        assert_eq!(batch.buckets.len(), 1);
        assert_eq!(batch.buckets[0].0, 2);
        assert_eq!(batch.buckets[0].1.len(), 2);
    }

    #[test]
    fn slow_writer_one_byte_at_a_time() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let mut agent = AgentCore::new(AgentConfig {
            agent_id: 9,
            epoch_hint_ms: Some(1_000),
            ..Default::default()
        });
        for i in 0..3u32 {
            agent.observe(passive_sample(i, 5000 + i as u16));
        }
        let records = agent.export();
        let mut wire = Vec::new();
        for m in agent.encode_export(1_200, &records) {
            wire.extend_from_slice(&m);
        }
        // A second message right behind the first, so a frame boundary
        // sits mid-stream.
        agent.observe(passive_sample(50, 6000));
        let records = agent.export();
        for m in agent.encode_export(1_300, &records) {
            wire.extend_from_slice(&m);
        }

        let mut s = TcpStream::connect(collector.local_addr()).unwrap();
        s.set_nodelay(true).unwrap();
        for (i, b) in wire.iter().enumerate() {
            s.write_all(std::slice::from_ref(b)).unwrap();
            if i % 16 == 0 {
                // Force fragment delivery so the reactor sees partial
                // frames, not one coalesced buffer.
                std::thread::sleep(Duration::from_micros(300));
            }
        }
        drop(s);

        assert!(wait_for(|| collector.pending() == 4, 3000));
        let batch = collector.drain_buckets();
        assert_eq!(batch.buckets.len(), 1, "both messages hint epoch 1");
        assert_eq!(batch.buckets[0].0, 1);
        assert_eq!(batch.buckets[0].1.len(), 4);
        assert_eq!(collector.stats().snapshot().decode_errors, 0);
    }

    #[test]
    fn reconnect_mid_epoch_merges_buckets_and_moves_gauges() {
        let collector = Collector::bind(ephemeral()).unwrap();
        let addr = collector.local_addr();
        let mk_agent = |id| {
            AgentCore::new(AgentConfig {
                agent_id: id,
                epoch_hint_ms: Some(1_000),
                ..Default::default()
            })
        };

        // First connection: half the epoch's records, then hang up.
        let mut agent = mk_agent(5);
        for i in 0..4u32 {
            agent.observe(passive_sample(i, 7000 + i as u16));
        }
        let recs = agent.export();
        let msgs = agent.encode_export(3_400, &recs);
        let mut e = Exporter::connect(addr).unwrap();
        for m in &msgs {
            e.send(m).unwrap();
        }
        e.finish().unwrap();
        assert!(wait_for(|| collector.pending() == 4, 2000));
        assert!(wait_for(
            || collector.stats().snapshot().closed_connections == 1,
            2000
        ));

        // Reconnect (fresh TCP stream, same agent) mid-epoch.
        let mut agent = mk_agent(5);
        for i in 4..7u32 {
            agent.observe(passive_sample(i, 7000 + i as u16));
        }
        let recs = agent.export();
        let msgs = agent.encode_export(3_900, &recs);
        let mut e = Exporter::connect(addr).unwrap();
        for m in &msgs {
            e.send(m).unwrap();
        }
        e.finish().unwrap();

        assert!(wait_for(|| collector.pending() == 7, 2000));
        assert!(wait_for(
            || collector.stats().snapshot().closed_connections == 2,
            2000
        ));
        let snap = collector.stats().snapshot();
        assert_eq!(snap.connections, 2);
        assert_eq!(snap.active_connections, 0);

        // Both connections' records merged into the one epoch-3 bucket.
        let batch = collector.drain_buckets();
        assert_eq!(batch.buckets.len(), 1);
        assert_eq!(batch.buckets[0].0, 3);
        assert_eq!(batch.buckets[0].1.len(), 7);
    }

    #[test]
    fn high_water_mark_sheds_records() {
        let collector = Collector::bind_with(
            ephemeral(),
            CollectorConfig {
                shards: 1,
                high_water: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let mut agent = AgentCore::new(AgentConfig {
            agent_id: 1,
            max_records_per_message: 5,
            ..Default::default()
        });
        for i in 0..50u32 {
            agent.observe(passive_sample(i, (8000 + i) as u16));
        }
        let recs = agent.export();
        let msgs = agent.encode_export(0, &recs);
        assert_eq!(msgs.len(), 10, "50 records at 5/message");
        let mut e = Exporter::connect(collector.local_addr()).unwrap();
        for m in &msgs {
            e.send(m).unwrap();
        }
        e.finish().unwrap();

        assert!(wait_for(
            || collector.stats().snapshot().records == 50,
            3000
        ));
        let snap = collector.stats().snapshot();
        assert_eq!(snap.dropped_records, 40, "store capped at 2 messages");
        assert_eq!(collector.pending(), 10);
        // Draining reopens the store for new messages.
        assert_eq!(collector.drain_stamped().len(), 10);
        assert_eq!(collector.pending(), 0);
    }

    #[test]
    fn reactor_thread_count_is_fixed() {
        let collector = Collector::bind_with(
            ephemeral(),
            CollectorConfig {
                shards: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(collector.reactor_shards(), 2);
        let addr = collector.local_addr();
        // Many more connections than shards, all served.
        let mut socks = Vec::new();
        for i in 0..32u32 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&encode_message(i, 0, 0, &[])).unwrap();
            socks.push(s);
        }
        assert!(wait_for(
            || collector.stats().snapshot().messages == 32,
            3000
        ));
        assert_eq!(collector.stats().snapshot().active_connections, 32);
        drop(socks);
        assert!(wait_for(
            || collector.stats().snapshot().active_connections == 0,
            3000
        ));
        assert_eq!(collector.stats().snapshot().closed_connections, 32);
        collector.shutdown();
    }
}
