//! Telemetry substrate for the Flock fault-localization suite.
//!
//! This crate implements the monitoring plane of §3.1/§5.1 of the paper and
//! the input-assembly logic of §6.2:
//!
//! * [`flow`] — flow keys, per-flow statistics, and the monitored-flow
//!   record shared by the simulators and the live agent path.
//! * [`wire`] — the IPFIX-style export format: fixed message header plus
//!   52-byte fixed flow-stats records (matching the paper's "52 bytes per
//!   flow"), with an optional variable-length path attachment for flows
//!   whose exact route is known (active probes / INT). Two negotiated
//!   header versions: v1 (32 B) and v2 (40 B, adding the agent-stamped
//!   `epoch_seq` hint).
//! * [`agent`] — the end-host agent: aggregates packet/flow samples by flow
//!   key, optionally downsamples, and periodically exports records,
//!   stamping each export with its epoch index when configured with the
//!   collector-agreed cadence.
//! * [`collector`] — a sharded, event-driven TCP reactor that multiplexes
//!   many agent connections over a few threads, decodes export messages
//!   into shard-local stores pre-bucketed by epoch, and sheds load at a
//!   configurable high-water mark (reproduces the Fig. 7 scalability
//!   measurements).
//! * [`probes`] — active-probe planning: A1 host↔spine bounce probes with
//!   pinned paths (NetBouncer-style) and path-tracing for flagged flows
//!   (007-style A2).
//! * [`input`] — assembly of inference inputs: given monitored flows and a
//!   set of telemetry kinds (A1 / A2 / P / INT), produce the
//!   [`ObservationSet`] consumed by every inference
//!   scheme, with interned fabric paths and ECMP path sets.
//! * [`view`] — per-shard [`ArenaView`]s: persistent dense projections of
//!   the global path arena onto one shard's evidence, the layer that lets
//!   a sharded executor's engines allocate and iterate O(their own
//!   evidence) instead of O(total arena).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod collector;
pub mod flow;
pub mod input;
pub mod probes;
pub mod view;
pub mod wire;

pub use agent::{AgentConfig, AgentCore, FlowSample};
pub use collector::{
    AgentSeen, Collector, CollectorConfig, CollectorStats, DrainBatch, ReactorHook, StampedRecord,
    StatsSnapshot,
};
pub use flow::{FlowKey, FlowRecord, FlowStats, MonitoredFlow, TrafficClass};
pub use input::{
    AnalysisMode, ArenaDelta, Assembler, BucketQuantizer, CoalesceMode, DeltaError, FlowObs,
    InputKind, ObservationSet, PathArena, PathId, PathSetId,
};
pub use probes::{plan_a1_probes, ProbeSpec};
pub use view::{ArenaView, DenseRemap, ViewError};
