//! Property-based tests of the wire codec: arbitrary record batches
//! round-trip exactly under any stream chunking, and the fault-tolerant
//! decoder ([`StreamDecoder::next_step`]) survives arbitrary adversarial
//! bytes — every step is a message, a typed quarantine, a resync, or a
//! request for more input; never a panic, never a livelock.

use flock_telemetry::wire::{
    decode_message, encode_message, encode_message_v2, DecodeStep, StreamDecoder,
};
use flock_telemetry::{FlowKey, FlowRecord, FlowStats, TrafficClass};
use flock_topology::{LinkId, NodeId};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    let key = (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    );
    let stats = (
        0u64..(1 << 48),
        0u64..(1 << 48),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
    );
    let extras = (
        prop::option::of(prop::collection::vec(any::<u32>(), 0..32)),
        any::<bool>(),
    );
    (key, stats, extras).prop_map(
        |(
            (src, dst, sp, dp, proto),
            (pkts, retx, bytes, rtt_sum, rtt_cnt, rtt_max),
            (path, probe),
        )| FlowRecord {
            key: FlowKey {
                src: NodeId(src),
                dst: NodeId(dst),
                src_port: sp,
                dst_port: dp,
                proto,
            },
            stats: FlowStats {
                packets: pkts,
                retransmissions: retx,
                bytes,
                rtt_sum_us: rtt_sum,
                rtt_count: rtt_cnt,
                rtt_max_us: rtt_max,
            },
            class: if probe {
                TrafficClass::Probe
            } else {
                TrafficClass::Passive
            },
            path: path.map(|v| v.into_iter().map(LinkId).collect()),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_any_batch(
        records in prop::collection::vec(arb_record(), 0..20),
        agent_id: u32,
        time: u64,
        seq: u64,
    ) {
        let bytes = encode_message(agent_id, time, seq, &records);
        let msg = decode_message(&bytes).unwrap();
        prop_assert_eq!(msg.agent_id, agent_id);
        prop_assert_eq!(msg.export_time_ms, time);
        prop_assert_eq!(msg.sequence, seq);
        prop_assert_eq!(msg.records, records);
    }

    #[test]
    fn v2_roundtrip_any_batch(
        records in prop::collection::vec(arb_record(), 0..20),
        agent_id: u32,
        time: u64,
        seq: u64,
        epoch_seq: u64,
    ) {
        let bytes = encode_message_v2(agent_id, time, seq, epoch_seq, &records);
        let msg = decode_message(&bytes).unwrap();
        prop_assert_eq!(msg.agent_id, agent_id);
        prop_assert_eq!(msg.export_time_ms, time);
        prop_assert_eq!(msg.sequence, seq);
        prop_assert_eq!(msg.epoch_seq, Some(epoch_seq));
        prop_assert_eq!(msg.records, records);
    }

    #[test]
    fn stream_decoder_reassembles_any_chunking(
        records in prop::collection::vec(arb_record(), 1..8),
        chunk in 1usize..64,
        n_messages in 1usize..4,
        versions in prop::collection::vec(any::<bool>(), 1..4),
    ) {
        // Interleave v1 and v2 frames on one stream: the decoder must
        // negotiate per message.
        let mut all = Vec::new();
        for i in 0..n_messages {
            let v2 = versions[i % versions.len()];
            if v2 {
                all.extend_from_slice(&encode_message_v2(7, i as u64, i as u64, i as u64 + 9, &records));
            } else {
                all.extend_from_slice(&encode_message(7, i as u64, i as u64, &records));
            }
        }
        let mut dec = StreamDecoder::new();
        let mut seen = 0usize;
        for piece in all.chunks(chunk) {
            dec.feed(piece);
            while let Some(msg) = dec.next_message().unwrap() {
                prop_assert_eq!(&msg.records, &records);
                prop_assert_eq!(msg.export_time_ms, seen as u64);
                let expect_v2 = versions[seen % versions.len()];
                prop_assert_eq!(msg.epoch_seq, expect_v2.then(|| seen as u64 + 9));
                seen += 1;
            }
        }
        prop_assert_eq!(seen, n_messages);
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn arbitrary_bytes_never_panic_and_always_progress(
        garbage in prop::collection::vec(any::<u8>(), 0..4096),
        chunk in 1usize..257,
    ) {
        // Fully adversarial input: whatever the bytes decode to, every
        // step must be typed, and each non-NeedMore step must consume
        // at least one byte (no livelock on any input).
        let mut dec = StreamDecoder::new();
        for piece in garbage.chunks(chunk) {
            dec.feed(piece);
            loop {
                let before = dec.buffered();
                match dec.next_step() {
                    DecodeStep::NeedMore => break,
                    DecodeStep::Message(_)
                    | DecodeStep::Quarantined(_)
                    | DecodeStep::Resynced { .. } => {
                        prop_assert!(
                            dec.buffered() < before,
                            "step consumed nothing: {} -> {}",
                            before,
                            dec.buffered()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn valid_frames_survive_surrounding_garbage(
        records in prop::collection::vec(arb_record(), 1..5),
        pre in prop::collection::vec(any::<u8>(), 1..128),
        mid in prop::collection::vec(any::<u8>(), 1..128),
        chunk in 1usize..97,
    ) {
        // Garbage, frame, garbage, frame: the decoder must deliver both
        // messages, resyncing over every byte it cannot use.
        let frame_a = encode_message_v2(3, 10, 0, 7, &records);
        let frame_b = encode_message(3, 11, 1, &records);
        let mut stream = Vec::new();
        stream.extend_from_slice(&pre);
        stream.extend_from_slice(&frame_a);
        stream.extend_from_slice(&mid);
        stream.extend_from_slice(&frame_b);

        let mut dec = StreamDecoder::new();
        let mut times = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.feed(piece);
            loop {
                match dec.next_step() {
                    DecodeStep::NeedMore => break,
                    DecodeStep::Message(m) => {
                        prop_assert_eq!(&m.records, &records);
                        times.push(m.export_time_ms);
                    }
                    DecodeStep::Quarantined(_) | DecodeStep::Resynced { .. } => {}
                }
            }
        }
        // Garbage may happen to embed a valid-looking frame header, in
        // which case bytes of a real frame can be consumed as that
        // phantom frame's payload — but the *aligned* case (garbage
        // containing no magic) must always deliver both messages.
        let magic = 0x464c_4b31u32.to_be_bytes();
        let clean = |g: &[u8]| !g.windows(4).any(|w| w == magic)
            && !g.iter().rev().take(3).any(|&b| b == magic[0]);
        if clean(&pre) && clean(&mid) {
            prop_assert_eq!(&times, &vec![10, 11],
                "both valid frames must survive garbage resync");
        }
    }

    #[test]
    fn truncation_never_panics(
        records in prop::collection::vec(arb_record(), 1..6),
        cut_fraction in 0.0f64..1.0,
        v2: bool,
    ) {
        let bytes = if v2 {
            encode_message_v2(1, 2, 3, 4, &records)
        } else {
            encode_message(1, 2, 3, &records)
        };
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        // Any prefix must decode to Ok or a clean error — never panic.
        let _ = decode_message(&bytes[..cut]);
    }
}
