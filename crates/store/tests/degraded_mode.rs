//! Store degraded-mode contract: a failing segment append (EIO,
//! disk-full, torn write) never loses the epoch's verdict or takes the
//! process down. The store drops to ring-only, raises an ops alert,
//! keeps every tier-1 query serving, and a reopen over a healthy disk
//! recovers the intact durable prefix and restores durability.

use flock_core::LocalizationResult;
use flock_store::{AppendFault, Durability, StoreConfig, StoreQuery, VerdictStore};
use flock_stream::{DegradeReason, EpochHealth, EpochReport, Provenance};
use flock_topology::{Component, LinkId};
use std::path::PathBuf;
use std::time::Duration;

fn temp_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("flock_degraded_{}_{name}.seg", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// A hand-built report blaming one link, optionally carrying a degraded
/// health verdict — enough surface for the store without a pipeline.
fn report(epoch: u64, degraded: bool) -> EpochReport {
    let component = Component::Link(LinkId(7));
    let provenance = vec![Provenance {
        component,
        shard: "pod1".to_string(),
        score: 10.0 + epoch as f64,
        super_flows: 4,
        raw_weight: 64.0,
        sets: vec![1, 2],
    }];
    let health = if degraded {
        EpochHealth::Degraded {
            reasons: vec![DegradeReason::ShardPanicked {
                shard: "pod2".into(),
            }],
            evidence_coverage: 0.8,
        }
    } else {
        EpochHealth::Healthy
    };
    EpochReport {
        epoch_index: epoch,
        start_ms: epoch * 1_000,
        end_ms: (epoch + 1) * 1_000,
        records: 100,
        observations: 40,
        result: LocalizationResult {
            scores: vec![10.0 + epoch as f64],
            predicted: vec![component],
            log_likelihood: -12.0,
            hypotheses_scanned: 1_000,
            iterations: 1,
            runtime: Duration::from_millis(3),
        },
        shards: Vec::new(),
        refined: None,
        provenance,
        health,
        failures: Vec::new(),
        stages: Default::default(),
    }
}

#[test]
fn append_failure_degrades_to_ring_only_and_reopen_recovers() {
    let path = temp_path("eio");
    let comp = Component::Link(LinkId(7));
    {
        let mut store = VerdictStore::create(StoreConfig::default(), &path).unwrap();
        for e in 0..3 {
            store.ingest(&report(e, false));
        }
        assert_eq!(store.durability(), Durability::Durable);
        assert_eq!(store.durable_epochs(), 3);
        assert!(store.ops_alerts().is_empty());

        // Disk goes bad: the next append fails with EIO. The ingest
        // must not error, and the verdict must land in tier 1.
        store.inject_append_fault(AppendFault::Error(std::io::ErrorKind::Other));
        store.ingest(&report(3, true));
        assert_eq!(store.durability(), Durability::RingOnly);
        assert_eq!(store.durable_epochs(), 3, "failed append stored nothing");
        assert_eq!(store.metrics().counter("append_failures"), 1);
        assert_eq!(store.ops_alerts().len(), 1);
        assert!(
            store.ops_alerts()[0].what.contains("ring-only"),
            "ops alert must name the degradation: {}",
            store.ops_alerts()[0].what
        );
        assert!(store.append_error().is_some());

        // Ring-only is sticky: later ingests skip the segment but keep
        // serving queries.
        store.ingest(&report(4, false));
        assert_eq!(store.durable_epochs(), 3);
        assert_eq!(store.metrics().counter("appends_skipped_ring_only"), 1);
        assert_eq!(store.last_epoch(), Some(4));
        let history = store.history(comp);
        assert_eq!(history.len(), 5, "ring-only epochs stay queryable");
        assert!(
            store.provenance(comp, 4).is_some(),
            "tier-1 provenance serves"
        );
        assert_eq!(store.metrics().counter("degraded_epochs"), 1);
    }

    // Reopen over the (now healthy) disk: the intact durable prefix is
    // all there, durability is restored, and appends work again. The
    // ring-only epochs 3-4 were never durable — that is the documented
    // cost of the degradation, not silent corruption.
    let mut store = VerdictStore::open(StoreConfig::default(), &path).unwrap();
    assert!(store.torn().is_none());
    assert_eq!(store.durability(), Durability::Durable);
    assert_eq!(store.durable_epochs(), 3);
    assert_eq!(store.history(comp).len(), 3);
    store.ingest(&report(3, false));
    assert_eq!(store.durable_epochs(), 4);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_append_is_truncated_at_reopen_and_segment_stays_appendable() {
    let path = temp_path("torn");
    {
        let mut store = VerdictStore::create(StoreConfig::default(), &path).unwrap();
        store.ingest(&report(0, false));
        store.ingest(&report(1, true));
        // Crash mid-write: only 7 bytes of the next frame reach disk.
        store.inject_append_fault(AppendFault::Torn { keep_bytes: 7 });
        store.ingest(&report(2, false));
        assert_eq!(store.durability(), Durability::RingOnly);
        assert_eq!(store.durable_epochs(), 2);
    }

    let mut store = VerdictStore::open(StoreConfig::default(), &path).unwrap();
    assert!(
        store.torn().is_some(),
        "reopen must detect and type the torn tail"
    );
    assert_eq!(store.durable_epochs(), 2, "intact prefix survives");
    // The degraded health verdict round-trips through the v2 codec and
    // the reopen replay.
    let recs: Vec<_> = store.recent().cloned().collect();
    assert!(!recs[0].degraded);
    assert!(recs[1].degraded);
    assert_eq!(recs[1].evidence_coverage, 0.8);
    assert_eq!(
        recs[1].degrade_reasons,
        vec!["shard-panicked:pod2".to_string()]
    );
    // Truncation leaves a clean frame boundary: appends work.
    store.ingest(&report(2, false));
    assert_eq!(store.durable_epochs(), 3);
    assert_eq!(store.durability(), Durability::Durable);
    let _ = std::fs::remove_file(&path);
}
