//! The store smoke CI runs: drive the standard appear/persist/heal
//! fixture through the pipeline into a *durable* store, close it,
//! reopen, and re-ask every query — blame history, the single debounced
//! alert, and per-epoch provenance must all survive the restart (the
//! tier-2 path is forced by a tiny tier-1 ring).

use flock_netsim::dynamic::{DynamicScenario, FaultEvent};
use flock_netsim::flowsim::{simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_store::{AlertPolicy, StoreConfig, StoreQuery, VerdictStore};
use flock_stream::{EpochConfig, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, InputKind};
use flock_topology::clos::{three_tier, ClosParams};
use flock_topology::{Component, Router};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn write_reopen_query() {
    let topo = three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    });
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(40);

    // The standard fixture: fault appears at epoch 1, heals at epoch 4.
    let mut sc = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);
    let link = topo.fabric_links()[11];
    sc.events.push(FaultEvent {
        link,
        drop_rate: 0.02,
        appear_epoch: 1,
        heal_epoch: Some(4),
    });
    let comp = Component::Link(link);

    let path = std::env::temp_dir().join(format!("flock_store_smoke_{}.seg", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cfg = StoreConfig {
        // Tiny ring: epoch-1 queries after reopen MUST come from the
        // durable tier, not the hot one.
        ring_capacity: 2,
        policy: AlertPolicy {
            raise_epochs: 2,
            clear_epochs: 1,
            ..AlertPolicy::default()
        },
    };

    // ---- Write: run the fixture into a fresh durable store. ----
    {
        let mut pipeline = StreamPipeline::new(
            &topo,
            StreamConfig {
                epoch: EpochConfig::tumbling(1_000),
                kinds: vec![InputKind::Int],
                mode: AnalysisMode::PerPacket,
                warm_start: true,
                shard_by_pod: true,
                ..StreamConfig::paper_default()
            },
        );
        let mut store = VerdictStore::create(cfg, &path).unwrap();
        for epoch in 0..6u64 {
            let snapshot = sc.scenario_at(epoch);
            let demands = generate_demands(
                &topo,
                &TrafficConfig::paper(3_000, TrafficPattern::Uniform),
                &mut rng,
            );
            let flows = simulate_flows(
                &topo,
                &router,
                &snapshot,
                &demands,
                &FlowSimConfig::default(),
                &mut rng,
            );
            let report = pipeline.run_flows(epoch, epoch * 1_000, (epoch + 1) * 1_000, &flows);
            store.ingest(&report);
        }
        store.sync().unwrap();
        // Sanity before the restart: one debounced alert, raised and
        // cleared.
        assert_eq!(store.alerts().len(), 1);
        assert_eq!(store.alerts()[0].raised_epoch, 2);
        assert_eq!(store.alerts()[0].cleared_epoch, Some(4));
    }

    // ---- Reopen: every query must survive the restart. ----
    let mut store = VerdictStore::open(cfg, &path).unwrap();
    assert!(store.torn().is_none());
    assert_eq!(store.durable_epochs(), 6);
    assert_eq!(store.metrics().counter("epochs_ingested"), 6);

    // Queryable blame history for the faulty component.
    let history = store.history(comp);
    let epochs: Vec<u64> = history.iter().map(|s| s.epoch).collect();
    assert_eq!(epochs, vec![1, 2, 3]);
    assert!(history.iter().all(|s| s.score.is_finite() && s.score > 0.0));

    // Exactly one debounced alert: raised after 2 persisting epochs,
    // cleared on heal.
    assert_eq!(store.alerts().len(), 1);
    let alert = &store.alerts()[0];
    assert_eq!(alert.component, comp);
    assert_eq!(alert.raised_epoch, 2);
    assert_eq!(alert.cleared_epoch, Some(4));
    assert!(store.active_alerts().is_empty());

    // Non-empty provenance naming the convicting super-flows/shard —
    // epoch 1 is outside the reopened 2-epoch ring, so this exercises
    // the durable tier.
    let prov = store
        .provenance(comp, 1)
        .expect("provenance survives reopen");
    assert!(prov.super_flows > 0);
    assert!(prov.raw_weight > 0.0);
    assert!(!prov.shard.is_empty());
    assert!(!prov.sets.is_empty());

    // The stored record also exports as JSON via the serde layer (what
    // the daemon's --json mode emits).
    let rec = store.recent().next().expect("ring has records").clone();
    let json = serde::json::to_string(&rec);
    assert!(
        json.starts_with('{') && json.contains("\"verdicts\""),
        "{json}"
    );

    std::fs::remove_file(&path).unwrap();
}
