//! Flap detection and alert debouncing end to end: a flapping gray
//! failure driven through the real pipeline must raise exactly ONE
//! debounced alert for the whole episode — no raise/clear churn per
//! oscillation — clear it after the final heal, and be reported by the
//! flapping query.

use flock_netsim::dynamic::{DynamicScenario, FaultEvent};
use flock_netsim::flowsim::{simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_store::{AlertPolicy, StoreConfig, StoreQuery, VerdictStore};
use flock_stream::{EpochConfig, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, InputKind, MonitoredFlow};
use flock_topology::clos::{three_tier, ClosParams};
use flock_topology::{Component, Router, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pods3() -> Topology {
    three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    })
}

fn epoch_flows(
    topo: &Topology,
    router: &Router<'_>,
    sc: &DynamicScenario,
    epoch: u64,
    rng: &mut StdRng,
) -> Vec<MonitoredFlow> {
    let snapshot = sc.scenario_at(epoch);
    let demands = generate_demands(
        topo,
        &TrafficConfig::paper(3_000, TrafficPattern::Uniform),
        rng,
    );
    simulate_flows(
        topo,
        router,
        &snapshot,
        &demands,
        &FlowSimConfig::default(),
        rng,
    )
}

#[test]
fn flapping_fault_raises_one_debounced_alert_and_clears_on_heal() {
    let topo = pods3();
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(40);

    // One link flapping three times: blamed on epochs {1,2}, {4,5},
    // {7,8}; clean in between and from epoch 9 on.
    let mut sc = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);
    let link = topo.fabric_links()[11];
    for (appear, heal) in [(1, 3), (4, 6), (7, 9)] {
        sc.events.push(FaultEvent {
            link,
            drop_rate: 0.02,
            appear_epoch: appear,
            heal_epoch: Some(heal),
        });
    }
    let comp = Component::Link(link);

    let mut pipeline = StreamPipeline::new(
        &topo,
        StreamConfig {
            epoch: EpochConfig::tumbling(1_000),
            kinds: vec![InputKind::Int],
            mode: AnalysisMode::PerPacket,
            warm_start: true,
            shard_by_pod: true,
            ..StreamConfig::paper_default()
        },
    );
    // Raise after 2 persisting epochs; hold through 1-epoch heals
    // (clear only after 2 consecutive clean epochs) — the oscillation
    // period here is inside the hold-down, so the episode must stay one
    // alert.
    let mut store = VerdictStore::in_memory(StoreConfig {
        ring_capacity: 16,
        policy: AlertPolicy {
            raise_epochs: 2,
            clear_epochs: 2,
            flap_transitions: 3,
            flap_window: 16,
        },
    });

    for epoch in 0..12u64 {
        let flows = epoch_flows(&topo, &router, &sc, epoch, &mut rng);
        let report = pipeline.run_flows(epoch, epoch * 1_000, (epoch + 1) * 1_000, &flows);
        // The pipeline layer must track the oscillation exactly — the
        // precondition for the alert-churn assertion to be meaningful.
        let active = !sc.active_at(epoch).is_empty();
        assert_eq!(
            report.result.predicted == vec![comp],
            active,
            "epoch {epoch}: blamed {:?}, fault active: {active}",
            report.result.predicted
        );
        let delta = store.ingest(&report);
        // Raise fires exactly once, at the 2nd persisting epoch.
        assert_eq!(
            !delta.raised.is_empty(),
            epoch == 2,
            "epoch {epoch}: unexpected raise set {:?}",
            delta.raised
        );
        // Clear fires exactly once, after the 2nd clean epoch past the
        // last oscillation.
        assert_eq!(
            !delta.cleared.is_empty(),
            epoch == 10,
            "epoch {epoch}: unexpected clear set {:?}",
            delta.cleared
        );
    }

    // One alert for the whole flapping episode — no churn.
    assert_eq!(store.alerts().len(), 1, "alert churn: {:?}", store.alerts());
    let alert = &store.alerts()[0];
    assert_eq!(alert.component, comp);
    assert_eq!(alert.first_epoch, 1);
    assert_eq!(alert.raised_epoch, 2);
    assert_eq!(alert.cleared_epoch, Some(10));
    assert!(store.active_alerts().is_empty());

    // The blame history holds exactly the active epochs.
    let epochs: Vec<u64> = store.history(comp).iter().map(|s| s.epoch).collect();
    assert_eq!(epochs, vec![1, 2, 4, 5, 7, 8]);

    // And the oscillation is visible to the flap query.
    assert_eq!(store.flapping(12), vec![comp]);

    // Provenance stays answerable per blamed epoch, naming the
    // convicting shard and super-flows.
    for e in [1u64, 5, 8] {
        let prov = store
            .provenance(comp, e)
            .expect("blamed epoch has provenance");
        assert!(prov.super_flows > 0, "epoch {e}: empty provenance");
        assert!(!prov.shard.is_empty());
        assert!(!prov.sets.is_empty());
    }
    assert!(store.provenance(comp, 3).is_none(), "clean epoch has none");
}
