//! Durable-segment crash-safety: a torn tail write must not take the
//! intact prefix with it. Reopening after truncation (or a corrupted
//! byte) yields every intact record, rejects the torn one with a typed
//! error, and leaves the segment appendable.

use flock_store::{
    EpochRecord, Segment, SegmentError, StoreConfig, StoreQuery, Verdict, VerdictStore,
};
use flock_stream::Provenance;
use flock_topology::{Component, LinkId};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("flock_store_{}_{name}.seg", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn record(epoch: u64) -> EpochRecord {
    let component = Component::Link(LinkId(7));
    EpochRecord {
        epoch_index: epoch,
        start_ms: epoch * 1_000,
        end_ms: (epoch + 1) * 1_000,
        records: 3_000,
        observations: 120,
        hypotheses_scanned: 40_000 + epoch,
        runtime_us: 900 + epoch,
        // Odd epochs store a degraded verdict so the health block
        // round-trips through the v2 codec and crash recovery.
        degraded: epoch % 2 == 1,
        evidence_coverage: if epoch % 2 == 1 { 0.75 } else { 1.0 },
        degrade_reasons: if epoch % 2 == 1 {
            vec![format!("shard-panicked:pod{epoch}")]
        } else {
            Vec::new()
        },
        verdicts: vec![Verdict {
            component,
            score: 12.5 + epoch as f64,
            provenance: Provenance {
                component,
                shard: "pod1".to_string(),
                score: 12.5 + epoch as f64,
                super_flows: 17,
                raw_weight: 240.0,
                sets: vec![3, 9, 11],
            },
        }],
    }
}

fn write_segment(path: &PathBuf, epochs: u64) -> u64 {
    let mut seg = Segment::create(path).unwrap();
    for e in 0..epochs {
        seg.append(&record(e)).unwrap();
    }
    seg.sync().unwrap();
    seg.file_bytes()
}

#[test]
fn roundtrip_without_corruption() {
    let path = temp_path("roundtrip");
    write_segment(&path, 5);
    let mut seg = Segment::open(&path).unwrap();
    assert!(seg.torn().is_none());
    assert_eq!(seg.len(), 5);
    for e in 0..5u64 {
        let rec = seg.read_epoch(e).unwrap().unwrap();
        assert_eq!(rec.epoch_index, e);
        assert_eq!(rec.verdicts.len(), 1);
        let v = &rec.verdicts[0];
        assert_eq!(v.component, Component::Link(LinkId(7)));
        assert_eq!(v.provenance.shard, "pod1");
        assert_eq!(v.provenance.sets, vec![3, 9, 11]);
        assert_eq!(v.provenance.super_flows, 17);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_tail_rejected_prefix_readable() {
    let path = temp_path("trunc");
    let full = write_segment(&path, 5);

    // A crash mid-append: the last frame loses its final 7 bytes.
    let f = OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(full - 7).unwrap();
    drop(f);

    let mut seg = Segment::open(&path).unwrap();
    // The torn record is rejected with the typed reason...
    match seg.torn() {
        Some(SegmentError::TornFrame { have, need, .. }) => {
            assert!(have < need, "torn frame must be short: {have} < {need}")
        }
        other => panic!("expected TornFrame, got {other:?}"),
    }
    // ...and the intact prefix is fully readable.
    assert_eq!(seg.len(), 4);
    for e in 0..4u64 {
        assert_eq!(seg.read(e as usize).unwrap().epoch_index, e);
    }

    // The segment stays appendable: recovery truncated the torn bytes,
    // so a new append lands on a clean frame boundary...
    seg.append(&record(100)).unwrap();
    seg.sync().unwrap();
    drop(seg);
    // ...and a further reopen sees a clean file.
    let mut seg = Segment::open(&path).unwrap();
    assert!(seg.torn().is_none());
    assert_eq!(seg.len(), 5);
    assert_eq!(seg.read(4).unwrap().epoch_index, 100);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupted_byte_rejected_with_checksum_error() {
    let path = temp_path("crc");
    let full = write_segment(&path, 3);

    // Flip one payload byte inside the last frame.
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    f.seek(SeekFrom::Start(full - 3)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(full - 3)).unwrap();
    f.write_all(&[b[0] ^ 0xff]).unwrap();
    drop(f);

    let seg = Segment::open(&path).unwrap();
    match seg.torn() {
        Some(SegmentError::ChecksumMismatch {
            expected, found, ..
        }) => assert_ne!(expected, found),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    assert_eq!(seg.len(), 2);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn store_reopen_replays_the_intact_prefix() {
    let path = temp_path("store_reopen");
    let full = write_segment(&path, 6);
    // Tear the tail, then open through the store layer.
    let f = OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(full - 5).unwrap();
    drop(f);

    let mut store = VerdictStore::open(StoreConfig::default(), &path).unwrap();
    assert!(matches!(store.torn(), Some(SegmentError::TornFrame { .. })));
    assert_eq!(store.durable_epochs(), 5);
    // Derived state is rebuilt from the intact prefix by replay.
    let comp = Component::Link(LinkId(7));
    let history = store.history(comp);
    assert_eq!(history.len(), 5);
    assert_eq!(history[0].epoch, 0);
    assert_eq!(history[4].epoch, 4);
    let prov = store.provenance(comp, 2).expect("blamed in epoch 2");
    assert_eq!(prov.shard, "pod1");
    assert!(store.provenance(comp, 5).is_none(), "torn epoch is gone");
    std::fs::remove_file(&path).unwrap();
}
