//! Tier 2: the append-only durable segment file.
//!
//! Layout (all integers big-endian, in the style of
//! `flock_telemetry::wire`):
//!
//! ```text
//! header   := magic u32 ("FLKV") | version u16 | reserved u16
//! frame    := payload_len u32 | checksum u32 (FNV-1a/32 of payload) | payload
//! payload  := epoch u64 | start_ms u64 | end_ms u64 | records u64 |
//!             observations u64 | hypotheses u64 | runtime_us u64 |
//!             health (v2+) | n_verdicts u16 | verdict*
//! health   := degraded u8 | coverage f64 | n_reasons u8 |
//!             (reason_len u16 | reason utf8)*
//! verdict  := comp_tag u8 (0 link, 1 device) | comp_id u32 |
//!             score f64 | shard_len u8 | shard utf8 |
//!             super_flows u32 | raw_weight f64 | n_sets u8 | set_id u32*
//! ```
//!
//! Version 2 added the health block (the degraded-verdict contract).
//! Version-1 segments open read-compatible — their records decode as
//! healthy — and keep being *written* as version 1, since the file
//! header's version governs every frame in the file.
//!
//! Appends are frame-at-a-time, so the only corruption a crash can
//! produce is a *torn tail*: a final frame whose length, payload, or
//! checksum is incomplete. [`Segment::open`] recovers by scanning
//! frames from the start, stopping at the first invalid one: the intact
//! prefix is fully indexed and readable, the torn tail is truncated
//! away (so the next append starts on a clean boundary), and the typed
//! reason is kept available via [`Segment::torn`].
//!
//! The in-memory footprint of an open segment is the compact index —
//! `(epoch, offset, len)` per record — never the records themselves;
//! reads seek.

use crate::record::{EpochRecord, Verdict};
use bytes::{Buf, BufMut};
use flock_stream::Provenance;
use flock_topology::{Component, LinkId, NodeId};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// `"FLKV"` — flock verdict segment.
pub const SEGMENT_MAGIC: u32 = 0x464c_4b56;
/// Codec version this build writes to fresh segments. Version 1 (no
/// health block) remains readable and appendable.
pub const SEGMENT_VERSION: u16 = 2;
/// Bytes of the file header.
pub const HEADER_LEN: u64 = 8;
/// Bytes of a frame header (`payload_len` + `checksum`).
pub const FRAME_HEADER_LEN: u64 = 8;

/// Why a segment (or one of its records) could not be read.
#[derive(Debug)]
pub enum SegmentError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`SEGMENT_MAGIC`].
    BadMagic(u32),
    /// The file's codec version is newer than [`SEGMENT_VERSION`] (or
    /// zero).
    BadVersion(u16),
    /// The file ends inside the 8-byte header.
    TruncatedHeader {
        /// Actual file length.
        len: u64,
    },
    /// The file ends inside a frame — a torn tail write.
    TornFrame {
        /// Offset of the torn frame.
        offset: u64,
        /// Bytes present past the offset.
        have: u64,
        /// Bytes the frame claims to need.
        need: u64,
    },
    /// A frame's payload does not match its stored checksum.
    ChecksumMismatch {
        /// Offset of the bad frame.
        offset: u64,
        /// Checksum stored in the frame header.
        expected: u32,
        /// Checksum of the bytes actually present.
        found: u32,
    },
    /// A checksum-valid payload failed structural decoding.
    MalformedRecord {
        /// Offset of the bad frame.
        offset: u64,
        /// What the decoder ran into.
        detail: &'static str,
    },
    /// A lookup named a record index the segment does not have.
    NoSuchRecord {
        /// The out-of-range index.
        index: usize,
    },
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment io error: {e}"),
            SegmentError::BadMagic(m) => {
                write!(f, "bad segment magic {m:#010x} (want {SEGMENT_MAGIC:#010x})")
            }
            SegmentError::BadVersion(v) => {
                write!(f, "unsupported segment version {v} (want 1..={SEGMENT_VERSION})")
            }
            SegmentError::TruncatedHeader { len } => {
                write!(f, "file too short for segment header ({len} < {HEADER_LEN} bytes)")
            }
            SegmentError::TornFrame { offset, have, need } => write!(
                f,
                "torn frame at offset {offset}: {have} of {need} bytes present"
            ),
            SegmentError::ChecksumMismatch {
                offset,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch at offset {offset}: stored {expected:#010x}, computed {found:#010x}"
            ),
            SegmentError::MalformedRecord { offset, detail } => {
                write!(f, "malformed record at offset {offset}: {detail}")
            }
            SegmentError::NoSuchRecord { index } => {
                write!(f, "no record at index {index}")
            }
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> Self {
        SegmentError::Io(e)
    }
}

/// Index entry for one durable record.
#[derive(Debug, Clone, Copy)]
pub struct SegmentEntry {
    /// Epoch index of the record.
    pub epoch: u64,
    /// File offset of the frame (its frame header).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
}

/// An injectable append fault — the chaos harness's seam into the
/// store's durability path. Armed via [`Segment::inject_append_fault`]
/// (or [`crate::VerdictStore::inject_append_fault`]); the next append
/// consumes it and fails instead of (or after partially) writing.
#[derive(Debug, Clone, Copy)]
pub enum AppendFault {
    /// The append fails outright with an I/O error of this kind before
    /// writing a byte (EIO, disk-full, …). The file is untouched.
    Error(std::io::ErrorKind),
    /// The append writes only the first `keep_bytes` of the frame and
    /// then fails — a crash/disk-full mid-write. The file is left with
    /// a torn tail past the intact prefix, exactly what
    /// [`Segment::open`] recovery must truncate away.
    Torn {
        /// Frame bytes that reach the file before the failure.
        keep_bytes: usize,
    },
}

/// An open append-only verdict segment (see the module docs).
pub struct Segment {
    file: File,
    path: PathBuf,
    /// The file's codec version (frames are encoded/decoded per this,
    /// not per the build's [`SEGMENT_VERSION`]).
    version: u16,
    /// Compact index of the intact prefix, in file order.
    index: Vec<SegmentEntry>,
    /// Next append offset (end of the intact prefix).
    end: u64,
    /// The typed reason the tail was rejected, when recovery found one.
    torn: Option<SegmentError>,
    /// Armed fault for the next append, if a chaos harness set one.
    fault: Option<AppendFault>,
    /// Scratch buffer for encode/read.
    buf: Vec<u8>,
}

impl Segment {
    /// Create a fresh segment at `path`, truncating anything there.
    pub fn create(path: impl AsRef<Path>) -> Result<Segment, SegmentError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.put_u32(SEGMENT_MAGIC);
        header.put_u16(SEGMENT_VERSION);
        header.put_u16(0);
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(Segment {
            file,
            path,
            version: SEGMENT_VERSION,
            index: Vec::new(),
            end: HEADER_LEN,
            torn: None,
            fault: None,
            buf: Vec::new(),
        })
    }

    /// Open (or create) the segment at `path`, recovering from a torn
    /// tail: the intact prefix is indexed, the tail past the first
    /// invalid frame is truncated away, and the typed rejection reason
    /// is kept available via [`Segment::torn`].
    pub fn open(path: impl AsRef<Path>) -> Result<Segment, SegmentError> {
        let path_ref = path.as_ref();
        if !path_ref.exists() {
            return Segment::create(path_ref);
        }
        let path = path_ref.to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        if raw.is_empty() {
            drop(file);
            return Segment::create(&path);
        }
        if raw.len() < HEADER_LEN as usize {
            return Err(SegmentError::TruncatedHeader {
                len: raw.len() as u64,
            });
        }
        let mut cur: &[u8] = &raw;
        let magic = cur.get_u32();
        if magic != SEGMENT_MAGIC {
            return Err(SegmentError::BadMagic(magic));
        }
        let version = cur.get_u16();
        if version == 0 || version > SEGMENT_VERSION {
            return Err(SegmentError::BadVersion(version));
        }
        let _reserved = cur.get_u16();

        // Scan frames; the first invalid one ends the intact prefix.
        let mut index = Vec::new();
        let mut offset = HEADER_LEN;
        let mut torn = None;
        while offset < raw.len() as u64 {
            match scan_frame(&raw, offset, version) {
                Ok(entry) => {
                    offset = entry.offset + FRAME_HEADER_LEN + u64::from(entry.len);
                    index.push(entry);
                }
                Err(e) => {
                    torn = Some(e);
                    break;
                }
            }
        }
        if torn.is_some() {
            // Drop the torn tail so the next append starts on a clean
            // frame boundary.
            file.set_len(offset)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(offset))?;
        Ok(Segment {
            file,
            path,
            version,
            index,
            end: offset,
            torn,
            fault: None,
            buf: Vec::new(),
        })
    }

    /// The codec version of this file's frames.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Arm an [`AppendFault`] for the next append (single-shot: the
    /// failing append consumes it).
    pub fn inject_append_fault(&mut self, fault: AppendFault) {
        self.fault = Some(fault);
    }

    /// The typed reason the tail was rejected at open, if recovery
    /// found a torn write.
    pub fn torn(&self) -> Option<&SegmentError> {
        self.torn.as_ref()
    }

    /// File path of the segment.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of intact records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The compact in-memory index, in file order.
    pub fn index(&self) -> &[SegmentEntry] {
        &self.index
    }

    /// Total file size in bytes (header + intact frames).
    pub fn file_bytes(&self) -> u64 {
        self.end
    }

    /// Append one record; returns its index entry.
    pub fn append(&mut self, rec: &EpochRecord) -> Result<SegmentEntry, SegmentError> {
        self.buf.clear();
        encode_record(rec, &mut self.buf, self.version);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN as usize + self.buf.len());
        frame.put_u32(self.buf.len() as u32);
        frame.put_u32(fnv1a(&self.buf));
        frame.extend_from_slice(&self.buf);
        if let Some(fault) = self.fault.take() {
            match fault {
                AppendFault::Error(kind) => {
                    return Err(SegmentError::Io(std::io::Error::new(
                        kind,
                        "injected append fault",
                    )));
                }
                AppendFault::Torn { keep_bytes } => {
                    // Land a partial frame past the intact prefix —
                    // `end` and the index are NOT advanced, so in-process
                    // reads stay correct and a later successful append
                    // overwrites the torn bytes; a close + reopen
                    // exercises tail recovery instead.
                    let keep = keep_bytes.min(frame.len().saturating_sub(1));
                    self.file.seek(SeekFrom::Start(self.end))?;
                    self.file.write_all(&frame[..keep])?;
                    let _ = self.file.sync_data();
                    return Err(SegmentError::Io(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "injected torn append",
                    )));
                }
            }
        }
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&frame)?;
        let entry = SegmentEntry {
            epoch: rec.epoch_index,
            offset: self.end,
            len: self.buf.len() as u32,
        };
        self.end += frame.len() as u64;
        self.index.push(entry);
        Ok(entry)
    }

    /// Flush appended frames to stable storage.
    pub fn sync(&mut self) -> Result<(), SegmentError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Read the `i`-th intact record (seeks; nothing stays resident).
    pub fn read(&mut self, i: usize) -> Result<EpochRecord, SegmentError> {
        let entry = *self
            .index
            .get(i)
            .ok_or(SegmentError::NoSuchRecord { index: i })?;
        self.file
            .seek(SeekFrom::Start(entry.offset + FRAME_HEADER_LEN))?;
        self.buf.clear();
        self.buf.resize(entry.len as usize, 0);
        self.file.read_exact(&mut self.buf)?;
        let mut cur: &[u8] = &self.buf;
        decode_record(&mut cur, entry.offset, self.version)
    }

    /// Read the record for `epoch`, if stored (last write wins when an
    /// epoch was somehow appended twice).
    pub fn read_epoch(&mut self, epoch: u64) -> Option<Result<EpochRecord, SegmentError>> {
        let i = self.index.iter().rposition(|e| e.epoch == epoch)?;
        Some(self.read(i))
    }

    /// Decode every intact record in file order, calling `f` on each —
    /// the store's reopen replay. One pass, nothing retained here.
    pub fn replay(&mut self, mut f: impl FnMut(EpochRecord)) -> Result<(), SegmentError> {
        for i in 0..self.index.len() {
            f(self.read(i)?);
        }
        Ok(())
    }
}

/// Validate the frame at `offset` of `raw` (length, checksum, and a
/// structural decode) and return its index entry.
fn scan_frame(raw: &[u8], offset: u64, version: u16) -> Result<SegmentEntry, SegmentError> {
    let rest = &raw[offset as usize..];
    if (rest.len() as u64) < FRAME_HEADER_LEN {
        return Err(SegmentError::TornFrame {
            offset,
            have: rest.len() as u64,
            need: FRAME_HEADER_LEN,
        });
    }
    let mut cur = rest;
    let len = cur.get_u32();
    let expected = cur.get_u32();
    if (cur.remaining() as u64) < u64::from(len) {
        return Err(SegmentError::TornFrame {
            offset,
            have: FRAME_HEADER_LEN + cur.remaining() as u64,
            need: FRAME_HEADER_LEN + u64::from(len),
        });
    }
    let payload = &cur[..len as usize];
    let found = fnv1a(payload);
    if found != expected {
        return Err(SegmentError::ChecksumMismatch {
            offset,
            expected,
            found,
        });
    }
    let mut pcur = payload;
    let rec = decode_record(&mut pcur, offset, version)?;
    Ok(SegmentEntry {
        epoch: rec.epoch_index,
        offset,
        len,
    })
}

/// FNV-1a/32 — cheap, dependency-free torn-write detection (this guards
/// against partial writes, not adversarial corruption).
pub fn fnv1a(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in data {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encode one record payload (frame header excluded) at `version` —
/// the *file's* codec version, which may be older than
/// [`SEGMENT_VERSION`] when appending to an opened v1 segment (the
/// health block is then dropped, not mis-framed).
pub fn encode_record(rec: &EpochRecord, out: &mut Vec<u8>, version: u16) {
    out.put_u64(rec.epoch_index);
    out.put_u64(rec.start_ms);
    out.put_u64(rec.end_ms);
    out.put_u64(rec.records);
    out.put_u64(rec.observations);
    out.put_u64(rec.hypotheses_scanned);
    out.put_u64(rec.runtime_us);
    if version >= 2 {
        out.put_u8(u8::from(rec.degraded));
        out.put_u64(rec.evidence_coverage.to_bits());
        let n = rec.degrade_reasons.len().min(u8::MAX as usize);
        out.put_u8(n as u8);
        for reason in rec.degrade_reasons.iter().take(n) {
            let bytes = reason.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            out.put_u16(len as u16);
            out.put_slice(&bytes[..len]);
        }
    }
    out.put_u16(rec.verdicts.len() as u16);
    for v in &rec.verdicts {
        let (tag, id) = match v.component {
            Component::Link(LinkId(id)) => (0u8, id),
            Component::Device(NodeId(id)) => (1u8, id),
        };
        out.put_u8(tag);
        out.put_u32(id);
        out.put_u64(v.score.to_bits());
        let shard = v.provenance.shard.as_bytes();
        out.put_u8(shard.len().min(u8::MAX as usize) as u8);
        out.put_slice(&shard[..shard.len().min(u8::MAX as usize)]);
        out.put_u32(v.provenance.super_flows);
        out.put_u64(v.provenance.raw_weight.to_bits());
        out.put_u8(v.provenance.sets.len().min(u8::MAX as usize) as u8);
        for &s in v.provenance.sets.iter().take(u8::MAX as usize) {
            out.put_u32(s);
        }
    }
}

/// Checked read helper: the `bytes` cursor panics when exhausted, so
/// every read goes through a remaining-length guard first.
macro_rules! need {
    ($cur:expr, $n:expr, $offset:expr, $what:expr) => {
        if $cur.remaining() < $n {
            return Err(SegmentError::MalformedRecord {
                offset: $offset,
                detail: $what,
            });
        }
    };
}

/// Decode one record payload at the file's codec `version` (v1 records
/// decode as healthy — the health block did not exist). `offset` is
/// only for error reporting.
pub fn decode_record(
    cur: &mut &[u8],
    offset: u64,
    version: u16,
) -> Result<EpochRecord, SegmentError> {
    need!(cur, 56, offset, "payload shorter than fixed record head");
    let epoch_index = cur.get_u64();
    let start_ms = cur.get_u64();
    let end_ms = cur.get_u64();
    let records = cur.get_u64();
    let observations = cur.get_u64();
    let hypotheses_scanned = cur.get_u64();
    let runtime_us = cur.get_u64();
    let mut degraded = false;
    let mut evidence_coverage = 1.0f64;
    let mut degrade_reasons = Vec::new();
    if version >= 2 {
        need!(cur, 10, offset, "health block truncated");
        degraded = cur.get_u8() != 0;
        evidence_coverage = f64::from_bits(cur.get_u64());
        let n_reasons = cur.get_u8() as usize;
        degrade_reasons.reserve(n_reasons);
        for _ in 0..n_reasons {
            need!(cur, 2, offset, "degrade reason length truncated");
            let len = cur.get_u16() as usize;
            need!(cur, len, offset, "degrade reason truncated");
            let reason = std::str::from_utf8(cur.take_bytes(len))
                .map_err(|_| SegmentError::MalformedRecord {
                    offset,
                    detail: "degrade reason is not UTF-8",
                })?
                .to_string();
            degrade_reasons.push(reason);
        }
    }
    need!(cur, 2, offset, "verdict count truncated");
    let n_verdicts = cur.get_u16();
    let mut verdicts = Vec::with_capacity(n_verdicts as usize);
    for _ in 0..n_verdicts {
        need!(cur, 14, offset, "verdict head truncated");
        let tag = cur.get_u8();
        let id = cur.get_u32();
        let component = match tag {
            0 => Component::Link(LinkId(id)),
            1 => Component::Device(NodeId(id)),
            _ => {
                return Err(SegmentError::MalformedRecord {
                    offset,
                    detail: "unknown component tag",
                })
            }
        };
        let score = f64::from_bits(cur.get_u64());
        need!(cur, 1, offset, "shard label length truncated");
        let shard_len = cur.get_u8() as usize;
        need!(cur, shard_len, offset, "shard label truncated");
        let shard = std::str::from_utf8(cur.take_bytes(shard_len))
            .map_err(|_| SegmentError::MalformedRecord {
                offset,
                detail: "shard label is not UTF-8",
            })?
            .to_string();
        need!(cur, 13, offset, "provenance head truncated");
        let super_flows = cur.get_u32();
        let raw_weight = f64::from_bits(cur.get_u64());
        let n_sets = cur.get_u8() as usize;
        need!(cur, n_sets * 4, offset, "provenance sets truncated");
        let sets = (0..n_sets).map(|_| cur.get_u32()).collect();
        verdicts.push(Verdict {
            component,
            score,
            provenance: Provenance {
                component,
                shard,
                score,
                super_flows,
                raw_weight,
                sets,
            },
        });
    }
    Ok(EpochRecord {
        epoch_index,
        start_ms,
        end_ms,
        records,
        observations,
        hypotheses_scanned,
        runtime_us,
        degraded,
        evidence_coverage,
        degrade_reasons,
        verdicts,
    })
}
