//! The tiered verdict store and its query surface.
//!
//! # Tiers
//!
//! * **Tier 1** — an in-memory ring of the most recent
//!   [`EpochRecord`]s ([`StoreConfig::ring_capacity`]); hot queries
//!   (recent provenance, the daemon's log line) never touch disk.
//! * **Tier 2** — an append-only [`Segment`] file; every ingested epoch
//!   is framed, checksummed, and appended, so blame history survives
//!   restarts and the resident cost of a week-long run stays bounded
//!   (the segment keeps only its compact index in memory).
//!
//! Alongside the tiers, the store maintains *derived* state keyed by
//! component — the blame history index, the [`Debouncer`]'s alert state
//! machine, and a [`MetricsRegistry`] — all of which are reconstructed
//! from the segment on [`VerdictStore::open`] by replaying the intact
//! records through the same ingest path. That replay is what makes
//! close/reopen lossless for queries: history, active alerts, and
//! provenance all come back.
//!
//! # Queries
//!
//! [`StoreQuery`] is the operator surface: `history(comp)` (per-epoch
//! blame samples), `flapping(window)` (blame/heal oscillators),
//! `active_alerts()` (debounced, see [`crate::alerts`]), and
//! `provenance(comp, epoch)` ("why was this blamed?" — tier 1 if hot,
//! tier 2 otherwise).

use crate::alerts::{Alert, AlertDelta, AlertPolicy, Debouncer};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::record::EpochRecord;
use crate::segment::{AppendFault, Segment, SegmentError};
use flock_stream::{EpochReport, Provenance};
use flock_topology::Component;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::path::Path;

/// Store sizing and alerting thresholds.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Tier-1 ring capacity (recent epochs held in memory).
    pub ring_capacity: usize,
    /// Debouncing and flap thresholds.
    pub policy: AlertPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            ring_capacity: 64,
            policy: AlertPolicy::default(),
        }
    }
}

/// One point of a component's blame history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BlameSample {
    /// Epoch in which the component was blamed.
    pub epoch: u64,
    /// Conviction score that epoch.
    pub score: f64,
}

/// Where ingested epochs end up (see [`VerdictStore::durability`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Durability {
    /// Every ingested epoch is appended to the tier-2 segment.
    Durable,
    /// A segment append failed; ingest keeps serving tier 1 (ring,
    /// blame index, alerts, metrics) but nothing new reaches disk until
    /// the store is reopened. The typed cause is kept in
    /// [`VerdictStore::append_error`].
    RingOnly,
    /// The store was built memory-only ([`VerdictStore::in_memory`]).
    MemoryOnly,
}

/// An operational (non-blame) alert the store raised about itself —
/// currently only durability loss. Kept separate from the
/// component-keyed [`Alert`] stream so blame alerting stays about the
/// network.
#[derive(Debug, Clone, Serialize)]
pub struct OpsAlert {
    /// Epoch being ingested when the fault hit.
    pub epoch: u64,
    /// Operator-facing description (includes the typed cause).
    pub what: String,
}

/// The operator query surface over a verdict store.
pub trait StoreQuery {
    /// Per-epoch blame samples for `comp`, oldest first (empty if the
    /// component was never blamed).
    fn history(&self, comp: Component) -> Vec<BlameSample>;

    /// Components oscillating between blamed and clean within the
    /// trailing `window` epochs (see [`AlertPolicy::flap_transitions`]).
    fn flapping(&self, window: u64) -> Vec<Component>;

    /// Currently-open debounced alerts.
    fn active_alerts(&self) -> Vec<Alert>;

    /// Why `comp` was blamed in `epoch`: the stored provenance, served
    /// from the tier-1 ring when hot, the tier-2 segment otherwise.
    /// `None` if the component was not blamed that epoch (or the epoch
    /// is unknown).
    fn provenance(&mut self, comp: Component, epoch: u64) -> Option<Provenance>;
}

/// The tiered verdict store (see module docs).
pub struct VerdictStore {
    cfg: StoreConfig,
    /// Tier 1: recent epochs, oldest first.
    ring: VecDeque<EpochRecord>,
    /// Tier 2: the durable segment, when the store was opened with one.
    segment: Option<Segment>,
    /// Blame history per component, append-ordered.
    blame: HashMap<Component, Vec<BlameSample>>,
    debouncer: Debouncer,
    metrics: MetricsRegistry,
    /// The append failure that degraded the store to ring-only, if one
    /// hit (sticky until reopen).
    append_error: Option<SegmentError>,
    /// Operational alerts the store raised about itself, in raise order.
    ops_alerts: Vec<OpsAlert>,
}

impl VerdictStore {
    /// A memory-only store (tier 1 + derived state, no durability).
    pub fn in_memory(cfg: StoreConfig) -> Self {
        VerdictStore {
            cfg,
            ring: VecDeque::new(),
            segment: None,
            blame: HashMap::new(),
            debouncer: Debouncer::new(cfg.policy),
            metrics: MetricsRegistry::new(),
            append_error: None,
            ops_alerts: Vec::new(),
        }
    }

    /// A durable store over a *fresh* segment at `path` (truncates).
    pub fn create(cfg: StoreConfig, path: impl AsRef<Path>) -> Result<Self, SegmentError> {
        let mut store = Self::in_memory(cfg);
        store.segment = Some(Segment::create(path)?);
        Ok(store)
    }

    /// Open (or create) a durable store at `path`, replaying the
    /// segment's intact records through the ingest path so the blame
    /// index, alert state, ring, and counters pick up where the
    /// previous process left off. A torn tail is truncated away; its
    /// typed reason stays available via [`VerdictStore::torn`].
    pub fn open(cfg: StoreConfig, path: impl AsRef<Path>) -> Result<Self, SegmentError> {
        let mut segment = Segment::open(path)?;
        let mut store = Self::in_memory(cfg);
        let mut replayed = Vec::with_capacity(segment.len());
        segment.replay(|rec| replayed.push(rec))?;
        for rec in replayed {
            store.ingest_record(rec);
        }
        store
            .metrics
            .set_gauge("segment_bytes", segment.file_bytes() as f64);
        store.segment = Some(segment);
        Ok(store)
    }

    /// Ingest one epoch's report: project it to an [`EpochRecord`],
    /// append to the segment (if durable), update tiers and derived
    /// state, and run the alert debouncer. Returns what raised/cleared.
    ///
    /// Ingest is **infallible**: a failing segment append (EIO,
    /// disk-full, torn write) never loses the epoch's verdict — the
    /// store degrades to [`Durability::RingOnly`], raises an
    /// [`OpsAlert`], counts `append_failures`, and keeps serving every
    /// tier-1 query. The degradation is sticky until the store is
    /// reopened over a healthy disk (reopen replays the intact durable
    /// prefix).
    pub fn ingest(&mut self, report: &EpochReport) -> AlertDelta {
        // Engine/runtime metrics only the full report carries.
        let runtime_s = report.result.runtime.as_secs_f64();
        self.metrics.observe("epoch_runtime_ms", runtime_s * 1e3);
        if runtime_s > 0.0 {
            self.metrics.set_gauge(
                "flip_throughput_per_s",
                report.result.hypotheses_scanned as f64 / runtime_s,
            );
        }
        for shard in report.shards.iter().chain(&report.refined) {
            self.metrics
                .observe("shard_engine_ms", shard.elapsed.as_secs_f64() * 1e3);
        }
        // The verdict health contract, surfaced as store metrics.
        if report.health.is_degraded() {
            self.metrics.inc("degraded_epochs", 1);
        }
        self.metrics
            .set_gauge("evidence_coverage", report.health.evidence_coverage());

        let rec = EpochRecord::from(report);
        if self.append_error.is_none() {
            if let Some(seg) = &mut self.segment {
                let t0 = std::time::Instant::now();
                match seg.append(&rec) {
                    Ok(_) => {
                        self.metrics
                            .observe("append_ms", t0.elapsed().as_secs_f64() * 1e3);
                        self.metrics
                            .set_gauge("segment_bytes", seg.file_bytes() as f64);
                    }
                    Err(e) => {
                        self.metrics.inc("append_failures", 1);
                        self.metrics.set_gauge("ring_only", 1.0);
                        self.ops_alerts.push(OpsAlert {
                            epoch: rec.epoch_index,
                            what: format!(
                                "segment append failed, store degraded to ring-only: {e}"
                            ),
                        });
                        self.append_error = Some(e);
                    }
                }
            }
        } else {
            self.metrics.inc("appends_skipped_ring_only", 1);
        }
        self.ingest_record(rec)
    }

    /// Where ingested epochs currently end up.
    pub fn durability(&self) -> Durability {
        match (&self.segment, &self.append_error) {
            (None, _) => Durability::MemoryOnly,
            (Some(_), None) => Durability::Durable,
            (Some(_), Some(_)) => Durability::RingOnly,
        }
    }

    /// The typed append failure that degraded the store to ring-only,
    /// if one hit.
    pub fn append_error(&self) -> Option<&SegmentError> {
        self.append_error.as_ref()
    }

    /// Operational alerts the store raised about itself (durability
    /// loss), in raise order.
    pub fn ops_alerts(&self) -> &[OpsAlert] {
        &self.ops_alerts
    }

    /// Arm an [`AppendFault`] on the underlying segment — the chaos
    /// harness's seam into the durability path. No-op for memory-only
    /// stores.
    pub fn inject_append_fault(&mut self, fault: AppendFault) {
        if let Some(seg) = &mut self.segment {
            seg.inject_append_fault(fault);
        }
    }

    /// The shared ingest path for live reports and reopen replay:
    /// everything derivable from the stored record itself.
    fn ingest_record(&mut self, rec: EpochRecord) -> AlertDelta {
        self.metrics.inc("epochs_ingested", 1);
        self.metrics.inc("records_ingested", rec.records);
        self.metrics
            .inc("verdicts_ingested", rec.verdicts.len() as u64);
        self.metrics
            .inc("hypotheses_scanned", rec.hypotheses_scanned);

        let blamed: Vec<(Component, f64)> = rec
            .verdicts
            .iter()
            .map(|v| (v.component, v.score))
            .collect();
        for &(comp, score) in &blamed {
            self.blame.entry(comp).or_default().push(BlameSample {
                epoch: rec.epoch_index,
                score,
            });
        }
        let delta = self.debouncer.observe(rec.epoch_index, &blamed);
        self.metrics.inc("alerts_raised", delta.raised.len() as u64);
        self.metrics
            .inc("alerts_cleared", delta.cleared.len() as u64);
        self.metrics
            .set_gauge("active_alerts", self.debouncer.active_alerts().len() as f64);

        self.ring.push_back(rec);
        while self.ring.len() > self.cfg.ring_capacity.max(1) {
            self.ring.pop_front();
        }
        delta
    }

    /// The typed reason the segment's tail was rejected at open, if
    /// recovery found a torn write.
    pub fn torn(&self) -> Option<&SegmentError> {
        self.segment.as_ref().and_then(|s| s.torn())
    }

    /// Tier-1 ring contents, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &EpochRecord> {
        self.ring.iter()
    }

    /// Latest ingested epoch index, if any.
    pub fn last_epoch(&self) -> Option<u64> {
        self.ring.back().map(|r| r.epoch_index)
    }

    /// Total epochs durably stored (0 for memory-only stores).
    pub fn durable_epochs(&self) -> usize {
        self.segment.as_ref().map_or(0, |s| s.len())
    }

    /// Segment file size in bytes (0 for memory-only stores).
    pub fn segment_bytes(&self) -> u64 {
        self.segment.as_ref().map_or(0, |s| s.file_bytes())
    }

    /// Flush the segment to stable storage.
    pub fn sync(&mut self) -> Result<(), SegmentError> {
        if let Some(seg) = &mut self.segment {
            seg.sync()?;
        }
        Ok(())
    }

    /// Every alert ever raised, in raise order (the alert log).
    pub fn alerts(&self) -> &[Alert] {
        self.debouncer.alerts()
    }

    /// The metrics registry (counters/gauges/histograms; see
    /// [`crate::metrics`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the registry, for hosts that publish their own
    /// gauges alongside the store's (e.g. the daemon's resolved kernel
    /// dispatch level).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// A point-in-time metrics copy for serialization.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl StoreQuery for VerdictStore {
    fn history(&self, comp: Component) -> Vec<BlameSample> {
        self.blame.get(&comp).cloned().unwrap_or_default()
    }

    fn flapping(&self, window: u64) -> Vec<Component> {
        self.debouncer.flapping(window)
    }

    fn active_alerts(&self) -> Vec<Alert> {
        self.debouncer
            .active_alerts()
            .into_iter()
            .cloned()
            .collect()
    }

    fn provenance(&mut self, comp: Component, epoch: u64) -> Option<Provenance> {
        // Tier 1: the hot ring.
        if let Some(rec) = self.ring.iter().find(|r| r.epoch_index == epoch) {
            return rec.verdict(comp).map(|v| v.provenance.clone());
        }
        // Tier 2: seek the segment.
        let rec = self.segment.as_mut()?.read_epoch(epoch)?.ok()?;
        rec.verdict(comp).map(|v| v.provenance.clone())
    }
}
