//! Alert debouncing and flap detection over the per-epoch blame stream.
//!
//! A raw per-epoch verdict is too noisy to page on: a transient
//! congestion event can be blamed for one epoch, and a genuinely flapping
//! link would page on every oscillation. The [`Debouncer`] applies
//! hysteresis on *both* edges:
//!
//! * **raise**: an [`Alert`] fires only after a component is blamed in
//!   [`AlertPolicy::raise_epochs`] *consecutive* observed epochs;
//! * **clear**: an active alert clears only after
//!   [`AlertPolicy::clear_epochs`] consecutive *clean* epochs — so a
//!   fault oscillating faster than the clear window holds **one** alert
//!   open across its oscillations instead of churning raise/clear pairs.
//!
//! Orthogonally, every blame↔clean transition is timestamped per
//! component, and [`Debouncer::flapping`] reports the components with at
//! least [`AlertPolicy::flap_transitions`] transitions inside a trailing
//! epoch window — the flap-detection query.
//!
//! Epochs are the pipeline's window indexes; streak/clean counting is
//! per *observed* epoch (the store ingests every closed window, so
//! observed epochs are consecutive in practice).

use flock_topology::Component;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};

/// Debouncing and flap thresholds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AlertPolicy {
    /// Consecutive blamed epochs before an alert raises.
    pub raise_epochs: u32,
    /// Consecutive clean epochs before an active alert clears.
    pub clear_epochs: u32,
    /// Blame↔clean transitions within the window that qualify as
    /// flapping.
    pub flap_transitions: u32,
    /// Default trailing window (in epochs) for the flapping query.
    pub flap_window: u64,
}

impl Default for AlertPolicy {
    fn default() -> Self {
        AlertPolicy {
            raise_epochs: 3,
            clear_epochs: 2,
            flap_transitions: 3,
            flap_window: 16,
        }
    }
}

/// One debounced alert: raised once per persisting fault, cleared once
/// on heal.
#[derive(Debug, Clone, Serialize)]
pub struct Alert {
    /// The blamed component.
    pub component: Component,
    /// First epoch of the convicting streak.
    pub first_epoch: u64,
    /// Epoch at which the streak reached the raise threshold.
    pub raised_epoch: u64,
    /// Epoch at which the clean streak reached the clear threshold
    /// (`None` while active).
    pub cleared_epoch: Option<u64>,
    /// Most recent conviction score while the alert was active.
    pub last_score: f64,
}

impl Alert {
    /// Whether the alert is still open.
    pub fn is_active(&self) -> bool {
        self.cleared_epoch.is_none()
    }
}

/// What one epoch's observation did to the alert set.
#[derive(Debug, Clone, Default)]
pub struct AlertDelta {
    /// Alerts raised this epoch.
    pub raised: Vec<Alert>,
    /// Alerts cleared this epoch.
    pub cleared: Vec<Alert>,
}

/// Per-component debounce state.
#[derive(Debug, Default)]
struct CompState {
    /// Consecutive blamed epochs ending now.
    streak: u32,
    /// Consecutive clean epochs ending now.
    clean: u32,
    /// First epoch of the current blame streak.
    streak_start: u64,
    /// Whether the previous observed epoch blamed this component.
    blamed_last: bool,
    /// Index into `alerts` of the open alert, if any.
    active: Option<usize>,
    /// Epochs at which the blamed bit flipped (either direction),
    /// bounded FIFO.
    transitions: VecDeque<u64>,
}

/// Capacity of the per-component transition history.
const TRANSITIONS_CAP: usize = 32;

/// The debouncing state machine over all components (see module docs).
#[derive(Debug, Default)]
pub struct Debouncer {
    policy: AlertPolicy,
    states: HashMap<Component, CompState>,
    /// All alerts ever raised, in raise order.
    alerts: Vec<Alert>,
    /// Latest observed epoch.
    last_epoch: Option<u64>,
}

impl Debouncer {
    /// A debouncer with the given thresholds.
    pub fn new(policy: AlertPolicy) -> Self {
        Debouncer {
            policy,
            ..Default::default()
        }
    }

    /// The thresholds in force.
    pub fn policy(&self) -> &AlertPolicy {
        &self.policy
    }

    /// Feed one epoch's merged verdicts; returns what raised/cleared.
    pub fn observe(&mut self, epoch: u64, blamed: &[(Component, f64)]) -> AlertDelta {
        self.last_epoch = Some(epoch);
        let mut delta = AlertDelta::default();

        for &(comp, score) in blamed {
            let st = self.states.entry(comp).or_default();
            if !st.blamed_last {
                st.streak_start = epoch;
                push_transition(&mut st.transitions, epoch);
            }
            st.blamed_last = true;
            st.clean = 0;
            st.streak = st.streak.saturating_add(1);
            match st.active {
                Some(i) => self.alerts[i].last_score = score,
                None if st.streak >= self.policy.raise_epochs => {
                    let alert = Alert {
                        component: comp,
                        first_epoch: st.streak_start,
                        raised_epoch: epoch,
                        cleared_epoch: None,
                        last_score: score,
                    };
                    st.active = Some(self.alerts.len());
                    self.alerts.push(alert.clone());
                    delta.raised.push(alert);
                }
                None => {}
            }
        }

        // Components tracked but not blamed this epoch take the clean
        // path; hold-down decides whether an active alert clears.
        for (&comp, st) in self.states.iter_mut() {
            if blamed.iter().any(|&(c, _)| c == comp) {
                continue;
            }
            if st.blamed_last {
                push_transition(&mut st.transitions, epoch);
            }
            st.blamed_last = false;
            st.streak = 0;
            st.clean = st.clean.saturating_add(1);
            if let Some(i) = st.active {
                if st.clean >= self.policy.clear_epochs {
                    self.alerts[i].cleared_epoch = Some(epoch);
                    delta.cleared.push(self.alerts[i].clone());
                    st.active = None;
                }
            }
        }
        delta
    }

    /// Every alert ever raised, in raise order (cleared ones included —
    /// the alert log).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The alerts currently open.
    pub fn active_alerts(&self) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| a.is_active()).collect()
    }

    /// Components whose blame bit flipped at least
    /// [`AlertPolicy::flap_transitions`] times within the trailing
    /// `window` epochs (ending at the last observed epoch), sorted.
    pub fn flapping(&self, window: u64) -> Vec<Component> {
        let Some(now) = self.last_epoch else {
            return Vec::new();
        };
        let lo = (now + 1).saturating_sub(window);
        let mut out: Vec<Component> = self
            .states
            .iter()
            .filter(|(_, st)| {
                let n = st.transitions.iter().filter(|&&e| e >= lo).count();
                n as u32 >= self.policy.flap_transitions
            })
            .map(|(&c, _)| c)
            .collect();
        out.sort();
        out
    }
}

fn push_transition(q: &mut VecDeque<u64>, epoch: u64) {
    if q.len() == TRANSITIONS_CAP {
        q.pop_front();
    }
    q.push_back(epoch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::LinkId;

    fn link(i: u32) -> Component {
        Component::Link(LinkId(i))
    }

    fn policy() -> AlertPolicy {
        AlertPolicy {
            raise_epochs: 2,
            clear_epochs: 2,
            flap_transitions: 3,
            flap_window: 16,
        }
    }

    #[test]
    fn raises_only_after_streak() {
        let mut d = Debouncer::new(policy());
        assert!(d.observe(0, &[(link(1), 5.0)]).raised.is_empty());
        let delta = d.observe(1, &[(link(1), 6.0)]);
        assert_eq!(delta.raised.len(), 1);
        assert_eq!(delta.raised[0].first_epoch, 0);
        assert_eq!(delta.raised[0].raised_epoch, 1);
        // No duplicate raise while it persists.
        assert!(d.observe(2, &[(link(1), 7.0)]).raised.is_empty());
        assert_eq!(d.active_alerts().len(), 1);
        assert_eq!(d.active_alerts()[0].last_score, 7.0);
    }

    #[test]
    fn one_epoch_blip_never_raises() {
        let mut d = Debouncer::new(policy());
        d.observe(0, &[(link(1), 5.0)]);
        d.observe(1, &[]);
        d.observe(2, &[(link(1), 5.0)]);
        d.observe(3, &[]);
        assert!(d.alerts().is_empty());
    }

    #[test]
    fn clears_only_after_hold_down() {
        let mut d = Debouncer::new(policy());
        d.observe(0, &[(link(1), 5.0)]);
        d.observe(1, &[(link(1), 5.0)]); // raised
        assert!(d.observe(2, &[]).cleared.is_empty()); // 1 clean < 2
        let delta = d.observe(3, &[]);
        assert_eq!(delta.cleared.len(), 1);
        assert_eq!(delta.cleared[0].cleared_epoch, Some(3));
        assert!(d.active_alerts().is_empty());
    }

    #[test]
    fn oscillation_inside_hold_down_keeps_one_alert_open() {
        let mut d = Debouncer::new(policy());
        // Blamed 0-1 (raise), clean 2 (< hold-down), blamed 3-4,
        // clean 5, blamed 6-7, clean 8-9 (clear).
        for (e, blamed) in [
            (0, true),
            (1, true),
            (2, false),
            (3, true),
            (4, true),
            (5, false),
            (6, true),
            (7, true),
            (8, false),
            (9, false),
        ] {
            let obs = if blamed { vec![(link(1), 5.0)] } else { vec![] };
            d.observe(e, &obs);
        }
        // One alert for the whole flapping episode, no churn.
        assert_eq!(d.alerts().len(), 1);
        assert_eq!(d.alerts()[0].raised_epoch, 1);
        assert_eq!(d.alerts()[0].cleared_epoch, Some(9));
        // And the oscillation is visible to the flap query.
        assert_eq!(d.flapping(16), vec![link(1)]);
        assert!(d.flapping(2).is_empty());
    }
}
