//! Tiered verdict store and operator query layer for the streaming
//! localization pipeline — the piece that turns per-epoch
//! [`flock_stream::EpochReport`]s from printed-and-dropped output into a
//! trustworthy, queryable blame history.
//!
//! * [`record`] — the stored projection of an epoch: merged verdicts
//!   with [`flock_stream::Provenance`], plus window accounting.
//! * [`segment`] — tier 2: the append-only durable segment file
//!   (versioned binary codec, checksummed frames, torn-tail recovery
//!   with typed errors).
//! * [`store`] — the [`VerdictStore`] tying tier 1 (in-memory ring) and
//!   tier 2 together, with the [`StoreQuery`] operator surface:
//!   `history`, `flapping`, `active_alerts`, `provenance`.
//! * [`alerts`] — debounced alerting (raise after N persisting epochs,
//!   clear after M clean epochs) and flap detection.
//! * [`metrics`] — the lightweight counters/gauges/histograms registry
//!   the daemon snapshots per epoch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerts;
pub mod metrics;
pub mod record;
pub mod segment;
pub mod store;

pub use alerts::{Alert, AlertDelta, AlertPolicy, Debouncer};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use record::{EpochRecord, Verdict};
pub use segment::{
    AppendFault, Segment, SegmentEntry, SegmentError, SEGMENT_MAGIC, SEGMENT_VERSION,
};
pub use store::{BlameSample, Durability, OpsAlert, StoreConfig, StoreQuery, VerdictStore};
