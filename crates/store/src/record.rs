//! The stored form of one epoch's verdict: what the store keeps per
//! epoch, in both tiers.
//!
//! An [`EpochRecord`] is a deliberate *projection* of
//! [`flock_stream::EpochReport`]: the merged verdicts with their
//! provenance plus the window accounting — not the full per-shard
//! engine telemetry, which is ephemeral operational detail. The
//! projection is what makes a week-long tier-2 segment bounded: a
//! healthy epoch stores a fixed ~30-byte record regardless of fabric
//! size.

use flock_stream::{EpochReport, Provenance};
use flock_topology::Component;
use serde::Serialize;

/// One verdict inside an [`EpochRecord`]: a blamed component, its
/// conviction score, and the provenance of the conviction.
#[derive(Debug, Clone, Serialize)]
pub struct Verdict {
    /// The blamed component.
    pub component: Component,
    /// Conviction score (log-likelihood gain of including the component;
    /// the blame-ownership merge key).
    pub score: f64,
    /// Which shard and which super-flows/path-sets convicted it.
    pub provenance: Provenance,
}

/// One epoch as stored: window accounting plus the merged verdicts.
#[derive(Debug, Clone, Serialize)]
pub struct EpochRecord {
    /// Window index.
    pub epoch_index: u64,
    /// Window start (ms, inclusive).
    pub start_ms: u64,
    /// Window end (ms, exclusive).
    pub end_ms: u64,
    /// Records the window received.
    pub records: u64,
    /// Aggregated observations after assembly.
    pub observations: u64,
    /// Hypotheses scanned by the epoch's searches (all shards).
    pub hypotheses_scanned: u64,
    /// Inference wall-clock for the epoch, in microseconds.
    pub runtime_us: u64,
    /// Whether the epoch's verdict was degraded
    /// ([`flock_stream::EpochHealth::Degraded`]) — a fault was contained
    /// while it ran, so the verdict covers less evidence (or a truncated
    /// search) and an operator reading history should weigh it
    /// accordingly.
    pub degraded: bool,
    /// Fraction of shard-relevant evidence behind the verdict (`1.0`
    /// when healthy).
    pub evidence_coverage: f64,
    /// Display-form degrade reasons (`shard-panicked:pod2`,
    /// `late-records:17`, …), empty when healthy. Stored as strings so
    /// the segment codec stays stable as reason variants evolve.
    pub degrade_reasons: Vec<String>,
    /// The merged verdicts, most confident first.
    pub verdicts: Vec<Verdict>,
}

impl From<&EpochReport> for EpochRecord {
    fn from(report: &EpochReport) -> Self {
        let verdicts = report
            .provenance
            .iter()
            .map(|p| Verdict {
                component: p.component,
                score: p.score,
                provenance: p.clone(),
            })
            .collect();
        EpochRecord {
            epoch_index: report.epoch_index,
            start_ms: report.start_ms,
            end_ms: report.end_ms,
            records: report.records as u64,
            observations: report.observations as u64,
            hypotheses_scanned: report.result.hypotheses_scanned,
            runtime_us: report.result.runtime.as_micros() as u64,
            degraded: report.health.is_degraded(),
            evidence_coverage: report.health.evidence_coverage(),
            degrade_reasons: report
                .health
                .reasons()
                .iter()
                .map(|r| r.to_string())
                .collect(),
            verdicts,
        }
    }
}

impl EpochRecord {
    /// The verdict for `comp` this epoch, if blamed.
    pub fn verdict(&self, comp: Component) -> Option<&Verdict> {
        self.verdicts.iter().find(|v| v.component == comp)
    }
}
