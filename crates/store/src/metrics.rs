//! A lightweight metrics registry: named counters, gauges, and
//! log-bucketed histograms, snapshotted as one JSON-serializable value.
//!
//! This is deliberately not a full metrics stack: no labels, no
//! exposition formats, no global state. The store feeds it per epoch
//! (epochs processed, records ingested, flip throughput, per-shard
//! engine time, alerts raised/cleared, segment growth), and the daemon
//! serializes [`MetricsRegistry::snapshot`] periodically as its metrics
//! line. Keys are sorted (`BTreeMap`), so snapshots are deterministic.

use serde::Serialize;
use std::collections::BTreeMap;

/// Number of histogram buckets; bucket `i` covers
/// `[2^(i-LOG_OFFSET), 2^(i+1-LOG_OFFSET))` with the first and last
/// buckets open-ended.
const BUCKETS: usize = 24;
/// Shift applied to the log2 of an observation so sub-unit values (ms
/// fractions) land in real buckets: bucket 6 covers `[1, 2)`.
const LOG_OFFSET: i32 = 6;

/// A log2-bucketed histogram with running count/sum/min/max.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Power-of-two buckets; bucket 6 covers `[1, 2)`.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one observation (negative/NaN observations are clamped
    /// into the lowest bucket).
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = if v <= 0.0 {
            0
        } else {
            (v.log2().floor() as i32 + LOG_OFFSET).clamp(0, BUCKETS as i32 - 1) as usize
        };
        self.buckets[idx] += 1;
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Named counters, gauges, and histograms (see module docs).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to counter `name` (created at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record `v` into histogram `name` (created empty).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A point-in-time copy, for serialization.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.clone()
    }
}

/// A point-in-time copy of the registry. Serializes as
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
pub type MetricsSnapshot = MetricsRegistry;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        m.inc("epochs", 1);
        m.inc("epochs", 2);
        m.set_gauge("active", 3.0);
        m.observe("lat_ms", 0.5);
        m.observe("lat_ms", 4.0);
        assert_eq!(m.counter("epochs"), 3);
        assert_eq!(m.gauge("active"), Some(3.0));
        let h = m.histogram("lat_ms").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 4.0);
        assert_eq!(h.mean(), 2.25);
        // 0.5 → bucket 5, 4.0 → bucket 8.
        assert_eq!(h.buckets[5], 1);
        assert_eq!(h.buckets[8], 1);
    }

    #[test]
    fn snapshot_serializes_deterministically() {
        let mut m = MetricsRegistry::new();
        m.inc("b", 1);
        m.inc("a", 1);
        let json = serde::json::to_string(&m.snapshot());
        assert!(json.starts_with(r#"{"counters":{"a":1,"b":1}"#), "{json}");
    }
}
