//! Stream-level contract of approximate evidence coalescing:
//!
//! * exact coalescing stays the default — `StreamConfig::paper_default()`
//!   runs `CoalesceMode::Exact` and every shard reports zero drift with a
//!   trivially-true exactness certificate;
//! * an approximate pipeline surfaces the drift bound / decision margin
//!   per shard, flags `proven_exact` by exactly the
//!   `margin > 2 · drift_bound` rule, and on a steady gray-link scenario
//!   produces the same verdicts as the exact pipeline.

use flock_netsim::failure::{self, DEFAULT_NOISE_MAX};
use flock_netsim::flowsim::{simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_stream::{EpochConfig, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, CoalesceMode, InputKind, MonitoredFlow};
use flock_topology::clos::{three_tier, ClosParams};
use flock_topology::{Router, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture(seed: u64, epochs: u64, flows_n: usize) -> (Topology, Vec<Vec<MonitoredFlow>>) {
    let topo = three_tier(ClosParams::tiny());
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(seed);
    let sc = failure::silent_link_drops(&topo, 1, (0.02, 0.03), DEFAULT_NOISE_MAX, &mut rng);
    let flows = (0..epochs)
        .map(|_| {
            let demands = generate_demands(
                &topo,
                &TrafficConfig::paper(flows_n, TrafficPattern::Uniform),
                &mut rng,
            );
            simulate_flows(
                &topo,
                &router,
                &sc,
                &demands,
                &FlowSimConfig::default(),
                &mut rng,
            )
        })
        .collect();
    (topo, flows)
}

fn config(mode: CoalesceMode) -> StreamConfig {
    StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: vec![InputKind::A2, InputKind::P],
        mode: AnalysisMode::PerPacket,
        warm_start: true,
        shard_by_pod: true,
        coalesce: true,
        coalesce_mode: mode,
        ..StreamConfig::paper_default()
    }
}

/// Exact is the default, and exact shards report a zero drift bound with
/// the certificate trivially true.
#[test]
fn paper_default_is_exact_with_zero_drift() {
    assert_eq!(
        StreamConfig::paper_default().coalesce_mode,
        CoalesceMode::Exact
    );

    let (topo, epochs) = fixture(41, 2, 1_500);
    let mut pipe = StreamPipeline::new(&topo, config(CoalesceMode::Exact));
    for (i, flows) in epochs.iter().enumerate() {
        let i = i as u64;
        let report = pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
        for shard in &report.shards {
            assert_eq!(
                shard.drift_bound, 0.0,
                "exact shard {} reported nonzero drift",
                shard.label
            );
            assert!(
                shard.proven_exact,
                "exact shard {} must be trivially certified",
                shard.label
            );
        }
    }
}

/// Approximate pipelines surface per-shard drift accounting, flag
/// `proven_exact` by exactly the `margin > 2 · drift_bound` rule, and
/// match the exact pipeline's verdicts on a steady gray-link scenario.
#[test]
fn approx_pipeline_reports_drift_and_matches_exact_verdicts() {
    let (topo, epochs) = fixture(42, 3, 2_000);
    let mut exact_pipe = StreamPipeline::new(&topo, config(CoalesceMode::Exact));
    let mut approx_pipe = StreamPipeline::new(&topo, config(CoalesceMode::approx_default()));

    for (i, flows) in epochs.iter().enumerate() {
        let i = i as u64;
        let ex = exact_pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
        let ap = approx_pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);

        for shard in &ap.shards {
            assert!(shard.drift_bound >= 0.0);
            assert!(shard.margin >= 0.0);
            assert_eq!(
                shard.proven_exact,
                shard.drift_bound == 0.0 || shard.margin > 2.0 * shard.drift_bound,
                "shard {} certificate disagrees with the margin rule \
                 (drift {}, margin {})",
                shard.label,
                shard.drift_bound,
                shard.margin
            );
        }

        let mut pe = ex.result.predicted.clone();
        let mut pa = ap.result.predicted.clone();
        pe.sort();
        pa.sort();
        assert_eq!(pa, pe, "epoch {i}: approximate verdict diverged from exact");
    }
}
