//! Per-plane spine sharding invariants:
//!
//! * the plane partition of the evidence is *lossless* — a flow is
//!   relevant to the spine tier iff it is relevant to at least one
//!   plane shard (property-tested over randomized topologies/traffic);
//! * plane-sharded pipelines produce verdicts identical to the
//!   single-spine-shard plan on randomized inter-pod fault scenarios,
//!   for both traced and passive telemetry — under both refinement
//!   scopes (narrow blaming-planes evidence, the default, and the
//!   historical full-spine union, `refine_full_spine`);
//! * faults in two planes at once trigger the cross-plane refinement
//!   pass without disturbing the verdict, and the narrow refinement
//!   scope reproduces the full-union refinement verdict exactly.

use flock_core::evaluate;
use flock_netsim::failure::{self, FailureScenario, DEFAULT_NOISE_MAX};
use flock_netsim::flowsim::{simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_stream::{
    EpochConfig, SetTouchIndex, ShardKind, ShardPlan, StreamConfig, StreamPipeline,
};
use flock_telemetry::{AnalysisMode, InputKind, MonitoredFlow};
use flock_topology::clos::{three_tier, ClosParams};
use flock_topology::{Router, SpinePlanes, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn clos(pods: u32, aggs: u32) -> Topology {
    three_tier(ClosParams {
        pods,
        tors_per_pod: 2,
        aggs_per_pod: aggs,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    })
}

fn epoch_flows(
    topo: &Topology,
    router: &Router<'_>,
    sc: &FailureScenario,
    flows_n: usize,
    rng: &mut StdRng,
) -> Vec<MonitoredFlow> {
    let demands = generate_demands(
        topo,
        &TrafficConfig::paper(flows_n, TrafficPattern::Uniform),
        rng,
    );
    simulate_flows(topo, router, sc, &demands, &FlowSimConfig::default(), rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Union of the plane-filtered evidence ≍ the spine-filtered
    /// evidence: every observation the single spine shard accepts is
    /// accepted by at least one plane shard, and no plane shard accepts
    /// an observation the spine shard rejects.
    #[test]
    fn plane_partition_is_lossless(
        pods in 2u32..4,
        aggs in 2u32..4,
        traced in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let kind = if traced { InputKind::Int } else { InputKind::P };
        let topo = clos(pods, aggs);
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(seed);
        let sc = failure::silent_link_drops(&topo, 2, (0.01, 0.02), DEFAULT_NOISE_MAX, &mut rng);
        let flows = epoch_flows(&topo, &router, &sc, 600, &mut rng);
        let obs = flock_telemetry::input::assemble(
            &topo, &router, &flows, &[kind, InputKind::P], AnalysisMode::PerPacket,
        );

        let plan = ShardPlan::by_pod(&topo);
        let spine_plan = ShardPlan::by_pod_single_spine(&topo);
        let spine = spine_plan
            .shards
            .iter()
            .find(|s| s.kind == ShardKind::Spine)
            .unwrap();
        let mut touch = SetTouchIndex::new();
        touch.extend(&topo, &obs);
        let mut spine_accepted = 0usize;
        for o in &obs.flows {
            let (set_touch, prefix_touch) = touch.flow_touch(&topo, o);
            let t = set_touch.union(prefix_touch);
            let in_spine = spine.relevant_combined(t);
            let in_planes = plan
                .shards
                .iter()
                .filter(|s| matches!(s.kind, ShardKind::SpinePlane(_)))
                .filter(|s| s.relevant_combined(t))
                .count();
            prop_assert_eq!(
                in_spine,
                in_planes > 0,
                "flow accepted by spine={} but by {} plane shards",
                in_spine,
                in_planes
            );
            spine_accepted += usize::from(in_spine);
        }
        // The fixture must actually exercise the partition.
        prop_assert!(spine_accepted > 0, "no spine-relevant evidence generated");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Narrow (blaming-planes) refinement is verdict-identical to the
    /// full-spine-union refinement on randomized simultaneous faults in
    /// two planes — under passive telemetry, where wide path sets
    /// straddle planes and the two scopes genuinely see different
    /// evidence. (`assert_plans_agree` internally drives both scopes
    /// plus the single-spine plan and asserts three-way equality.)
    #[test]
    fn narrow_refinement_matches_full_union(
        aggs in 2u32..4,
        traced in any::<bool>(),
        seed in 0u64..500,
    ) {
        let topo = clos(3, aggs);
        let planes = SpinePlanes::derive(&topo);
        prop_assert!(planes.n_planes() >= 2, "a striped 3-pod Clos has one plane per agg");
        let mut rng = StdRng::seed_from_u64(seed);
        // One gray link in each of two distinct planes.
        let sc = failure::multi_plane_link_drops(
            &topo, &planes, &[0, 1], 1, (0.02, 0.03), DEFAULT_NOISE_MAX, &mut rng,
        );
        let kinds: &[InputKind] = if traced {
            &[InputKind::Int]
        } else {
            &[InputKind::A2, InputKind::P]
        };
        let refined =
            assert_plans_agree_gated(&topo, &sc, kinds, 3, 3_000, seed ^ 0xfeed, false);
        prop_assert!(refined >= 1, "two-plane faults must refine at least once");
    }
}

/// Drive plane-sharded pipelines (narrow *and* full refinement scope)
/// plus the single-spine pipeline over the same epochs and require
/// identical verdicts from all three; returns how many epochs ran the
/// cross-plane refinement pass.
fn assert_plans_agree(
    topo: &Topology,
    sc: &FailureScenario,
    kinds: &[InputKind],
    epochs: u64,
    flows_n: usize,
    seed: u64,
) -> usize {
    assert_plans_agree_gated(topo, sc, kinds, epochs, flows_n, seed, true)
}

/// [`assert_plans_agree`] with the recall gate optional: the randomized
/// refinement-scope property checks verdict *identity* across plans on
/// scenarios where single-epoch passive evidence may genuinely miss a
/// gray fault (identically in every plan — accuracy is a property of
/// the shared inference, not of the sharding).
#[allow(clippy::too_many_arguments)]
fn assert_plans_agree_gated(
    topo: &Topology,
    sc: &FailureScenario,
    kinds: &[InputKind],
    epochs: u64,
    flows_n: usize,
    seed: u64,
    require_recall: bool,
) -> usize {
    let router = Router::new(topo);
    let mk = |spine_planes: bool, refine_full_spine: bool| StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: kinds.to_vec(),
        mode: AnalysisMode::PerPacket,
        warm_start: true,
        shard_by_pod: true,
        spine_planes,
        refine_full_spine,
        ..StreamConfig::paper_default()
    };
    let mut planes_pipe = StreamPipeline::new(topo, mk(true, false));
    let mut full_refine_pipe = StreamPipeline::new(topo, mk(true, true));
    let mut spine_pipe = StreamPipeline::new(topo, mk(false, false));
    assert!(planes_pipe.plan().spine_plane_count() >= 2);
    assert_eq!(spine_pipe.plan().spine_plane_count(), 0);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut refined_epochs = 0usize;
    for epoch in 0..epochs {
        let flows = epoch_flows(topo, &router, sc, flows_n, &mut rng);
        let a = planes_pipe.run_flows(epoch, epoch * 1_000, (epoch + 1) * 1_000, &flows);
        let f = full_refine_pipe.run_flows(epoch, epoch * 1_000, (epoch + 1) * 1_000, &flows);
        let b = spine_pipe.run_flows(epoch, epoch * 1_000, (epoch + 1) * 1_000, &flows);
        let mut pa = a.result.predicted.clone();
        let mut pf = f.result.predicted.clone();
        let mut pb = b.result.predicted.clone();
        pa.sort();
        pf.sort();
        pb.sort();
        assert_eq!(
            pa, pb,
            "epoch {epoch} (kinds {kinds:?}): plane-sharded verdict diverges \
             from the single-spine plan"
        );
        assert_eq!(
            pa, pf,
            "epoch {epoch} (kinds {kinds:?}): narrow refinement diverges \
             from full-union refinement"
        );
        assert_eq!(
            a.refined.is_some(),
            f.refined.is_some(),
            "epoch {epoch}: the two refinement scopes must trigger together"
        );
        if let (Some(narrow), Some(full)) = (&a.refined, &f.refined) {
            assert!(
                narrow.raw_flows <= full.raw_flows,
                "epoch {epoch}: narrow refinement saw {} raw observations, \
                 full saw {}",
                narrow.raw_flows,
                full.raw_flows
            );
        }
        // Both plans must still localize every injected fault (precision
        // is a property of the underlying inference, identical across
        // plans by the equality assert above, so it is not re-gated
        // here).
        if require_recall {
            let pr = evaluate(topo, &a.result.predicted, &sc.truth);
            assert_eq!(
                pr.recall, 1.0,
                "epoch {epoch} (kinds {kinds:?}): blamed {pa:?}, truth {:?}",
                sc.truth.failed_links
            );
        }
        refined_epochs += usize::from(a.refined.is_some());
        assert!(b.refined.is_none(), "single-spine plan never refines");
    }
    refined_epochs
}

/// Randomized inter-pod (spine-incident) faults: plane-sharded verdicts
/// must match the single-spine plan epoch for epoch, under traced and
/// under passive telemetry.
#[test]
fn plane_verdicts_match_single_spine_plan() {
    for seed in [3u64, 17, 40] {
        let topo = clos(3, 2);
        let planes = SpinePlanes::derive(&topo);
        let mut rng = StdRng::seed_from_u64(seed);
        let plane = (seed % 2) as u16;
        let sc = failure::plane_link_drops(
            &topo,
            &planes,
            plane,
            1,
            (0.02, 0.03),
            DEFAULT_NOISE_MAX,
            &mut rng,
        );
        for kinds in [vec![InputKind::Int], vec![InputKind::A2, InputKind::P]] {
            assert_plans_agree(&topo, &sc, &kinds, 4, 3_000, seed ^ 0xbeef);
        }
    }
}

/// Simultaneous faults in two different planes force the cross-plane
/// refinement pass (each plane blames from its own slice); the refined
/// verdict must still match the single-spine plan and the ground truth.
#[test]
fn two_plane_faults_trigger_refinement() {
    let topo = clos(3, 2);
    let planes = SpinePlanes::derive(&topo);
    assert_eq!(planes.n_planes(), 2);
    let mut rng = StdRng::seed_from_u64(9);
    // One gray link per plane, merged into one scenario.
    let sc = failure::multi_plane_link_drops(
        &topo,
        &planes,
        &[0, 1],
        1,
        (0.02, 0.03),
        DEFAULT_NOISE_MAX,
        &mut rng,
    );
    assert_eq!(sc.truth.failed_links.len(), 2);

    let refined = assert_plans_agree(&topo, &sc, &[InputKind::Int], 4, 4_000, 77);
    assert!(
        refined >= 3,
        "two-plane faults must arbitrate through the refinement pass \
         (refined on {refined}/4 epochs)"
    );
}
