//! Property tests of epoch windowing: tumbling windows partition an
//! arbitrary drained record stream losslessly — no record dropped, none
//! double-counted — under any watermark schedule, and sliding windows
//! duplicate each record into exactly the windows covering its stamp.

use flock_stream::{EpochConfig, EpochManager};
use flock_telemetry::{FlowKey, FlowRecord, FlowStats, StampedRecord, TrafficClass};
use flock_topology::NodeId;
use proptest::prelude::*;
use std::collections::HashMap;

/// A stamped record whose identity survives windowing (encoded in the
/// flow key's ports so no two generated records collide).
fn rec(id: u32, ts: u64) -> StampedRecord {
    StampedRecord {
        agent_id: id,
        export_ms: ts,
        record: FlowRecord {
            key: FlowKey::tcp(
                NodeId(id),
                NodeId(id ^ 0xffff),
                (id % 60_000) as u16,
                (id / 60_000) as u16,
            ),
            stats: FlowStats {
                packets: u64::from(id) + 1,
                ..Default::default()
            },
            class: TrafficClass::Passive,
            path: None,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tumbling epochs partition the stream: every pushed record lands in
    /// exactly one closed epoch, inside that epoch's bounds, regardless
    /// of push order or how the watermark advances.
    #[test]
    fn tumbling_partitions_losslessly(
        epoch_ms in 1u64..500,
        stamps in prop::collection::vec(0u64..5_000, 1..200),
        watermark_steps in prop::collection::vec(0u64..6_000, 0..8),
    ) {
        let mut mgr = EpochManager::new(EpochConfig::tumbling(epoch_ms));
        for (i, &ts) in stamps.iter().enumerate() {
            mgr.push(rec(i as u32, ts));
        }
        let mut closed = Vec::new();
        let mut wm = 0u64;
        for &step in &watermark_steps {
            // Watermarks only move forward.
            wm = wm.max(step);
            closed.extend(mgr.close_ready(wm));
        }
        closed.extend(mgr.flush());

        // No late drops: everything was pushed before any close.
        prop_assert_eq!(mgr.late_records(), 0);

        // Each record id appears exactly once, within its window.
        let mut seen: HashMap<u32, u64> = HashMap::new();
        for ep in &closed {
            prop_assert_eq!(ep.start_ms, ep.index * epoch_ms);
            prop_assert_eq!(ep.end_ms, ep.start_ms + epoch_ms);
            for r in &ep.records {
                prop_assert!(
                    r.export_ms >= ep.start_ms && r.export_ms < ep.end_ms,
                    "record stamped {} outside epoch [{}, {})",
                    r.export_ms, ep.start_ms, ep.end_ms
                );
                let dup = seen.insert(r.agent_id, ep.index);
                prop_assert!(dup.is_none(), "record {} double-counted", r.agent_id);
            }
        }
        prop_assert_eq!(seen.len(), stamps.len(), "no record dropped");

        // Epoch indices are strictly increasing (no window emitted twice).
        for w in closed.windows(2) {
            prop_assert!(w[0].index < w[1].index);
        }
    }

    /// The wire-v2 fast path partitions records identically to the v1
    /// per-record sort path: feeding pre-bucketed input through
    /// `extend_bucket` — including deliberately mis-stamped buckets,
    /// which must fall back — closes exactly the same epochs with
    /// exactly the same record sets as pushing records one at a time.
    #[test]
    fn bucketed_drain_partitions_identically_to_v1_path(
        epoch_ms in 1u64..500,
        stamps in prop::collection::vec(0u64..5_000, 1..200),
        skew in prop::collection::vec(any::<bool>(), 8..9),
    ) {
        let records: Vec<StampedRecord> =
            stamps.iter().enumerate().map(|(i, &ts)| rec(i as u32, ts)).collect();

        // v1 path: per-record assignment in stream order.
        let mut v1 = EpochManager::new(EpochConfig::tumbling(epoch_ms));
        for r in &records {
            v1.push(r.clone());
        }

        // v2 path: group by the agent-stamped epoch (as the collector
        // reactor does), then hand over bucket-at-a-time. Every 8th
        // bucket key is optionally skewed to simulate a mis-stamping
        // agent — those must take the fallback path, not corrupt the
        // partition.
        let mut buckets: HashMap<u64, Vec<StampedRecord>> = HashMap::new();
        for r in &records {
            buckets.entry(r.export_ms / epoch_ms).or_default().push(r.clone());
        }
        let mut v2 = EpochManager::new(EpochConfig::tumbling(epoch_ms));
        let mut keys: Vec<u64> = buckets.keys().copied().collect();
        keys.sort_unstable();
        for (i, key) in keys.into_iter().enumerate() {
            let bucket = buckets.remove(&key).unwrap();
            let claimed = if skew[i % skew.len()] { key + 1 } else { key };
            v2.extend_bucket(claimed, bucket);
        }

        let close = |mgr: &mut EpochManager| {
            let mut out: Vec<(u64, Vec<u32>)> = mgr
                .flush()
                .into_iter()
                .map(|ep| {
                    let mut ids: Vec<u32> =
                        ep.records.iter().map(|r| r.agent_id).collect();
                    ids.sort_unstable();
                    (ep.index, ids)
                })
                .collect();
            out.sort_by_key(|(idx, _)| *idx);
            out
        };
        prop_assert_eq!(close(&mut v1), close(&mut v2));
        prop_assert_eq!(v1.late_records(), 0);
        prop_assert_eq!(v2.late_records(), 0);
    }

    /// Sliding epochs duplicate each record into exactly the windows
    /// whose span covers its stamp (len/stride of them, fewer only at the
    /// stream-start boundary).
    #[test]
    fn sliding_covers_exactly(
        stride in 1u64..100,
        factor in 1u64..5,
        stamps in prop::collection::vec(0u64..3_000, 1..100),
    ) {
        let epoch_ms = stride * factor;
        let cfg = EpochConfig::sliding(epoch_ms, stride);
        let mut mgr = EpochManager::new(cfg);
        for (i, &ts) in stamps.iter().enumerate() {
            mgr.push(rec(i as u32, ts));
        }
        let closed = mgr.flush();
        let mut copies: HashMap<u32, u64> = HashMap::new();
        for ep in &closed {
            for r in &ep.records {
                prop_assert!(r.export_ms >= ep.start_ms && r.export_ms < ep.end_ms);
                *copies.entry(r.agent_id).or_insert(0) += 1;
            }
        }
        for (i, &ts) in stamps.iter().enumerate() {
            let expect = cfg.windows_of(ts).count() as u64;
            // Interior stamps are covered by exactly len/stride windows.
            if ts >= epoch_ms {
                prop_assert_eq!(expect, factor);
            }
            prop_assert_eq!(copies.get(&(i as u32)).copied().unwrap_or(0), expect);
        }
    }
}
