//! State-sparsity regression tests for the per-shard view layer: each
//! shard engine's *allocated* state (sets / paths / components / Δ
//! length) must be proportional to the shard's own evidence, never to
//! the global arena. This is the invariant the `ArenaView` projection
//! exists to provide — before it, every plane engine allocated and reset
//! O(total arena) arrays per epoch, which capped plane-sharded speedup
//! (ROADMAP, PR 4 follow-up).

use flock_netsim::failure::{self, DEFAULT_NOISE_MAX};
use flock_netsim::flowsim::{simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_stream::{EpochConfig, EpochReport, ShardKind, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, InputKind, MonitoredFlow};
use flock_topology::clos::{three_tier, ClosParams};
use flock_topology::{Router, SpinePlanes, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A wide-ish fixture: 4 pods × 3 planes, so any one shard's slice is a
/// clear minority of the global arena.
fn wide_clos() -> Topology {
    three_tier(ClosParams {
        pods: 4,
        tors_per_pod: 2,
        aggs_per_pod: 3,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    })
}

fn epoch_flows(topo: &Topology, rng: &mut StdRng, n: usize) -> Vec<MonitoredFlow> {
    let router = Router::new(topo);
    let sc = failure::silent_link_drops(topo, 1, (0.01, 0.02), DEFAULT_NOISE_MAX, rng);
    let demands = generate_demands(topo, &TrafficConfig::paper(n, TrafficPattern::Uniform), rng);
    simulate_flows(topo, &router, &sc, &demands, &FlowSimConfig::default(), rng)
}

/// Run `epochs` epochs through a pipeline and return the last report.
fn run_epochs(pipe: &mut StreamPipeline<'_>, epochs: &[Vec<MonitoredFlow>]) -> EpochReport {
    let mut last = None;
    for (i, flows) in epochs.iter().enumerate() {
        let i = i as u64;
        last = Some(pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows));
    }
    last.expect("at least one epoch")
}

/// Every plane engine's resident state is a strict minority of the
/// single-spine engine's, the plane states partition the spine state
/// (traced evidence), and no shard's component space approaches the
/// global one.
#[test]
fn plane_engine_state_tracks_plane_local_evidence() {
    let topo = wide_clos();
    let planes = SpinePlanes::derive(&topo);
    assert_eq!(planes.n_planes(), 3);
    let mut rng = StdRng::seed_from_u64(42);
    let epochs: Vec<Vec<MonitoredFlow>> = (0..3)
        .map(|_| epoch_flows(&topo, &mut rng, 4_000))
        .collect();

    let mk = |spine_planes: bool| StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: vec![InputKind::Int],
        mode: AnalysisMode::PerPacket,
        warm_start: true,
        shard_by_pod: true,
        spine_planes,
        ..StreamConfig::paper_default()
    };
    let mut planes_pipe = StreamPipeline::new(&topo, mk(true));
    let mut spine_pipe = StreamPipeline::new(&topo, mk(false));
    let plane_report = run_epochs(&mut planes_pipe, &epochs);
    let spine_report = run_epochs(&mut spine_pipe, &epochs);

    let spine = spine_report
        .shards
        .iter()
        .find(|s| s.kind == ShardKind::Spine)
        .expect("single-spine plan has a spine shard");
    let plane_states: Vec<_> = plane_report
        .spine_planes()
        .map(|s| (s.label.clone(), s.state))
        .collect();
    assert_eq!(plane_states.len(), 3);

    // Traced (INT) path sets touch exactly one plane, so the plane
    // views partition the spine view's sets and paths exactly.
    let sum_sets: usize = plane_states.iter().map(|(_, st)| st.sets).sum();
    let sum_paths: usize = plane_states.iter().map(|(_, st)| st.paths).sum();
    assert_eq!(
        sum_sets, spine.state.sets,
        "plane views must partition the spine view's sets"
    );
    assert_eq!(
        sum_paths, spine.state.paths,
        "plane views must partition the spine view's paths"
    );

    // Component footprint of each plane (its spine devices + incident
    // links): a plane engine on traced evidence must hold *none* of the
    // other planes' components, so its local comp space undercuts the
    // single-spine engine's by at least the other planes' footprints.
    let footprint = |p: u16| planes.incident_links(&topo, p).len() + planes.spines_in(p).len();
    let n_planes = plane_states.len();
    for (pi, (label, st)) in plane_states.iter().enumerate() {
        // Each plane holds its share of the spine evidence, with slack
        // for imbalance — not the whole tier.
        assert!(
            st.sets * n_planes <= spine.state.sets * 3 / 2,
            "{label}: {} sets vs spine total {} — state is not \
             proportional to plane-local evidence",
            st.sets,
            spine.state.sets
        );
        let foreign: usize = (0..n_planes as u16)
            .filter(|&q| q != pi as u16)
            .map(footprint)
            .sum();
        assert!(
            st.comps + foreign <= spine.state.comps,
            "{label}: local comps {} must exclude the other planes' \
             footprint ({foreign}) held by the single-spine engine ({})",
            st.comps,
            spine.state.comps
        );
        // The Δ array is exactly the local comp space.
        assert!(st.comps < st.global_comps);
    }

    // Pod shards: a pod engine views only the sets its pod's flows
    // touch — a strict minority of everything viewed. The all-shards
    // set total bounds the arena set count from above (every set is
    // viewed by at least one shard; straddlers by several).
    let arena_sets_upper: usize = plane_report.shards.iter().map(|s| s.state.sets).sum();
    for s in &plane_report.shards {
        if let ShardKind::Pod(_) = s.kind {
            // (Component sparsity is not structural for pods under
            // uniform all-to-all traffic — a pod's flows eventually
            // touch every other pod's components — so only the
            // set/path dimension is gated here.)
            assert!(
                s.state.sets * 2 < arena_sets_upper,
                "{}: pod views {} of ≤{} total viewed sets",
                s.label,
                s.state.sets,
                arena_sets_upper
            );
        }
    }
}

/// A fault confined to one plane leaves the *other* planes' engines
/// with evidence (and state) only from their own slices — localization
/// work stays where the evidence is.
#[test]
fn off_plane_engines_stay_small_under_plane_fault() {
    let topo = wide_clos();
    let planes = SpinePlanes::derive(&topo);
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(7);
    let sc = failure::plane_link_drops(
        &topo,
        &planes,
        0,
        1,
        (0.02, 0.03),
        DEFAULT_NOISE_MAX,
        &mut rng,
    );
    let epochs: Vec<Vec<MonitoredFlow>> = (0..2)
        .map(|_| {
            let demands = generate_demands(
                &topo,
                &TrafficConfig::paper(4_000, TrafficPattern::Uniform),
                &mut rng,
            );
            simulate_flows(
                &topo,
                &router,
                &sc,
                &demands,
                &FlowSimConfig::default(),
                &mut rng,
            )
        })
        .collect();
    let mut pipe = StreamPipeline::new(
        &topo,
        StreamConfig {
            epoch: EpochConfig::tumbling(1_000),
            kinds: vec![InputKind::Int],
            mode: AnalysisMode::PerPacket,
            warm_start: true,
            shard_by_pod: true,
            spine_planes: true,
            ..StreamConfig::paper_default()
        },
    );
    let report = run_epochs(&mut pipe, &epochs);
    let states: Vec<_> = report.spine_planes().collect();
    assert_eq!(states.len(), 3);
    let total: usize = states.iter().map(|s| s.state.sets).sum();
    for s in &states {
        assert!(
            s.state.sets * 3 <= total * 2,
            "{}: plane view holds {} of {} spine sets — a plane-confined \
             fault must not inflate other planes' state",
            s.label,
            s.state.sets,
            total
        );
        // The Δ array (comps) of every plane engine stays below the
        // global component space: the fixed per-epoch reset cost is
        // shard-local even while one plane carries the fault.
        assert!(s.state.comps < s.state.global_comps);
    }
}
