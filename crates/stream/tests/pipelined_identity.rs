//! Pipelined execution is an *optimization*, never a semantic change:
//!
//! * verdicts from [`StreamConfig::pipelined`] (double-buffered
//!   assembly + work-stealing executor, epochs overlapping) are
//!   bit-identical to the sequential path — property-tested over
//!   randomized topologies, fault scenarios, telemetry kinds, and
//!   worker counts, including epochs that trigger the cross-plane
//!   refinement pass;
//! * the double-buffer handoff survives its edges: zero-record epochs,
//!   a shard panic while the next epoch is already assembled into the
//!   other buffer (the degraded epoch must not corrupt its successor),
//!   late records arriving during overlap, and dropping the pipeline
//!   with an epoch still in flight.

use flock_netsim::failure::{self, FailureScenario, DEFAULT_NOISE_MAX};
use flock_netsim::flowsim::{simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_stream::{
    ChaosHook, DegradeReason, EpochConfig, EpochHealth, EpochReport, ShardChaos, StreamConfig,
    StreamPipeline,
};
use flock_telemetry::{AnalysisMode, InputKind, MonitoredFlow};
use flock_topology::clos::{three_tier, ClosParams};
use flock_topology::{Router, SpinePlanes, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn clos(pods: u32, aggs: u32) -> Topology {
    three_tier(ClosParams {
        pods,
        tors_per_pod: 2,
        aggs_per_pod: aggs,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    })
}

fn epoch_flows(
    topo: &Topology,
    router: &Router<'_>,
    sc: &FailureScenario,
    flows_n: usize,
    rng: &mut StdRng,
) -> Vec<MonitoredFlow> {
    let demands = generate_demands(
        topo,
        &TrafficConfig::paper(flows_n, TrafficPattern::Uniform),
        rng,
    );
    simulate_flows(topo, router, sc, &demands, &FlowSimConfig::default(), rng)
}

fn sharded_cfg(pipelined: bool, workers: usize) -> StreamConfig {
    StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: vec![InputKind::A2, InputKind::P],
        mode: AnalysisMode::PerPacket,
        warm_start: true,
        shard_by_pod: true,
        spine_planes: true,
        pipelined,
        workers,
        ..StreamConfig::paper_default()
    }
}

/// Bit-level equality of everything inference-derived in two reports.
/// Wall-clock fields (`runtime`, `elapsed`, `stages`) are excluded —
/// they are the only thing pipelining is allowed to change.
fn assert_reports_identical(a: &EpochReport, b: &EpochReport, what: &str) {
    assert_eq!(a.epoch_index, b.epoch_index, "{what}: epoch index");
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.observations, b.observations, "{what}: observations");
    assert_eq!(
        a.result.predicted, b.result.predicted,
        "{what}: predicted components"
    );
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&a.result.scores),
        bits(&b.result.scores),
        "{what}: scores"
    );
    assert_eq!(
        a.result.log_likelihood.to_bits(),
        b.result.log_likelihood.to_bits(),
        "{what}: log-likelihood"
    );
    assert_eq!(
        a.result.hypotheses_scanned, b.result.hypotheses_scanned,
        "{what}: hypotheses scanned"
    );
    assert_eq!(a.shards.len(), b.shards.len(), "{what}: shard count");
    for (sa, sb) in a.shards.iter().zip(&b.shards) {
        assert_eq!(sa.label, sb.label, "{what}: shard label");
        assert_eq!(sa.kept, sb.kept, "{what}: {} kept", sa.label);
        assert_eq!(sa.flows, sb.flows, "{what}: {} flows", sa.label);
        assert_eq!(sa.raw_flows, sb.raw_flows, "{what}: {} raw", sa.label);
        assert_eq!(sa.warm, sb.warm, "{what}: {} warm", sa.label);
        assert_eq!(
            sa.log_likelihood.to_bits(),
            sb.log_likelihood.to_bits(),
            "{what}: {} log-likelihood",
            sa.label
        );
    }
    assert_eq!(
        a.refined.is_some(),
        b.refined.is_some(),
        "{what}: refinement trigger"
    );
    assert_eq!(
        a.provenance.len(),
        b.provenance.len(),
        "{what}: provenance length"
    );
    for (pa, pb) in a.provenance.iter().zip(&b.provenance) {
        assert_eq!(pa.component, pb.component, "{what}: provenance component");
        assert_eq!(pa.shard, pb.shard, "{what}: convicting shard");
        assert_eq!(
            pa.score.to_bits(),
            pb.score.to_bits(),
            "{what}: provenance score"
        );
        assert_eq!(pa.sets, pb.sets, "{what}: provenance sets");
    }
    assert_eq!(
        format!("{:?}", a.health),
        format!("{:?}", b.health),
        "{what}: health"
    );
    assert_eq!(a.failures.len(), b.failures.len(), "{what}: failure count");
}

/// Drive the same epochs through a sequential and a pipelined pipeline
/// and require bit-identical reports, in order. Returns the reports.
fn assert_pipelined_identical(
    topo: &Topology,
    epochs: &[Vec<MonitoredFlow>],
    workers: usize,
    chaos: Option<ChaosHook>,
) -> Vec<EpochReport> {
    let mut seq_cfg = sharded_cfg(false, 0);
    seq_cfg.chaos = chaos.clone();
    let mut pipe_cfg = sharded_cfg(true, workers);
    pipe_cfg.chaos = chaos;
    let mut seq = StreamPipeline::new(topo, seq_cfg);
    let mut pipe = StreamPipeline::new(topo, pipe_cfg);

    let mut seq_reports = Vec::new();
    let mut pipe_reports = Vec::new();
    for (e, flows) in epochs.iter().enumerate() {
        let e = e as u64;
        seq_reports.push(seq.run_flows(e, e * 1_000, (e + 1) * 1_000, flows));
        pipe_reports.extend(pipe.submit_flows(e, e * 1_000, (e + 1) * 1_000, flows));
    }
    pipe_reports.extend(pipe.flush_inflight());

    assert_eq!(
        seq_reports.len(),
        pipe_reports.len(),
        "pipelining must emit every epoch exactly once"
    );
    for (a, b) in seq_reports.iter().zip(&pipe_reports) {
        assert_reports_identical(a, b, &format!("epoch {}", a.epoch_index));
    }
    seq_reports
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline invariant: over randomized topologies, fault
    /// scenarios (including simultaneous faults in two spine planes,
    /// which trigger the cross-plane refinement pass), and executor
    /// worker counts, the pipelined verdict stream is bit-identical to
    /// the sequential one.
    #[test]
    fn pipelined_is_bit_identical_to_sequential(
        pods in 2u32..4,
        aggs in 2u32..4,
        two_planes in any::<bool>(),
        workers in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let topo = clos(pods, aggs);
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(seed);
        let sc = if two_planes {
            let planes = SpinePlanes::derive(&topo);
            failure::multi_plane_link_drops(
                &topo, &planes, &[0, 1], 1, (0.02, 0.03), DEFAULT_NOISE_MAX, &mut rng,
            )
        } else {
            failure::silent_link_drops(&topo, 2, (0.01, 0.02), DEFAULT_NOISE_MAX, &mut rng)
        };
        let epochs: Vec<Vec<MonitoredFlow>> = (0..3)
            .map(|_| epoch_flows(&topo, &router, &sc, 600, &mut rng))
            .collect();
        assert_pipelined_identical(&topo, &epochs, workers, None);
    }
}

/// Zero-record epochs flow through the double buffer: an empty epoch
/// extends nothing (the replay delta is empty), and the epochs around
/// it still match the sequential run bit for bit.
#[test]
fn zero_record_epochs_flow_through_the_pipeline() {
    let topo = clos(3, 2);
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(7);
    let sc = failure::silent_link_drops(&topo, 1, (0.02, 0.03), DEFAULT_NOISE_MAX, &mut rng);
    let mut epochs: Vec<Vec<MonitoredFlow>> = Vec::new();
    for e in 0..5 {
        if e % 2 == 1 {
            epochs.push(Vec::new());
        } else {
            epochs.push(epoch_flows(&topo, &router, &sc, 500, &mut rng));
        }
    }
    let reports = assert_pipelined_identical(&topo, &epochs, 0, None);
    assert_eq!(reports[1].observations, 0);
    assert_eq!(reports[3].observations, 0);
}

/// A shard panic while the *next* epoch is already assembled into the
/// other buffer: the panicking epoch degrades exactly as in the
/// sequential run, and its successor — whose assembly overlapped the
/// panic — is untouched. This is the "a failed epoch must not corrupt
/// the N+1 buffer" contract of the handoff.
#[test]
fn panic_during_overlap_degrades_only_its_epoch() {
    let topo = clos(3, 2);
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(11);
    let sc = failure::silent_link_drops(&topo, 1, (0.02, 0.03), DEFAULT_NOISE_MAX, &mut rng);
    let epochs: Vec<Vec<MonitoredFlow>> = (0..4)
        .map(|_| epoch_flows(&topo, &router, &sc, 700, &mut rng))
        .collect();
    // Deterministic chaos: pod1's shard panics on epoch 2, in both runs.
    let chaos = ChaosHook::new(|label: &str, epoch: u64| {
        (label == "pod1" && epoch == 2).then_some(ShardChaos::Panic)
    });
    let reports = assert_pipelined_identical(&topo, &epochs, 0, Some(chaos));
    assert!(
        matches!(
            &reports[2].health,
            EpochHealth::Degraded { reasons, .. }
                if reasons.iter().any(|r| matches!(
                    r,
                    DegradeReason::ShardPanicked { shard } if shard == "pod1"
                ))
        ),
        "epoch 2 must degrade with the injected panic, got {:?}",
        reports[2].health
    );
    assert!(
        matches!(reports[3].health, EpochHealth::Healthy),
        "epoch 3 assembled during the panic must be healthy, got {:?}",
        reports[3].health
    );
}

/// Late records arriving while an epoch is in flight are attributed to
/// the next *submitted* epoch's health — never dropped silently, never
/// double-counted — and the verdict stream still matches sequential.
#[test]
fn late_records_during_overlap_are_flagged_once() {
    use flock_telemetry::{FlowKey, FlowRecord, FlowStats, StampedRecord, TrafficClass};

    let topo = clos(2, 2);
    let hosts = topo.hosts().to_vec();
    let rec = |ts: u64| StampedRecord {
        agent_id: 1,
        export_ms: ts,
        record: FlowRecord {
            key: FlowKey::tcp(hosts[0], hosts[hosts.len() - 1], 10_000, 443),
            stats: FlowStats {
                packets: 100,
                ..Default::default()
            },
            class: TrafficClass::Passive,
            path: None,
        },
    };
    let run = |pipelined: bool| -> Vec<EpochReport> {
        let mut pipe = StreamPipeline::new(&topo, sharded_cfg(pipelined, 0));
        let mut reports = Vec::new();
        for e in 0..3u64 {
            for i in 0..20 {
                pipe.ingest([rec(e * 1_000 + i * 37)]);
            }
            reports.extend(pipe.poll((e + 1) * 1_000));
            if e == 1 {
                // Arrives after epoch 1 closed: dropped as late, and the
                // drop must surface on a subsequent report's health.
                pipe.ingest([rec(10)]);
            }
        }
        reports.extend(pipe.drain());
        reports
    };
    for pipelined in [false, true] {
        let reports = run(pipelined);
        assert_eq!(reports.len(), 3, "pipelined={pipelined}");
        let late_total: u64 = reports
            .iter()
            .filter_map(|r| match &r.health {
                EpochHealth::Degraded { reasons, .. } => Some(
                    reasons
                        .iter()
                        .filter_map(|reason| match reason {
                            DegradeReason::LateRecords { count } => Some(*count),
                            _ => None,
                        })
                        .sum::<u64>(),
                ),
                EpochHealth::Healthy => None,
            })
            .sum();
        assert_eq!(
            late_total, 1,
            "pipelined={pipelined}: the late record must be flagged exactly once"
        );
    }
}

/// Dropping the pipeline with an epoch still in flight shuts the
/// executor down cleanly: workers join, queued jobs are discarded, no
/// hang, no panic.
#[test]
fn drop_with_epoch_in_flight_shuts_down_cleanly() {
    let topo = clos(2, 2);
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(3);
    let sc = failure::silent_link_drops(&topo, 1, (0.02, 0.03), DEFAULT_NOISE_MAX, &mut rng);
    let flows = epoch_flows(&topo, &router, &sc, 400, &mut rng);
    let mut pipe = StreamPipeline::new(&topo, sharded_cfg(true, 1));
    let none = pipe.submit_flows(0, 0, 1_000, &flows);
    assert!(none.is_none(), "first submission has nothing to collect");
    drop(pipe);
}

/// `run_flows` refuses to run over an in-flight epoch (the caller must
/// flush first) — mixing the sync and pipelined entry points cannot
/// silently reorder verdicts.
#[test]
#[should_panic(expected = "flush_inflight")]
fn run_flows_with_epoch_in_flight_panics() {
    let topo = clos(2, 2);
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(5);
    let sc = failure::silent_link_drops(&topo, 1, (0.02, 0.03), DEFAULT_NOISE_MAX, &mut rng);
    let flows = epoch_flows(&topo, &router, &sc, 300, &mut rng);
    let mut pipe = StreamPipeline::new(&topo, sharded_cfg(true, 0));
    pipe.submit_flows(0, 0, 1_000, &flows);
    pipe.run_flows(1, 1_000, 2_000, &flows);
}
