//! Fault containment at the pipeline's isolation boundaries: a
//! panicking shard degrades its own slice of the verdict (and recovers
//! next epoch), a stalled shard surfaces as a deadline truncation, and
//! evidence loss outside the inference path (late records, external
//! faults) marks the affected report `Degraded` instead of silently
//! shipping a verdict built on less evidence than the operator thinks.

use flock_netsim::dynamic::DynamicScenario;
use flock_netsim::flowsim::{simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_stream::{
    ChaosHook, DegradeReason, EpochConfig, ShardChaos, StreamConfig, StreamPipeline,
};
use flock_telemetry::{AnalysisMode, FlowRecord, InputKind, MonitoredFlow, StampedRecord};
use flock_topology::clos::{three_tier, ClosParams};
use flock_topology::{Router, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn pods3() -> Topology {
    three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    })
}

fn epoch_flows(
    topo: &Topology,
    router: &Router<'_>,
    sc: &DynamicScenario,
    epoch: u64,
    rng: &mut StdRng,
) -> Vec<MonitoredFlow> {
    let snapshot = sc.scenario_at(epoch);
    let demands = generate_demands(
        topo,
        &TrafficConfig::paper(3_000, TrafficPattern::Uniform),
        rng,
    );
    simulate_flows(
        topo,
        router,
        &snapshot,
        &demands,
        &FlowSimConfig::default(),
        rng,
    )
}

fn sharded_cfg() -> StreamConfig {
    StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: vec![InputKind::Int],
        mode: AnalysisMode::PerPacket,
        warm_start: true,
        shard_by_pod: true,
        ..StreamConfig::paper_default()
    }
}

/// A shard panic at epoch 2 is contained: the fault's verdict (owned by
/// a *different* shard) is bit-identical to the chaos-free run, the
/// epoch is labeled `Degraded` with the panicked shard and reduced
/// evidence coverage, and the shard rebuilds cold on epoch 3 and is
/// warm again by epoch 4.
#[test]
fn shard_panic_is_contained_and_recovers() {
    let topo = pods3();
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(40);

    // Persistent fault from epoch 1 on; the same flows feed both runs.
    let mut sc = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);
    let link = topo.fabric_links()[11];
    sc.events.push(flock_netsim::dynamic::FaultEvent {
        link,
        drop_rate: 0.02,
        appear_epoch: 1,
        heal_epoch: None,
    });
    let epochs: Vec<Vec<MonitoredFlow>> = (0..5u64)
        .map(|e| epoch_flows(&topo, &router, &sc, e, &mut rng))
        .collect();

    let mut baseline_pipe = StreamPipeline::new(&topo, sharded_cfg());
    let baseline: Vec<_> = epochs
        .iter()
        .enumerate()
        .map(|(e, flows)| {
            let e = e as u64;
            baseline_pipe.run_flows(e, e * 1_000, (e + 1) * 1_000, flows)
        })
        .collect();
    assert!(
        baseline.iter().all(|r| !r.health.is_degraded()),
        "chaos-free run must be healthy every epoch"
    );
    assert!(
        !baseline[2].provenance.is_empty(),
        "the injected fault must be blamed by epoch 2"
    );

    // Panic a shard the fault does NOT belong to, so the convicting
    // shard's verdict must come through bit-identical.
    let convicting = baseline[2].provenance[0].shard.clone();
    let victim = ["pod0", "pod1", "pod2"]
        .iter()
        .find(|&&p| p != convicting)
        .expect("three pod shards, at most one convicting")
        .to_string();
    let hook_victim = victim.clone();
    let mut cfg = sharded_cfg();
    cfg.chaos = Some(ChaosHook::new(move |label, epoch| {
        (label == hook_victim && epoch == 2).then_some(ShardChaos::Panic)
    }));
    let mut chaos_pipe = StreamPipeline::new(&topo, cfg);

    for (e, flows) in epochs.iter().enumerate() {
        let e = e as u64;
        let report = chaos_pipe.run_flows(e, e * 1_000, (e + 1) * 1_000, flows);
        // Verdicts on unaffected scopes are bit-identical to the
        // chaos-free run, chaos epoch included.
        assert_eq!(
            report.result.predicted, baseline[e as usize].result.predicted,
            "epoch {e}: verdict diverged from the chaos-free run"
        );
        assert_eq!(
            report.result.scores, baseline[e as usize].result.scores,
            "epoch {e}: scores diverged from the chaos-free run"
        );
        if e == 2 {
            assert!(report.health.is_degraded(), "panic epoch must degrade");
            assert!(
                report
                    .health
                    .reasons()
                    .contains(&DegradeReason::ShardPanicked {
                        shard: victim.clone()
                    }),
                "missing panic reason, got {:?}",
                report.health.reasons()
            );
            let cov = report.health.evidence_coverage();
            assert!(
                cov > 0.0 && cov < 1.0,
                "panicked shard must cost some (not all) coverage, got {cov}"
            );
            assert_eq!(report.failures.len(), 1);
            assert_eq!(report.failures[0].shard, victim);
            assert!(
                report.failures[0].panic_message.contains("chaos"),
                "panic payload should surface, got {:?}",
                report.failures[0].panic_message
            );
            assert!(
                report.shards.iter().all(|s| s.label != victim),
                "panicked shard must not report an outcome"
            );
        } else {
            assert!(
                !report.health.is_degraded(),
                "epoch {e} should be healthy, got {:?}",
                report.health
            );
            assert!(report.failures.is_empty());
            let v = report
                .shards
                .iter()
                .find(|s| s.label == victim)
                .expect("victim shard reports when not panicked");
            if e == 3 {
                assert!(!v.warm, "epoch 3: victim must rebuild cold after reset");
            }
            if e == 4 {
                assert!(v.warm, "epoch 4: recovered victim must be warm again");
            }
        }
    }
}

/// An injected stall is clamped to the epoch deadline and surfaces as a
/// `ShardDeadline` degrade with a partial (`timed_out`) outcome — not a
/// panic, not an unbounded hang.
#[test]
fn stall_surfaces_as_deadline_truncation() {
    let topo = pods3();
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(41);
    let sc = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);

    let mut cfg = sharded_cfg();
    cfg.epoch_deadline = Some(Duration::from_millis(100));
    cfg.chaos = Some(ChaosHook::new(|label, epoch| {
        (label == "pod1" && epoch == 1).then_some(ShardChaos::Stall(Duration::from_secs(30)))
    }));
    let mut pipe = StreamPipeline::new(&topo, cfg);

    for e in 0..3u64 {
        let flows = epoch_flows(&topo, &router, &sc, e, &mut rng);
        let started = std::time::Instant::now();
        let report = pipe.run_flows(e, e * 1_000, (e + 1) * 1_000, &flows);
        if e == 1 {
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "stall must be clamped to the deadline, not slept in full"
            );
            assert!(report.health.is_degraded());
            assert!(
                report
                    .health
                    .reasons()
                    .contains(&DegradeReason::ShardDeadline {
                        shard: "pod1".into()
                    }),
                "missing deadline reason, got {:?}",
                report.health.reasons()
            );
            // Deadline truncation is not a failure: the shard reports a
            // partial outcome and full evidence coverage.
            assert!(report.failures.is_empty());
            let stalled = report
                .shards
                .iter()
                .find(|s| s.label == "pod1")
                .expect("stalled shard still reports");
            assert!(stalled.timed_out);
            assert_eq!(report.health.evidence_coverage(), 1.0);
        } else {
            assert!(
                !report.health.is_degraded(),
                "epoch {e} should be healthy, got {:?}",
                report.health
            );
        }
    }
}

/// Externally-flagged faults and late-dropped records degrade the next
/// report: evidence the pipeline never saw is not silently absorbed
/// into a `Healthy` verdict.
#[test]
fn external_flags_and_late_records_degrade_next_report() {
    let topo = pods3();
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(42);
    let sc = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);

    let mut cfg = sharded_cfg();
    cfg.epoch = EpochConfig::tumbling(1_000).with_late_horizon(100);
    let mut pipe = StreamPipeline::new(&topo, cfg);

    let stamp = |flows: &[MonitoredFlow], agent: u32, ms: u64| -> Vec<StampedRecord> {
        flows
            .iter()
            .map(|f| StampedRecord {
                agent_id: agent,
                export_ms: ms,
                record: FlowRecord {
                    key: f.key,
                    stats: f.stats,
                    class: f.class,
                    path: Some(f.true_path.clone()),
                },
            })
            .collect()
    };

    // Epoch 0 closes healthy, but an externally-flagged store fault
    // attaches to its report.
    let flows0 = epoch_flows(&topo, &router, &sc, 0, &mut rng);
    pipe.ingest(stamp(&flows0, 1, 500));
    pipe.flag_degraded(DegradeReason::External {
        what: "store-append:disk-full".into(),
    });
    let reports = pipe.poll(1_000);
    assert_eq!(reports.len(), 1);
    assert!(reports[0].health.is_degraded());
    assert!(matches!(
        reports[0].health.reasons(),
        [DegradeReason::External { what }] if what.contains("disk-full")
    ));

    // A record far behind the watermark is dropped as late; the *next*
    // report carries the evidence loss.
    let flows1 = epoch_flows(&topo, &router, &sc, 1, &mut rng);
    pipe.ingest(stamp(&flows1, 1, 1_500));
    pipe.ingest(stamp(&flows0[..3], 2, 400)); // window 0: closed + beyond horizon
    assert_eq!(pipe.late_records(), 3);
    let reports = pipe.poll(2_000);
    assert_eq!(reports.len(), 1);
    assert!(
        reports[0]
            .health
            .reasons()
            .contains(&DegradeReason::LateRecords { count: 3 }),
        "late drop must degrade the next report, got {:?}",
        reports[0].health.reasons()
    );

    // With the faults cleared, reports return to Healthy.
    let flows2 = epoch_flows(&topo, &router, &sc, 2, &mut rng);
    pipe.ingest(stamp(&flows2, 1, 2_500));
    let reports = pipe.poll(3_000);
    assert_eq!(reports.len(), 1);
    assert!(!reports[0].health.is_degraded());
}

/// The wire has no payload checksum: a corrupted-but-framed message
/// decodes into records with arbitrary content. Impossible records —
/// node or link ids outside the topology, retransmission counts above
/// the packet count — must be rejected before assembly (where a garbage
/// node id would panic an index lookup), counted, and flagged on the
/// epoch's health; the sane records around them still localize.
#[test]
fn garbage_records_are_rejected_not_panicked() {
    let topo = pods3();
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(43);
    let mut sc = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);
    let link = topo.fabric_links()[11];
    sc.events.push(flock_netsim::FaultEvent {
        link,
        drop_rate: 0.02,
        appear_epoch: 0,
        heal_epoch: None,
    });
    let mut pipe = StreamPipeline::new(&topo, sharded_cfg());

    let flows = epoch_flows(&topo, &router, &sc, 0, &mut rng);
    let mut records: Vec<StampedRecord> = flows
        .iter()
        .map(|f| StampedRecord {
            agent_id: 1,
            export_ms: 500,
            record: FlowRecord {
                key: f.key,
                stats: f.stats,
                class: f.class,
                path: Some(f.true_path.clone()),
            },
        })
        .collect();
    // Three corruption shapes decodable from a well-formed frame: a
    // source node id beyond the topology, a traced path naming a link
    // that does not exist, and a retransmission count above packets.
    let mut garbage_node = records[0].clone();
    garbage_node.record.key.src = flock_topology::NodeId(u32::MAX / 2);
    let mut garbage_link = records[1].clone();
    garbage_link.record.path = Some(vec![flock_topology::LinkId(9_999_999)]);
    let mut garbage_stats = records[2].clone();
    garbage_stats.record.stats.retransmissions = garbage_stats.record.stats.packets + 1;
    records.extend([garbage_node, garbage_link, garbage_stats]);

    pipe.ingest(records);
    let reports = pipe.poll(1_000);
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(pipe.rejected_records(), 3);
    assert!(
        report
            .health
            .reasons()
            .contains(&DegradeReason::RejectedRecords { count: 3 }),
        "rejected garbage must degrade the report, got {:?}",
        report.health.reasons()
    );
    // The surviving evidence still convicts the real fault.
    assert_eq!(
        report.result.predicted,
        vec![flock_topology::Component::Link(link)],
        "sane records around the garbage must still localize"
    );
}
