//! Multi-epoch pipeline tests over dynamic failure scenarios: the
//! warm-started, sharded stream layer must track faults as they appear,
//! persist, and heal.

use flock_core::evaluate;
use flock_netsim::dynamic::DynamicScenario;
use flock_netsim::flowsim::{simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_stream::{EpochConfig, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, InputKind, MonitoredFlow};
use flock_topology::clos::{three_tier, ClosParams};
use flock_topology::{Router, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pods3() -> Topology {
    three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    })
}

/// One epoch of simulated telemetry under the scenario active at `epoch`.
fn epoch_flows(
    topo: &Topology,
    router: &Router<'_>,
    sc: &DynamicScenario,
    epoch: u64,
    flows_n: usize,
    rng: &mut StdRng,
) -> Vec<MonitoredFlow> {
    let snapshot = sc.scenario_at(epoch);
    let demands = generate_demands(
        topo,
        &TrafficConfig::paper(flows_n, TrafficPattern::Uniform),
        rng,
    );
    simulate_flows(
        topo,
        router,
        &snapshot,
        &demands,
        &FlowSimConfig::default(),
        rng,
    )
}

fn run(warm: bool, shard: bool) {
    let topo = pods3();
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(40);

    // A hand-built timeline: fault appears at epoch 1, heals at epoch 4.
    let mut sc = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);
    let link = topo.fabric_links()[11];
    sc.events.push(flock_netsim::dynamic::FaultEvent {
        link,
        drop_rate: 0.02,
        appear_epoch: 1,
        heal_epoch: Some(4),
    });

    let cfg = StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: vec![InputKind::Int],
        mode: AnalysisMode::PerPacket,
        warm_start: warm,
        shard_by_pod: shard,
        ..StreamConfig::paper_default()
    };
    let mut pipeline = StreamPipeline::new(&topo, cfg);

    for epoch in 0..6u64 {
        let flows = epoch_flows(&topo, &router, &sc, epoch, 3_000, &mut rng);
        let report = pipeline.run_flows(epoch, epoch * 1_000, (epoch + 1) * 1_000, &flows);
        let truth = sc.scenario_at(epoch).truth;
        let pr = evaluate(&topo, &report.result.predicted, &truth);
        let active = sc.active_at(epoch);
        if active.is_empty() {
            assert!(
                report.result.predicted.is_empty(),
                "epoch {epoch} (warm={warm}, shard={shard}): clean network must \
                 yield the empty verdict, got {:?}",
                report.result.predicted
            );
        } else {
            assert_eq!(
                pr.recall, 1.0,
                "epoch {epoch} (warm={warm}, shard={shard}): active fault must be \
                 localized; blamed {:?}, truth {:?}",
                report.result.predicted, truth
            );
            assert_eq!(
                pr.precision, 1.0,
                "epoch {epoch} (warm={warm}, shard={shard}): no spurious blame; \
                 got {:?}",
                report.result.predicted
            );
        }
        // Warm engines must actually be warm from the second epoch on.
        if warm && epoch > 0 {
            assert!(
                report.shards.iter().all(|s| s.warm),
                "epoch {epoch}: every shard should rebind, got {:?}",
                report.shards.iter().map(|s| s.warm).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn warm_pipeline_tracks_appear_persist_heal() {
    run(true, false);
}

#[test]
fn cold_pipeline_tracks_appear_persist_heal() {
    run(false, false);
}

#[test]
fn sharded_warm_pipeline_tracks_appear_persist_heal() {
    run(true, true);
}

/// Warm and cold drivers must agree epoch by epoch on the same telemetry
/// (warm-start is an optimization, not a different model).
#[test]
fn warm_and_cold_agree_on_identical_epochs() {
    let topo = pods3();
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(41);
    let sc = DynamicScenario::generate(&topo, 5, 2, (0.015, 0.02), (2, 3), 1e-4, &mut rng);

    let mk = |warm: bool| StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: vec![InputKind::Int],
        mode: AnalysisMode::PerPacket,
        warm_start: warm,
        shard_by_pod: false,
        ..StreamConfig::paper_default()
    };
    let mut warm_pipe = StreamPipeline::new(&topo, mk(true));
    let mut cold_pipe = StreamPipeline::new(&topo, mk(false));

    for epoch in 0..5u64 {
        let flows = epoch_flows(&topo, &router, &sc, epoch, 3_000, &mut rng);
        let a = warm_pipe.run_flows(epoch, epoch * 1_000, (epoch + 1) * 1_000, &flows);
        let b = cold_pipe.run_flows(epoch, epoch * 1_000, (epoch + 1) * 1_000, &flows);
        let mut pa = a.result.predicted.clone();
        let mut pb = b.result.predicted.clone();
        pa.sort();
        pb.sort();
        assert_eq!(pa, pb, "epoch {epoch}: warm and cold verdicts diverge");
    }
}
