//! Component-space sharding for the per-epoch executor.
//!
//! A [`ShardPlan`] partitions blame *ownership* over the component space:
//! each shard may blame only the components it owns, so merged results
//! never double-report. Ownership overlaps at pod boundaries (an
//! agg–spine link belongs to its pod shard; its spine endpoint to the
//! spine tier) — the merge deduplicates by component.
//!
//! Each shard localizes over the subset of observations that can
//! implicate its components: for a pod shard, every flow whose possible
//! paths (or host attachment links) touch the pod; for a spine shard,
//! every flow that can cross one of its spines. The spine tier is
//! itself split per spine *plane* ([`ShardKind::SpinePlane`]): a Clos
//! fabric stripes its spines into planes carrying disjoint ECMP slices
//! ([`flock_topology::SpinePlanes`]), so evidence against one plane's
//! components can only come from flows whose candidate paths cross that
//! plane — traced (known-path) traffic partitions cleanly and the
//! per-plane engines run in parallel, removing the single-spine-engine
//! critical path. Passive wide path sets may straddle planes; they are
//! routed to every plane they touch (correct, merely less reductive),
//! and the pipeline's cross-plane refinement pass
//! (`flock_stream::pipeline`) deduplicates blame when several planes
//! hypothesize from such shared evidence.

use flock_core::{ComponentSpace, Engine};
use flock_telemetry::{FlowObs, ObservationSet};
use flock_topology::{NodeRole, SpinePlanes, Topology};

/// What a shard is responsible for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum ShardKind {
    /// Everything (the single-shard plan).
    All,
    /// One pod's leaves, aggs, hosts, and incident links.
    Pod(u16),
    /// The whole spine tier and its incident links (the
    /// single-spine-shard plan).
    Spine,
    /// One spine plane: its spines and their incident links.
    SpinePlane(u16),
}

/// One blame-ownership shard.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Display label (`pod3`, `spine`, `spine-p0`, `all`). Labels are
    /// unique within a plan — plane shards are numbered — so logs and
    /// merges never alias two shards.
    pub label: String,
    /// The region this shard covers.
    pub kind: ShardKind,
    /// `owned[c]` — whether dense component `c` may be blamed by this
    /// shard.
    pub owned: Vec<bool>,
}

impl Shard {
    /// Whether this shard owns dense component index `c`.
    #[inline]
    pub fn owns(&self, c: u32) -> bool {
        self.owned[c as usize]
    }

    /// Whether a flow observation is relevant to this shard, given the
    /// pod/spine touch signature of its path set (see
    /// [`SetTouchIndex`]).
    pub fn relevant(&self, touch: SetTouch, prefix_touch: SetTouch) -> bool {
        self.relevant_combined(touch.union(prefix_touch))
    }

    /// [`Shard::relevant`] on an already-combined (set ∪ prefix)
    /// signature — an O(1) mask test. The pipeline derives each flow's
    /// combined signature *once* per epoch and answers every shard's
    /// relevance from it, instead of re-walking the flow's links once
    /// per shard engine (which would dominate per-plane engine cost).
    #[inline]
    pub fn relevant_combined(&self, t: SetTouch) -> bool {
        match self.kind {
            ShardKind::All => true,
            ShardKind::Pod(p) => t.pods & (1u128 << (p % 128)) != 0,
            ShardKind::Spine => t.spine,
            ShardKind::SpinePlane(p) => t.planes & (1u64 << (p % 64)) != 0,
        }
    }
}

/// Which pods, which spine planes (bitmasks) and whether the spine tier
/// at all a path set touches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetTouch {
    /// Bit `p` set iff some link endpoint lies in pod `p` (mod 128).
    pub pods: u128,
    /// Bit `p` set iff some link endpoint is a spine of plane `p`
    /// (mod 64). Aliasing past 64 planes only widens a plane shard's
    /// evidence (never narrows it), so it is safe.
    pub planes: u64,
    /// Whether some link endpoint is a spine switch.
    pub spine: bool,
}

impl SetTouch {
    /// Union of two signatures (a flow's set touch ∪ prefix touch).
    #[inline]
    pub fn union(self, other: SetTouch) -> SetTouch {
        SetTouch {
            pods: self.pods | other.pods,
            planes: self.planes | other.planes,
            spine: self.spine || other.spine,
        }
    }
}

/// Per-set touch signatures, extended lazily as the shared arena grows.
#[derive(Debug, Default)]
pub struct SetTouchIndex {
    sets: Vec<SetTouch>,
    /// Per-link touch signature (both endpoints), built once per
    /// topology: set extension and per-flow prefix signatures reduce to
    /// array loads and ORs instead of node/role/plane lookups.
    links: Vec<SetTouch>,
    /// Spine-plane membership, derived from the topology on first use.
    planes: Option<SpinePlanes>,
}

impl SetTouchIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// The plane membership the index derives touch signatures against
    /// (`None` until the first [`SetTouchIndex::extend`]).
    pub fn planes(&self) -> Option<&SpinePlanes> {
        self.planes.as_ref()
    }

    /// Extend the index to cover every set interned in `obs`'s arena
    /// (append-only, mirroring the arena lineage).
    pub fn extend(&mut self, topo: &Topology, obs: &ObservationSet) {
        let planes = self.planes.get_or_insert_with(|| SpinePlanes::derive(topo));
        if self.links.len() < topo.link_count() {
            self.links = (0..topo.link_count())
                .map(|li| {
                    let link = topo.link(flock_topology::LinkId(li as u32));
                    let mut touch = SetTouch::default();
                    for end in [link.src, link.dst] {
                        let node = topo.node(end);
                        if node.role == NodeRole::Spine {
                            touch.spine = true;
                            if let Some(p) = planes.plane_of(end) {
                                touch.planes |= 1u64 << (p % 64);
                            }
                        } else if node.pod != u16::MAX {
                            touch.pods |= 1u128 << (node.pod % 128);
                        }
                    }
                    touch
                })
                .collect();
        }
        for sid in self.sets.len()..obs.arena.set_count() {
            let mut touch = SetTouch::default();
            for pid in obs.arena.set(flock_telemetry::PathSetId(sid as u32)) {
                for &l in obs.arena.path(*pid) {
                    touch = touch.union(self.links[l.0 as usize]);
                }
            }
            self.sets.push(touch);
        }
    }

    /// Touch signature of a flow: its path set plus its host-attachment
    /// prefix links. Pure table lookups — [`extend`](Self::extend) must
    /// have covered the flow's arena first.
    pub fn flow_touch(&self, _topo: &Topology, o: &FlowObs) -> (SetTouch, SetTouch) {
        let set = self.sets[o.set.0 as usize];
        let mut prefix = SetTouch::default();
        for l in o.prefix.iter().flatten() {
            prefix = prefix.union(self.links[l.0 as usize]);
        }
        (set, prefix)
    }
}

/// A blame-ownership partition of the component space.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The shards, in execution order.
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// One shard owning every component (no sharding).
    pub fn single(topo: &Topology) -> Self {
        let space = ComponentSpace::new(topo);
        ShardPlan {
            shards: vec![Shard {
                label: "all".into(),
                kind: ShardKind::All,
                owned: vec![true; space.n_comps()],
            }],
        }
    }

    /// One shard per pod plus one shard per spine *plane*.
    ///
    /// Ownership: a pod shard owns the pod's switch devices and every
    /// link with an endpoint in the pod; plane shard `p` owns plane
    /// `p`'s spine devices and their incident links. Agg–spine links are
    /// owned by both their pod and their spine's plane — the result
    /// merge deduplicates. Plane membership comes from
    /// [`SpinePlanes::derive`]; on a non-striped topology that is a
    /// single plane, making this plan equivalent to
    /// [`ShardPlan::by_pod_single_spine`].
    pub fn by_pod(topo: &Topology) -> Self {
        Self::podded(topo, true)
    }

    /// One shard per pod plus a single spine shard covering the whole
    /// tier — the pre-plane-sharding plan, kept as the comparison
    /// baseline for the `evidence_coalesce` bench and `bench-report`.
    pub fn by_pod_single_spine(topo: &Topology) -> Self {
        Self::podded(topo, false)
    }

    fn podded(topo: &Topology, plane_shards: bool) -> Self {
        let space = ComponentSpace::new(topo);
        let n = space.n_comps();
        let mut pods: Vec<u16> = topo
            .nodes()
            .map(|(_, node)| node.pod)
            .filter(|&p| p != u16::MAX)
            .collect();
        pods.sort_unstable();
        pods.dedup();

        let mut shards: Vec<Shard> = pods
            .iter()
            .map(|&p| Shard {
                label: format!("pod{p}"),
                kind: ShardKind::Pod(p),
                owned: vec![false; n],
            })
            .collect();
        let planes = SpinePlanes::derive(topo);
        let spine_at = shards.len();
        if plane_shards {
            for p in 0..planes.n_planes() as u16 {
                shards.push(Shard {
                    label: format!("spine-p{p}"),
                    kind: ShardKind::SpinePlane(p),
                    owned: vec![false; n],
                });
            }
        } else {
            shards.push(Shard {
                label: "spine".into(),
                kind: ShardKind::Spine,
                owned: vec![false; n],
            });
        }
        let pod_at = |p: u16| pods.binary_search(&p).expect("pod listed");
        // Shard index owning a spine node.
        let spine_shard_of = |node: flock_topology::NodeId| -> usize {
            if plane_shards {
                spine_at + planes.plane_of(node).expect("spine has a plane") as usize
            } else {
                spine_at
            }
        };

        for c in 0..n as u32 {
            match space.component(c) {
                flock_topology::Component::Device(node) => {
                    let nd = topo.node(node);
                    if nd.role == NodeRole::Spine {
                        shards[spine_shard_of(node)].owned[c as usize] = true;
                    } else if nd.pod != u16::MAX {
                        shards[pod_at(nd.pod)].owned[c as usize] = true;
                    }
                }
                flock_topology::Component::Link(l) => {
                    let link = topo.link(l);
                    for end in [link.src, link.dst] {
                        let nd = topo.node(end);
                        if nd.role == NodeRole::Spine {
                            shards[spine_shard_of(end)].owned[c as usize] = true;
                        } else if nd.pod != u16::MAX {
                            shards[pod_at(nd.pod)].owned[c as usize] = true;
                        }
                    }
                }
            }
        }
        ShardPlan { shards }
    }

    /// Sanity check: every component is owned by at least one shard.
    pub fn covers(&self, engine_comps: usize) -> bool {
        (0..engine_comps).all(|c| self.shards.iter().any(|s| s.owned[c]))
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Number of spine-plane shards in the plan (0 for non-plane plans).
    pub fn spine_plane_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s.kind, ShardKind::SpinePlane(_)))
            .count()
    }

    /// Whether the plan has no shards (never true for the constructors).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// Convenience: the dense (global) component count a plan was built for
/// must match the engine's topology (the engine's *local* component
/// count is evidence-dependent and intentionally smaller).
pub fn assert_plan_matches(plan: &ShardPlan, engine: &Engine) {
    for s in &plan.shards {
        assert_eq!(
            s.owned.len(),
            engine.n_global_comps(),
            "shard plan built for a different topology"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::clos::{three_tier, ClosParams};

    #[test]
    fn by_pod_covers_every_component() {
        let topo = three_tier(ClosParams::tiny());
        let plan = ShardPlan::by_pod(&topo);
        let space = ComponentSpace::new(&topo);
        assert_eq!(plan.len(), 4, "2 pods + 2 spine planes");
        assert_eq!(plan.spine_plane_count(), 2);
        assert!(plan.covers(space.n_comps()));
    }

    #[test]
    fn by_pod_single_spine_covers_every_component() {
        let topo = three_tier(ClosParams::tiny());
        let plan = ShardPlan::by_pod_single_spine(&topo);
        let space = ComponentSpace::new(&topo);
        assert_eq!(plan.len(), 3, "2 pods + spine");
        assert_eq!(plan.spine_plane_count(), 0);
        assert!(plan.covers(space.n_comps()));
    }

    #[test]
    fn pod_shards_do_not_own_foreign_pods() {
        let topo = three_tier(ClosParams::tiny());
        let plan = ShardPlan::by_pod(&topo);
        let space = ComponentSpace::new(&topo);
        for shard in &plan.shards {
            let ShardKind::Pod(p) = shard.kind else {
                continue;
            };
            for c in 0..space.n_comps() as u32 {
                if !shard.owns(c) {
                    continue;
                }
                // Every owned component touches pod p.
                let touches = match space.component(c) {
                    flock_topology::Component::Device(n) => topo.node(n).pod == p,
                    flock_topology::Component::Link(l) => {
                        let link = topo.link(l);
                        topo.node(link.src).pod == p || topo.node(link.dst).pod == p
                    }
                };
                assert!(touches, "comp {c} owned by pod{p} but outside it");
            }
        }
    }

    #[test]
    fn plane_shards_partition_the_spine_shard() {
        // Per-plane ownership must union to exactly the single spine
        // shard's ownership, with no component owned by two planes.
        let topo = three_tier(ClosParams {
            pods: 3,
            tors_per_pod: 2,
            aggs_per_pod: 3,
            spines_per_plane: 2,
            hosts_per_tor: 2,
        });
        let planes_plan = ShardPlan::by_pod(&topo);
        let spine_plan = ShardPlan::by_pod_single_spine(&topo);
        let spine = spine_plan
            .shards
            .iter()
            .find(|s| s.kind == ShardKind::Spine)
            .unwrap();
        let plane_shards: Vec<&Shard> = planes_plan
            .shards
            .iter()
            .filter(|s| matches!(s.kind, ShardKind::SpinePlane(_)))
            .collect();
        assert_eq!(plane_shards.len(), 3);
        for c in 0..spine.owned.len() as u32 {
            let owners = plane_shards.iter().filter(|s| s.owns(c)).count();
            if spine.owns(c) {
                assert_eq!(owners, 1, "comp {c} owned by {owners} planes");
            } else {
                assert_eq!(owners, 0, "comp {c} outside the spine tier");
            }
        }
    }

    #[test]
    fn plane_shard_labels_never_alias() {
        // Regression guard for label collisions: every shard of a plan
        // — in particular the plane shards — must carry a distinct
        // label, since labels key log lines and bench lookups.
        for topo in [
            three_tier(ClosParams::tiny()),
            three_tier(ClosParams {
                pods: 4,
                tors_per_pod: 2,
                aggs_per_pod: 4,
                spines_per_plane: 2,
                hosts_per_tor: 2,
            }),
            flock_topology::clos::leaf_spine(flock_topology::LeafSpineParams::testbed()),
        ] {
            let plan = ShardPlan::by_pod(&topo);
            let mut labels: Vec<&str> = plan.shards.iter().map(|s| s.label.as_str()).collect();
            let total = labels.len();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), total, "duplicate shard label in {labels:?}");
            for (i, s) in plan.shards.iter().enumerate() {
                if let ShardKind::SpinePlane(p) = s.kind {
                    assert_eq!(s.label, format!("spine-p{p}"), "shard {i}");
                }
            }
        }
    }

    #[test]
    fn single_plan_owns_all() {
        let topo = three_tier(ClosParams::tiny());
        let plan = ShardPlan::single(&topo);
        let space = ComponentSpace::new(&topo);
        assert_eq!(plan.len(), 1);
        assert!(plan.covers(space.n_comps()));
        assert!(!plan.is_empty());
    }
}
