//! Component-space sharding for the per-epoch executor.
//!
//! A [`ShardPlan`] partitions blame *ownership* over the component space:
//! each shard may blame only the components it owns, so merged results
//! never double-report. Ownership overlaps at pod boundaries (an
//! agg–spine link belongs to its pod shard; its spine endpoint to the
//! spine shard) — the merge deduplicates by component.
//!
//! Each shard localizes over the subset of observations that can
//! implicate its components: for a pod shard, every flow whose possible
//! paths (or host attachment links) touch the pod; for the spine shard,
//! every flow that can cross a spine (i.e. inter-pod traffic). Pod-local
//! faults are therefore diagnosed from a fraction of the epoch's
//! evidence, and the per-pod engines run on separate threads. The spine
//! shard necessarily sees most inter-pod traffic — spine evidence is
//! global by nature — which bounds the achievable speedup; the plan
//! exists to cut pod-fault latency and to parallelize, not to shrink
//! spine work.

use flock_core::{ComponentSpace, Engine};
use flock_telemetry::{FlowObs, ObservationSet};
use flock_topology::{NodeRole, Topology};

/// What a shard is responsible for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardKind {
    /// Everything (the single-shard plan).
    All,
    /// One pod's leaves, aggs, hosts, and incident links.
    Pod(u16),
    /// The spine tier and its incident links.
    Spine,
}

/// One blame-ownership shard.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Display label (`pod3`, `spine`, `all`).
    pub label: String,
    /// The region this shard covers.
    pub kind: ShardKind,
    /// `owned[c]` — whether dense component `c` may be blamed by this
    /// shard.
    pub owned: Vec<bool>,
}

impl Shard {
    /// Whether this shard owns dense component index `c`.
    #[inline]
    pub fn owns(&self, c: u32) -> bool {
        self.owned[c as usize]
    }

    /// Whether a flow observation is relevant to this shard, given the
    /// pod/spine touch signature of its path set (see
    /// [`SetTouchIndex`]).
    pub fn relevant(&self, touch: SetTouch, prefix_touch: SetTouch) -> bool {
        let t = SetTouch {
            pods: touch.pods | prefix_touch.pods,
            spine: touch.spine || prefix_touch.spine,
        };
        match self.kind {
            ShardKind::All => true,
            ShardKind::Pod(p) => t.pods & (1u128 << (p % 128)) != 0,
            ShardKind::Spine => t.spine,
        }
    }
}

/// Which pods (bitmask) and whether the spine tier a path set touches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetTouch {
    /// Bit `p` set iff some link endpoint lies in pod `p` (mod 128).
    pub pods: u128,
    /// Whether some link endpoint is a spine switch.
    pub spine: bool,
}

/// Per-set touch signatures, extended lazily as the shared arena grows.
#[derive(Debug, Default)]
pub struct SetTouchIndex {
    sets: Vec<SetTouch>,
}

impl SetTouchIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extend the index to cover every set interned in `obs`'s arena
    /// (append-only, mirroring the arena lineage).
    pub fn extend(&mut self, topo: &Topology, obs: &ObservationSet) {
        for sid in self.sets.len()..obs.arena.set_count() {
            let mut touch = SetTouch::default();
            for pid in obs.arena.set(flock_telemetry::PathSetId(sid as u32)) {
                for &l in obs.arena.path(*pid) {
                    let link = topo.link(l);
                    for end in [link.src, link.dst] {
                        let node = topo.node(end);
                        if node.role == NodeRole::Spine {
                            touch.spine = true;
                        } else if node.pod != u16::MAX {
                            touch.pods |= 1u128 << (node.pod % 128);
                        }
                    }
                }
            }
            self.sets.push(touch);
        }
    }

    /// Touch signature of a flow: its path set plus its host-attachment
    /// prefix links.
    pub fn flow_touch(&self, topo: &Topology, o: &FlowObs) -> (SetTouch, SetTouch) {
        let set = self.sets[o.set.0 as usize];
        let mut prefix = SetTouch::default();
        for l in o.prefix.iter().flatten() {
            let link = topo.link(*l);
            for end in [link.src, link.dst] {
                let node = topo.node(end);
                if node.role == NodeRole::Spine {
                    prefix.spine = true;
                } else if node.pod != u16::MAX {
                    prefix.pods |= 1u128 << (node.pod % 128);
                }
            }
        }
        (set, prefix)
    }
}

/// A blame-ownership partition of the component space.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The shards, in execution order.
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// One shard owning every component (no sharding).
    pub fn single(topo: &Topology) -> Self {
        let space = ComponentSpace::new(topo);
        ShardPlan {
            shards: vec![Shard {
                label: "all".into(),
                kind: ShardKind::All,
                owned: vec![true; space.n_comps()],
            }],
        }
    }

    /// One shard per pod plus a spine shard.
    ///
    /// Ownership: a pod shard owns the pod's switch devices and every
    /// link with an endpoint in the pod; the spine shard owns spine
    /// devices and spine-incident links. Agg–spine links are owned by
    /// both their pod and the spine shard — the result merge
    /// deduplicates.
    pub fn by_pod(topo: &Topology) -> Self {
        let space = ComponentSpace::new(topo);
        let n = space.n_comps();
        let mut pods: Vec<u16> = topo
            .nodes()
            .map(|(_, node)| node.pod)
            .filter(|&p| p != u16::MAX)
            .collect();
        pods.sort_unstable();
        pods.dedup();

        let mut shards: Vec<Shard> = pods
            .iter()
            .map(|&p| Shard {
                label: format!("pod{p}"),
                kind: ShardKind::Pod(p),
                owned: vec![false; n],
            })
            .collect();
        shards.push(Shard {
            label: "spine".into(),
            kind: ShardKind::Spine,
            owned: vec![false; n],
        });
        let spine_at = shards.len() - 1;
        let pod_at = |p: u16| pods.binary_search(&p).expect("pod listed");

        for c in 0..n as u32 {
            match space.component(c) {
                flock_topology::Component::Device(node) => {
                    let nd = topo.node(node);
                    if nd.role == NodeRole::Spine {
                        shards[spine_at].owned[c as usize] = true;
                    } else if nd.pod != u16::MAX {
                        shards[pod_at(nd.pod)].owned[c as usize] = true;
                    }
                }
                flock_topology::Component::Link(l) => {
                    let link = topo.link(l);
                    for end in [link.src, link.dst] {
                        let nd = topo.node(end);
                        if nd.role == NodeRole::Spine {
                            shards[spine_at].owned[c as usize] = true;
                        } else if nd.pod != u16::MAX {
                            shards[pod_at(nd.pod)].owned[c as usize] = true;
                        }
                    }
                }
            }
        }
        ShardPlan { shards }
    }

    /// Sanity check: every component is owned by at least one shard.
    pub fn covers(&self, engine_comps: usize) -> bool {
        (0..engine_comps).all(|c| self.shards.iter().any(|s| s.owned[c]))
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan has no shards (never true for the constructors).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// Convenience: the dense component count a plan was built for must
/// match the engine's.
pub fn assert_plan_matches(plan: &ShardPlan, engine: &Engine) {
    for s in &plan.shards {
        assert_eq!(
            s.owned.len(),
            engine.n_comps(),
            "shard plan built for a different topology"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::clos::{three_tier, ClosParams};

    #[test]
    fn by_pod_covers_every_component() {
        let topo = three_tier(ClosParams::tiny());
        let plan = ShardPlan::by_pod(&topo);
        let space = ComponentSpace::new(&topo);
        assert_eq!(plan.len(), 3, "2 pods + spine");
        assert!(plan.covers(space.n_comps()));
    }

    #[test]
    fn pod_shards_do_not_own_foreign_pods() {
        let topo = three_tier(ClosParams::tiny());
        let plan = ShardPlan::by_pod(&topo);
        let space = ComponentSpace::new(&topo);
        for shard in &plan.shards {
            let ShardKind::Pod(p) = shard.kind else {
                continue;
            };
            for c in 0..space.n_comps() as u32 {
                if !shard.owns(c) {
                    continue;
                }
                // Every owned component touches pod p.
                let touches = match space.component(c) {
                    flock_topology::Component::Device(n) => topo.node(n).pod == p,
                    flock_topology::Component::Link(l) => {
                        let link = topo.link(l);
                        topo.node(link.src).pod == p || topo.node(link.dst).pod == p
                    }
                };
                assert!(touches, "comp {c} owned by pod{p} but outside it");
            }
        }
    }

    #[test]
    fn single_plan_owns_all() {
        let topo = three_tier(ClosParams::tiny());
        let plan = ShardPlan::single(&topo);
        let space = ComponentSpace::new(&topo);
        assert_eq!(plan.len(), 1);
        assert!(plan.covers(space.n_comps()));
        assert!(!plan.is_empty());
    }
}
