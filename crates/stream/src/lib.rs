//! `flock-stream` — the online, epoch-based localization pipeline.
//!
//! The paper's deployment model (§5.1, Fig. 7) is a continuously running
//! service: end-host agents export flow records to a central collector
//! and the inference engine drains the store every ~30 s, localizing
//! faults as they appear and heal. The sibling crates provide one-shot
//! offline localization over a pre-assembled
//! [`ObservationSet`](flock_telemetry::ObservationSet); this crate turns
//! that into the online loop:
//!
//! * [`epoch`] — windows the collector's stamped record stream into
//!   fixed (tumbling) or sliding epochs against a caller-driven
//!   watermark, with an O(buckets) fast path for wire-v2 input the
//!   collector reactor already grouped by agent-stamped epoch;
//! * [`shard`] — partitions blame ownership over the component space
//!   (per pod, plus one shard per spine *plane*, derived from the
//!   fabric's stripe structure via [`flock_topology::SpinePlanes`]) so
//!   per-epoch inference can run shard-parallel on a thread pool with
//!   no single spine engine on the critical path;
//! * [`exec`] — a persistent work-stealing shard executor: fixed worker
//!   threads over per-shard FIFO task queues, replacing the per-epoch
//!   spawn/join barrier and letting consecutive epochs overlap per
//!   shard;
//! * [`pipeline`] — the driver: per epoch it assembles observations
//!   against a persistent arena ([`flock_telemetry::Assembler`]),
//!   **warm-starts** each shard's engine from the previous epoch
//!   ([`flock_core::Engine::rebind_filtered`] +
//!   [`flock_core::FlockGreedy::search_warm`], with removal moves so
//!   healed faults are dropped), arbitrates spine blame across planes
//!   with a cross-plane refinement pass when several planes hypothesize
//!   at once, and merges shard verdicts into one
//!   [`flock_core::LocalizationResult`] per epoch. With
//!   [`StreamConfig::pipelined`] set, assembly of epoch `N + 1` runs
//!   double-buffered against inference of epoch `N`
//!   ([`StreamPipeline::submit_flows`]), keeping steady-state wall time
//!   near the slowest single shard's critical path.
//!
//! The end-to-end wiring (agents → TCP collector → stream →
//! per-epoch verdicts) is demonstrated by the `flock_daemon` example and
//! exercised under failure churn by the `stream_pipeline` integration
//! test; `flock-bench`'s `stream_epoch` bench measures the warm-start
//! speedup on an unchanged-fault steady state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod exec;
pub mod pipeline;
pub mod shard;

pub use epoch::{Epoch, EpochConfig, EpochManager};
pub use exec::ShardExecutor;
pub use pipeline::{
    reconstruct, ChaosHook, DegradeReason, EpochHealth, EpochReport, Provenance, ShardChaos,
    ShardFailure, ShardOutcome, StageTimings, StreamConfig, StreamPipeline, PROVENANCE_SETS_CAP,
};
pub use shard::{SetTouch, SetTouchIndex, Shard, ShardKind, ShardPlan};
