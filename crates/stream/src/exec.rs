//! Persistent work-stealing shard executor.
//!
//! The epoch loop used to spawn one scoped thread per shard per epoch:
//! a spawn/join barrier whose wall time is gated by the slowest shard
//! *and* by thread-creation latency, every epoch. [`ShardExecutor`]
//! replaces it with a fixed pool of workers over per-shard task queues:
//!
//! * **Shard-affine, steal on idle** — worker `k` scans its home shards
//!   (`k`, `k + workers`, …) first and steals from the rest only when
//!   its own are empty or claimed, so shard state stays cache-warm under
//!   even load while uneven epochs still spread across the pool.
//! * **Per-shard serialization and FIFO order** — each shard's jobs run
//!   one at a time, in submission order, whichever workers run them.
//!   That is the property pipelining leans on: epoch `N + 1`'s job for
//!   shard `i` can sit queued while `N` is still running, and shard `i`
//!   starts `N + 1` the moment *its own* `N` finishes — no cross-shard
//!   join barrier between epochs.
//! * **State lives in the pool** — jobs are `FnOnce(&mut S)` closures
//!   over the shard's state slot. Panics are the *caller's* contract:
//!   the pipeline wraps every job body in `catch_unwind` (it must — it
//!   owns the degraded-verdict policy); the executor adds a backstop
//!   that swallows any panic that still escapes, so one poisoned job
//!   can never take a worker (or the whole pool) down.
//!
//! The executor is deliberately generic (`S: Send`) and dependency-free
//! — plain `Mutex`/`Condvar` signalling, safe Rust only — so tests can
//! drive it with toy states.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of work bound to one shard's state.
type Job<S> = Box<dyn FnOnce(&mut S) + Send + 'static>;

/// One shard's slot: its pending jobs, its state, and a claim flag that
/// serializes execution (the queue can hold the next epoch's job while
/// the current one runs).
struct ShardCell<S> {
    queue: Mutex<VecDeque<Job<S>>>,
    state: Mutex<S>,
    /// Claimed by the worker currently running (or about to run) this
    /// shard's job — per-shard mutual exclusion and FIFO order.
    busy: AtomicBool,
}

struct ExecShared<S> {
    cells: Vec<ShardCell<S>>,
    /// Jobs submitted and not yet finished (queued or running).
    pending: AtomicUsize,
    stop: AtomicBool,
    /// Wakeup channel for workers (new job, or a shard freed with queued
    /// work) and for [`ShardExecutor::quiesce`] waiters (pending hit 0).
    signal: Mutex<()>,
    cond: Condvar,
}

/// Lock, surviving poisoning: the executor's own invariants never
/// depend on observing a consistent value across a panic (queues hold
/// boxed closures; state is the caller's and the caller catches its own
/// panics), so a poisoned mutex is safe to re-enter.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<S> ExecShared<S> {
    /// Try to run one queued job for shard `i`. Returns whether a job ran.
    fn try_run(&self, i: usize) -> bool {
        let cell = &self.cells[i];
        // Claim the shard first: between the claim and the queue pop no
        // other worker can run this shard, so FIFO order holds.
        if cell.busy.swap(true, Ordering::Acquire) {
            return false; // someone else is running this shard
        }
        let job = lock(&cell.queue).pop_front();
        let Some(job) = job else {
            cell.busy.store(false, Ordering::Release);
            return false;
        };
        {
            let mut state = lock(&cell.state);
            // Backstop only: the pipeline's jobs catch their own panics
            // (they own degraded-verdict policy); anything that still
            // escapes must not kill the worker thread.
            let _ = catch_unwind(AssertUnwindSafe(|| job(&mut state)));
        }
        cell.busy.store(false, Ordering::Release);
        self.pending.fetch_sub(1, Ordering::AcqRel);
        // Wake quiesce waiters and any worker that should pick up this
        // shard's next queued job (or work we stole from).
        let _g = lock(&self.signal);
        self.cond.notify_all();
        true
    }

    fn has_runnable(&self) -> bool {
        self.cells
            .iter()
            .any(|c| !c.busy.load(Ordering::Acquire) && !lock(&c.queue).is_empty())
    }
}

fn worker_loop<S>(shared: Arc<ExecShared<S>>, worker: usize, n_workers: usize) {
    let n = shared.cells.len();
    loop {
        let mut ran = false;
        // Home shards first (stride partition), then steal the rest.
        let mut i = worker;
        while i < n {
            ran |= shared.try_run(i);
            i += n_workers;
        }
        for i in 0..n {
            if i % n_workers != worker {
                ran |= shared.try_run(i);
            }
        }
        if ran {
            continue;
        }
        let guard = lock(&shared.signal);
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        if shared.has_runnable() {
            continue; // raced a submit between scan and lock
        }
        // Timeout is robustness against a lost wakeup, not the schedule.
        let _ = shared
            .cond
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap_or_else(|e| e.into_inner());
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
    }
}

/// A fixed pool of workers executing jobs against per-shard state slots,
/// with per-shard FIFO serialization and idle-time stealing. See the
/// module docs for the scheduling contract.
pub struct ShardExecutor<S: Send + 'static> {
    shared: Arc<ExecShared<S>>,
    workers: Vec<JoinHandle<()>>,
}

impl<S: Send + 'static> ShardExecutor<S> {
    /// Build a pool over the given shard states. `workers == 0` sizes
    /// the pool to `min(available_parallelism, shards)`; any other value
    /// is taken as-is (capped at the shard count — extra workers could
    /// never find work).
    pub fn new(states: Vec<S>, workers: usize) -> Self {
        let n_shards = states.len().max(1);
        let n_workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(n_shards)
        } else {
            workers.min(n_shards)
        }
        .max(1);
        let shared = Arc::new(ExecShared {
            cells: states
                .into_iter()
                .map(|s| ShardCell {
                    queue: Mutex::new(VecDeque::new()),
                    state: Mutex::new(s),
                    busy: AtomicBool::new(false),
                })
                .collect(),
            pending: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            signal: Mutex::new(()),
            cond: Condvar::new(),
        });
        let workers = (0..n_workers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("flock-shard-{k}"))
                    .spawn(move || worker_loop(shared, k, n_workers))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardExecutor { shared, workers }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of shard slots.
    pub fn n_shards(&self) -> usize {
        self.shared.cells.len()
    }

    /// Queue a job for shard `i`. Jobs for one shard run serialized, in
    /// submission order; jobs for different shards run concurrently.
    pub fn submit(&self, i: usize, job: impl FnOnce(&mut S) + Send + 'static) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        // Push under the cell lock, notify under the signal lock —
        // never both at once (workers take signal → cell; taking cell →
        // signal here would be an ABBA deadlock).
        lock(&self.shared.cells[i].queue).push_back(Box::new(job));
        let _g = lock(&self.shared.signal);
        self.shared.cond.notify_all();
    }

    /// Block until every submitted job has finished.
    pub fn quiesce(&self) {
        let mut guard = lock(&self.shared.signal);
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            guard = self
                .shared
                .cond
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Run `f` against shard `i`'s state from the caller's thread, once
    /// the shard is idle. Intended for between-epoch inspection (tests,
    /// draining final state); concurrent submissions to the same shard
    /// will contend with it.
    pub fn with_state<R>(&self, i: usize, f: impl FnOnce(&mut S) -> R) -> R {
        loop {
            if !self.shared.cells[i].busy.swap(true, Ordering::Acquire) {
                let r = {
                    let mut state = lock(&self.shared.cells[i].state);
                    f(&mut state)
                };
                self.shared.cells[i].busy.store(false, Ordering::Release);
                let _g = lock(&self.shared.signal);
                self.shared.cond.notify_all();
                return r;
            }
            // Shard is running a job; wait for it to free up.
            let guard = lock(&self.shared.signal);
            let _ = self
                .shared
                .cond
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<S: Send + 'static> Drop for ShardExecutor<S> {
    /// Shutdown: workers stop at the next idle scan; jobs still queued
    /// are dropped unrun (their `TaskDone` senders drop with them, which
    /// is how a collecting caller learns the epoch died). The running
    /// job, if any, completes first — state is never torn mid-job.
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        {
            let _g = lock(&self.shared.signal);
            self.shared.cond.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn per_shard_fifo_order_and_isolation() {
        let exec = ShardExecutor::new(vec![Vec::<u32>::new(), Vec::new()], 2);
        for round in 0..100u32 {
            exec.submit(0, move |s| s.push(round));
            exec.submit(1, move |s| s.push(round * 2));
        }
        exec.quiesce();
        let s0 = exec.with_state(0, |s| s.clone());
        let s1 = exec.with_state(1, |s| s.clone());
        assert_eq!(s0, (0..100).collect::<Vec<_>>());
        assert_eq!(s1, (0..100).map(|r| r * 2).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_spreads_uneven_load() {
        // One slow shard + many fast ones, two workers: the fast shards
        // must complete while the slow one runs (a thread-per-shard or
        // no-steal executor with home-only scans would serialize them
        // behind it if they hashed to the busy worker).
        let exec = ShardExecutor::new(vec![0u64; 8], 2);
        let (tx, rx) = mpsc::channel();
        let slow_tx = tx.clone();
        exec.submit(0, move |s| {
            std::thread::sleep(Duration::from_millis(100));
            *s += 1;
            slow_tx.send(0usize).unwrap();
        });
        for i in 1..8 {
            let tx = tx.clone();
            exec.submit(i, move |s| {
                *s += 1;
                tx.send(i).unwrap();
            });
        }
        drop(tx);
        // All 7 fast shards finish well before the slow one's 100 ms.
        let mut done = Vec::new();
        for _ in 0..7 {
            done.push(
                rx.recv_timeout(Duration::from_millis(90))
                    .expect("fast shards must not queue behind the stalled worker"),
            );
        }
        assert!(!done.contains(&0));
        exec.quiesce();
    }

    #[test]
    fn quiesce_waits_for_queued_and_running() {
        let exec = ShardExecutor::new(vec![0u32; 3], 1);
        for i in 0..3 {
            for _ in 0..5 {
                exec.submit(i, |s| {
                    std::thread::sleep(Duration::from_millis(2));
                    *s += 1;
                });
            }
        }
        exec.quiesce();
        for i in 0..3 {
            assert_eq!(exec.with_state(i, |s| *s), 5);
        }
    }

    #[test]
    fn escaped_panic_does_not_kill_the_pool() {
        let exec = ShardExecutor::new(vec![0u32; 2], 1);
        exec.submit(0, |_| panic!("boom"));
        exec.submit(0, |s| *s += 1);
        exec.submit(1, |s| *s += 10);
        exec.quiesce();
        assert_eq!(exec.with_state(0, |s| *s), 1);
        assert_eq!(exec.with_state(1, |s| *s), 10);
    }

    #[test]
    fn shutdown_drops_unrun_jobs_and_joins() {
        let (tx, rx) = mpsc::channel::<u32>();
        {
            let exec = ShardExecutor::new(vec![()], 1);
            exec.submit(0, move |_| {
                std::thread::sleep(Duration::from_millis(20));
            });
            // Queued behind the sleeper; likely dropped unrun at shutdown
            // — either way the sender must be gone after drop.
            exec.submit(0, move |_| {
                let _ = tx.send(1);
            });
        }
        // Executor dropped: the channel must be closed (job either ran
        // before stop or was dropped with its sender).
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(_) | Err(mpsc::RecvTimeoutError::Disconnected) => {}
            Err(mpsc::RecvTimeoutError::Timeout) => panic!("shutdown leaked the queued job"),
        }
    }

    #[test]
    fn worker_autosize_caps_at_shard_count() {
        let exec = ShardExecutor::new(vec![(); 2], 0);
        assert!(exec.n_workers() >= 1 && exec.n_workers() <= 2);
        let exec2 = ShardExecutor::new(vec![(); 4], 64);
        assert_eq!(exec2.n_workers(), 4);
    }
}
