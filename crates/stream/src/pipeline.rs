//! The online localization pipeline: epochs in, per-epoch verdicts out.
//!
//! [`StreamPipeline`] owns the continuously-running state of §5.1's
//! deployment loop between collector and operator:
//!
//! 1. drained [`StampedRecord`]s are windowed by an
//!    [`EpochManager`] — wire-v2 input
//!    arrives pre-bucketed by the collector reactor and is handed over
//!    bucket-at-a-time ([`StreamPipeline::ingest_bucketed`]), skipping
//!    per-record window assignment;
//! 2. each closed epoch's records are reconstructed into
//!    [`MonitoredFlow`]s and assembled into an [`ObservationSet`] against
//!    a *persistent* [`Assembler`] arena (append-only interning), emitted
//!    sorted by the `(path set, sent, bad)` evidence key so each shard
//!    engine coalesces equal-key runs into weighted super-flows — the
//!    spine shard, which sees nearly all inter-pod traffic, drops from
//!    O(inter-pod flows) to O(distinct evidence keys) per epoch;
//! 3. one engine per shard localizes the epoch over the shard's
//!    persistent [`ArenaView`] — a dense local projection of the shared
//!    arena onto the evidence the shard has ever accepted — so every
//!    per-epoch reset, sweep, and Δ scan inside the engine is O(the
//!    shard's own evidence), not O(total arena). Engines are
//!    **warm-started** from the shard's previous verdict: rebound
//!    ([`flock_core::Engine::try_rebind_view`]) instead of rebuilt, and
//!    the greedy search is seeded with the previous hypothesis, with
//!    removals enabled so heals are detected
//!    ([`FlockGreedy::search_warm`]);
//! 4. when two or more spine-*plane* shards blame components — each from
//!    its plane-filtered slice of the evidence — a **cross-plane
//!    refinement pass** re-searches the union of their hypotheses over
//!    the evidence touching the *blaming planes only* (its own
//!    persistent view; [`StreamConfig::refine_full_spine`] restores the
//!    historical full-spine scope), so a flow pinned to one plane by
//!    ECMP hashing is never double-blamed when its passive path set
//!    straddles planes (the refined verdict supersedes the blaming
//!    planes' own), and a steady multi-plane fault no longer re-pays
//!    full single-spine cost every epoch;
//! 5. shard verdicts are merged under blame ownership into one
//!    [`LocalizationResult`] per epoch.

use crate::epoch::{Epoch, EpochConfig, EpochManager};
use crate::exec::ShardExecutor;
use crate::shard::{SetTouch, SetTouchIndex, Shard, ShardKind, ShardPlan};
use flock_core::{
    CompIdx, ComponentSpace, Engine, EngineOptions, EngineStateSizes, FlockGreedy, HyperParams,
    KernelDispatch, LocalizationResult, TermPrefill,
};
use flock_telemetry::{
    AnalysisMode, ArenaDelta, ArenaView, Assembler, CoalesceMode, DrainBatch, FlowRecord,
    InputKind, MonitoredFlow, ObservationSet, PathArena, StampedRecord, TrafficClass,
};
use flock_topology::{Component, NodeId, NodeRole, Router, Topology};
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Epoch windowing.
    pub epoch: EpochConfig,
    /// Telemetry kinds assembled per epoch (§6.2 selection rules).
    pub kinds: Vec<InputKind>,
    /// Metric analysis mode.
    pub mode: AnalysisMode,
    /// Inference hyperparameters.
    pub params: HyperParams,
    /// Warm-start inference from the previous epoch's hypothesis
    /// (`false` = rebuild engines and search from scratch every epoch,
    /// the offline behavior).
    pub warm_start: bool,
    /// Partition the component space by pod and run shards on separate
    /// threads (`false` = one shard owning everything).
    pub shard_by_pod: bool,
    /// Split the spine tier into one shard per spine *plane* (requires
    /// `shard_by_pod`; `false` = the single-spine-shard plan, the
    /// baseline the `evidence_coalesce` bench measures against). Plane
    /// membership is derived from the topology
    /// ([`flock_topology::SpinePlanes`]); non-striped fabrics collapse
    /// to one plane, making this equivalent to the single spine shard.
    pub spine_planes: bool,
    /// Coalesce observations sharing the same `(path set, sent, bad)`
    /// evidence key into weighted super-flows inside each shard engine
    /// (exact; `false` = one engine flow per observation, the raw
    /// baseline the `evidence_coalesce` bench measures against).
    pub coalesce: bool,
    /// How far coalescing reaches: [`CoalesceMode::Exact`] (the default)
    /// merges equal keys only; [`CoalesceMode::Approx`] buckets
    /// near-identical `(sent, bad)` pairs into log-spaced bins so
    /// heavy-tailed traffic collapses into far fewer weighted
    /// super-flows. The assembler sorts for the configured mode and
    /// every shard engine (and the refinement pass) coalesces under it;
    /// each [`ShardOutcome`] reports the accumulated likelihood drift
    /// bound and the search's decision margin, and flags the verdict
    /// `proven_exact` when the margin clears `2 ×` the bound. Ignored
    /// when `coalesce` is off.
    pub coalesce_mode: CoalesceMode,
    /// Run the cross-plane refinement pass over the *full* spine
    /// evidence (the pre-view historical scope) instead of only the
    /// evidence touching the blaming planes. Default `false`: the
    /// narrow scope produces identical verdicts (property-tested
    /// against this flag) at a fraction of the steady multi-plane-fault
    /// cost; the flag exists as the comparison baseline.
    pub refine_full_spine: bool,
    /// Per-epoch inference deadline, measured from the start of
    /// [`StreamPipeline::run_flows`]. A shard search that crosses it
    /// stops cooperatively at the next outer greedy iteration and
    /// returns its partial hypothesis ([`ShardOutcome::timed_out`]);
    /// the epoch is then labeled [`EpochHealth::Degraded`] with
    /// [`DegradeReason::ShardDeadline`]. `None` (the default) never
    /// truncates.
    pub epoch_deadline: Option<Duration>,
    /// Fault-injection hook consulted by every shard (and the
    /// refinement pass) at the top of its epoch run — the seam the
    /// chaos harness uses to panic or stall inference threads without a
    /// test-only build. `None` (the default) injects nothing.
    pub chaos: Option<ChaosHook>,
    /// Overlap epochs: [`StreamPipeline::poll`] /
    /// [`StreamPipeline::drain`] submit each epoch's shard jobs to the
    /// persistent executor and *then* collect the previous epoch's
    /// verdict, so epoch `N + 1`'s assembly (arena/view/term-table
    /// extension, double-buffered against the in-flight arena copy) and
    /// even its per-shard inference overlap epoch `N`'s. Reports are
    /// emitted exactly one epoch behind submission;
    /// [`StreamPipeline::drain`] flushes
    /// the tail. Verdicts are bit-identical to the sequential mode
    /// (property-tested by `pipelined_identity`). Default `false`:
    /// every poll returns its own epoch's report.
    pub pipelined: bool,
    /// Worker threads in the shard executor. `0` (the default) sizes
    /// the pool to `min(available_parallelism, shards)`; values above
    /// the shard count are capped to it.
    pub workers: usize,
}

/// A fault the [`ChaosHook`] can inject into one shard's epoch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardChaos {
    /// Panic the shard's inference thread (contained by the pipeline's
    /// per-shard `catch_unwind` boundary; the shard's state is reset and
    /// the epoch degrades instead of the process dying).
    Panic,
    /// Stall the shard for the given duration before it searches
    /// (clamped to the epoch deadline when one is set, so a stall
    /// surfaces as a deadline truncation rather than an unbounded hang).
    Stall(Duration),
}

/// The boxed schedule closure behind a [`ChaosHook`].
type ChaosFn = dyn Fn(&str, u64) -> Option<ShardChaos> + Send + Sync;

/// Injectable fault decision, `(shard label, epoch index) → fault?`.
/// Newtype so [`StreamConfig`] keeps deriving `Debug` and `Clone`.
#[derive(Clone)]
pub struct ChaosHook(Arc<ChaosFn>);

impl ChaosHook {
    /// Wrap a fault schedule. The closure is consulted once per shard
    /// per epoch, concurrently from the shard threads.
    pub fn new(f: impl Fn(&str, u64) -> Option<ShardChaos> + Send + Sync + 'static) -> Self {
        ChaosHook(Arc::new(f))
    }

    /// Consult the schedule for one shard's epoch run.
    pub fn call(&self, shard_label: &str, epoch_index: u64) -> Option<ShardChaos> {
        (self.0)(shard_label, epoch_index)
    }
}

impl fmt::Debug for ChaosHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ChaosHook(..)")
    }
}

impl StreamConfig {
    /// The paper-shaped default: 30 s tumbling epochs, A2+P telemetry,
    /// per-packet analysis, warm start on, sharding off.
    pub fn paper_default() -> Self {
        StreamConfig {
            epoch: EpochConfig::tumbling(30_000),
            kinds: vec![InputKind::A2, InputKind::P],
            mode: AnalysisMode::PerPacket,
            params: HyperParams::default(),
            warm_start: true,
            shard_by_pod: false,
            spine_planes: true,
            coalesce: true,
            coalesce_mode: CoalesceMode::Exact,
            refine_full_spine: false,
            epoch_deadline: None,
            chaos: None,
            pipelined: false,
            workers: 0,
        }
    }
}

/// Why an epoch's verdict is degraded (see [`EpochHealth::Degraded`]).
/// Each variant names a fault the pipeline contained at its boundary
/// instead of letting it take down the process or silently skew the
/// verdict.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum DegradeReason {
    /// A shard's inference thread panicked; its state was reset and its
    /// evidence is missing from this epoch's verdict.
    ShardPanicked {
        /// Label of the panicked shard.
        shard: String,
    },
    /// A shard's search crossed the per-epoch deadline and returned a
    /// partial (non-locally-optimal) hypothesis.
    ShardDeadline {
        /// Label of the truncated shard.
        shard: String,
    },
    /// The cross-plane refinement pass panicked; the blaming planes'
    /// own verdicts stand un-refined (straddling path sets may be
    /// double-blamed this epoch).
    RefinementPanicked,
    /// The windowing layer dropped records as late (closed window or
    /// beyond the lateness horizon) since the previous report — evidence
    /// that never reached any shard.
    LateRecords {
        /// Records dropped since the previous report.
        count: u64,
    },
    /// Records that decoded into well-formed frames but carried
    /// impossible content (node or link ids outside the topology,
    /// retransmissions exceeding packets — the shape payload corruption
    /// takes on a checksum-less wire) were rejected before assembly
    /// instead of being allowed to panic indexing or skew likelihoods.
    RejectedRecords {
        /// Records rejected this epoch.
        count: u64,
    },
    /// A degradation signaled from outside the inference path (store
    /// append failure, stale agents, collector kill) via
    /// [`StreamPipeline::flag_degraded`].
    External {
        /// Operator-facing description of the external fault.
        what: String,
    },
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::ShardPanicked { shard } => write!(f, "shard-panicked:{shard}"),
            DegradeReason::ShardDeadline { shard } => write!(f, "shard-deadline:{shard}"),
            DegradeReason::RefinementPanicked => f.write_str("refinement-panicked"),
            DegradeReason::LateRecords { count } => write!(f, "late-records:{count}"),
            DegradeReason::RejectedRecords { count } => write!(f, "rejected-records:{count}"),
            DegradeReason::External { what } => write!(f, "external:{what}"),
        }
    }
}

/// The health contract attached to every [`EpochReport`]: `Healthy`
/// means every shard completed over all the evidence the collector
/// delivered; `Degraded` means the verdict is still well-formed but
/// some fault reduced or truncated the evidence behind it, and an
/// operator (or the store's alerting layer) should weigh it
/// accordingly.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum EpochHealth {
    /// Every shard completed in time over its full evidence slice.
    Healthy,
    /// The verdict is partial or evidence-lossy.
    Degraded {
        /// Every contained fault that contributed (never empty).
        reasons: Vec<DegradeReason>,
        /// Fraction of shard-relevant observation slots that reached a
        /// completed (non-panicked) shard search, in `[0, 1]`. Deadline
        /// truncation does not lower coverage — the evidence was seen;
        /// the search over it was cut short.
        evidence_coverage: f64,
    },
}

impl EpochHealth {
    /// Whether this epoch carries any degrade reason.
    pub fn is_degraded(&self) -> bool {
        matches!(self, EpochHealth::Degraded { .. })
    }

    /// The degrade reasons (empty for `Healthy`).
    pub fn reasons(&self) -> &[DegradeReason] {
        match self {
            EpochHealth::Healthy => &[],
            EpochHealth::Degraded { reasons, .. } => reasons,
        }
    }

    /// Evidence coverage (`1.0` for `Healthy`).
    pub fn evidence_coverage(&self) -> f64 {
        match self {
            EpochHealth::Healthy => 1.0,
            EpochHealth::Degraded {
                evidence_coverage, ..
            } => *evidence_coverage,
        }
    }
}

/// A shard whose inference thread panicked this epoch, caught at the
/// pipeline's per-shard isolation boundary. The shard contributes
/// nothing to the merged verdict; its persistent state was reset to a
/// valid initial state (fresh view, no engine) and it rebuilds cold on
/// the next epoch, re-seeded from its last good hypothesis.
#[derive(Debug, Clone, Serialize)]
pub struct ShardFailure {
    /// Label of the failed shard (`pod3`, `spine-p0`, `spine-refine`…).
    pub shard: String,
    /// The panic payload, stringified when it was a `&str`/`String`.
    pub panic_message: String,
}

/// Why one component was convicted: the evidence its shard engine's Δ
/// actually aggregated over, captured at verdict time so the question
/// "why was this link blamed in epoch E?" stays answerable after the
/// engines have moved on. Stored per verdict by `flock-store` and
/// surfaced through its `provenance(comp, epoch)` query.
#[derive(Debug, Clone, Serialize)]
pub struct Provenance {
    /// The convicted component.
    pub component: Component,
    /// Label of the shard whose engine convicted it (`pod1`,
    /// `spine-p0`, `spine-refine`, …) — after the merge, the shard
    /// whose score won blame ownership.
    pub shard: String,
    /// The conviction score (log-likelihood gain; the merge key).
    pub score: f64,
    /// Distinct super-flows whose likelihood terms involved the
    /// component in the convicting engine.
    pub super_flows: u32,
    /// Total aggregation weight behind those super-flows — raw merged
    /// observations implicating the component.
    pub raw_weight: f64,
    /// Global [`flock_telemetry::PathSetId`]s of the heaviest path sets
    /// carrying that evidence (heaviest first, capped at
    /// [`PROVENANCE_SETS_CAP`]).
    pub sets: Vec<u32>,
}

/// How many path-set ids a [`Provenance`] retains (heaviest first).
pub const PROVENANCE_SETS_CAP: usize = 8;

/// Per-shard outcome inside an [`EpochReport`].
#[derive(Debug, Clone, Serialize)]
pub struct ShardOutcome {
    /// Shard label (`pod3`, `spine`, `spine-p0`, `spine-refine`, `all`).
    /// Unique within a report.
    pub label: String,
    /// What the shard covered (refinement reports [`ShardKind::Spine`],
    /// since it re-searches the whole spine tier).
    pub kind: ShardKind,
    /// Components the shard blamed *and owns* — what the merge keeps,
    /// unless a cross-plane refinement pass superseded the plane shards
    /// this epoch (see [`EpochReport::refined`]).
    pub kept: usize,
    /// Super-flows the shard's engine built this epoch (distinct evidence
    /// keys when coalescing is on).
    pub flows: usize,
    /// Raw observations the shard accepted before coalescing;
    /// `raw_flows / flows` is the shard's coalesce ratio.
    pub raw_flows: usize,
    /// Whether the engine was warm-rebound (vs built from scratch).
    pub warm: bool,
    /// Hypotheses scanned by the shard's search.
    pub hypotheses_scanned: u64,
    /// Final normalized log-likelihood of the shard's hypothesis over the
    /// shard-relevant observations.
    pub log_likelihood: f64,
    /// Resident state sizes of the shard's engine — each entry scales
    /// with the shard's own evidence history, not the shared arena (the
    /// sparsity invariant of the per-shard view layer, asserted by the
    /// `state_sparsity` tests and reported by `bench-report`).
    pub state: EngineStateSizes,
    /// Wall-clock time this shard spent binding, rebinding, and
    /// searching this epoch (the per-shard engine-time metric).
    pub elapsed: Duration,
    /// Whether the shard's search was truncated by the per-epoch
    /// deadline ([`StreamConfig::epoch_deadline`]). A truncated verdict
    /// is well-formed (every move it made improved the posterior) but
    /// not a local optimum; the epoch degrades with
    /// [`DegradeReason::ShardDeadline`].
    pub timed_out: bool,
    /// Provenance for each kept component, in `kept` order (see
    /// [`Provenance`]).
    pub provenance: Vec<Provenance>,
    /// Kernel dispatch level the shard's engine ran its sweeps at
    /// (`Avx2` or `Portable`) — recorded per shard so a mixed-fleet
    /// reader can tell which path produced a verdict. Scalar and SIMD
    /// paths are bit-identical by construction (property-tested), so a
    /// difference here never implies a verdict difference.
    pub kernel: KernelDispatch,
    /// Worst-case log-likelihood drift the shard engine's approximate
    /// coalescing introduced this epoch (`Engine::drift_bound`); exactly
    /// `0.0` under [`CoalesceMode::Exact`] or whenever bucketing never
    /// merged distinct counts.
    pub drift_bound: f64,
    /// The search's decision margin (`BudgetedSearch::margin`): the
    /// narrowest gain gap across every selection and stop decision.
    pub margin: f64,
    /// The drift certificate: the shard's verdict is *provably* the
    /// exact-coalescing verdict — true when the search completed and
    /// either no drift was introduced or `margin > 2 · drift_bound`
    /// (every decision would survive perturbing all likelihoods by the
    /// drift bound). Trivially true in exact mode.
    pub proven_exact: bool,
}

/// Where an epoch's wall time went, split at the executor boundary.
///
/// `prepare` (assembly: arena/view-catch-up, interning, sorting,
/// touch signatures, term-ladder prefill) and `merge` (refinement +
/// blame-ownership merge + provenance) both run on the *caller's*
/// thread; the shard searches between them run on the executor. Under
/// [`StreamConfig::pipelined`], `prepare` of epoch `N + 1` overlaps the
/// shard searches of epoch `N`, so the steady-state cost per epoch is
/// `max(prepare + merge, slowest shard chain)` — the quantity
/// `bench-report`'s `pipeline` section models.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StageTimings {
    /// Assembly-stage wall time (caller thread, overlappable).
    pub prepare: Duration,
    /// Collect-stage wall time: refinement (when it ran) + merge.
    pub merge: Duration,
}

/// One epoch's merged verdict.
#[derive(Debug, Clone, Serialize)]
pub struct EpochReport {
    /// Window index.
    pub epoch_index: u64,
    /// Window start (ms, inclusive).
    pub start_ms: u64,
    /// Window end (ms, exclusive).
    pub end_ms: u64,
    /// Records the window received.
    pub records: usize,
    /// Aggregated observations after assembly.
    pub observations: usize,
    /// The merged localization verdict.
    pub result: LocalizationResult,
    /// Per-shard accounting.
    pub shards: Vec<ShardOutcome>,
    /// Cross-plane refinement accounting — present only on epochs where
    /// two or more spine-plane shards blamed components and the
    /// refinement pass re-searched the union of their hypotheses over
    /// the full spine evidence. When present, the refined picks replace
    /// the plane shards' in the merged verdict.
    pub refined: Option<ShardOutcome>,
    /// Provenance of each merged verdict, in `result.predicted` order:
    /// the convicting shard's evidence for the component (the shard
    /// whose score won blame ownership).
    pub provenance: Vec<Provenance>,
    /// The epoch's health verdict: `Healthy`, or `Degraded` with the
    /// contained faults and the evidence coverage behind the verdict.
    pub health: EpochHealth,
    /// Shards that panicked this epoch (isolated at the pipeline's
    /// `catch_unwind` boundary; absent from [`shards`](Self::shards)).
    pub failures: Vec<ShardFailure>,
    /// Caller-thread stage costs (see [`StageTimings`]).
    pub stages: StageTimings,
}

impl EpochReport {
    /// Outcomes of the spine-plane shards, in plane order.
    pub fn spine_planes(&self) -> impl Iterator<Item = &ShardOutcome> {
        self.shards
            .iter()
            .filter(|s| matches!(s.kind, ShardKind::SpinePlane(_)))
    }
}

/// Per-shard persistent inference state.
struct ShardState {
    engine: Option<Engine>,
    /// The shard's persistent arena view: the dense projection of the
    /// shared arena onto the evidence this shard has ever accepted. The
    /// engine's local ids are assigned by (and only valid against) this
    /// view.
    view: ArenaView,
    /// Previous epoch's hypothesis as *global* component ids (stable
    /// across engine rebuilds), translated into the engine's local space
    /// when seeding the warm search.
    prev: Vec<CompIdx>,
}

/// Immutable context shard jobs need every epoch, shared with the
/// executor's worker threads once at construction (jobs are `'static`,
/// so they cannot borrow from the pipeline).
struct TaskCtx {
    topo: Topology,
    cfg: StreamConfig,
    shards: Vec<Shard>,
}

/// One epoch's immutable inputs, shared by every shard job of that
/// epoch. Dropped (and its arena reclaimed) when the epoch is collected.
struct EpochCtx {
    obs: ObservationSet,
    /// Each observation's combined (set ∪ prefix) touch signature.
    touches: Vec<SetTouch>,
    /// Per shard: ascending indices of the observations it accepts —
    /// computed once on the assembly stage so shard binding is a
    /// replay, not a filter scan.
    accept: Vec<Vec<u32>>,
    /// Pre-computed likelihood-term ladders for every `(sent, bad, w)`
    /// key in the epoch (pipelined mode only): shard engines extend
    /// their term tables by memcpy instead of recomputing `llf` ladders
    /// on the critical path. Bit-identical to on-demand interning.
    prefill: Option<Arc<TermPrefill>>,
    deadline: Option<Instant>,
    epoch_index: u64,
}

/// One shard job's result, sent back over the epoch's channel.
struct TaskDone {
    shard: usize,
    run: ShardRun,
}

type ShardRun = Result<(Vec<(CompIdx, f64)>, ShardOutcome), ShardFailure>;

/// An epoch submitted to the executor and not yet collected.
struct InFlight {
    epoch_index: u64,
    start_ms: u64,
    end_ms: u64,
    records: usize,
    ctx: Arc<EpochCtx>,
    rx: mpsc::Receiver<TaskDone>,
    /// Degrade reasons sampled at submission (late-record delta,
    /// externally-flagged reasons) — they belong to this report.
    flags: Vec<DegradeReason>,
    /// Assembly-stage cost of this epoch.
    prepare: Duration,
    submitted: Instant,
    n_jobs: usize,
}

/// Rebuild [`MonitoredFlow`]s from wire records (paths are known only
/// where agents traced or INT-stamped them). Takes records by value so
/// the per-epoch hot path moves path vectors instead of cloning them.
pub fn reconstruct(records: impl IntoIterator<Item = FlowRecord>) -> Vec<MonitoredFlow> {
    records
        .into_iter()
        .map(|r| MonitoredFlow {
            key: r.key,
            stats: r.stats,
            class: r.class,
            true_path: r.path.unwrap_or_default(),
        })
        .collect()
}

/// The continuously-running localization pipeline over one topology.
pub struct StreamPipeline<'t> {
    topo: &'t Topology,
    router: Router<'t>,
    cfg: StreamConfig,
    manager: EpochManager,
    assembler: Assembler,
    plan: ShardPlan,
    /// The persistent work-stealing pool owning every shard's state.
    exec: ShardExecutor<ShardState>,
    /// Shared immutable inputs for shard jobs (cloned once at build).
    task_ctx: Arc<TaskCtx>,
    /// The submitted-but-uncollected epoch (pipelined mode).
    in_flight: Option<InFlight>,
    /// The second arena copy of the double buffer, parked between
    /// epochs when the assembler already holds a live arena.
    spare_arena: Option<PathArena>,
    /// Previous epoch's touch-signature and accept-list buffers,
    /// reclaimed at collect and refilled in place the next epoch.
    spare_touches: Vec<SetTouch>,
    spare_accept: Vec<Vec<u32>>,
    /// Interning growth of the most recent assembly — replayed onto the
    /// *other* arena copy to catch it up without re-assembly.
    last_delta: Option<ArenaDelta>,
    /// Arena watermark (paths, sets) before the most recent assembly.
    arena_wm: (usize, usize),
    touch: SetTouchIndex,
    /// Dense↔topology component translation for the merge (identical to
    /// every shard engine's space — `ComponentSpace::new` is a pure
    /// function of the topology).
    space: ComponentSpace,
    /// Union of the spine-plane shards' ownership (empty mask for plans
    /// without plane shards) — the blame scope of the full-spine
    /// refinement mode.
    spine_owned: Vec<bool>,
    /// Persistent engine of the cross-plane refinement pass, built
    /// lazily on the first epoch that triggers it.
    refine_engine: Option<Engine>,
    /// The refinement engine's persistent view: accumulates evidence
    /// from whichever planes have ever blamed (narrow mode) or the whole
    /// spine tier (full mode).
    refine_view: ArenaView,
    /// Scratch for the narrow refinement's blame scope (comps owned by
    /// the epoch's blaming planes).
    refine_owned: Vec<bool>,
    /// Late-record count already attributed to an emitted report's
    /// health; the delta above this degrades the next report.
    late_attributed: u64,
    /// Total wire-delivered records rejected by content sanitation
    /// (impossible node/link ids or counters) across the run.
    rejected_records: u64,
    /// Externally-flagged degrade reasons ([`Self::flag_degraded`])
    /// awaiting attachment to the next emitted report.
    pending_flags: Vec<DegradeReason>,
}

impl<'t> StreamPipeline<'t> {
    /// Build a pipeline over `topo`.
    pub fn new(topo: &'t Topology, cfg: StreamConfig) -> Self {
        let plan = if cfg.shard_by_pod && cfg.spine_planes {
            ShardPlan::by_pod(topo)
        } else if cfg.shard_by_pod {
            ShardPlan::by_pod_single_spine(topo)
        } else {
            ShardPlan::single(topo)
        };
        let states: Vec<ShardState> = plan
            .shards
            .iter()
            .map(|_| ShardState {
                engine: None,
                view: ArenaView::new(),
                prev: Vec::new(),
            })
            .collect();
        let exec = ShardExecutor::new(states, cfg.workers);
        let task_ctx = Arc::new(TaskCtx {
            topo: topo.clone(),
            cfg: cfg.clone(),
            shards: plan.shards.clone(),
        });
        let space = ComponentSpace::new(topo);
        let mut spine_owned = vec![false; space.n_comps()];
        for s in &plan.shards {
            if matches!(s.kind, ShardKind::SpinePlane(_)) {
                for (c, &owned) in s.owned.iter().enumerate() {
                    spine_owned[c] = spine_owned[c] || owned;
                }
            }
        }
        let mut assembler = Assembler::new();
        assembler.set_coalesce(if cfg.coalesce {
            cfg.coalesce_mode
        } else {
            CoalesceMode::Exact
        });
        StreamPipeline {
            topo,
            router: Router::new(topo),
            manager: EpochManager::new(cfg.epoch),
            cfg,
            assembler,
            plan,
            exec,
            task_ctx,
            in_flight: None,
            spare_arena: None,
            spare_touches: Vec::new(),
            spare_accept: Vec::new(),
            last_delta: None,
            arena_wm: (0, 0),
            touch: SetTouchIndex::new(),
            space,
            spine_owned,
            refine_engine: None,
            refine_view: ArenaView::new(),
            refine_owned: Vec::new(),
            late_attributed: 0,
            rejected_records: 0,
            pending_flags: Vec::new(),
        }
    }

    /// Flag a degradation observed outside the inference path (store
    /// append failure, stale-agent eviction, collector connection kill)
    /// so the verdict contract reflects it: the reason attaches to the
    /// next emitted report (the first epoch of the next
    /// [`poll`](Self::poll) / [`drain`](Self::drain) batch) and marks
    /// it `Degraded`.
    pub fn flag_degraded(&mut self, reason: DegradeReason) {
        self.pending_flags.push(reason);
    }

    /// The shard plan in use.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Records dropped as late by the windowing layer.
    pub fn late_records(&self) -> u64 {
        self.manager.late_records()
    }

    /// Feed drained collector records into the windowing layer.
    pub fn ingest(&mut self, recs: impl IntoIterator<Item = StampedRecord>) {
        self.manager.extend(recs);
    }

    /// Feed a pre-bucketed drain batch
    /// ([`Collector::drain_buckets`](flock_telemetry::Collector::drain_buckets))
    /// into the windowing layer. Buckets of wire-v2 records take the
    /// O(buckets) fast path ([`EpochManager::extend_bucket`]); v1
    /// records are assigned per record as with [`ingest`](Self::ingest).
    pub fn ingest_bucketed(&mut self, batch: DrainBatch) {
        for (seq, bucket) in batch.buckets {
            self.manager.extend_bucket(seq, bucket);
        }
        self.manager.extend(batch.unhinted);
    }

    /// Close every window ending at or before `watermark_ms` and localize
    /// each, in order. Under [`StreamConfig::pipelined`] each epoch is
    /// submitted before its predecessor is collected, so the returned
    /// reports trail submission by one epoch; [`drain`](Self::drain)
    /// (or [`flush_inflight`](Self::flush_inflight)) emits the tail.
    pub fn poll(&mut self, watermark_ms: u64) -> Vec<EpochReport> {
        let epochs = self.manager.close_ready(watermark_ms);
        epochs
            .into_iter()
            .filter_map(|e| self.run_epoch(e))
            .collect()
    }

    /// Close and localize everything still buffered (end of run),
    /// including the in-flight epoch when pipelining.
    pub fn drain(&mut self) -> Vec<EpochReport> {
        let epochs = self.manager.flush();
        let mut out: Vec<EpochReport> = epochs
            .into_iter()
            .filter_map(|e| self.run_epoch(e))
            .collect();
        out.extend(self.flush_inflight());
        out
    }

    /// Localize one closed epoch (sequential mode), or submit it and
    /// collect its predecessor (pipelined mode — `None` on the very
    /// first epoch, when nothing is in flight yet).
    fn run_epoch(&mut self, epoch: Epoch) -> Option<EpochReport> {
        let mut monitored = reconstruct(epoch.records.into_iter().map(|s| s.record));
        // The wire has no payload checksum: a corrupted-but-framed
        // message decodes into records with arbitrary content. Reject
        // anything the topology cannot account for *before* assembly,
        // where a garbage node id would panic an index lookup.
        let before = monitored.len();
        monitored.retain(|f| flow_is_sane(self.topo, f));
        let rejected = (before - monitored.len()) as u64;
        if rejected > 0 {
            self.rejected_records += rejected;
            self.pending_flags
                .push(DegradeReason::RejectedRecords { count: rejected });
        }
        if self.cfg.pipelined {
            self.submit_flows(epoch.index, epoch.start_ms, epoch.end_ms, &monitored)
        } else {
            Some(self.run_flows(epoch.index, epoch.start_ms, epoch.end_ms, &monitored))
        }
    }

    /// Total wire-delivered records rejected by content sanitation
    /// (impossible node/link ids or counters) since construction.
    pub fn rejected_records(&self) -> u64 {
        self.rejected_records
    }

    /// Localize one epoch's worth of already-reconstructed flows,
    /// synchronously: assemble, run every shard on the executor, and
    /// collect the merged verdict before returning. Public so tests and
    /// benches can drive the inference loop without sockets.
    ///
    /// # Panics
    /// Panics if an epoch is still in flight
    /// ([`submit_flows`](Self::submit_flows)); call
    /// [`flush_inflight`](Self::flush_inflight) first.
    pub fn run_flows(
        &mut self,
        epoch_index: u64,
        start_ms: u64,
        end_ms: u64,
        monitored: &[MonitoredFlow],
    ) -> EpochReport {
        assert!(
            self.in_flight.is_none(),
            "run_flows with an epoch in flight; call flush_inflight() first"
        );
        let inflight = self.submit_epoch(epoch_index, start_ms, end_ms, monitored);
        self.collect_inflight(inflight)
    }

    /// Submit one epoch's flows to the shard executor and return the
    /// *previous* epoch's report, if one was in flight — the pipelined
    /// counterpart of [`run_flows`](Self::run_flows). The new epoch is
    /// prepared and queued *before* the old one is collected, so its
    /// assembly — and, per shard, its inference (each shard's jobs run
    /// FIFO with no cross-shard barrier) — overlaps the in-flight
    /// epoch's searches. Verdicts are bit-identical to the sequential
    /// path. Returns `None` on the first submission.
    pub fn submit_flows(
        &mut self,
        epoch_index: u64,
        start_ms: u64,
        end_ms: u64,
        monitored: &[MonitoredFlow],
    ) -> Option<EpochReport> {
        let inflight = self.submit_epoch(epoch_index, start_ms, end_ms, monitored);
        let prev = self.in_flight.replace(inflight);
        prev.map(|f| self.collect_inflight(f))
    }

    /// Collect the in-flight epoch, if any (end of a pipelined run, or
    /// before a synchronous [`run_flows`](Self::run_flows) call).
    pub fn flush_inflight(&mut self) -> Option<EpochReport> {
        let f = self.in_flight.take()?;
        Some(self.collect_inflight(f))
    }

    /// The assembly stage: hand the assembler a caught-up arena copy
    /// (double buffering), assemble, derive touch signatures, per-shard
    /// accept lists and (pipelined) term-ladder prefill, then queue one
    /// job per shard on the executor.
    fn submit_epoch(
        &mut self,
        epoch_index: u64,
        start_ms: u64,
        end_ms: u64,
        monitored: &[MonitoredFlow],
    ) -> InFlight {
        let prep_started = Instant::now();
        let deadline = self.cfg.epoch_deadline.map(|d| prep_started + d);
        // Double-buffer handoff: when the previous epoch's observations
        // still hold the assembler's arena (pipelined overlap), give the
        // assembler the *other* copy — parked at the last collect, or
        // cloned from the in-flight arena on the first overlap — caught
        // up to the emitted watermark by delta replay.
        if self.assembler.arena_is_out() {
            let clone_in_flight = |f: &InFlight| f.ctx.obs.arena.clone();
            let twin = match self.spare_arena.take() {
                Some(mut t) => {
                    self.catch_up(&mut t);
                    if (t.path_count(), t.set_count()) == self.arena_wm {
                        t
                    } else {
                        // The parked copy missed more than one epoch of
                        // growth (mixed sequential/pipelined driving,
                        // where no delta was kept): re-clone instead of
                        // handing the assembler a stale arena.
                        self.in_flight
                            .as_ref()
                            .map(clone_in_flight)
                            .expect("arena out implies an epoch in flight")
                    }
                }
                None => self
                    .in_flight
                    .as_ref()
                    .map(clone_in_flight)
                    .expect("arena out implies an epoch in flight"),
            };
            self.assembler.recycle_arena(twin);
        }
        let obs = self.assembler.assemble(
            self.topo,
            &self.router,
            monitored,
            &self.cfg.kinds,
            self.cfg.mode,
        );
        // Record this assembly's interning growth so the other arena
        // copy can replay it instead of being re-cloned every epoch.
        if self.cfg.pipelined {
            self.last_delta = Some(obs.arena.delta_since(self.arena_wm.0, self.arena_wm.1));
        }
        self.arena_wm = (obs.arena.path_count(), obs.arena.set_count());
        self.touch.extend(self.topo, &obs);
        // Derive each observation's combined touch signature once and
        // answer every shard's relevance from it in the same pass; each
        // shard then binds by replaying its accept list instead of
        // re-filtering the epoch. The buffers are the previous epoch's,
        // reclaimed at collect — warm capacity, no per-epoch allocation.
        let n_shards = self.plan.shards.len();
        let mut touches = std::mem::take(&mut self.spare_touches);
        touches.clear();
        touches.reserve(obs.flows.len());
        let mut accept = std::mem::take(&mut self.spare_accept);
        accept.resize_with(n_shards, Vec::new);
        accept.iter_mut().for_each(Vec::clear);
        for (i, o) in obs.flows.iter().enumerate() {
            let (set_touch, prefix_touch) = self.touch.flow_touch(self.topo, o);
            let t = set_touch.union(prefix_touch);
            touches.push(t);
            for (si, shard) in self.plan.shards.iter().enumerate() {
                if shard.relevant_combined(t) {
                    accept[si].push(i as u32);
                }
            }
        }
        // Pre-compute every term ladder the shard engines will intern
        // this epoch, so the inference critical path extends its term
        // tables by memcpy instead of evaluating `llf` ladders.
        let prefill = self.cfg.pipelined.then(|| {
            let mut p = TermPrefill::new();
            for o in &obs.flows {
                let w = obs.arena.set(o.set).len() as u32;
                if w > 0 {
                    p.ensure(&self.cfg.params, o.sent, o.bad, w);
                }
            }
            Arc::new(p)
        });
        // Health flags belong to the epoch being submitted: sample the
        // late-record delta now. Nothing ingests between here and a
        // sequential-mode merge; in pipelined mode, later drops are the
        // next submission's news.
        let mut flags = Vec::new();
        let late_now = self.manager.late_records();
        if late_now > self.late_attributed {
            flags.push(DegradeReason::LateRecords {
                count: late_now - self.late_attributed,
            });
            self.late_attributed = late_now;
        }
        flags.append(&mut self.pending_flags);

        let records = monitored.len();
        let ctx = Arc::new(EpochCtx {
            obs,
            touches,
            accept,
            prefill,
            deadline,
            epoch_index,
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..n_shards {
            let tctx = Arc::clone(&self.task_ctx);
            let ectx = Arc::clone(&ctx);
            let tx = tx.clone();
            // Panics are caught *inside* the job — a panicking shard
            // degrades its own slice of the verdict instead of taking
            // the epoch with it. The failed shard's state resets to a
            // valid initial state: a fresh view (a half-bound view may
            // hold a partially extended epoch) and no engine; `prev` is
            // kept — global component ids survive the rebuild, so the
            // recovered shard re-seeds its warm search from its last
            // good hypothesis.
            self.exec.submit(i, move |state| {
                let run = catch_unwind(AssertUnwindSafe(|| run_shard(&tctx, i, state, &ectx)))
                    .map_err(|payload| {
                        state.engine = None;
                        state.view = ArenaView::new();
                        ShardFailure {
                            shard: tctx.shards[i].label.clone(),
                            panic_message: panic_message(payload.as_ref()),
                        }
                    });
                let _ = tx.send(TaskDone { shard: i, run });
            });
        }
        InFlight {
            epoch_index,
            start_ms,
            end_ms,
            records,
            ctx,
            rx,
            flags,
            prepare: prep_started.elapsed(),
            submitted: Instant::now(),
            n_jobs: n_shards,
        }
    }

    /// Replay the most recent assembly's interning growth onto the
    /// other arena copy, if it sits exactly at the pre-assembly
    /// watermark. A copy that already contains the growth (a fresh
    /// clone, or the arena the assembly itself extended) skips — the
    /// watermark guard makes the replay idempotent.
    fn catch_up(&self, arena: &mut PathArena) {
        if let Some(delta) = &self.last_delta {
            if delta.lineage() == arena.lineage()
                && delta.from_watermarks() == (arena.path_count(), arena.set_count())
            {
                arena
                    .apply_delta(delta)
                    .expect("lineage and watermark verified");
            }
        }
    }

    /// The collect stage: receive every shard verdict, run the
    /// cross-plane refinement when warranted, merge under blame
    /// ownership, and reclaim the epoch's arena copy for the double
    /// buffer.
    fn collect_inflight(&mut self, f: InFlight) -> EpochReport {
        let InFlight {
            epoch_index,
            start_ms,
            end_ms,
            records,
            ctx,
            rx,
            flags,
            prepare,
            submitted,
            n_jobs,
        } = f;
        let mut runs: Vec<Option<ShardRun>> = (0..n_jobs).map(|_| None).collect();
        for _ in 0..n_jobs {
            match rx.recv() {
                Ok(done) => runs[done.shard] = Some(done.run),
                // A sender dropped without sending: the job was
                // discarded at executor shutdown. Missing shards are
                // synthesized as failures below.
                Err(mpsc::RecvError) => break,
            }
        }
        let outcomes: Vec<ShardRun> = runs
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| {
                    Err(ShardFailure {
                        shard: self.plan.shards[i].label.clone(),
                        panic_message: "shard task lost (executor shutdown)".into(),
                    })
                })
            })
            .collect();
        let merge_started = Instant::now();

        // Cross-plane refinement: when two or more plane shards blame
        // spine components — each having seen only its plane-filtered
        // slice of the evidence — re-search the union of their
        // hypotheses over the evidence touching the blaming planes,
        // with removals, so blame duplicated across planes by straddling
        // path sets is dropped. Epochs where at most one plane blames
        // (the common case) skip this entirely, which is what lets plane
        // sharding scale the spine tier; the narrow evidence scope keeps
        // even the refining epochs O(blaming planes' evidence) instead
        // of full single-spine cost.
        let mut refined: Option<(Vec<(CompIdx, f64)>, ShardOutcome)> = None;
        let mut refinement_panic: Option<String> = None;
        let blaming: Vec<u16> = outcomes
            .iter()
            .zip(&self.plan.shards)
            .filter_map(|(run, s)| match (run, s.kind) {
                (Ok((kept, _)), ShardKind::SpinePlane(p)) if !kept.is_empty() => Some(p),
                _ => None,
            })
            .collect();
        if blaming.len() >= 2 {
            let mut seed: Vec<CompIdx> = outcomes
                .iter()
                .zip(&self.plan.shards)
                .filter(|(_, s)| matches!(s.kind, ShardKind::SpinePlane(_)))
                .flat_map(|(run, _)| {
                    run.iter()
                        .flat_map(|(kept, _)| kept.iter().map(|&(c, _)| c))
                })
                .collect();
            seed.sort_unstable();
            seed.dedup();
            // Same isolation boundary as the shards: a panicking
            // refinement pass resets its persistent engine and view and
            // lets the blaming planes' own verdicts stand un-refined.
            match catch_unwind(AssertUnwindSafe(|| {
                self.refine_spine(&ctx, &seed, &blaming)
            })) {
                Ok(r) => refined = Some(r),
                Err(payload) => {
                    self.refine_engine = None;
                    self.refine_view = ArenaView::new();
                    refinement_panic = Some(panic_message(payload.as_ref()));
                }
            }
        }
        let refine_ran = refined.is_some();

        // Merge under blame ownership: max score wins on overlap; plane
        // shards are superseded by the refinement pass when it ran. The
        // winning shard's provenance travels with its score.
        let mut merged: HashMap<Component, Provenance> = HashMap::new();
        let mut merge_in = |kept: Vec<(CompIdx, f64)>, provs: &[Provenance]| {
            for ((_, score), prov) in kept.into_iter().zip(provs) {
                match merged.entry(prov.component) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        if score > e.get().score {
                            e.insert(prov.clone());
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(prov.clone());
                    }
                }
            }
        };
        // Evidence coverage: the fraction of shard-relevant observation
        // slots whose shard search completed. A panicked shard zeroes
        // its slots; a deadline-truncated shard saw its evidence (the
        // search over it was cut short), so it still counts. The accept
        // lists computed at assembly are exactly the relevant slots.
        let mut relevant_slots = 0u64;
        let mut covered_slots = 0u64;
        for (accepted, run) in ctx.accept.iter().zip(&outcomes) {
            let slots = accepted.len() as u64;
            relevant_slots += slots;
            if run.is_ok() {
                covered_slots += slots;
            }
        }
        let evidence_coverage = if relevant_slots == 0 {
            1.0
        } else {
            covered_slots as f64 / relevant_slots as f64
        };

        let mut reasons: Vec<DegradeReason> = Vec::new();
        let mut failures: Vec<ShardFailure> = Vec::new();
        let mut scanned = 0u64;
        let mut log_likelihood = 0.0f64;
        let mut shard_outcomes = Vec::with_capacity(outcomes.len());
        for (run, shard) in outcomes.into_iter().zip(&self.plan.shards) {
            let (kept, outcome) = match run {
                Ok(r) => r,
                Err(failure) => {
                    reasons.push(DegradeReason::ShardPanicked {
                        shard: failure.shard.clone(),
                    });
                    failures.push(failure);
                    continue;
                }
            };
            scanned += outcome.hypotheses_scanned;
            // Sum of shard-local normalized LLs. With one shard this is
            // the engine's LL exactly; with several it sums over the
            // shard-filtered flow subsets (flows relevant to multiple
            // shards contribute once per shard), so it is comparable
            // across epochs of the same plan, not across plans. The
            // refinement pass is excluded for the same reason: it runs
            // only on some epochs.
            log_likelihood += outcome.log_likelihood;
            if outcome.timed_out {
                reasons.push(DegradeReason::ShardDeadline {
                    shard: outcome.label.clone(),
                });
            }
            if !(refine_ran && matches!(shard.kind, ShardKind::SpinePlane(_))) {
                merge_in(kept, &outcome.provenance);
            }
            shard_outcomes.push(outcome);
        }
        let refined_outcome = refined.map(|(kept, outcome)| {
            scanned += outcome.hypotheses_scanned;
            if outcome.timed_out {
                reasons.push(DegradeReason::ShardDeadline {
                    shard: outcome.label.clone(),
                });
            }
            merge_in(kept, &outcome.provenance);
            outcome
        });
        if let Some(panic_message) = refinement_panic {
            reasons.push(DegradeReason::RefinementPanicked);
            failures.push(ShardFailure {
                shard: "spine-refine".into(),
                panic_message,
            });
        }
        // Late-record and externally-flagged reasons were sampled when
        // this epoch was submitted (they are its news, not the next
        // epoch's).
        reasons.extend(flags);
        let health = if reasons.is_empty() {
            EpochHealth::Healthy
        } else {
            EpochHealth::Degraded {
                reasons,
                evidence_coverage,
            }
        };
        let mut provenance: Vec<Provenance> = merged.into_values().collect();
        provenance.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.component.cmp(&b.component))
        });

        let observations = ctx.obs.flows.len();
        // Reclaim the epoch's arena copy: every shard job has sent its
        // result, so the workers' `Arc` clones are dropped (or about to
        // be — the send precedes the drop by a few instructions).
        let mut ctx = ctx;
        let ectx = loop {
            match Arc::try_unwrap(ctx) {
                Ok(e) => break e,
                Err(shared) => {
                    ctx = shared;
                    std::thread::yield_now();
                }
            }
        };
        let mut arena = ectx.obs.arena;
        // The touch and accept buffers go back too: the next epoch
        // refills them in place instead of re-allocating ~half a
        // megabyte on the assembly stage's critical path.
        self.spare_touches = ectx.touches;
        self.spare_accept = ectx.accept;
        self.catch_up(&mut arena);
        if self.assembler.arena_is_out() {
            // Pipelined: the next epoch's observations hold the other
            // copy; this one, caught up, becomes the assembler's.
            self.assembler.recycle_arena(arena);
        } else {
            // Sequential tail (flush): the assembler is already live;
            // park this copy for the next overlap.
            self.spare_arena = Some(arena);
        }
        let stages = StageTimings {
            prepare,
            merge: merge_started.elapsed(),
        };

        EpochReport {
            epoch_index,
            start_ms,
            end_ms,
            records,
            observations,
            result: LocalizationResult {
                scores: provenance.iter().map(|p| p.score).collect(),
                predicted: provenance.iter().map(|p| p.component).collect(),
                log_likelihood,
                hypotheses_scanned: scanned,
                iterations: shard_outcomes.len() as u64,
                runtime: prepare + submitted.elapsed(),
            },
            shards: shard_outcomes,
            refined: refined_outcome,
            provenance,
            health,
            failures,
            stages,
        }
    }

    /// The cross-plane refinement pass: warm-rebind (or build) the
    /// persistent refinement engine over the evidence touching the
    /// epoch's blaming planes (or the whole spine tier under
    /// [`StreamConfig::refine_full_spine`]) and re-search from the union
    /// of the blaming planes' hypotheses (`seed`, global component ids).
    ///
    /// Blame scope follows the evidence scope: narrow mode keeps only
    /// components owned by the blaming planes, full mode keeps the whole
    /// spine tier. Verdict identity between the two scopes — and against
    /// the single-spine plan — is property-tested in `plane_sharding.rs`.
    fn refine_spine(
        &mut self,
        ctx: &EpochCtx,
        seed: &[CompIdx],
        blaming: &[u16],
    ) -> (Vec<(CompIdx, f64)>, ShardOutcome) {
        let started = Instant::now();
        let topo = self.topo;
        let obs = &ctx.obs;
        let epoch_index = ctx.epoch_index;
        let deadline = ctx.deadline;
        if let Some(chaos) = &self.cfg.chaos {
            match chaos.call("spine-refine", epoch_index) {
                Some(ShardChaos::Panic) => {
                    panic!("chaos: injected panic in refinement pass (epoch {epoch_index})")
                }
                Some(ShardChaos::Stall(d)) => chaos_stall(d, deadline),
                None => {}
            }
        }
        let full = self.cfg.refine_full_spine;
        let blame_mask: u64 = blaming.iter().fold(0u64, |m, &p| m | 1u64 << (p % 64));
        {
            let touches: &[SetTouch] = &ctx.touches;
            self.refine_view
                .bind_epoch(obs, |i, _| {
                    let t = touches[i];
                    if full {
                        t.spine
                    } else {
                        t.planes & blame_mask != 0
                    }
                })
                .expect("pipeline assembler keeps one arena lineage");
        }
        let warm = self.cfg.warm_start && self.refine_engine.is_some();
        let opts = EngineOptions {
            coalesce: self.cfg.coalesce,
            mode: self.cfg.coalesce_mode,
            ..Default::default()
        };
        // Prefilled term ladders (pipelined mode): rebinding interns
        // this epoch's terms, so install the prefill first.
        if let Some(engine) = self.refine_engine.as_mut() {
            engine.set_term_prefill(ctx.prefill.clone());
        }
        match &mut self.refine_engine {
            Some(engine) if self.cfg.warm_start => engine
                .try_rebind_view(topo, obs, &self.refine_view)
                .expect("refinement view is the engine's own"),
            slot => {
                *slot = Some(Engine::with_view(
                    topo,
                    obs,
                    self.cfg.params,
                    opts,
                    &self.refine_view,
                ))
            }
        }
        let engine = self.refine_engine.as_mut().expect("engine just installed");
        // Blame scope: comps owned by the blaming planes (narrow) or the
        // whole spine tier (full).
        self.refine_owned.clear();
        self.refine_owned.resize(self.space.n_comps(), false);
        if full {
            self.refine_owned.copy_from_slice(&self.spine_owned);
        } else {
            for s in &self.plan.shards {
                if let ShardKind::SpinePlane(p) = s.kind {
                    if blaming.contains(&p) {
                        for (c, &o) in s.owned.iter().enumerate() {
                            self.refine_owned[c] = self.refine_owned[c] || o;
                        }
                    }
                }
            }
        }
        let greedy = FlockGreedy::new(self.cfg.params);
        // Seed with the blaming planes' picks, translated into the
        // refinement engine's local space. A seed component always has
        // evidence here: the flows that implicated it in its plane's
        // engine touch that (blaming) plane, so the refinement filter
        // accepted them.
        let seed_local: Vec<CompIdx> = seed.iter().filter_map(|&g| engine.local_comp(g)).collect();
        let search = greedy.search_warm_deadline(engine, &seed_local, deadline);
        // Drop the epoch's prefill (it is per-epoch data; the term
        // table keeps the interned ladders).
        engine.set_term_prefill(None);
        let (picked, scanned) = (search.picked, search.scanned);
        let kept: Vec<(CompIdx, f64)> = picked
            .iter()
            .filter_map(|&(c, score)| {
                let g = engine.global_comp(c);
                self.refine_owned[g as usize].then_some((g, score))
            })
            .collect();
        let provenance = collect_provenance(engine, &self.refine_view, "spine-refine", &kept);
        let drift_bound = engine.drift_bound();
        let proven_exact =
            !search.timed_out && (drift_bound == 0.0 || search.margin > 2.0 * drift_bound);
        let outcome = ShardOutcome {
            label: "spine-refine".into(),
            kind: ShardKind::Spine,
            kept: kept.len(),
            flows: engine.n_flows(),
            raw_flows: engine.n_observations(),
            warm,
            hypotheses_scanned: scanned,
            log_likelihood: engine.log_likelihood(),
            state: engine.state_sizes(),
            elapsed: started.elapsed(),
            timed_out: search.timed_out,
            provenance,
            kernel: engine.kernel_dispatch(),
            drift_bound,
            margin: search.margin,
            proven_exact,
        };
        (kept, outcome)
    }
}

/// Localize one epoch on one shard: bind the shard's persistent view to
/// the epoch's accepted observations (the accept list computed on the
/// assembly stage), rebind or build the engine over it, search warm
/// from the previous verdict, and return the owned predictions as
/// *global* dense component indices (the caller's [`ComponentSpace`]
/// translates to topology components, and the cross-plane refinement
/// seeds from them). Runs on an executor worker thread.
fn run_shard(
    tctx: &TaskCtx,
    idx: usize,
    state: &mut ShardState,
    ectx: &EpochCtx,
) -> (Vec<(CompIdx, f64)>, ShardOutcome) {
    let started = Instant::now();
    let topo = &tctx.topo;
    let cfg = &tctx.cfg;
    let shard = &tctx.shards[idx];
    let obs = &ectx.obs;
    let epoch_index = ectx.epoch_index;
    let deadline = ectx.deadline;
    if let Some(chaos) = &cfg.chaos {
        match chaos.call(&shard.label, epoch_index) {
            Some(ShardChaos::Panic) => panic!(
                "chaos: injected panic in shard `{}` (epoch {epoch_index})",
                shard.label
            ),
            Some(ShardChaos::Stall(d)) => chaos_stall(d, deadline),
            None => {}
        }
    }
    state
        .view
        .bind_epoch_indices(obs, &ectx.accept[idx])
        .expect("pipeline assembler keeps one arena lineage");

    let warm = cfg.warm_start && state.engine.is_some();
    let opts = EngineOptions {
        coalesce: cfg.coalesce,
        mode: cfg.coalesce_mode,
        ..Default::default()
    };
    // Prefilled term ladders (pipelined mode): rebinding interns this
    // epoch's terms, so install the prefill first. Cold builds below
    // can't benefit — the engine doesn't exist yet.
    if let Some(engine) = state.engine.as_mut() {
        engine.set_term_prefill(ectx.prefill.clone());
    }
    match &mut state.engine {
        Some(engine) if cfg.warm_start => engine
            .try_rebind_view(topo, obs, &state.view)
            .expect("shard view is the engine's own"),
        slot => *slot = Some(Engine::with_view(topo, obs, cfg.params, opts, &state.view)),
    }
    let engine = state.engine.as_mut().expect("engine just installed");

    let greedy = FlockGreedy::new(cfg.params);
    // The warm seed persists as global ids (stable across cold rebuilds);
    // the engine's local ids are also stable, but global ids are what the
    // merge and refinement layers speak.
    let seed: Vec<CompIdx> = if cfg.warm_start {
        state
            .prev
            .iter()
            .filter_map(|&g| engine.local_comp(g))
            .collect()
    } else {
        Vec::new()
    };
    let search = greedy.search_warm_deadline(engine, &seed, deadline);
    // Drop the epoch's prefill (per-epoch data; the term table keeps
    // the interned ladders).
    engine.set_term_prefill(None);
    let (picked, scanned) = (search.picked, search.scanned);
    // A deadline-truncated hypothesis still seeds the next epoch: every
    // pick in it improved the posterior, and the warm search removes
    // seeds that stop paying.
    state.prev = picked.iter().map(|&(c, _)| engine.global_comp(c)).collect();

    let kept: Vec<(CompIdx, f64)> = picked
        .iter()
        .filter_map(|&(c, score)| {
            let g = engine.global_comp(c);
            shard.owns(g).then_some((g, score))
        })
        .collect();
    let provenance = collect_provenance(engine, &state.view, &shard.label, &kept);
    let drift_bound = engine.drift_bound();
    let proven_exact =
        !search.timed_out && (drift_bound == 0.0 || search.margin > 2.0 * drift_bound);
    let outcome = ShardOutcome {
        label: shard.label.clone(),
        kind: shard.kind,
        kept: kept.len(),
        flows: engine.n_flows(),
        raw_flows: engine.n_observations(),
        warm,
        hypotheses_scanned: scanned,
        log_likelihood: engine.log_likelihood(),
        state: engine.state_sizes(),
        elapsed: started.elapsed(),
        timed_out: search.timed_out,
        provenance,
        kernel: engine.kernel_dispatch(),
        drift_bound,
        margin: search.margin,
        proven_exact,
    };
    (kept, outcome)
}

/// Stringify a caught panic payload (panics raised by `panic!` carry a
/// `&str` or `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Sleep for an injected stall, clamped to the epoch deadline when one
/// is set — a stalled shard then surfaces as a deadline truncation (the
/// degraded-mode contract) instead of holding the epoch hostage for the
/// stall's full length.
fn chaos_stall(stall: Duration, deadline: Option<Instant>) {
    let now = Instant::now();
    let mut until = now + stall;
    if let Some(dl) = deadline {
        until = until.min(dl);
    }
    if let Some(left) = until.checked_duration_since(now) {
        if !left.is_zero() {
            std::thread::sleep(left);
        }
    }
}

/// Whether a wire-reconstructed flow is accountable to the topology.
/// The wire format has no payload checksum, so a corrupted-but-framed
/// message decodes into records with arbitrary content; anything that
/// would panic an assembly index lookup (node or link ids outside the
/// topology, a passive endpoint that is not a host) or break the
/// likelihood model (more retransmissions than packets) is rejected
/// here, counted, and flagged on the epoch's health.
fn flow_is_sane(topo: &Topology, f: &MonitoredFlow) -> bool {
    let node_ok = |n: NodeId| (n.0 as usize) < topo.node_count();
    if !node_ok(f.key.src) || !node_ok(f.key.dst) {
        return false;
    }
    if f.stats.retransmissions > f.stats.packets {
        return false;
    }
    if f.true_path
        .iter()
        .any(|l| (l.0 as usize) >= topo.link_count())
    {
        return false;
    }
    match f.class {
        // Passive flows without a traced path are resolved via the
        // src/dst hosts' leaves, so both endpoints must be hosts.
        TrafficClass::Passive => {
            topo.node(f.key.src).role == NodeRole::Host
                && topo.node(f.key.dst).role == NodeRole::Host
        }
        // Probes contribute only through their recorded path; the
        // id-range checks above are all assembly relies on.
        TrafficClass::Probe => true,
    }
}

/// Capture [`Provenance`] for each kept component (global ids, in `kept`
/// order) from the engine that convicted them, translating the
/// convicting evidence's view-local set ids to global
/// [`flock_telemetry::PathSetId`]s.
fn collect_provenance(
    engine: &Engine,
    view: &ArenaView,
    shard_label: &str,
    kept: &[(CompIdx, f64)],
) -> Vec<Provenance> {
    kept.iter()
        .map(|&(g, score)| {
            let c = engine
                .local_comp(g)
                .expect("kept components come from this engine");
            let ev = engine.convicting_evidence(c);
            Provenance {
                component: engine.component(c),
                shard: shard_label.to_string(),
                score,
                super_flows: ev.super_flows as u32,
                raw_weight: ev.weight,
                sets: ev
                    .sets
                    .iter()
                    .take(PROVENANCE_SETS_CAP)
                    .map(|&(ls, _)| view.global_set(ls).0)
                    .collect(),
            }
        })
        .collect()
}
