//! The online localization pipeline: epochs in, per-epoch verdicts out.
//!
//! [`StreamPipeline`] owns the continuously-running state of §5.1's
//! deployment loop between collector and operator:
//!
//! 1. drained [`StampedRecord`]s are windowed by an
//!    [`EpochManager`](crate::epoch::EpochManager) — wire-v2 input
//!    arrives pre-bucketed by the collector reactor and is handed over
//!    bucket-at-a-time ([`StreamPipeline::ingest_bucketed`]), skipping
//!    per-record window assignment;
//! 2. each closed epoch's records are reconstructed into
//!    [`MonitoredFlow`]s and assembled into an [`ObservationSet`] against
//!    a *persistent* [`Assembler`] arena (append-only interning), emitted
//!    sorted by the `(path set, sent, bad)` evidence key so each shard
//!    engine coalesces equal-key runs into weighted super-flows — the
//!    spine shard, which sees nearly all inter-pod traffic, drops from
//!    O(inter-pod flows) to O(distinct evidence keys) per epoch;
//! 3. one engine per shard localizes the epoch, **warm-started** from the
//!    shard's previous verdict: the engine is
//!    [rebound](flock_core::Engine::rebind_filtered) instead of rebuilt
//!    (reusing all arena-derived structure) and the greedy search is
//!    seeded with the previous hypothesis, with removals enabled so heals
//!    are detected ([`FlockGreedy::search_warm`]);
//! 4. shard verdicts are merged under blame ownership into one
//!    [`LocalizationResult`] per epoch.

use crate::epoch::{Epoch, EpochConfig, EpochManager};
use crate::shard::{SetTouchIndex, Shard, ShardPlan};
use flock_core::{CompIdx, Engine, EngineOptions, FlockGreedy, HyperParams, LocalizationResult};
use flock_telemetry::{
    AnalysisMode, Assembler, DrainBatch, FlowRecord, InputKind, MonitoredFlow, ObservationSet,
    StampedRecord,
};
use flock_topology::{Component, Router, Topology};
use std::collections::HashMap;
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Epoch windowing.
    pub epoch: EpochConfig,
    /// Telemetry kinds assembled per epoch (§6.2 selection rules).
    pub kinds: Vec<InputKind>,
    /// Metric analysis mode.
    pub mode: AnalysisMode,
    /// Inference hyperparameters.
    pub params: HyperParams,
    /// Warm-start inference from the previous epoch's hypothesis
    /// (`false` = rebuild engines and search from scratch every epoch,
    /// the offline behavior).
    pub warm_start: bool,
    /// Partition the component space by pod and run shards on separate
    /// threads (`false` = one shard owning everything).
    pub shard_by_pod: bool,
    /// Coalesce observations sharing the same `(path set, sent, bad)`
    /// evidence key into weighted super-flows inside each shard engine
    /// (exact; `false` = one engine flow per observation, the raw
    /// baseline the `evidence_coalesce` bench measures against).
    pub coalesce: bool,
}

impl StreamConfig {
    /// The paper-shaped default: 30 s tumbling epochs, A2+P telemetry,
    /// per-packet analysis, warm start on, sharding off.
    pub fn paper_default() -> Self {
        StreamConfig {
            epoch: EpochConfig::tumbling(30_000),
            kinds: vec![InputKind::A2, InputKind::P],
            mode: AnalysisMode::PerPacket,
            params: HyperParams::default(),
            warm_start: true,
            shard_by_pod: false,
            coalesce: true,
        }
    }
}

/// Per-shard outcome inside an [`EpochReport`].
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard label (`pod3`, `spine`, `all`).
    pub label: String,
    /// Components the shard blamed *and owns* (what the merge kept).
    pub kept: usize,
    /// Super-flows the shard's engine built this epoch (distinct evidence
    /// keys when coalescing is on).
    pub flows: usize,
    /// Raw observations the shard accepted before coalescing;
    /// `raw_flows / flows` is the shard's coalesce ratio.
    pub raw_flows: usize,
    /// Whether the engine was warm-rebound (vs built from scratch).
    pub warm: bool,
    /// Hypotheses scanned by the shard's search.
    pub hypotheses_scanned: u64,
    /// Final normalized log-likelihood of the shard's hypothesis over the
    /// shard-relevant observations.
    pub log_likelihood: f64,
}

/// One epoch's merged verdict.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Window index.
    pub epoch_index: u64,
    /// Window start (ms, inclusive).
    pub start_ms: u64,
    /// Window end (ms, exclusive).
    pub end_ms: u64,
    /// Records the window received.
    pub records: usize,
    /// Aggregated observations after assembly.
    pub observations: usize,
    /// The merged localization verdict.
    pub result: LocalizationResult,
    /// Per-shard accounting.
    pub shards: Vec<ShardOutcome>,
}

/// Per-shard persistent inference state.
struct ShardState {
    engine: Option<Engine>,
    /// Previous epoch's (shard-local) hypothesis, the warm seed.
    prev: Vec<CompIdx>,
}

/// Rebuild [`MonitoredFlow`]s from wire records (paths are known only
/// where agents traced or INT-stamped them). Takes records by value so
/// the per-epoch hot path moves path vectors instead of cloning them.
pub fn reconstruct(records: impl IntoIterator<Item = FlowRecord>) -> Vec<MonitoredFlow> {
    records
        .into_iter()
        .map(|r| MonitoredFlow {
            key: r.key,
            stats: r.stats,
            class: r.class,
            true_path: r.path.unwrap_or_default(),
        })
        .collect()
}

/// The continuously-running localization pipeline over one topology.
pub struct StreamPipeline<'t> {
    topo: &'t Topology,
    router: Router<'t>,
    cfg: StreamConfig,
    manager: EpochManager,
    assembler: Assembler,
    plan: ShardPlan,
    shards: Vec<ShardState>,
    touch: SetTouchIndex,
}

impl<'t> StreamPipeline<'t> {
    /// Build a pipeline over `topo`.
    pub fn new(topo: &'t Topology, cfg: StreamConfig) -> Self {
        let plan = if cfg.shard_by_pod {
            ShardPlan::by_pod(topo)
        } else {
            ShardPlan::single(topo)
        };
        let shards = plan
            .shards
            .iter()
            .map(|_| ShardState {
                engine: None,
                prev: Vec::new(),
            })
            .collect();
        StreamPipeline {
            topo,
            router: Router::new(topo),
            manager: EpochManager::new(cfg.epoch),
            cfg,
            assembler: Assembler::new(),
            plan,
            shards,
            touch: SetTouchIndex::new(),
        }
    }

    /// The shard plan in use.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Records dropped as late by the windowing layer.
    pub fn late_records(&self) -> u64 {
        self.manager.late_records()
    }

    /// Feed drained collector records into the windowing layer.
    pub fn ingest(&mut self, recs: impl IntoIterator<Item = StampedRecord>) {
        self.manager.extend(recs);
    }

    /// Feed a pre-bucketed drain batch
    /// ([`Collector::drain_buckets`](flock_telemetry::Collector::drain_buckets))
    /// into the windowing layer. Buckets of wire-v2 records take the
    /// O(buckets) fast path ([`EpochManager::extend_bucket`]); v1
    /// records are assigned per record as with [`ingest`](Self::ingest).
    pub fn ingest_bucketed(&mut self, batch: DrainBatch) {
        for (seq, bucket) in batch.buckets {
            self.manager.extend_bucket(seq, bucket);
        }
        self.manager.extend(batch.unhinted);
    }

    /// Close every window ending at or before `watermark_ms` and localize
    /// each, in order.
    pub fn poll(&mut self, watermark_ms: u64) -> Vec<EpochReport> {
        let epochs = self.manager.close_ready(watermark_ms);
        epochs.into_iter().map(|e| self.run_epoch(e)).collect()
    }

    /// Close and localize everything still buffered (end of run).
    pub fn drain(&mut self) -> Vec<EpochReport> {
        let epochs = self.manager.flush();
        epochs.into_iter().map(|e| self.run_epoch(e)).collect()
    }

    /// Localize one closed epoch.
    fn run_epoch(&mut self, epoch: Epoch) -> EpochReport {
        let monitored = reconstruct(epoch.records.into_iter().map(|s| s.record));
        self.run_flows(epoch.index, epoch.start_ms, epoch.end_ms, &monitored)
    }

    /// Localize one epoch's worth of already-reconstructed flows. Public
    /// so tests and benches can drive the inference loop without sockets.
    pub fn run_flows(
        &mut self,
        epoch_index: u64,
        start_ms: u64,
        end_ms: u64,
        monitored: &[MonitoredFlow],
    ) -> EpochReport {
        let started = Instant::now();
        let obs = self.assembler.assemble(
            self.topo,
            &self.router,
            monitored,
            &self.cfg.kinds,
            self.cfg.mode,
        );
        self.touch.extend(self.topo, &obs);

        // Run every shard, one thread each (shard counts are small: pods
        // + spine). Each thread owns its shard's state mutably; shared
        // inputs are borrowed immutably.
        let topo = self.topo;
        let cfg = &self.cfg;
        let touch = &self.touch;
        let obs_ref = &obs;
        let outcomes: Vec<(Vec<(Component, f64)>, ShardOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .plan
                .shards
                .iter()
                .zip(self.shards.iter_mut())
                .map(|(shard, state)| {
                    scope.spawn(move || run_shard(topo, cfg, shard, state, obs_ref, touch))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard panicked"))
                .collect()
        });

        // Merge under blame ownership: max score wins on overlap.
        let mut merged: HashMap<Component, f64> = HashMap::new();
        let mut scanned = 0u64;
        let mut log_likelihood = 0.0f64;
        let mut shard_outcomes = Vec::with_capacity(outcomes.len());
        for (kept, outcome) in outcomes {
            scanned += outcome.hypotheses_scanned;
            // Sum of shard-local normalized LLs. With one shard this is
            // the engine's LL exactly; with several it sums over the
            // shard-filtered flow subsets (flows relevant to multiple
            // shards contribute once per shard), so it is comparable
            // across epochs of the same plan, not across plans.
            log_likelihood += outcome.log_likelihood;
            for (comp, score) in kept {
                let e = merged.entry(comp).or_insert(f64::NEG_INFINITY);
                if score > *e {
                    *e = score;
                }
            }
            shard_outcomes.push(outcome);
        }
        let mut predicted: Vec<(Component, f64)> = merged.into_iter().collect();
        predicted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

        let observations = obs.flows.len();
        self.assembler.recycle(obs);

        EpochReport {
            epoch_index,
            start_ms,
            end_ms,
            records: monitored.len(),
            observations,
            result: LocalizationResult {
                scores: predicted.iter().map(|(_, s)| *s).collect(),
                predicted: predicted.into_iter().map(|(c, _)| c).collect(),
                log_likelihood,
                hypotheses_scanned: scanned,
                iterations: shard_outcomes.len() as u64,
                runtime: started.elapsed(),
            },
            shards: shard_outcomes,
        }
    }
}

/// Localize one epoch on one shard: rebind or build the engine over the
/// shard-relevant observations, search warm from the previous verdict,
/// and return the owned predictions.
fn run_shard(
    topo: &Topology,
    cfg: &StreamConfig,
    shard: &Shard,
    state: &mut ShardState,
    obs: &ObservationSet,
    touch: &SetTouchIndex,
) -> (Vec<(Component, f64)>, ShardOutcome) {
    let filter = |o: &flock_telemetry::FlowObs| {
        let (set_touch, prefix_touch) = touch.flow_touch(topo, o);
        shard.relevant(set_touch, prefix_touch)
    };

    let warm = cfg.warm_start && state.engine.is_some();
    let opts = EngineOptions {
        coalesce: cfg.coalesce,
    };
    match &mut state.engine {
        Some(engine) if cfg.warm_start => engine.rebind_filtered(topo, obs, Some(&filter)),
        slot => {
            *slot = Some(Engine::with_options(
                topo,
                obs,
                cfg.params,
                Some(&filter),
                opts,
            ))
        }
    }
    let engine = state.engine.as_mut().expect("engine just installed");

    let greedy = FlockGreedy::new(cfg.params);
    let seed = if cfg.warm_start {
        std::mem::take(&mut state.prev)
    } else {
        Vec::new()
    };
    let (picked, scanned) = greedy.search_warm(engine, &seed);
    state.prev = picked.iter().map(|(c, _)| *c).collect();

    let kept: Vec<(Component, f64)> = picked
        .iter()
        .filter(|(c, _)| shard.owns(*c))
        .map(|(c, score)| (engine.space().component(*c), *score))
        .collect();
    let outcome = ShardOutcome {
        label: shard.label.clone(),
        kept: kept.len(),
        flows: engine.n_flows(),
        raw_flows: engine.n_observations(),
        warm,
        hypotheses_scanned: scanned,
        log_likelihood: engine.log_likelihood(),
    };
    (kept, outcome)
}
