//! Epoch windowing of the collector's record stream.
//!
//! Agents stamp every export message with `export_time_ms`; the
//! [`EpochManager`] assigns each drained [`StampedRecord`] to the
//! fixed-size window(s) covering its stamp and closes windows as the
//! caller's watermark advances. Tumbling windows (the default, the
//! paper's 30 s cadence) partition the stream losslessly: every record
//! lands in exactly one epoch. Sliding windows (stride < length) trade
//! duplication for smoother time resolution; a record then belongs to
//! every window overlapping its stamp.
//!
//! Records arriving for an already-closed window ("late" records, e.g. a
//! stalled agent connection) are counted and dropped rather than
//! reopening history — the localization loop is a monitoring system, not
//! an exactly-once log.

use flock_telemetry::StampedRecord;
use std::collections::BTreeMap;
use std::ops::RangeInclusive;

/// Epoch windowing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConfig {
    /// Window length in milliseconds.
    pub epoch_ms: u64,
    /// Window stride in milliseconds; `None` means tumbling
    /// (stride = length).
    pub slide_ms: Option<u64>,
    /// Lateness horizon in milliseconds: a record whose stamp is more
    /// than this far behind the manager's watermark is rejected as late
    /// (counted in `late_records`) even when its window is still open.
    /// `None` (the default) bounds lateness only by window closure.
    ///
    /// The horizon is measured against the caller's watermark — the
    /// collector-side clock passed to
    /// [`EpochManager::close_ready`] — not against other agents' stamps,
    /// so one forward-skewed agent clock cannot make every honest
    /// record look late.
    pub late_horizon_ms: Option<u64>,
}

impl EpochConfig {
    /// Tumbling windows of `epoch_ms` (each record in exactly one epoch).
    pub fn tumbling(epoch_ms: u64) -> Self {
        assert!(epoch_ms > 0, "epoch length must be positive");
        EpochConfig {
            epoch_ms,
            slide_ms: None,
            late_horizon_ms: None,
        }
    }

    /// Sliding windows: length `epoch_ms`, advancing by `slide_ms`.
    pub fn sliding(epoch_ms: u64, slide_ms: u64) -> Self {
        assert!(epoch_ms > 0 && slide_ms > 0, "lengths must be positive");
        assert!(
            slide_ms <= epoch_ms,
            "stride beyond the window length would drop records"
        );
        EpochConfig {
            epoch_ms,
            slide_ms: Some(slide_ms),
            late_horizon_ms: None,
        }
    }

    /// Bound record lateness to `horizon_ms` behind the watermark.
    pub fn with_late_horizon(mut self, horizon_ms: u64) -> Self {
        self.late_horizon_ms = Some(horizon_ms);
        self
    }

    /// The window stride.
    #[inline]
    pub fn stride(&self) -> u64 {
        self.slide_ms.unwrap_or(self.epoch_ms)
    }

    /// Start timestamp of window `index`.
    #[inline]
    pub fn window_start(&self, index: u64) -> u64 {
        index * self.stride()
    }

    /// End timestamp (exclusive) of window `index`.
    #[inline]
    pub fn window_end(&self, index: u64) -> u64 {
        self.window_start(index) + self.epoch_ms
    }

    /// Indices of every window containing timestamp `ts` (window `k`
    /// covers `[k·stride, k·stride + epoch_ms)`).
    pub fn windows_of(&self, ts: u64) -> RangeInclusive<u64> {
        let stride = self.stride();
        let hi = ts / stride;
        let lo = if ts < self.epoch_ms {
            0
        } else {
            (ts - self.epoch_ms) / stride + 1
        };
        lo..=hi
    }
}

/// One closed window of stamped records, ready for localization.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// Window index (monotone per manager).
    pub index: u64,
    /// Window start timestamp (ms, inclusive).
    pub start_ms: u64,
    /// Window end timestamp (ms, exclusive).
    pub end_ms: u64,
    /// The records whose export stamp falls inside the window.
    pub records: Vec<StampedRecord>,
}

/// Assigns drained records to windows and closes them against a
/// watermark.
#[derive(Debug)]
pub struct EpochManager {
    config: EpochConfig,
    open: BTreeMap<u64, Vec<StampedRecord>>,
    /// Windows with index below this are closed; late arrivals for them
    /// are dropped (and counted).
    closed_below: u64,
    /// High-watermark of every `close_ready` call; the lateness-horizon
    /// reference clock.
    watermark_ms: u64,
    late_records: u64,
}

impl EpochManager {
    /// A manager with no open windows.
    pub fn new(config: EpochConfig) -> Self {
        EpochManager {
            config,
            open: BTreeMap::new(),
            closed_below: 0,
            watermark_ms: 0,
            late_records: 0,
        }
    }

    /// The windowing configuration.
    pub fn config(&self) -> EpochConfig {
        self.config
    }

    /// Whether `ts` violates the configured lateness horizon against the
    /// current watermark.
    #[inline]
    fn beyond_horizon(&self, ts: u64) -> bool {
        match self.config.late_horizon_ms {
            Some(h) => ts < self.watermark_ms.saturating_sub(h),
            None => false,
        }
    }

    /// Assign one record to its window(s). The record is moved into its
    /// last covering window (the only one, for tumbling epochs — the hot
    /// path is clone-free) and cloned only for the extra windows a
    /// sliding configuration adds.
    pub fn push(&mut self, rec: StampedRecord) {
        if self.beyond_horizon(rec.export_ms) {
            self.late_records += 1;
            return;
        }
        let mut windows = self
            .config
            .windows_of(rec.export_ms)
            .filter(|&w| w >= self.closed_below);
        let Some(mut current) = windows.next() else {
            self.late_records += 1;
            return;
        };
        for next in windows {
            self.open.entry(current).or_default().push(rec.clone());
            current = next;
        }
        self.open.entry(current).or_default().push(rec);
    }

    /// Assign a batch of records (the typical `drain_stamped` hand-off).
    pub fn extend(&mut self, recs: impl IntoIterator<Item = StampedRecord>) {
        for r in recs {
            self.push(r);
        }
    }

    /// Fast path for wire-v2 pre-bucketed input: a whole bucket of
    /// records that agents stamped with `epoch_seq` is appended with one
    /// window lookup instead of one per record.
    ///
    /// The lossless-partition property is preserved by validation, not
    /// trust: the hint is honored only when the configuration is
    /// tumbling with windows matching the stamp cadence (`export_ms /
    /// epoch_ms == epoch_seq` for every record, a branch-predictable
    /// scan). A bucket that fails validation — cadence drift, sliding
    /// windows, a misbehaving agent — falls back to the per-record
    /// [`push`](Self::push) path, so the partition is always identical
    /// to what unhinted input would produce.
    pub fn extend_bucket(&mut self, epoch_seq: u64, mut records: Vec<StampedRecord>) {
        if records.is_empty() {
            return;
        }
        let epoch_ms = self.config.epoch_ms;
        let hint_ok = self.config.slide_ms.is_none()
            && records.iter().all(|r| r.export_ms / epoch_ms == epoch_seq);
        if !hint_ok {
            self.extend(records);
            return;
        }
        if epoch_seq < self.closed_below {
            self.late_records += records.len() as u64;
            return;
        }
        // Under a lateness horizon the oldest stamp a valid bucket member
        // can carry is the window start; when even that would be within
        // the horizon the whole bucket is provably on time and the
        // wholesale append stands. Otherwise fall back to the per-record
        // path so each stamp is judged (and counted) individually.
        if self.config.late_horizon_ms.is_some()
            && self.beyond_horizon(self.config.window_start(epoch_seq))
        {
            self.extend(records);
            return;
        }
        let slot = self.open.entry(epoch_seq).or_default();
        if slot.is_empty() {
            *slot = records;
        } else {
            slot.append(&mut records);
        }
    }

    /// Close and return every window that ends at or before
    /// `watermark_ms`, in index order. Only windows that received at
    /// least one record are emitted.
    pub fn close_ready(&mut self, watermark_ms: u64) -> Vec<Epoch> {
        self.watermark_ms = self.watermark_ms.max(watermark_ms);
        let mut out = Vec::new();
        while let Some((&w, _)) = self.open.iter().next() {
            if self.config.window_end(w) > watermark_ms {
                break;
            }
            let records = self.open.remove(&w).expect("peeked key exists");
            self.closed_below = self.closed_below.max(w + 1);
            out.push(Epoch {
                index: w,
                start_ms: self.config.window_start(w),
                end_ms: self.config.window_end(w),
                records,
            });
        }
        // Even with no emittable window, advance the late horizon so a
        // subsequent push for long-gone windows counts as late.
        if let Some(stride_windows) = watermark_ms.checked_sub(self.config.epoch_ms) {
            let horizon = stride_windows / self.config.stride() + 1;
            self.closed_below = self.closed_below.max(horizon);
        }
        out
    }

    /// Close every open window regardless of watermark (end of run).
    pub fn flush(&mut self) -> Vec<Epoch> {
        let open = std::mem::take(&mut self.open);
        let mut out = Vec::with_capacity(open.len());
        for (w, records) in open {
            self.closed_below = self.closed_below.max(w + 1);
            out.push(Epoch {
                index: w,
                start_ms: self.config.window_start(w),
                end_ms: self.config.window_end(w),
                records,
            });
        }
        out
    }

    /// Number of currently open (buffering) windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Records dropped because every window covering their stamp had
    /// already closed.
    pub fn late_records(&self) -> u64 {
        self.late_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_telemetry::{FlowKey, FlowRecord, FlowStats, TrafficClass};
    use flock_topology::NodeId;

    fn rec(ts: u64) -> StampedRecord {
        StampedRecord {
            agent_id: 1,
            export_ms: ts,
            record: FlowRecord {
                key: FlowKey::tcp(NodeId(1), NodeId(2), ts as u16, 80),
                stats: FlowStats::default(),
                class: TrafficClass::Passive,
                path: None,
            },
        }
    }

    #[test]
    fn tumbling_assigns_each_record_once() {
        let cfg = EpochConfig::tumbling(100);
        for ts in [0, 1, 99, 100, 101, 250, 999] {
            let ws: Vec<u64> = cfg.windows_of(ts).collect();
            assert_eq!(ws, vec![ts / 100], "ts {ts}");
        }
    }

    #[test]
    fn sliding_covers_overlapping_windows() {
        let cfg = EpochConfig::sliding(100, 50);
        // ts 120 is inside windows starting at 50 and 100 → indices 1, 2.
        assert_eq!(cfg.windows_of(120).collect::<Vec<_>>(), vec![1, 2]);
        // Interior records belong to exactly len/stride windows.
        for ts in 100..1000u64 {
            assert_eq!(cfg.windows_of(ts).count(), 2, "ts {ts}");
        }
        // Stream-start boundary: ts < len has fewer covering windows.
        assert_eq!(cfg.windows_of(20).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn close_ready_respects_watermark() {
        let mut m = EpochManager::new(EpochConfig::tumbling(100));
        m.extend([rec(10), rec(150), rec(210)]);
        assert_eq!(m.open_windows(), 3);
        let closed = m.close_ready(200);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].index, 0);
        assert_eq!((closed[0].start_ms, closed[0].end_ms), (0, 100));
        assert_eq!(closed[1].index, 1);
        assert_eq!(m.open_windows(), 1);
        // Window 2 still open until the watermark passes 300.
        assert!(m.close_ready(299).is_empty());
        let rest = m.close_ready(300);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].index, 2);
    }

    #[test]
    fn late_records_are_counted_and_dropped() {
        let mut m = EpochManager::new(EpochConfig::tumbling(100));
        m.push(rec(50));
        let _ = m.close_ready(200);
        assert_eq!(m.late_records(), 0);
        m.push(rec(60)); // window 0 is long closed
        assert_eq!(m.late_records(), 1);
        assert_eq!(m.open_windows(), 0);
    }

    #[test]
    fn extend_bucket_fast_path_appends_wholesale() {
        let mut m = EpochManager::new(EpochConfig::tumbling(100));
        m.extend_bucket(2, vec![rec(210), rec(250), rec(299)]);
        m.extend_bucket(2, vec![rec(220)]);
        assert_eq!(m.open_windows(), 1);
        let closed = m.close_ready(300);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].index, 2);
        assert_eq!(closed[0].records.len(), 4);
    }

    #[test]
    fn extend_bucket_mis_stamped_falls_back_to_per_record_path() {
        let mut m = EpochManager::new(EpochConfig::tumbling(100));
        // Bucket claims epoch 1 but one record belongs to epoch 3.
        m.extend_bucket(1, vec![rec(150), rec(350)]);
        let closed = m.close_ready(400);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].index, 1);
        assert_eq!(closed[0].records[0].export_ms, 150);
        assert_eq!(closed[1].index, 3);
        assert_eq!(closed[1].records[0].export_ms, 350);
    }

    #[test]
    fn extend_bucket_sliding_config_ignores_hint() {
        let mut m = EpochManager::new(EpochConfig::sliding(100, 50));
        m.extend_bucket(2, vec![rec(120)]);
        // Sliding: the record must be duplicated into both covering
        // windows, which only the slow path does.
        let all = m.flush();
        let total: usize = all.iter().map(|e| e.records.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn extend_bucket_late_bucket_is_counted() {
        let mut m = EpochManager::new(EpochConfig::tumbling(100));
        m.push(rec(250));
        let _ = m.close_ready(300);
        m.extend_bucket(0, vec![rec(10), rec(20)]);
        assert_eq!(m.late_records(), 2);
        assert_eq!(m.open_windows(), 0);
    }

    #[test]
    fn late_horizon_rejects_clock_skewed_records_in_open_windows() {
        let cfg = EpochConfig::tumbling(100).with_late_horizon(20);
        let mut m = EpochManager::new(cfg);
        m.push(rec(50));
        let closed = m.close_ready(150);
        assert_eq!(closed.len(), 1, "window 0 emitted");

        // Window 1 is still open, but a stamp 30ms behind the watermark
        // violates the 20ms horizon.
        m.push(rec(120));
        assert_eq!(m.late_records(), 1);
        // A stamp inside the horizon is accepted into the same window.
        m.push(rec(140));
        let closed = m.close_ready(250);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].index, 1);
        assert_eq!(closed[0].records.len(), 1);
        assert_eq!(closed[0].records[0].export_ms, 140);
    }

    #[test]
    fn late_horizon_bucket_falls_back_to_exact_per_record_count() {
        let cfg = EpochConfig::tumbling(100).with_late_horizon(20);
        let mut m = EpochManager::new(cfg);
        m.push(rec(50));
        let _ = m.close_ready(150);

        // Bucket for the open window 1: its window start (100) is beyond
        // the horizon (150 - 20 = 130), so each stamp is judged alone.
        m.extend_bucket(1, vec![rec(120), rec(140)]);
        assert_eq!(m.late_records(), 1, "only the 120ms stamp is late");
        let closed = m.close_ready(250);
        assert_eq!(closed[0].records.len(), 1);
        assert_eq!(closed[0].records[0].export_ms, 140);
    }

    #[test]
    fn late_horizon_none_preserves_old_behavior() {
        // Same stamps as the horizon test above, no horizon configured:
        // the 30ms-behind-watermark record is kept because its window is
        // still open.
        let mut m = EpochManager::new(EpochConfig::tumbling(100));
        m.push(rec(50));
        let _ = m.close_ready(150);
        m.push(rec(120));
        assert_eq!(m.late_records(), 0, "no horizon: open-window stamp kept");
        assert_eq!(m.open_windows(), 1);
    }

    #[test]
    fn flush_closes_everything() {
        let mut m = EpochManager::new(EpochConfig::sliding(100, 50));
        m.extend([rec(120), rec(500)]);
        let all = m.flush();
        assert!(all.len() >= 3, "120 covers two windows, 500 two more");
        assert_eq!(m.open_windows(), 0);
        let total: usize = all.iter().map(|e| e.records.len()).sum();
        assert_eq!(total, 4, "each record duplicated into 2 windows");
    }
}
