//! Grid evaluation over training traces and the §5.2 selection rule.

use crate::scheme::SchemeConfig;
use flock_core::{evaluate, MetricsAccumulator, PrecisionRecall};
use flock_telemetry::ObservationSet;
use flock_topology::{GroundTruth, Topology};
use std::sync::Arc;

/// One training trace: topology, assembled observations (for the input
/// kind being calibrated), and ground truth.
#[derive(Clone)]
pub struct TrainingTrace {
    /// Topology the trace was generated on.
    pub topo: Arc<Topology>,
    /// Assembled inference input.
    pub obs: Arc<ObservationSet>,
    /// What actually failed.
    pub truth: GroundTruth,
}

/// A grid point with its training-set accuracy.
#[derive(Debug, Clone)]
pub struct CalibPoint {
    /// The configuration evaluated.
    pub config: SchemeConfig,
    /// Mean precision/recall over the training traces.
    pub metrics: PrecisionRecall,
}

/// Evaluate every grid point on every trace, in parallel across grid
/// points (`threads` worker threads; 1 = sequential).
pub fn evaluate_grid(
    points: &[SchemeConfig],
    traces: &[TrainingTrace],
    threads: usize,
) -> Vec<CalibPoint> {
    let threads = threads.max(1);
    if threads == 1 || points.len() == 1 {
        return points.iter().map(|p| eval_point(p, traces)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: std::sync::Mutex<Vec<Option<CalibPoint>>> =
        std::sync::Mutex::new(vec![None; points.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(points.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let point = eval_point(&points[i], traces);
                results.lock().unwrap()[i] = Some(point);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every grid point evaluated"))
        .collect()
}

fn eval_point(config: &SchemeConfig, traces: &[TrainingTrace]) -> CalibPoint {
    let localizer = config.build();
    let mut acc = MetricsAccumulator::new();
    for t in traces {
        let result = localizer.localize(&t.topo, &t.obs);
        acc.add(evaluate(&t.topo, &result.predicted, &t.truth));
    }
    CalibPoint {
        config: config.clone(),
        metrics: acc.mean(),
    }
}

/// Points not dominated in (precision, recall) — the tradeoff curves of
/// Fig. 2, sorted by precision ascending.
pub fn pareto_front(points: &[CalibPoint]) -> Vec<CalibPoint> {
    let mut front: Vec<CalibPoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.metrics.precision > p.metrics.precision && q.metrics.recall >= p.metrics.recall)
                || (q.metrics.precision >= p.metrics.precision
                    && q.metrics.recall > p.metrics.recall)
        });
        if !dominated {
            front.push(p.clone());
        }
    }
    front.sort_by(|a, b| {
        a.metrics
            .precision
            .partial_cmp(&b.metrics.precision)
            .unwrap()
            .then(a.metrics.recall.partial_cmp(&b.metrics.recall).unwrap())
    });
    front.dedup_by(|a, b| a.metrics == b.metrics);
    front
}

/// The §5.2 selection rule: among points with precision ≥ P (initially
/// 0.98) pick the max-recall one; if none exists or its recall is < 0.25,
/// relax P by 0.05 and retry; fall back to max-Fscore if P reaches 0.
pub fn select(points: &[CalibPoint]) -> Option<CalibPoint> {
    assert!(!points.is_empty());
    let mut p = 0.98f64;
    while p > 0.0 {
        let best = points
            .iter()
            .filter(|c| c.metrics.precision >= p)
            .max_by(|a, b| a.metrics.recall.partial_cmp(&b.metrics.recall).unwrap());
        if let Some(best) = best {
            if best.metrics.recall >= 0.25 {
                return Some(best.clone());
            }
        }
        p -= 0.05;
    }
    // Degenerate training set: fall back to the best Fscore.
    points
        .iter()
        .max_by(|a, b| a.metrics.fscore().partial_cmp(&b.metrics.fscore()).unwrap())
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_core::HyperParams;

    fn pt(precision: f64, recall: f64) -> CalibPoint {
        CalibPoint {
            config: SchemeConfig::Seven {
                vote_threshold: precision + recall, // unique-ish marker
            },
            metrics: PrecisionRecall { precision, recall },
        }
    }

    #[test]
    fn select_prefers_high_precision_first() {
        let points = vec![pt(0.99, 0.6), pt(0.99, 0.7), pt(0.7, 0.99)];
        let got = select(&points).unwrap();
        assert_eq!(got.metrics.recall, 0.7);
        assert_eq!(got.metrics.precision, 0.99);
    }

    #[test]
    fn select_relaxes_precision_when_recall_too_low() {
        // High-precision settings exist but recall is unusable; rule must
        // walk down to the 0.9-precision point.
        let points = vec![pt(0.99, 0.1), pt(0.90, 0.8), pt(0.5, 0.95)];
        let got = select(&points).unwrap();
        assert_eq!(got.metrics.precision, 0.90);
    }

    #[test]
    fn select_falls_back_to_fscore() {
        let points = vec![pt(0.2, 0.1), pt(0.1, 0.2)];
        assert!(select(&points).is_some());
    }

    #[test]
    fn pareto_front_removes_dominated() {
        let points = vec![pt(0.9, 0.5), pt(0.8, 0.4), pt(0.5, 0.9), pt(0.9, 0.6)];
        let front = pareto_front(&points);
        // (0.8,0.4) dominated by (0.9,0.5) and (0.9,0.5) by (0.9,0.6).
        assert_eq!(front.len(), 2);
        assert!(front.iter().all(|p| p.metrics
            != PrecisionRecall {
                precision: 0.8,
                recall: 0.4
            }));
    }

    #[test]
    fn evaluate_grid_parallel_matches_sequential() {
        use flock_telemetry::input::AnalysisMode;
        use flock_telemetry::PathArena;
        let topo = Arc::new(flock_topology::clos::three_tier(
            flock_topology::ClosParams::tiny(),
        ));
        // Empty observations: every scheme predicts nothing; with empty
        // truth precision=recall=1 for all points.
        let traces = vec![TrainingTrace {
            topo: Arc::clone(&topo),
            obs: Arc::new(ObservationSet {
                arena: PathArena::new(),
                flows: Vec::new(),
                mode: AnalysisMode::PerPacket,
            }),
            truth: GroundTruth::default(),
        }];
        let points = vec![
            SchemeConfig::Flock(HyperParams::default()),
            SchemeConfig::Seven {
                vote_threshold: 1.0,
            },
        ];
        let seq = evaluate_grid(&points, &traces, 1);
        let par = evaluate_grid(&points, &traces, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.config, b.config);
        }
        assert_eq!(seq[0].metrics.precision, 1.0);
    }
}
