//! Parameter grids, shaped after the ranges the paper explores (Fig. 8:
//! `p_b ∈ [0.2, 1.0]×10⁻²`, `p_g ∈ {1,3,5,7}×10⁻⁴`, priors
//! `−ln ρ ∈ {5,10,15,20}`).

use crate::scheme::SchemeConfig;
use flock_core::HyperParams;
use serde::{Deserialize, Serialize};

/// Grid over Flock's three hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlockGrid {
    /// Values of `p_g`.
    pub p_g: Vec<f64>,
    /// Values of `p_b`.
    pub p_b: Vec<f64>,
    /// Values of `−ln ρ` (link prior).
    pub neg_ln_rho: Vec<f64>,
}

impl Default for FlockGrid {
    fn default() -> Self {
        FlockGrid {
            p_g: vec![1e-4, 3e-4, 5e-4, 7e-4],
            p_b: vec![2e-3, 4e-3, 6e-3, 8e-3, 1e-2],
            neg_ln_rho: vec![5.0, 10.0, 15.0, 20.0],
        }
    }
}

impl FlockGrid {
    /// All grid points (skipping invalid `p_g ≥ p_b` combinations).
    pub fn points(&self) -> Vec<SchemeConfig> {
        let mut out = Vec::new();
        for &p_g in &self.p_g {
            for &p_b in &self.p_b {
                if p_g >= p_b {
                    continue;
                }
                for &nlr in &self.neg_ln_rho {
                    out.push(SchemeConfig::Flock(HyperParams {
                        p_g,
                        p_b,
                        rho_link: (-nlr).exp(),
                        device_prior_factor: 5.0,
                    }));
                }
            }
        }
        out
    }
}

/// Grid over NetBouncer's three hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetBouncerGrid {
    /// Regularization weights.
    pub lambda: Vec<f64>,
    /// Link drop-rate thresholds.
    pub link_threshold: Vec<f64>,
    /// Device problematic-flow thresholds (`u64::MAX` = off).
    pub device_flow_threshold: Vec<u64>,
}

impl Default for NetBouncerGrid {
    fn default() -> Self {
        NetBouncerGrid {
            lambda: vec![0.1, 0.5, 1.0, 5.0, 10.0],
            link_threshold: vec![2e-4, 5e-4, 1e-3, 2e-3, 5e-3],
            device_flow_threshold: vec![u64::MAX],
        }
    }
}

impl NetBouncerGrid {
    /// All grid points.
    pub fn points(&self) -> Vec<SchemeConfig> {
        let mut out = Vec::new();
        for &lambda in &self.lambda {
            for &link_threshold in &self.link_threshold {
                for &device_flow_threshold in &self.device_flow_threshold {
                    out.push(SchemeConfig::NetBouncer {
                        lambda,
                        link_threshold,
                        device_flow_threshold,
                    });
                }
            }
        }
        out
    }
}

/// Grid over 007's single hyperparameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SevenGrid {
    /// Vote thresholds.
    pub vote_threshold: Vec<f64>,
}

impl Default for SevenGrid {
    fn default() -> Self {
        SevenGrid {
            vote_threshold: vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
        }
    }
}

impl SevenGrid {
    /// All grid points.
    pub fn points(&self) -> Vec<SchemeConfig> {
        self.vote_threshold
            .iter()
            .map(|&vote_threshold| SchemeConfig::Seven { vote_threshold })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flock_grid_skips_invalid_combos() {
        let g = FlockGrid {
            p_g: vec![1e-3, 5e-3],
            p_b: vec![2e-3],
            neg_ln_rho: vec![10.0],
        };
        // 5e-3 >= 2e-3 is invalid; only one point remains.
        assert_eq!(g.points().len(), 1);
    }

    #[test]
    fn default_grids_have_expected_sizes() {
        assert_eq!(FlockGrid::default().points().len(), 4 * 5 * 4);
        assert_eq!(NetBouncerGrid::default().points().len(), 5 * 5);
        assert_eq!(SevenGrid::default().points().len(), 7);
    }
}
