//! Automated hyperparameter calibration (§5.2 of the paper).
//!
//! All schemes have hyperparameters (Flock 3, NetBouncer 3, 007 1) and
//! manual settings transfer poorly across environments. The paper
//! calibrates automatically: simulate a training set with known ground
//! truth, grid-search each scheme's parameters, and pick — among settings
//! with training precision ≥ P (initially 98%) — the one with the highest
//! recall; if none qualifies or recall is below 25%, relax P by 5% and
//! retry. Sweeping P instead yields the precision/recall tradeoff curves
//! of Fig. 2.
//!
//! * [`scheme`] — a serializable parameterization of each scheme that can
//!   instantiate the corresponding [`Localizer`](flock_core::Localizer).
//! * [`grid`] — the paper-shaped parameter grids (Fig. 8 ranges).
//! * [`search`] — parallel grid evaluation over training traces, Pareto
//!   front extraction, and the §5.2 selection rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod scheme;
pub mod search;

pub use grid::{FlockGrid, NetBouncerGrid, SevenGrid};
pub use scheme::SchemeConfig;
pub use search::{evaluate_grid, pareto_front, select, CalibPoint, TrainingTrace};
