//! Serializable scheme parameterizations.

use flock_baselines::{NetBouncer, ZeroZeroSeven};
use flock_core::{FlockGreedy, HyperParams, Localizer};
use serde::{Deserialize, Serialize};

/// A fully-specified scheme configuration; `build` instantiates the
/// corresponding localizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchemeConfig {
    /// Flock greedy inference with the given model hyperparameters.
    Flock(HyperParams),
    /// NetBouncer with (λ, link drop threshold, device flow threshold).
    NetBouncer {
        /// Regularization weight λ.
        lambda: f64,
        /// Drop-rate threshold above which a link is blamed.
        link_threshold: f64,
        /// Problematic-flow count at which a device is blamed
        /// (`u64::MAX` disables device detection).
        device_flow_threshold: u64,
    },
    /// 007 with its vote threshold.
    Seven {
        /// Minimum vote total for a link to be blamed.
        vote_threshold: f64,
    },
}

impl SchemeConfig {
    /// Instantiate the localizer for this configuration.
    pub fn build(&self) -> Box<dyn Localizer + Send + Sync> {
        match self {
            SchemeConfig::Flock(params) => Box::new(FlockGreedy::new(*params)),
            SchemeConfig::NetBouncer {
                lambda,
                link_threshold,
                device_flow_threshold,
            } => {
                let mut nb = NetBouncer::new(*lambda, *link_threshold);
                nb.device_flow_threshold = *device_flow_threshold;
                Box::new(nb)
            }
            SchemeConfig::Seven { vote_threshold } => Box::new(ZeroZeroSeven::new(*vote_threshold)),
        }
    }

    /// Scheme family name.
    pub fn family(&self) -> &'static str {
        match self {
            SchemeConfig::Flock(_) => "Flock",
            SchemeConfig::NetBouncer { .. } => "NetBouncer",
            SchemeConfig::Seven { .. } => "007",
        }
    }

    /// Compact human-readable parameter description for tables.
    pub fn describe(&self) -> String {
        match self {
            SchemeConfig::Flock(p) => format!(
                "p_g={:.1e} p_b={:.1e} -ln(rho)={:.0}",
                p.p_g,
                p.p_b,
                -p.rho_link.ln()
            ),
            SchemeConfig::NetBouncer {
                lambda,
                link_threshold,
                device_flow_threshold,
            } => {
                if *device_flow_threshold == u64::MAX {
                    format!("lambda={lambda} thresh={link_threshold:.1e}")
                } else {
                    format!(
                        "lambda={lambda} thresh={link_threshold:.1e} dev={device_flow_threshold}"
                    )
                }
            }
            SchemeConfig::Seven { vote_threshold } => format!("thresh={vote_threshold}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_named_localizers() {
        assert_eq!(
            SchemeConfig::Flock(HyperParams::default()).build().name(),
            "Flock"
        );
        assert_eq!(
            SchemeConfig::NetBouncer {
                lambda: 1.0,
                link_threshold: 1e-3,
                device_flow_threshold: u64::MAX
            }
            .build()
            .name(),
            "NetBouncer"
        );
        assert_eq!(
            SchemeConfig::Seven {
                vote_threshold: 1.0
            }
            .build()
            .name(),
            "007"
        );
    }

    #[test]
    fn describe_mentions_family_parameters() {
        let s = SchemeConfig::Flock(HyperParams::default()).describe();
        assert!(s.contains("p_g") && s.contains("p_b"));
    }
}
