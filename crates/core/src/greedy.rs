//! Flock's greedy MLE search (§3.3, Algorithms 1–2).
//!
//! Starting from the no-failure hypothesis, each iteration adds the
//! component with the largest log-likelihood gain (including the prior
//! penalty `ln(ρ/(1-ρ))`, which makes the stopping rule "no component
//! improves the posterior" rather than requiring a failure-count bound).
//!
//! With JLE ([`Engine::flip`]) an iteration costs one Δ-array scan plus an
//! `O(D·T)` update; without it ([`FlockGreedy::without_jle`]) every
//! candidate is re-evaluated from state via
//! [`Engine::delta_single`] — the `O(n)`-slower configuration measured in
//! the Fig. 4c ablation. Both configurations pick identical components.

use crate::engine::Engine;
use crate::localizer::{LocalizationResult, Localizer};
use crate::params::HyperParams;
use crate::space::CompIdx;
use flock_telemetry::ObservationSet;
use flock_topology::Topology;
use std::time::Instant;

/// Flock's greedy inference.
#[derive(Debug, Clone)]
pub struct FlockGreedy {
    /// Model hyperparameters.
    pub params: HyperParams,
    /// Use the JLE Δ-array maintenance (`true` for Flock proper; `false`
    /// is the "greedy only" ablation of Fig. 4c).
    pub use_jle: bool,
    /// Safety bound on greedy iterations (the prior normally stops the
    /// search long before this).
    pub max_iterations: usize,
    /// Optional label suffix for experiment tables (e.g. the input kind).
    pub label: Option<String>,
}

impl Default for FlockGreedy {
    fn default() -> Self {
        FlockGreedy {
            params: HyperParams::default(),
            use_jle: true,
            max_iterations: 256,
            label: None,
        }
    }
}

/// Result of [`FlockGreedy::search_warm_deadline`].
#[derive(Debug, Clone)]
pub struct BudgetedSearch {
    /// Final hypothesis ordered by confidence (see
    /// [`FlockGreedy::search_warm`]).
    pub picked: Vec<(CompIdx, f64)>,
    /// Hypotheses-scanned counter.
    pub scanned: u64,
    /// The deadline fired before the search reached a local optimum;
    /// `picked` is a partial result.
    pub timed_out: bool,
    /// The search's *decision margin*: the minimum, over every greedy
    /// iteration, of (a) the winning move's lead over the runner-up and
    /// (b) the absolute posterior gain at the accept/stop decision.
    /// `+inf` when the search made no contested decision (e.g. empty
    /// evidence). Against an engine running approximate coalescing, a
    /// margin strictly above `2 · Engine::drift_bound()` certifies that
    /// every decision — selection and stopping — would have been
    /// identical on the exact likelihood surface: each per-hypothesis
    /// likelihood is within `drift_bound` of exact, and gains are
    /// likelihood *differences*, so a decision can only change if two
    /// gains within `2 · drift_bound` of each other cross. The verdict
    /// is then provably the exact verdict, not just empirically close.
    pub margin: f64,
}

impl FlockGreedy {
    /// Flock with the given hyperparameters.
    pub fn new(params: HyperParams) -> Self {
        FlockGreedy {
            params,
            ..Default::default()
        }
    }

    /// The "greedy only" ablation: identical output, no JLE acceleration.
    pub fn without_jle(params: HyperParams) -> Self {
        FlockGreedy {
            params,
            use_jle: false,
            ..Default::default()
        }
    }

    /// Warm-start search: seed the engine's hypothesis with `warm` (a
    /// previous epoch's verdict), then greedily apply the best
    /// **add-or-remove** move until no move improves the posterior.
    ///
    /// Unlike [`FlockGreedy::search`], removals are legal moves: a seeded
    /// component whose evidence disappeared (a healed fault, or a stale
    /// guess) is dropped by the search rather than lingering. Every move
    /// strictly increases the posterior, which is bounded, so the search
    /// cannot oscillate. With an empty seed on fresh evidence the result
    /// coincides with cold-start greedy whenever cold greedy's result is
    /// a local optimum of the add/remove neighborhood.
    ///
    /// Returns the final hypothesis ordered by confidence — for each kept
    /// component, the posterior loss its removal would cause — plus the
    /// hypotheses-scanned count.
    pub fn search_warm(&self, engine: &mut Engine, warm: &[CompIdx]) -> (Vec<(CompIdx, f64)>, u64) {
        let out = self.search_warm_deadline(engine, warm, None);
        (out.picked, out.scanned)
    }

    /// [`search_warm`](Self::search_warm) under a cooperative deadline:
    /// the deadline is checked once per greedy iteration (each a full
    /// Δ-array scan) and, when exceeded, the search stops and returns the
    /// hypothesis built so far with `timed_out` set.
    ///
    /// The partial result is well-formed — every applied move strictly
    /// improved the posterior — but it is not necessarily a local
    /// optimum, so per-component confidences can be negative. Callers
    /// surface `timed_out` as a degraded-verdict reason rather than
    /// treating the output as authoritative.
    pub fn search_warm_deadline(
        &self,
        engine: &mut Engine,
        warm: &[CompIdx],
        deadline: Option<Instant>,
    ) -> BudgetedSearch {
        let n = engine.n_comps() as u64;
        let mut scanned = n; // initial Δ computation evaluates n neighbors
        let mut timed_out = false;
        let mut margin = f64::INFINITY;
        for &c in warm {
            if !engine.in_hypothesis(c) {
                if self.use_jle {
                    engine.flip(c);
                } else {
                    engine.flip_ll_only(c);
                }
            }
        }
        for _ in 0..self.max_iterations {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                timed_out = true;
                break;
            }
            let (best, runner_up) = if self.use_jle {
                (argmax_move(engine), f64::NEG_INFINITY)
            } else {
                argmax_move_no_jle(engine)
            };
            scanned += n;
            let Some((c, gain)) = best else { break };
            // Every decision the search makes narrows the margin: the
            // accept/stop rule by |gain| (the exact surface flips it only
            // if the gain crosses 0), the selection by the winner's lead
            // over the runner-up (it changes only if two gains cross).
            margin = margin.min(gain.abs());
            if gain <= 0.0 {
                break;
            }
            let gap = if self.use_jle {
                engine.move_runner_up_gap(c, gain)
            } else if runner_up == f64::NEG_INFINITY {
                f64::INFINITY
            } else {
                gain - runner_up
            };
            margin = margin.min(gap);
            if self.use_jle {
                engine.flip(c);
            } else {
                engine.flip_ll_only(c);
            }
        }
        // Confidence of each kept component: the posterior cost of
        // removing it (non-negative at a local optimum).
        let mut picked: Vec<(CompIdx, f64)> = engine
            .hypothesis()
            .to_vec()
            .into_iter()
            .map(|c| {
                let removal_gain = if self.use_jle {
                    engine.delta()[c as usize] - engine.prior_logodds(c)
                } else {
                    engine.delta_single(c) - engine.prior_logodds(c)
                };
                (c, -removal_gain)
            })
            .collect();
        // Ties ordered by *global* id: local id order varies with the
        // engine's evidence history, global order does not.
        picked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then(engine.global_comp(a.0).cmp(&engine.global_comp(b.0)))
        });
        BudgetedSearch {
            picked,
            scanned,
            timed_out,
            margin,
        }
    }

    /// Run the greedy search on an already-built engine; returns the
    /// selected components with their gains, plus the hypotheses-scanned
    /// count. Exposed so callers holding an engine (calibration sweeps)
    /// can avoid rebuilding it.
    pub fn search(&self, engine: &mut Engine) -> (Vec<(CompIdx, f64)>, u64) {
        let n = engine.n_comps() as u64;
        let mut picked: Vec<(CompIdx, f64)> = Vec::new();
        let mut scanned = n; // initial Δ computation evaluates n neighbors
        for _ in 0..self.max_iterations {
            let best = if self.use_jle {
                argmax_addable(engine)
            } else {
                argmax_addable_no_jle(engine)
            };
            scanned += n - picked.len() as u64;
            let Some((c, gain)) = best else { break };
            if gain <= 0.0 {
                break;
            }
            if self.use_jle {
                engine.flip(c);
            } else {
                engine.flip_ll_only(c);
            }
            picked.push((c, gain));
        }
        (picked, scanned)
    }
}

/// Whether a candidate `(comp, gain)` beats the current best. Exact gain
/// ties (observationally equivalent components, Fig. 5c) break toward
/// the smaller *global* id: local id order depends on each engine's
/// evidence history, so breaking ties locally would let two engines over
/// the same evidence (e.g. a plane-sharded and a single-spine plan) pick
/// different members of an equivalence class.
#[inline]
fn beats(engine: &Engine, cand: (CompIdx, f64), best: Option<(CompIdx, f64)>) -> bool {
    match best {
        None => true,
        Some((bc, bg)) => {
            cand.1 > bg || (cand.1 == bg && engine.global_comp(cand.0) < engine.global_comp(bc))
        }
    }
}

/// Best component to *add* under the current Δ array, with its
/// prior-inclusive gain. One fused `delta + bias` scan through the
/// engine's dispatch kernel ([`Engine::argmax_addable`]); in-hypothesis
/// components carry a `-inf` bias, which can win only when nothing is
/// addable — and then the `gain <= 0` stopping rule fires exactly as it
/// would for an empty candidate set.
fn argmax_addable(engine: &Engine) -> Option<(CompIdx, f64)> {
    engine.argmax_addable()
}

/// Best add-or-remove move under the current Δ array, with its
/// prior-inclusive posterior gain (adding pays the prior, removing
/// reclaims it). Kernel scan via [`Engine::argmax_move`].
fn argmax_move(engine: &Engine) -> Option<(CompIdx, f64)> {
    engine.argmax_move()
}

/// Same move selection evaluated per candidate from state (no Δ array),
/// also reporting the runner-up's gain (`-inf` when there is at most one
/// candidate) for the decision-margin bookkeeping.
fn argmax_move_no_jle(engine: &Engine) -> (Option<(CompIdx, f64)>, f64) {
    let mut best: Option<(CompIdx, f64)> = None;
    let mut runner_up = f64::NEG_INFINITY;
    for c in 0..engine.n_comps() as CompIdx {
        let gain = if engine.in_hypothesis(c) {
            engine.delta_single(c) - engine.prior_logodds(c)
        } else {
            engine.delta_single(c) + engine.prior_logodds(c)
        };
        if beats(engine, (c, gain), best) {
            if let Some((_, bg)) = best {
                runner_up = runner_up.max(bg);
            }
            best = Some((c, gain));
        } else {
            runner_up = runner_up.max(gain);
        }
    }
    (best, runner_up)
}

/// Same selection evaluated per candidate from state (no Δ array).
fn argmax_addable_no_jle(engine: &Engine) -> Option<(CompIdx, f64)> {
    let mut best: Option<(CompIdx, f64)> = None;
    for c in 0..engine.n_comps() as CompIdx {
        if engine.in_hypothesis(c) {
            continue;
        }
        let gain = engine.delta_single(c) + engine.prior_logodds(c);
        if beats(engine, (c, gain), best) {
            best = Some((c, gain));
        }
    }
    best
}

impl Localizer for FlockGreedy {
    fn name(&self) -> String {
        let base = if self.use_jle {
            "Flock".to_string()
        } else {
            "Flock (greedy only)".to_string()
        };
        match &self.label {
            Some(l) => format!("{base} ({l})"),
            None => base,
        }
    }

    fn localize(&self, topo: &Topology, obs: &ObservationSet) -> LocalizationResult {
        let start = Instant::now();
        let mut engine = Engine::new(topo, obs, self.params);
        let (picked, scanned) = self.search(&mut engine);
        let predicted = picked.iter().map(|(c, _)| engine.component(*c)).collect();
        let scores = picked.iter().map(|(_, g)| *g).collect();
        LocalizationResult {
            predicted,
            scores,
            log_likelihood: engine.log_likelihood(),
            hypotheses_scanned: scanned,
            iterations: picked.len() as u64,
            runtime: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
    use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, TrafficClass};
    use flock_topology::clos::{three_tier, ClosParams};
    use flock_topology::{Component, Router, Topology};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Telemetry where flows crossing `bad_links` lose ~3% of packets and
    /// everything else is clean.
    fn telemetry_with_failures(
        topo: &Topology,
        bad_links: &[flock_topology::LinkId],
        n_flows: usize,
        seed: u64,
    ) -> ObservationSet {
        let router = Router::new(topo);
        let hosts = topo.hosts().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flows = Vec::new();
        for i in 0..n_flows {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s {
                d = hosts[rng.random_range(0..hosts.len())];
            }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let sent = 1000u64;
            let crossings = tp.iter().filter(|l| bad_links.contains(l)).count() as u64;
            let bad = crossings * 6; // ~3% per failed link crossed
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
                stats: FlowStats {
                    packets: sent,
                    retransmissions: bad,
                    bytes: sent * 1500,
                    rtt_sum_us: 0,
                    rtt_count: 0,
                    rtt_max_us: 0,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        assemble(
            topo,
            &router,
            &flows,
            &[InputKind::Int],
            AnalysisMode::PerPacket,
        )
    }

    #[test]
    fn recovers_single_failed_link() {
        let topo = three_tier(ClosParams::tiny());
        let bad = topo.fabric_links()[7];
        let obs = telemetry_with_failures(&topo, &[bad], 400, 11);
        let result = FlockGreedy::default().localize(&topo, &obs);
        assert_eq!(result.predicted, vec![Component::Link(bad)]);
        assert!(result.log_likelihood > 0.0);
        assert!(result.hypotheses_scanned > 0);
    }

    #[test]
    fn recovers_multiple_failed_links() {
        // Three pods break serial-link equivalence; failures on disjoint
        // devices keep the MLE from (correctly) preferring a device
        // hypothesis over several same-device link failures.
        let topo = three_tier(ClosParams {
            pods: 3,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            spines_per_plane: 2,
            hosts_per_tor: 2,
        });
        let fabric = topo.fabric_links();
        let mut bad: Vec<flock_topology::LinkId> = Vec::new();
        for &l in &fabric {
            let lk = topo.link(l);
            let disjoint = bad.iter().all(|&b| {
                let bl = topo.link(b);
                lk.src != bl.src && lk.src != bl.dst && lk.dst != bl.src && lk.dst != bl.dst
            });
            if disjoint {
                bad.push(l);
                if bad.len() == 3 {
                    break;
                }
            }
        }
        assert_eq!(bad.len(), 3);
        let obs = telemetry_with_failures(&topo, &bad, 1200, 12);
        let result = FlockGreedy::default().localize(&topo, &obs);
        let mut got = result.predicted_links();
        got.sort_unstable();
        let mut want = bad.clone();
        want.sort_unstable();
        assert_eq!(got, want, "greedy must recover all three failed links");
    }

    #[test]
    fn clean_network_returns_empty() {
        let topo = three_tier(ClosParams::tiny());
        let obs = telemetry_with_failures(&topo, &[], 400, 13);
        let result = FlockGreedy::default().localize(&topo, &obs);
        assert!(
            result.predicted.is_empty(),
            "no failures → empty hypothesis, got {:?}",
            result.predicted
        );
    }

    #[test]
    fn jle_and_no_jle_agree_exactly() {
        let topo = three_tier(ClosParams::tiny());
        let fabric = topo.fabric_links();
        let bad = vec![fabric[4], fabric[17]];
        let obs = telemetry_with_failures(&topo, &bad, 800, 14);
        let with = FlockGreedy::default().localize(&topo, &obs);
        let without = FlockGreedy::without_jle(HyperParams::default()).localize(&topo, &obs);
        assert_eq!(with.predicted, without.predicted);
        assert!((with.log_likelihood - without.log_likelihood).abs() < 1e-7);
    }

    #[test]
    fn warm_search_from_correct_seed_matches_cold() {
        let topo = three_tier(ClosParams::tiny());
        let fabric = topo.fabric_links();
        let bad = vec![fabric[4], fabric[17]];
        let obs = telemetry_with_failures(&topo, &bad, 800, 21);
        let flock = FlockGreedy::default();

        let mut cold_engine = Engine::new(&topo, &obs, flock.params);
        let (cold, _) = flock.search(&mut cold_engine);
        let mut cold_set: Vec<_> = cold.iter().map(|(c, _)| *c).collect();
        cold_set.sort_unstable();

        // Seed with the (correct) cold answer: warm search keeps it.
        let mut warm_engine = Engine::new(&topo, &obs, flock.params);
        let (warm, _) = flock.search_warm(&mut warm_engine, &cold_set);
        let mut warm_set: Vec<_> = warm.iter().map(|(c, _)| *c).collect();
        warm_set.sort_unstable();
        assert_eq!(warm_set, cold_set);
        assert!(
            warm.iter().all(|&(_, conf)| conf >= 0.0),
            "confidences are non-negative at a local optimum: {warm:?}"
        );
        assert!(
            (warm_engine.log_likelihood() - cold_engine.log_likelihood()).abs() < 1e-7,
            "same optimum reached"
        );
    }

    #[test]
    fn warm_search_drops_healed_component() {
        let topo = three_tier(ClosParams::tiny());
        let fabric = topo.fabric_links();
        let still_bad = fabric[4];
        let healed = fabric[17];
        // Evidence only implicates `still_bad` now.
        let obs = telemetry_with_failures(&topo, &[still_bad], 800, 22);
        let flock = FlockGreedy::default();
        let mut engine = Engine::new(&topo, &obs, flock.params);
        let seed = [
            engine
                .comp_of(flock_topology::Component::Link(still_bad))
                .unwrap(),
            engine
                .comp_of(flock_topology::Component::Link(healed))
                .unwrap(),
        ];
        let (picked, _) = flock.search_warm(&mut engine, &seed);
        let comps: Vec<Component> = picked.iter().map(|(c, _)| engine.component(*c)).collect();
        assert_eq!(
            comps,
            vec![Component::Link(still_bad)],
            "the healed link must be dropped, the active one kept"
        );
    }

    #[test]
    fn warm_search_from_empty_seed_matches_cold() {
        let topo = three_tier(ClosParams::tiny());
        let bad = topo.fabric_links()[7];
        let obs = telemetry_with_failures(&topo, &[bad], 400, 23);
        let flock = FlockGreedy::default();
        let mut e1 = Engine::new(&topo, &obs, flock.params);
        let (cold, _) = flock.search(&mut e1);
        let mut e2 = Engine::new(&topo, &obs, flock.params);
        let (warm, _) = flock.search_warm(&mut e2, &[]);
        let mut a: Vec<_> = cold.iter().map(|(c, _)| *c).collect();
        let mut b: Vec<_> = warm.iter().map(|(c, _)| *c).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn deadline_truncates_search_and_flags_timeout() {
        let topo = three_tier(ClosParams::tiny());
        let fabric = topo.fabric_links();
        let bad = vec![fabric[4], fabric[17]];
        let obs = telemetry_with_failures(&topo, &bad, 800, 31);
        let flock = FlockGreedy::default();

        // Already-expired deadline: zero iterations run, the (empty) seed
        // is returned as-is, and the timeout is flagged.
        let mut e1 = Engine::new(&topo, &obs, flock.params);
        let out = flock.search_warm_deadline(&mut e1, &[], Some(Instant::now()));
        assert!(out.timed_out);
        assert!(out.picked.is_empty(), "no move was made");

        // A generous deadline changes nothing vs the unbudgeted search.
        let mut e2 = Engine::new(&topo, &obs, flock.params);
        let far = Instant::now() + std::time::Duration::from_secs(600);
        let budgeted = flock.search_warm_deadline(&mut e2, &[], Some(far));
        assert!(!budgeted.timed_out);
        let mut e3 = Engine::new(&topo, &obs, flock.params);
        let (unbudgeted, _) = flock.search_warm(&mut e3, &[]);
        assert_eq!(budgeted.picked, unbudgeted);
    }

    #[test]
    fn per_flow_mode_locates_latency_fault() {
        // Flows crossing one link have RTT above threshold; per-flow
        // analysis must localize it (the §7.5 link-flap pipeline).
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts().to_vec();
        let flapped = topo.fabric_links()[9];
        let mut rng = StdRng::seed_from_u64(15);
        let mut flows = Vec::new();
        for i in 0..600usize {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s {
                d = hosts[rng.random_range(0..hosts.len())];
            }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let rtt = if tp.contains(&flapped) { 50_000 } else { 400 };
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
                stats: FlowStats {
                    packets: 50,
                    retransmissions: 0,
                    bytes: 75_000,
                    rtt_sum_us: rtt as u64,
                    rtt_count: 1,
                    rtt_max_us: rtt,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        let obs = assemble(
            &topo,
            &router,
            &flows,
            &[InputKind::Int],
            AnalysisMode::PerFlow {
                rtt_threshold_us: 10_000,
            },
        );
        let result = FlockGreedy::default().localize(&topo, &obs);
        assert_eq!(result.predicted, vec![Component::Link(flapped)]);
    }
}
