//! The common interface every fault-localization scheme implements.

use flock_telemetry::ObservationSet;
use flock_topology::{Component, LinkId, NodeId, Topology};
use serde::Serialize;
use std::time::Duration;

/// Output of one localization run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LocalizationResult {
    /// Components the scheme blames, most confident first.
    pub predicted: Vec<Component>,
    /// Per-predicted-component confidence score (meaning is
    /// scheme-specific: log-likelihood gain for the PGM schemes, votes for
    /// 007, estimated drop rate for NetBouncer).
    pub scores: Vec<f64>,
    /// Final (normalized) log-likelihood, for PGM schemes; 0 otherwise.
    pub log_likelihood: f64,
    /// Hypotheses examined during the search (the paper's "~3.5M
    /// hypotheses in 17 sec" accounting).
    pub hypotheses_scanned: u64,
    /// Search iterations (greedy steps, CD rounds, Gibbs sweeps, …).
    pub iterations: u64,
    /// Wall-clock inference time.
    pub runtime: Duration,
}

impl LocalizationResult {
    /// Predicted links only.
    pub fn predicted_links(&self) -> Vec<LinkId> {
        self.predicted
            .iter()
            .filter_map(|c| match c {
                Component::Link(l) => Some(*l),
                Component::Device(_) => None,
            })
            .collect()
    }

    /// Predicted devices only.
    pub fn predicted_devices(&self) -> Vec<NodeId> {
        self.predicted
            .iter()
            .filter_map(|c| match c {
                Component::Device(n) => Some(*n),
                Component::Link(_) => None,
            })
            .collect()
    }
}

/// A fault-localization scheme: topology + observations in, blamed
/// components out.
pub trait Localizer {
    /// Human-readable scheme name (used in experiment tables).
    fn name(&self) -> String;

    /// Run inference.
    fn localize(&self, topo: &Topology, obs: &ObservationSet) -> LocalizationResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_splits_links_and_devices() {
        let r = LocalizationResult {
            predicted: vec![
                Component::Link(LinkId(4)),
                Component::Device(NodeId(2)),
                Component::Link(LinkId(9)),
            ],
            ..Default::default()
        };
        assert_eq!(r.predicted_links(), vec![LinkId(4), LinkId(9)]);
        assert_eq!(r.predicted_devices(), vec![NodeId(2)]);
    }
}
