//! Dense component indexing.
//!
//! Inference iterates over *components* — switch devices and directed
//! links — with flat arrays. [`ComponentSpace`] assigns each component a
//! dense index: devices first (`0..n_devices`, in `Topology::switches()`
//! order), then links (`n_devices..n_devices + n_links`, by `LinkId`).

use flock_topology::{Component, LinkId, NodeId, Topology};

/// Dense index of a component in a [`ComponentSpace`].
pub type CompIdx = u32;

/// Bidirectional mapping between topology components and dense indices.
#[derive(Debug, Clone)]
pub struct ComponentSpace {
    n_devices: u32,
    n_links: u32,
    /// NodeId index → device comp index (u32::MAX for hosts).
    device_of_node: Vec<u32>,
    /// Device comp index → NodeId.
    node_of_device: Vec<NodeId>,
}

impl ComponentSpace {
    /// Build the component space of a topology.
    pub fn new(topo: &Topology) -> Self {
        let mut device_of_node = vec![u32::MAX; topo.node_count()];
        let mut node_of_device = Vec::with_capacity(topo.switch_count());
        for (i, &sw) in topo.switches().iter().enumerate() {
            device_of_node[sw.idx()] = i as u32;
            node_of_device.push(sw);
        }
        ComponentSpace {
            n_devices: topo.switch_count() as u32,
            n_links: topo.link_count() as u32,
            device_of_node,
            node_of_device,
        }
    }

    /// Total number of components.
    #[inline]
    pub fn n_comps(&self) -> usize {
        (self.n_devices + self.n_links) as usize
    }

    /// Number of device components.
    #[inline]
    pub fn n_devices(&self) -> usize {
        self.n_devices as usize
    }

    /// Dense index of a link.
    #[inline]
    pub fn link_comp(&self, l: LinkId) -> CompIdx {
        debug_assert!(l.0 < self.n_links);
        self.n_devices + l.0
    }

    /// Dense index of a switch device (`None` for hosts).
    #[inline]
    pub fn device_comp(&self, n: NodeId) -> Option<CompIdx> {
        match self.device_of_node.get(n.idx()) {
            Some(&d) if d != u32::MAX => Some(d),
            _ => None,
        }
    }

    /// Whether a dense index denotes a device.
    #[inline]
    pub fn is_device(&self, c: CompIdx) -> bool {
        c < self.n_devices
    }

    /// Dense index of an arbitrary component (`None` for a device id that
    /// is not a switch of this topology). The inverse of
    /// [`ComponentSpace::component`]; used to seed warm-start inference
    /// from a previous epoch's predictions.
    #[inline]
    pub fn comp_of(&self, c: Component) -> Option<CompIdx> {
        match c {
            Component::Link(l) => Some(self.link_comp(l)),
            Component::Device(n) => self.device_comp(n),
        }
    }

    /// The component behind a dense index.
    #[inline]
    pub fn component(&self, c: CompIdx) -> Component {
        if self.is_device(c) {
            Component::Device(self.node_of_device[c as usize])
        } else {
            Component::Link(LinkId(c - self.n_devices))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::clos::{three_tier, ClosParams};

    #[test]
    fn roundtrip_all_components() {
        let topo = three_tier(ClosParams::tiny());
        let sp = ComponentSpace::new(&topo);
        assert_eq!(sp.n_comps(), topo.switch_count() + topo.link_count());
        for c in 0..sp.n_comps() as u32 {
            match sp.component(c) {
                Component::Device(n) => {
                    assert!(sp.is_device(c));
                    assert_eq!(sp.device_comp(n), Some(c));
                }
                Component::Link(l) => {
                    assert!(!sp.is_device(c));
                    assert_eq!(sp.link_comp(l), c);
                }
            }
        }
    }

    #[test]
    fn hosts_are_not_devices() {
        let topo = three_tier(ClosParams::tiny());
        let sp = ComponentSpace::new(&topo);
        for h in topo.hosts() {
            assert_eq!(sp.device_comp(*h), None);
        }
    }
}
