//! The Sherlock "Ferret" inference algorithm on Flock's PGM (§6.1), in
//! two configurations:
//!
//! * **plain** — exhaustive search over all hypotheses with at most `K`
//!   failures, evaluating each neighbor by an incremental state flip
//!   (`O(n^K · D · T)`, the paper's Sherlock baseline);
//! * **with JLE** (Algorithm 3) — the recursion carries the Δ array, so
//!   the deepest level evaluates all `n` sibling hypotheses with a single
//!   array scan instead of `n` state flips: `O(n^(K-1) · D · T)`.
//!
//! Both explore hypotheses in canonical (index-increasing) order, evaluate
//! the same posterior (likelihood + priors) and return the same argmax.
//! As the paper notes, Sherlock cannot detect more than `K` concurrent
//! failures and is far too slow beyond `K = 2` at datacenter scale — the
//! motivation for Flock's greedy search.

use crate::engine::Engine;
use crate::localizer::{LocalizationResult, Localizer};
use crate::params::HyperParams;
use crate::space::CompIdx;
use flock_telemetry::ObservationSet;
use flock_topology::Topology;
use std::time::Instant;

/// Sherlock/Ferret bounded-failure exhaustive MLE.
#[derive(Debug, Clone)]
pub struct SherlockFerret {
    /// Model hyperparameters (shared with Flock for a fair comparison).
    pub params: HyperParams,
    /// Maximum concurrent failures `K`.
    pub max_failures: usize,
    /// Accelerate with JLE (Algorithm 3).
    pub use_jle: bool,
    /// Optional cap on hypotheses examined. When hit, the search stops
    /// early and the result's `hypotheses_scanned` reflects the partial
    /// run — the paper extrapolates Sherlock's large-scale runtimes from
    /// exactly such partial runs (§7.8).
    pub hypothesis_budget: Option<u64>,
}

impl SherlockFerret {
    /// Plain Sherlock with `K` max failures.
    pub fn new(params: HyperParams, max_failures: usize) -> Self {
        SherlockFerret {
            params,
            max_failures,
            use_jle: false,
            hypothesis_budget: None,
        }
    }

    /// JLE-accelerated Sherlock (Algorithm 3).
    pub fn with_jle(params: HyperParams, max_failures: usize) -> Self {
        SherlockFerret {
            params,
            max_failures,
            use_jle: true,
            hypothesis_budget: None,
        }
    }
}

struct Search<'e> {
    engine: &'e mut Engine,
    k: usize,
    use_jle: bool,
    best_posterior: f64,
    best_hypothesis: Vec<CompIdx>,
    scanned: u64,
    budget: u64,
}

impl Search<'_> {
    /// Recursive exploration; hypotheses are built in index-increasing
    /// order so each set is visited once. `posterior` is the normalized
    /// log-likelihood plus prior log-odds of the current hypothesis.
    fn explore(&mut self, start: CompIdx, posterior: f64) {
        let depth = self.engine.hypothesis().len();
        if depth >= self.k || self.scanned >= self.budget {
            return;
        }
        let n = self.engine.n_comps() as CompIdx;

        if self.use_jle && depth + 1 == self.k {
            // Deepest level: one Δ-array scan evaluates all siblings.
            for c in start..n {
                let cand =
                    posterior + self.engine.delta()[c as usize] + self.engine.prior_logodds(c);
                self.scanned += 1;
                if cand > self.best_posterior {
                    self.best_posterior = cand;
                    let mut h = self.engine.hypothesis().to_vec();
                    h.push(c);
                    self.best_hypothesis = h;
                }
            }
            return;
        }

        for c in start..n {
            if self.scanned >= self.budget {
                return;
            }
            self.scanned += 1;
            let dll = if self.use_jle {
                self.engine.flip(c)
            } else {
                self.engine.flip_ll_only(c)
            };
            let cand = posterior + dll + self.engine.prior_logodds(c);
            if cand > self.best_posterior {
                self.best_posterior = cand;
                self.best_hypothesis = self.engine.hypothesis().to_vec();
            }
            self.explore(c + 1, cand);
            // Undo (prior sign handled by recomputing from `posterior`).
            if self.use_jle {
                self.engine.flip(c);
            } else {
                self.engine.flip_ll_only(c);
            }
        }
    }
}

impl Localizer for SherlockFerret {
    fn name(&self) -> String {
        if self.use_jle {
            format!("Sherlock+JLE (K={})", self.max_failures)
        } else {
            format!("Sherlock (K={})", self.max_failures)
        }
    }

    fn localize(&self, topo: &Topology, obs: &ObservationSet) -> LocalizationResult {
        let start = Instant::now();
        let mut engine = Engine::new(topo, obs, self.params);
        let mut search = Search {
            engine: &mut engine,
            k: self.max_failures,
            use_jle: self.use_jle,
            best_posterior: 0.0, // empty hypothesis (normalized LL = 0)
            best_hypothesis: Vec::new(),
            scanned: 1,
            budget: self.hypothesis_budget.unwrap_or(u64::MAX),
        };
        search.explore(0, 0.0);
        let best = search.best_hypothesis.clone();
        let scanned = search.scanned;
        let posterior = search.best_posterior;
        let predicted: Vec<_> = best.iter().map(|c| engine.component(*c)).collect();
        LocalizationResult {
            scores: vec![posterior; predicted.len()],
            predicted,
            log_likelihood: posterior,
            hypotheses_scanned: scanned,
            iterations: 1,
            runtime: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::FlockGreedy;
    use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
    use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, TrafficClass};
    use flock_topology::clos::{leaf_spine, LeafSpineParams};
    use flock_topology::{Component, Router, Topology};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn small_topo() -> Topology {
        leaf_spine(LeafSpineParams {
            spines: 3,
            leaves: 3,
            hosts_per_leaf: 2,
        })
    }

    /// Pick `k` fabric links with pairwise-disjoint endpoint devices
    /// (several failures on one device make the MLE correctly prefer the
    /// device hypothesis — a different regime than this test targets).
    fn disjoint_links(topo: &Topology, k: usize, rng: &mut StdRng) -> Vec<flock_topology::LinkId> {
        let fabric = topo.fabric_links();
        let mut bad: Vec<flock_topology::LinkId> = Vec::new();
        let mut guard = 0;
        while bad.len() < k && guard < 10_000 {
            guard += 1;
            let l = fabric[rng.random_range(0..fabric.len())];
            let lk = topo.link(l);
            let ok = bad.iter().all(|&b| {
                let bl = topo.link(b);
                lk.src != bl.src && lk.src != bl.dst && lk.dst != bl.src && lk.dst != bl.dst
            });
            if ok {
                bad.push(l);
            }
        }
        bad
    }

    fn telemetry(
        topo: &Topology,
        bad_links: &[flock_topology::LinkId],
        n_flows: usize,
        seed: u64,
        drop_per_cross: u64,
    ) -> ObservationSet {
        let router = Router::new(topo);
        let hosts = topo.hosts().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flows = Vec::new();
        for i in 0..n_flows {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s {
                d = hosts[rng.random_range(0..hosts.len())];
            }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let crossings = tp.iter().filter(|l| bad_links.contains(l)).count() as u64;
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
                stats: FlowStats {
                    packets: 1000,
                    retransmissions: crossings * drop_per_cross,
                    bytes: 0,
                    rtt_sum_us: 0,
                    rtt_count: 0,
                    rtt_max_us: 0,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        assemble(
            topo,
            &router,
            &flows,
            &[InputKind::Int],
            AnalysisMode::PerPacket,
        )
    }

    #[test]
    fn plain_and_jle_find_identical_optimum() {
        let topo = small_topo();
        let mut rng = StdRng::seed_from_u64(77);
        let bad = disjoint_links(&topo, 2, &mut rng);
        let obs = telemetry(&topo, &bad, 500, 21, 5);
        let plain = SherlockFerret::new(HyperParams::default(), 2).localize(&topo, &obs);
        let jle = SherlockFerret::with_jle(HyperParams::default(), 2).localize(&topo, &obs);
        let mut p = plain.predicted.clone();
        let mut j = jle.predicted.clone();
        p.sort();
        j.sort();
        assert_eq!(p, j);
        assert!((plain.log_likelihood - jle.log_likelihood).abs() < 1e-7);
        let mut want: Vec<Component> = bad.iter().map(|l| Component::Link(*l)).collect();
        want.sort();
        assert_eq!(p, want, "exhaustive K=2 must find both failed links");
    }

    #[test]
    fn greedy_matches_exhaustive_mle() {
        // The §4.2 claim, verified empirically: greedy returns the same
        // hypothesis as exhaustive search when failures are separable.
        let topo = small_topo();
        let fabric = topo.fabric_links();
        let _ = &fabric;
        for seed in 30..36u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let k = rng.random_range(1..=2usize);
            let bad = disjoint_links(&topo, k, &mut rng);
            let obs = telemetry(&topo, &bad, 600, seed * 7 + 1, 6);
            let exhaustive =
                SherlockFerret::with_jle(HyperParams::default(), 2).localize(&topo, &obs);
            let greedy = FlockGreedy::default().localize(&topo, &obs);
            let mut e = exhaustive.predicted.clone();
            let mut g = greedy.predicted.clone();
            e.sort();
            g.sort();
            assert_eq!(e, g, "seed {seed}: greedy diverged from exhaustive MLE");
        }
    }

    #[test]
    fn k1_cannot_catch_two_failures_but_greedy_can() {
        let topo = small_topo();
        let mut rng = StdRng::seed_from_u64(88);
        let bad = disjoint_links(&topo, 2, &mut rng);
        let obs = telemetry(&topo, &bad, 800, 40, 6);
        let k1 = SherlockFerret::with_jle(HyperParams::default(), 1).localize(&topo, &obs);
        assert_eq!(k1.predicted.len(), 1, "K=1 is capped at one failure");
        let greedy = FlockGreedy::default().localize(&topo, &obs);
        assert_eq!(greedy.predicted.len(), 2, "greedy has no failure cap");
    }

    #[test]
    fn hypotheses_scanned_grows_with_k() {
        let topo = small_topo();
        let obs = telemetry(&topo, &[topo.fabric_links()[0]], 200, 50, 5);
        let s1 = SherlockFerret::new(HyperParams::default(), 1).localize(&topo, &obs);
        let s2 = SherlockFerret::new(HyperParams::default(), 2).localize(&topo, &obs);
        assert!(s2.hypotheses_scanned > s1.hypotheses_scanned * 10);
    }
}
