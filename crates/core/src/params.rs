//! Model hyperparameters (§3.2, §5.2).

use serde::{Deserialize, Serialize};

/// Hyperparameters of Flock's PGM.
///
/// * `p_g` — probability that a packet experiences a problem on a *good*
///   path (congestion, noise). Must satisfy `p_g < p_b`.
/// * `p_b` — probability that a packet experiences a problem on a *bad*
///   path (one with ≥ 1 failed component).
/// * `rho_link` — prior failure probability of a link. The prior
///   multiplies hypothesis likelihood by `ρ^|H| (1-ρ)^(n-|H|)`,
///   penalizing larger hypotheses (§3.2 "Incorporating Priors").
/// * `device_prior_factor` — the device prior is this factor larger on
///   log scale: `ln ρ_device = factor · ln ρ_link` (§3.2 found 5×
///   effective: device blame requires stronger evidence).
///
/// Defaults sit mid-range of the calibration grids of Fig. 8; the
/// `flock-calibrate` crate reproduces the paper's automated calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// Per-packet problem probability on good paths.
    pub p_g: f64,
    /// Per-packet problem probability on bad paths.
    pub p_b: f64,
    /// Prior failure probability of a link.
    pub rho_link: f64,
    /// Device prior factor on log scale.
    pub device_prior_factor: f64,
}

impl Default for HyperParams {
    fn default() -> Self {
        HyperParams {
            p_g: 4e-4,
            p_b: 5e-3,
            rho_link: (-10.0f64).exp(),
            device_prior_factor: 5.0,
        }
    }
}

impl HyperParams {
    /// Validate the parameter ranges; panics with a descriptive message on
    /// violation. Called by the inference constructors.
    pub fn validate(&self) {
        assert!(
            0.0 < self.p_g && self.p_g < self.p_b && self.p_b < 1.0,
            "require 0 < p_g < p_b < 1, got p_g={}, p_b={}",
            self.p_g,
            self.p_b
        );
        assert!(
            0.0 < self.rho_link && self.rho_link < 0.5,
            "rho_link must be in (0, 0.5), got {}",
            self.rho_link
        );
        assert!(self.device_prior_factor >= 1.0);
    }

    /// Prior log-odds of a link being failed: `ln(ρ/(1-ρ))` (negative).
    pub fn link_prior_logodds(&self) -> f64 {
        (self.rho_link / (1.0 - self.rho_link)).ln()
    }

    /// Prior log-odds of a device being failed, with the 5×-on-log-scale
    /// device prior: `ρ_dev = ρ_link^factor`.
    pub fn device_prior_logodds(&self) -> f64 {
        let rho_dev = self.rho_link.powf(self.device_prior_factor);
        (rho_dev / (1.0 - rho_dev)).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        HyperParams::default().validate();
    }

    #[test]
    fn priors_are_negative_and_device_is_stronger() {
        let p = HyperParams::default();
        assert!(p.link_prior_logodds() < 0.0);
        assert!(p.device_prior_logodds() < p.link_prior_logodds());
        // 5× on log scale (ρ ≈ odds for tiny ρ).
        let ratio = p.device_prior_logodds() / p.link_prior_logodds();
        assert!((ratio - 5.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "p_g < p_b")]
    fn rejects_inverted_probabilities() {
        HyperParams {
            p_g: 0.5,
            p_b: 0.01,
            ..Default::default()
        }
        .validate();
    }
}
