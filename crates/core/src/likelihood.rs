//! Numerically stable evaluation of the flow likelihood (Eq. 1).
//!
//! All likelihoods are *normalized* by the no-failure hypothesis (§3.3),
//! which cancels every flow whose path set contains no failed component.
//! For one flow with `w` possible paths, `r` bad of `t` packets, and `b`
//! failed paths under the hypothesis, the normalized log-likelihood is
//!
//! ```text
//! LLF(b) = ln( (b·e^s + (w-b)) / w ),
//! s = r·ln(p_b/p_g) + (t-r)·ln((1-p_b)/(1-p_g))
//! ```
//!
//! `s` — the flow's *score* — is the log-likelihood ratio of the flow's
//! observation on a bad vs. good path. It is the only place the packet
//! counts enter, so it is precomputed once per flow; `LLF(b)` itself
//! depends on the hypothesis only through the failed-path count `b`, which
//! is exactly the memoization the JLE pseudocode (`GetCounters`,
//! Algorithm 2) exploits.

use crate::params::HyperParams;
use flock_topology::FxHashMap;

/// The flow score `s`: log-likelihood ratio of observing `(bad, sent)` on
/// a failed path vs. a good path.
///
/// Positive when the observation is evidence *for* a failure (enough bad
/// packets), negative when it is evidence against (mostly clean packets).
#[inline]
pub fn flow_score(params: &HyperParams, sent: u64, bad: u64) -> f64 {
    debug_assert!(bad <= sent);
    let r = bad as f64;
    let t = sent as f64;
    r * (params.p_b / params.p_g).ln() + (t - r) * ((1.0 - params.p_b) / (1.0 - params.p_g)).ln()
}

/// Normalized flow log-likelihood given `b` failed paths out of `w`.
///
/// `llf(score, w, 0) == 0` (no failed path ⇒ same as the no-failure
/// hypothesis) and `llf(score, w, w) == score`.
#[inline]
pub fn llf(score: f64, w: u32, b: u32) -> f64 {
    debug_assert!(b <= w && w > 0, "b={b} w={w}");
    if b == 0 {
        return 0.0;
    }
    if b == w {
        return score;
    }
    // ln((b·e^s + (w-b))/w) via log-sum-exp for stability at large |s|.
    let a1 = (b as f64).ln() + score;
    let a2 = ((w - b) as f64).ln();
    let (hi, lo) = if a1 >= a2 { (a1, a2) } else { (a2, a1) };
    hi + (lo - hi).exp().ln_1p() - (w as f64).ln()
}

/// Memoized `llf` tables keyed by the flow evidence `(sent, bad, w)`.
///
/// A super-flow's log-likelihood depends on the hypothesis only through
/// its failed-path count `b ∈ 0..=w`, so the whole transcendental cost of
/// [`llf`] can be paid once per *distinct evidence key* and every flip
/// sweep afterwards is a pure table gather. The table is flat `f64`
/// storage: a flow holds an offset and reads `values()[off + b]`.
///
/// Entries are produced by calling [`llf`] itself, so a table lookup is
/// **bit-identical** to direct evaluation by construction — the property
/// the SIMD kernels (see [`crate::simd`]) rely on to keep scalar and
/// vector sweeps exactly equal.
///
/// The table is extend-only: keys interned in earlier epochs stay valid
/// across view rebinds, so offsets held by live super-flows never move.
#[derive(Debug, Default, Clone)]
pub struct TermTable {
    /// Flat storage; the table for a key sits at `off..off + w + 1`.
    values: Vec<f64>,
    /// `(sent, bad, w)` → offset of that key's table in `values`.
    index: FxHashMap<(u64, u64, u32), u32>,
    /// Distinct keys interned so far (for diagnostics/bench reporting).
    tables: usize,
}

impl TermTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern the evidence key `(sent, bad, w)`, building its `w + 1`
    /// entries on first sight, and return `(offset, score)`.
    ///
    /// `w` must be positive (a flow with no candidate paths carries no
    /// evidence and is dropped before it reaches the engine). The score
    /// is finite for any valid [`HyperParams`]; if a degenerate parameter
    /// set ever produces a non-finite score the table stores the exact
    /// `llf` outputs for it unchanged, so lookups still agree bitwise
    /// with direct evaluation — the non-finite guard property tests pin
    /// this down.
    pub fn intern(&mut self, params: &HyperParams, sent: u64, bad: u64, w: u32) -> (u32, f64) {
        self.intern_prefilled(params, sent, bad, w, None)
    }

    /// [`intern`](Self::intern) with an optional pre-computed ladder
    /// source: on a key miss, if `prefill` holds the key's ladder the
    /// entries are copied in instead of recomputed. Prefill ladders are
    /// built by the same [`llf`] over the same [`flow_score`], so the
    /// copy is bit-identical to direct computation — it only moves the
    /// transcendental cost off the caller (the pipelined executor pays
    /// it during the assembly stage, overlapped with the previous
    /// epoch's inference).
    pub fn intern_prefilled(
        &mut self,
        params: &HyperParams,
        sent: u64,
        bad: u64,
        w: u32,
        prefill: Option<&TermPrefill>,
    ) -> (u32, f64) {
        debug_assert!(w > 0, "term table requires w > 0");
        let score = flow_score(params, sent, bad);
        if let Some(&off) = self.index.get(&(sent, bad, w)) {
            return (off, score);
        }
        let off = u32::try_from(self.values.len()).expect("term table exceeds u32 offsets");
        match prefill.and_then(|p| p.get(sent, bad, w)) {
            Some(ladder) => self.values.extend_from_slice(ladder),
            None => {
                for b in 0..=w {
                    self.values.push(llf(score, w, b));
                }
            }
        }
        self.index.insert((sent, bad, w), off);
        self.tables += 1;
        (off, score)
    }

    /// The flat value storage; a flow's table is `&values()[off..=off + w]`.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total `f64` entries across all interned keys.
    pub fn entries(&self) -> usize {
        self.values.len()
    }

    /// Distinct `(sent, bad, w)` keys interned.
    pub fn tables(&self) -> usize {
        self.tables
    }
}

/// Pre-computed [`llf`] ladders keyed by `(sent, bad, w)`, built during
/// the assembly stage and consumed by
/// [`TermTable::intern_prefilled`] at engine-rebind time.
///
/// This is the term-table pre-extension hook of the pipelined epoch
/// loop: the assembler knows every evidence key the epoch will intern
/// (it computed each observation's counts and path-set width), so the
/// transcendental ladder work happens off the inference critical path.
/// Ladders come from the same [`flow_score`] + [`llf`] as a direct
/// intern, so consuming a prefill is bit-identical to not having one.
#[derive(Debug, Default, Clone)]
pub struct TermPrefill {
    map: FxHashMap<(u64, u64, u32), Box<[f64]>>,
}

impl TermPrefill {
    /// An empty prefill.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute (once) the ladder for `(sent, bad, w)`. `w` must be
    /// positive, as for [`TermTable::intern`].
    pub fn ensure(&mut self, params: &HyperParams, sent: u64, bad: u64, w: u32) {
        debug_assert!(w > 0, "term prefill requires w > 0");
        self.map.entry((sent, bad, w)).or_insert_with(|| {
            let score = flow_score(params, sent, bad);
            (0..=w).map(|b| llf(score, w, b)).collect()
        });
    }

    /// The ladder for `(sent, bad, w)`, if ensured.
    #[inline]
    pub fn get(&self, sent: u64, bad: u64, w: u32) -> Option<&[f64]> {
        self.map.get(&(sent, bad, w)).map(|b| &b[..])
    }

    /// Distinct keys held.
    pub fn tables(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HyperParams {
        HyperParams::default()
    }

    /// Direct (unstable) evaluation of Eq. 1, for cross-checking.
    fn llf_direct(p: &HyperParams, sent: u64, bad: u64, w: u32, b: u32) -> f64 {
        let good_term = p.p_g.powi(bad as i32) * (1.0 - p.p_g).powi((sent - bad) as i32);
        let bad_term = p.p_b.powi(bad as i32) * (1.0 - p.p_b).powi((sent - bad) as i32);
        let num = b as f64 * bad_term + (w - b) as f64 * good_term;
        (num / (w as f64 * good_term)).ln()
    }

    #[test]
    fn boundary_values() {
        let s = flow_score(&params(), 100, 3);
        assert_eq!(llf(s, 8, 0), 0.0);
        assert!((llf(s, 8, 8) - s).abs() < 1e-12);
    }

    #[test]
    fn matches_direct_evaluation() {
        let p = params();
        for (sent, bad) in [(50u64, 0u64), (50, 1), (200, 5), (1000, 12)] {
            let s = flow_score(&p, sent, bad);
            for w in [1u32, 2, 4, 16] {
                for b in 0..=w {
                    let fast = llf(s, w, b);
                    let direct = llf_direct(&p, sent, bad, w, b);
                    assert!(
                        (fast - direct).abs() < 1e-9 * (1.0 + direct.abs()),
                        "sent={sent} bad={bad} w={w} b={b}: {fast} vs {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn monotone_in_b_matching_score_sign() {
        let p = params();
        // Evidence for failure: more failed paths ⇒ higher likelihood.
        let s_pos = flow_score(&p, 100, 10);
        assert!(s_pos > 0.0);
        for b in 0..16 {
            assert!(llf(s_pos, 16, b + 1) > llf(s_pos, 16, b));
        }
        // Evidence against: more failed paths ⇒ lower likelihood.
        let s_neg = flow_score(&p, 1000, 0);
        assert!(s_neg < 0.0);
        for b in 0..16 {
            assert!(llf(s_neg, 16, b + 1) < llf(s_neg, 16, b));
        }
    }

    #[test]
    fn stable_at_extreme_scores() {
        // A flow with thousands of drops has an astronomically large
        // score; llf must not overflow.
        let p = params();
        let s = flow_score(&p, 100_000, 50_000);
        assert!(s.is_finite() && s > 1000.0);
        let v = llf(s, 32, 1);
        assert!(v.is_finite());
        // b=1 of w: llf ≈ s - ln w for huge s.
        assert!((v - (s - (32f64).ln())).abs() < 1e-6);

        let s2 = flow_score(&p, 1_000_000, 0);
        let v2 = llf(s2, 32, 31);
        assert!(v2.is_finite());
        // Almost all paths failed with crushing counter-evidence:
        // ln(1/w) remains.
        assert!((v2 - (1.0f64 / 32.0).ln()).abs() < 1e-6);
    }

    #[test]
    fn prefilled_intern_is_bit_identical() {
        let p = params();
        let keys = [(40u64, 0u64, 4u32), (80, 2, 4), (160, 3, 8), (320, 0, 1)];
        let mut prefill = TermPrefill::new();
        for &(sent, bad, w) in &keys {
            prefill.ensure(&p, sent, bad, w);
        }
        let mut direct = TermTable::new();
        let mut filled = TermTable::new();
        for &(sent, bad, w) in &keys {
            let (od, sd) = direct.intern(&p, sent, bad, w);
            let (of, sf) = filled.intern_prefilled(&p, sent, bad, w, Some(&prefill));
            assert_eq!(od, of);
            assert_eq!(sd.to_bits(), sf.to_bits());
        }
        assert_eq!(direct.entries(), filled.entries());
        for (a, b) in direct.values().iter().zip(filled.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A key missing from the prefill falls back to direct compute.
        let (o1, _) = direct.intern(&p, 999, 7, 6);
        let (o2, _) = filled.intern_prefilled(&p, 999, 7, 6, Some(&prefill));
        assert_eq!(o1, o2);
        assert_eq!(direct.values().len(), filled.values().len());
    }

    #[test]
    fn score_is_linear_in_counts() {
        let p = params();
        let s1 = flow_score(&p, 100, 2);
        let s2 = flow_score(&p, 200, 4);
        assert!((2.0 * s1 - s2).abs() < 1e-9);
    }
}
