//! The shared inference engine: hypothesis state plus the Δ array of
//! Joint Likelihood Exploration (JLE, §3.3), running over a *local*
//! projection of the evidence.
//!
//! # Local vs global ids
//!
//! A sharded executor builds many engines over one shared, append-only
//! [`flock_telemetry::PathArena`]. If every engine indexed its state by
//! global arena/component ids, each would pay O(total arena) fixed costs
//! per epoch — full-array resets on rebind, all-sets sweeps, strided
//! access over fleet-wide arrays — regardless of how little evidence its
//! shard actually sees. Instead, every engine is bound to an
//! [`ArenaView`]: a persistent dense projection of the arena onto the
//! paths/sets its accepted observations touch. **All internal state and
//! every public index on this type — `delta()`, `flip()`, `hypothesis()`
//! — is a dense local id**, assigned in first-touch order and stable for
//! the engine's lifetime (views are append-only). Components are
//! localized the same way as paths bring them in; translate at the
//! boundary with [`Engine::global_comp`] / [`Engine::local_comp`] /
//! [`Engine::component`]. [`Engine::n_comps`] is therefore the number of
//! components *with evidence in this shard's history*, not the topology's
//! component count ([`Engine::n_global_comps`]) — which is exactly what
//! makes a plane engine's Δ scans, resets, and searches O(its own
//! evidence).
//!
//! Engines built through the plain constructors ([`Engine::new`],
//! [`Engine::new_filtered`], [`Engine::with_options`]) own a private view
//! internally; sharded executors that maintain one view per shard bind
//! externally via [`Engine::with_view`] / [`Engine::try_rebind_view`].
//!
//! # State
//!
//! The engine mirrors the observation set's structure:
//!
//! * per viewed fabric path: its (deduplicated) component list and the
//!   current *fail count* — how many hypothesis components lie on it;
//! * per viewed path set: the number of member paths with a non-zero
//!   fail count (`set_bad`), shared by every flow using the set;
//! * per **super-flow**: all observations sharing the same evidence key
//!   `(path set, sent, bad)`, collapsed into one weighted record. The
//!   per-flow likelihood (Eq. 1) depends on the observation only through
//!   its score `s = s(sent, bad)`, its path-set width `w`, and the failed
//!   path count `b`, and the total log-likelihood is linear in the
//!   aggregation weight — so the collapse is *exact*, and the per-epoch
//!   flow table shrinks from O(flows) to O(distinct evidence keys);
//! * per super-flow *member*: the handful of *extra* components a prefix
//!   group adds on every one of its paths (host attachment links, and the
//!   ToR device for intra-rack flows) with its own weight and fail count.
//!   A member's failed-path count is `w` while any of its extras is in
//!   the hypothesis ("pinned"); otherwise it follows `set_bad` of the
//!   super-flow's set. The super-flow tracks the pinned weight so the hot
//!   fabric sweep needs only the *active* (unpinned) total.
//!
//! # The Δ array
//!
//! `delta[c] = LL(H ⊕ c) − LL(H)` for every local component `c`
//! (likelihood part only; priors are added by the search layers, keeping
//! Δ independent of hypothesis size). [`Engine::flip`] toggles one
//! component and updates the *entire* array by visiting only the
//! super-flows that intersect the flipped component — Theorem 1
//! guarantees every other entry's terms are unchanged. Per flip this
//! costs `O(D·T)` (super-flows touching the component × their path-set
//! sizes) instead of the `O(n·D·T)` a from-scratch recomputation would
//! need: the `O(n)` JLE speedup — with `D` counting *distinct evidence
//! keys*, not raw flows, when coalescing is on (the default; see
//! [`EngineOptions`]).
//!
//! The flip path is allocation-free in steady state: counter snapshots,
//! inverted-index walks, and per-set scratch all reuse persistent arenas
//! that survive across flips *and* epochs ([`Engine::rebind`]).
//!
//! For search algorithms that do not want Δ maintenance (Sherlock without
//! JLE, greedy without JLE), [`Engine::flip_ll_only`] updates the state
//! and the total log-likelihood but skips the Δ bookkeeping, and
//! [`Engine::delta_single`] evaluates one neighbor from current state.

use crate::likelihood::{llf, TermPrefill, TermTable};
use crate::params::HyperParams;
use crate::simd::{self, KernelDispatch};
use crate::space::{CompIdx, ComponentSpace};
use flock_telemetry::{ArenaView, CoalesceMode, DenseRemap, FlowObs, ObservationSet, ViewError};
use flock_topology::{Component, Topology};

/// One set counter entry: `(comp, g, s)` — member paths with fail count 0
/// (`g`) / exactly 1 (`s`) containing `comp`.
type Counter = (CompIdx, u32, u32);

/// Compact CSR-style adjacency: `items[offsets[i]..offsets[i+1]]`.
#[derive(Debug, Clone, Default)]
struct Csr {
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl Csr {
    /// (Re)build from `(bucket, item)` pairs by counting scatter —
    /// `O(pairs + buckets)`, no comparison sort — reusing the offset/item
    /// buffers, so the per-epoch rebind path allocates nothing once
    /// capacity has grown to the workload's size. Pairs must be
    /// duplicate-free (they are throughout the engine: per-path/per-set
    /// component lists and per-member extras are deduplicated before
    /// pairs are emitted), and within a bucket items keep their input
    /// order.
    fn rebuild(&mut self, n_buckets: usize, pairs: &[(u32, u32)]) {
        self.offsets.clear();
        self.offsets.resize(n_buckets + 1, 0);
        for &(b, _) in pairs {
            self.offsets[b as usize + 1] += 1;
        }
        for i in 0..n_buckets {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.items.clear();
        self.items.resize(pairs.len(), 0);
        // Scatter using `offsets[b]` as the running cursor (each bucket's
        // start advances to its end), then shift the table back one slot.
        for &(b, it) in pairs {
            self.items[self.offsets[b as usize] as usize] = it;
            self.offsets[b as usize] += 1;
        }
        for i in (1..=n_buckets).rev() {
            self.offsets[i] = self.offsets[i - 1];
        }
        self.offsets[0] = 0;
    }

    #[inline]
    fn get(&self, bucket: u32) -> &[u32] {
        let lo = self.offsets[bucket as usize] as usize;
        let hi = self.offsets[bucket as usize + 1] as usize;
        &self.items[lo..hi]
    }

    fn n_buckets(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }
}

/// One weighted super-flow: every observation of the epoch sharing the
/// evidence key `(set, sent, bad)` (when coalescing is on).
#[derive(Debug, Clone)]
struct SFlow {
    /// Local path-set index.
    set: u32,
    /// Flow score `s` (see [`crate::likelihood`]); equal `(sent, bad)`
    /// implies equal score, so the key collapse loses nothing.
    score: f64,
    /// Path-set size.
    w: u32,
    /// Total aggregation weight (number of merged underlying flows).
    weight: f64,
    /// Weight currently pinned at `b = w` by a failed extra — the sum of
    /// member weights with `extra_fail > 0`. `weight - pinned` is the
    /// *active* weight the fabric sweep multiplies by.
    pinned: f64,
    /// Members carrying extras: the half-open range `[lo, hi)` into
    /// [`Engine::members`] (weight without a member has no extras).
    members: (u32, u32),
    /// Offset of this flow's `(sent, bad, w)` table in the engine's
    /// [`TermTable`]: `terms.values()[tbl + b]` is `llf(score, w, b)`.
    tbl: u32,
}

/// One prefix group of a super-flow: the merged observations sharing both
/// the evidence key *and* the extra components.
#[derive(Debug, Clone, Copy)]
struct SMember {
    /// Owning super-flow.
    flow: u32,
    /// Extra components (local ids) on every path (host links +
    /// intra-rack ToR).
    extras: [CompIdx; 4],
    n_extras: u8,
    /// How many extras are currently in the hypothesis.
    extra_fail: u8,
    /// Aggregation weight of this prefix group.
    weight: f64,
}

impl SMember {
    #[inline]
    fn extras(&self) -> &[CompIdx] {
        &self.extras[..self.n_extras as usize]
    }
}

/// Engine construction options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// Collapse observations sharing the same `(path set, sent, bad)`
    /// evidence key into one weighted super-flow. Exact — the likelihood
    /// is linear in the aggregation weight (see
    /// `likelihood::score_is_linear_in_counts`) — and the default; turn
    /// off only to measure the raw-flow baseline.
    pub coalesce: bool,
    /// How far coalescing reaches: [`CoalesceMode::Exact`] (the default)
    /// merges equal keys only; [`CoalesceMode::Approx`] additionally
    /// merges whole log-spaced `(sent, bad)` buckets into one super-flow
    /// under the bucket's first observation as representative. The exact
    /// likelihood perturbation each merge introduces is accumulated into
    /// [`Engine::drift_bound`], so searches can certify approximate
    /// verdicts against it (see [`crate::BudgetedSearch::margin`]).
    /// Ignored when `coalesce` is off.
    pub mode: CoalesceMode,
    /// Kernel dispatch override. `None` (the default) resolves once per
    /// process via [`KernelDispatch::resolve`] (runtime AVX2 detection,
    /// honoring `FLOCK_NO_SIMD`); `Some` forces a level — used by the
    /// scalar-vs-SIMD bit-identity property tests and the bench probes.
    /// A forced level the CPU cannot run is clamped to portable.
    pub kernel: Option<KernelDispatch>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            coalesce: true,
            mode: CoalesceMode::Exact,
            kernel: None,
        }
    }
}

/// The evidence behind one conviction, as reported by
/// [`Engine::convicting_evidence`]: which super-flows (and through which
/// path sets) contributed likelihood terms to the component's Δ. Set ids
/// are *view-local*; sharded callers translate through their
/// `ArenaView::global_set` before reporting.
#[derive(Debug, Clone, Default)]
pub struct ConvictingEvidence {
    /// Distinct super-flows whose likelihood involves the component.
    pub super_flows: usize,
    /// Total aggregation weight behind those super-flows — the number of
    /// raw merged observations implicating the component.
    pub weight: f64,
    /// Per path set touching the component: `(local set id, aggregate
    /// super-flow weight)`, heaviest first.
    pub sets: Vec<(u32, f64)>,
}

/// Counters reported by the engine for performance accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Number of `flip`/`flip_ll_only` calls performed.
    pub flips: u64,
    /// Super-flow/member contribution updates performed across all flips.
    pub flow_updates: u64,
}

/// Resident state sizes of one engine — every entry scales with the
/// engine's *own* (shard-local) evidence history, not the shared arena,
/// which is the invariant the per-shard view layer exists to provide
/// (asserted by `flock-stream`'s state-sparsity tests and reported in
/// `bench-report`'s `fixed_cost` section).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct EngineStateSizes {
    /// Local components (length of the Δ array, `in_h`, and the per-flip
    /// scratch counters).
    pub comps: usize,
    /// Local paths (length of `path_fail` and the per-path structure).
    pub paths: usize,
    /// Local sets (length of `set_bad` and the per-set structure).
    pub sets: usize,
    /// Super-flows this epoch.
    pub flows: usize,
    /// Extras-carrying members this epoch.
    pub members: usize,
    /// Width of the full topology component space, for ratio reporting.
    pub global_comps: usize,
}

/// Shared inference state over one shard's slice of an
/// [`ObservationSet`]. See the module docs for the data layout and the
/// local-id conventions.
pub struct Engine {
    space: ComponentSpace,
    params: HyperParams,
    opts: EngineOptions,

    /// The engine's private view (plain constructors); `None` when bound
    /// to an externally maintained view ([`Engine::with_view`]).
    own_view: Option<ArenaView>,
    /// Identity of the view the structures were built over.
    bound_view: Option<u64>,

    /// Component localization: dense local ids in first-touch order,
    /// sharing the [`DenseRemap`] implementation with the view's
    /// path/set projections. The global→local side is id-width (one
    /// global-sized table of remap ids, never reset per epoch); every
    /// evidence-width structure is local.
    comps: DenseRemap,

    // Paths (local ids).
    path_comps: Vec<Vec<CompIdx>>,
    path_fail: Vec<u32>,
    comp_to_paths: Csr,
    /// Cumulative `(comp, path)` pairs backing `comp_to_paths`; appended
    /// as the view grows so a rebind never re-derives history.
    comp_path_pairs: Vec<(u32, u32)>,

    // Sets (local ids).
    sets: Vec<Vec<u32>>,
    set_comps: Vec<Vec<CompIdx>>,
    set_bad: Vec<u32>,
    comp_to_sets: Csr,
    /// Cumulative `(comp, set)` pairs backing `comp_to_sets`.
    comp_set_pairs: Vec<(u32, u32)>,
    set_flows: Csr,

    // Flows: super-flows plus their extras-carrying members.
    sflows: Vec<SFlow>,
    members: Vec<SMember>,
    comp_extra_members: Csr,
    /// Raw observations accepted into the current flow table (before
    /// coalescing) — `n_obs / sflows.len()` is the epoch's coalesce ratio.
    n_obs: usize,

    // Hypothesis state (local ids).
    in_h: Vec<bool>,
    hypothesis: Vec<CompIdx>,
    delta: Vec<f64>,
    ll: f64,
    stats: EngineStats,
    /// Accumulated worst-case log-likelihood drift of this epoch's flow
    /// table versus exact coalescing: `Σ weightᵢ · |sᵢ − s_rep|` over all
    /// approximately merged observations (see [`Engine::drift_bound`]).
    /// Exactly 0.0 in exact mode.
    drift: f64,

    /// Kernel dispatch level every sweep on this engine runs at
    /// (resolved or forced at construction; see [`EngineOptions`]).
    dispatch: KernelDispatch,
    /// Memoized `llf` tables per distinct `(sent, bad, w)` evidence key;
    /// extend-only, so `SFlow::tbl` offsets survive rebinds.
    terms: TermTable,
    /// Ladders pre-computed during the assembly stage, consumed (and
    /// cleared) by the next [`Engine::rebuild_flows`] so first-sight
    /// evidence keys cost a copy instead of transcendentals on the
    /// inference critical path. `None` outside the pipelined executor.
    term_prefill: Option<std::sync::Arc<TermPrefill>>,
    /// Per-component argmax bias for the warm-start *move* scan:
    /// `+prior_logodds(c)` when `c` is out of the hypothesis (adding
    /// pays the prior), `-prior_logodds(c)` when in (removal reclaims
    /// it). Maintained O(1) per flip so the greedy argmax is one fused
    /// `delta + bias` vector scan.
    gain_move_bias: Vec<f64>,
    /// Argmax bias for the cold-start *add* scan: `+prior_logodds(c)`,
    /// or `-inf` when `c` is already in the hypothesis (not addable).
    gain_add_bias: Vec<f64>,

    // Scratch arenas reused across flips and epochs: the flip path and
    // the per-epoch rebuild allocate nothing in steady state.
    scratch_g: Vec<u32>,
    scratch_s: Vec<u32>,
    // Pre-flip counter snapshots across the flip's affected sets, split
    // into the SIMD-regular partition (components outside the hypothesis
    // and != the flipped comp — SoA lanes for the fabric kernel) and the
    // special partition (in-hypothesis comps plus the flipped comp,
    // handled by the scalar branchy path). The split predicate is stable
    // across the flip, so pre-/post-flip partitions align element-wise.
    /// Regular partition, component lanes…
    snap_l: Vec<u32>,
    /// …and their fail-count-0 path counts (`g`).
    snap_g: Vec<u32>,
    /// Per-set offsets into `snap_l`/`snap_g`
    /// (`snap_off[k]..snap_off[k+1]` is affected set `k`).
    snap_off: Vec<u32>,
    /// Special partition `(comp, g, s)` counters…
    snap_sp: Vec<Counter>,
    /// …with per-set offsets.
    snap_sp_off: Vec<u32>,
    /// Post-flip counters of the set currently being swept (same split).
    new_l: Vec<u32>,
    new_g: Vec<u32>,
    new_sp: Vec<Counter>,
    /// Distinct `g` values / per-`g` likelihood sums of the set currently
    /// being initialized.
    scratch_gs: Vec<u32>,
    scratch_sums: Vec<f64>,
    /// `(set, super-flow)` / `(comp, member)` pair staging for the CSR
    /// rebuilds of [`Engine::rebuild_flows`].
    pair_set_flows: Vec<(u32, u32)>,
    pair_extra_members: Vec<(u32, u32)>,
}

/// Predicate selecting the observations an engine sees (sharded
/// executors build several engines over one `ObservationSet`, each
/// restricted to the flows that can implicate its components). The
/// first argument is the observation's index in `obs.flows`, so
/// executors that precompute a per-flow relevance signature *once* per
/// epoch (e.g. `flock-stream`'s pod/plane touch masks) can answer in
/// O(1) per shard instead of re-deriving the signature per engine —
/// with one engine per spine plane, that per-engine derivation would
/// otherwise dominate the plane engines' (much smaller) real work.
///
/// Because the total log-likelihood is a sum of independent per-flow
/// terms, filters that *partition* the observations yield engines whose
/// likelihoods and Δ arrays sum exactly to the unfiltered engine's
/// (projected onto global component ids) — the invariant per-plane spine
/// sharding relies on: traced evidence splits by plane losslessly, and
/// each plane engine's Δ entries for its own components equal the full
/// engine's whenever the filter accepts every flow containing those
/// components (see `filtered_engines_partition_evidence`).
pub type FlowFilter<'a> = &'a dyn Fn(usize, &FlowObs) -> bool;

impl Engine {
    /// Build an engine for `obs` over `topo`.
    pub fn new(topo: &Topology, obs: &ObservationSet, params: HyperParams) -> Engine {
        Self::new_filtered(topo, obs, params, None)
    }

    /// Build an engine over the subset of `obs` selected by `filter`
    /// (`None` = all observations). The filter restricts evidence; blame
    /// targets are whatever components that evidence touches.
    pub fn new_filtered(
        topo: &Topology,
        obs: &ObservationSet,
        params: HyperParams,
        filter: Option<FlowFilter<'_>>,
    ) -> Engine {
        Self::with_options(topo, obs, params, filter, EngineOptions::default())
    }

    /// [`Engine::new_filtered`] with explicit [`EngineOptions`]. The
    /// engine owns a private [`ArenaView`] projecting the accepted
    /// evidence; use [`Engine::with_view`] to bind an externally
    /// maintained view instead.
    pub fn with_options(
        topo: &Topology,
        obs: &ObservationSet,
        params: HyperParams,
        filter: Option<FlowFilter<'_>>,
        opts: EngineOptions,
    ) -> Engine {
        let mut engine = Self::empty(topo, params, opts, Some(ArenaView::new()));
        engine
            .try_rebind_filtered(topo, obs, filter)
            .expect("a fresh view accepts any arena");
        engine
    }

    /// Build an engine over the evidence recorded in `view` (which must
    /// have been bound to `obs` via [`ArenaView::bind_epoch`] already).
    /// The caller keeps ownership of the view and passes it back on every
    /// [`Engine::try_rebind_view`]; this is how `flock-stream` maintains
    /// one view per shard.
    ///
    /// # Panics
    /// If the view has never been bound to an arena (a programming
    /// error; epoch binding also records the epoch's accepted flows,
    /// without which the engine has no evidence to build from).
    pub fn with_view(
        topo: &Topology,
        obs: &ObservationSet,
        params: HyperParams,
        opts: EngineOptions,
        view: &ArenaView,
    ) -> Engine {
        assert!(
            view.lineage().is_some(),
            "bind_epoch the view before building an engine over it"
        );
        let mut engine = Self::empty(topo, params, opts, None);
        engine
            .try_rebind_view(topo, obs, view)
            .expect("the view must have been bound to this observation set's arena");
        engine
    }

    fn empty(
        topo: &Topology,
        params: HyperParams,
        opts: EngineOptions,
        own_view: Option<ArenaView>,
    ) -> Engine {
        params.validate();
        let space = ComponentSpace::new(topo);
        let n_global = space.n_comps();
        Engine {
            space,
            params,
            opts,
            own_view,
            bound_view: None,
            comps: {
                let mut m = DenseRemap::new();
                m.ensure_ids(n_global);
                m
            },
            path_comps: Vec::new(),
            path_fail: Vec::new(),
            comp_to_paths: Csr::default(),
            comp_path_pairs: Vec::new(),
            sets: Vec::new(),
            set_comps: Vec::new(),
            set_bad: Vec::new(),
            comp_to_sets: Csr::default(),
            comp_set_pairs: Vec::new(),
            set_flows: Csr::default(),
            sflows: Vec::new(),
            members: Vec::new(),
            comp_extra_members: Csr::default(),
            n_obs: 0,
            in_h: Vec::new(),
            hypothesis: Vec::new(),
            delta: Vec::new(),
            ll: 0.0,
            stats: EngineStats::default(),
            drift: 0.0,
            dispatch: opts
                .kernel
                .map(KernelDispatch::clamped)
                .unwrap_or_else(KernelDispatch::resolve),
            terms: TermTable::new(),
            term_prefill: None,
            gain_move_bias: Vec::new(),
            gain_add_bias: Vec::new(),
            scratch_g: Vec::new(),
            scratch_s: Vec::new(),
            snap_l: Vec::new(),
            snap_g: Vec::new(),
            snap_off: Vec::new(),
            snap_sp: Vec::new(),
            snap_sp_off: Vec::new(),
            new_l: Vec::new(),
            new_g: Vec::new(),
            new_sp: Vec::new(),
            scratch_gs: Vec::new(),
            scratch_sums: Vec::new(),
            pair_set_flows: Vec::new(),
            pair_extra_members: Vec::new(),
        }
    }

    /// Rebind the engine to a *new* observation set whose arena extends
    /// the one this engine was built on (the contract kept by
    /// [`flock_telemetry::Assembler`]: interning is append-only, so every
    /// previously seen path/set id denotes identical content).
    ///
    /// This is the warm-start fast path of the online pipeline: per-path
    /// and per-set component structures — the dominant cost of
    /// [`Engine::new`] — are reused and only *extended* for newly viewed
    /// paths; the per-flow layer is rebuilt for the epoch. The hypothesis
    /// is cleared and the Δ array recomputed; re-seed via
    /// [`Engine::flip`] (see `FlockGreedy::search_warm`). Every reset in
    /// this path is O(the engine's own evidence), not O(total arena).
    ///
    /// # Panics
    /// On a shrunk or foreign-lineage arena — the conditions
    /// [`Engine::try_rebind_filtered`] reports as a typed [`ViewError`].
    pub fn rebind(&mut self, topo: &Topology, obs: &ObservationSet) {
        self.rebind_filtered(topo, obs, None)
    }

    /// [`Engine::rebind`] restricted to the observations selected by
    /// `filter`.
    ///
    /// # Panics
    /// See [`Engine::rebind`]; the fallible variant is
    /// [`Engine::try_rebind_filtered`].
    pub fn rebind_filtered(
        &mut self,
        topo: &Topology,
        obs: &ObservationSet,
        filter: Option<FlowFilter<'_>>,
    ) {
        if let Err(e) = self.try_rebind_filtered(topo, obs, filter) {
            panic!("Engine::rebind: {e}");
        }
    }

    /// Fallible [`Engine::rebind_filtered`]: the engine's view validates
    /// the arena and rejects a shrunk or foreign-lineage one with a
    /// typed error, leaving the engine's previous state intact (the
    /// epoch's flow layer is untouched on error).
    pub fn try_rebind_filtered(
        &mut self,
        topo: &Topology,
        obs: &ObservationSet,
        filter: Option<FlowFilter<'_>>,
    ) -> Result<(), ViewError> {
        let mut view = self
            .own_view
            .take()
            .expect("engine bound to an external view must rebind via try_rebind_view");
        let bound = view.bind_epoch(obs, |i, o| match filter {
            Some(keep) => keep(i, o),
            None => true,
        });
        let result = bound.and_then(|()| self.try_rebind_view(topo, obs, &view));
        self.own_view = Some(view);
        result
    }

    /// Rebind over an externally maintained view (already
    /// [bound](ArenaView::bind_epoch) to `obs` for this epoch). Rejects
    /// a view other than the one the engine's local ids were assigned by
    /// with [`ViewError::ForeignView`], and an observation set whose
    /// arena the view does not cover (foreign lineage, or an earlier
    /// state of the right lineage) with the matching [`ViewError`] —
    /// indexing `obs` with another arena's view ids would be silent
    /// misindexing, the exact failure class the typed errors exist for.
    pub fn try_rebind_view(
        &mut self,
        topo: &Topology,
        obs: &ObservationSet,
        view: &ArenaView,
    ) -> Result<(), ViewError> {
        match self.bound_view {
            None => self.bound_view = Some(view.id()),
            Some(expected) if expected != view.id() => {
                return Err(ViewError::ForeignView {
                    expected,
                    got: view.id(),
                });
            }
            Some(_) => {}
        }
        view.covers(&obs.arena)?;

        // Reset hypothesis-dependent state — all O(local).
        self.in_h.fill(false);
        self.hypothesis.clear();
        self.path_fail.fill(0);
        self.set_bad.fill(0);
        self.delta.fill(0.0);
        self.ll = 0.0;

        let structures_grew = self.extend_structures(topo, obs, view);
        self.rebuild_flows(topo, obs, view);

        // Component-indexed arrays and inverted indexes span the local
        // component space, which extras may have widened just now.
        let n = self.comps.len();
        self.in_h.resize(n, false);
        self.delta.resize(n, 0.0);
        self.scratch_g.resize(n, 0);
        self.scratch_s.resize(n, 0);
        // Rebuilding the argmax bias arrays is O(local): the hypothesis
        // is empty after the reset above, so both scans start from the
        // pure add prior.
        self.gain_move_bias.resize(n, 0.0);
        self.gain_add_bias.resize(n, 0.0);
        let link_prior = self.params.link_prior_logodds();
        let device_prior = self.params.device_prior_logodds();
        for c in 0..n {
            let p = if self.space.is_device(self.comps.global(c as u32)) {
                device_prior
            } else {
                link_prior
            };
            self.gain_move_bias[c] = p;
            self.gain_add_bias[c] = p;
        }
        if structures_grew || self.comp_to_paths.n_buckets() != n {
            self.comp_to_paths.rebuild(n, &self.comp_path_pairs);
            self.comp_to_sets.rebuild(n, &self.comp_set_pairs);
        }
        self.set_flows
            .rebuild(self.sets.len(), &self.pair_set_flows);
        self.comp_extra_members.rebuild(n, &self.pair_extra_members);

        self.compute_initial_delta();
        Ok(())
    }

    /// Local id of a global component, assigning the next dense id on
    /// first touch.
    #[inline]
    fn localize(&mut self, g: CompIdx) -> CompIdx {
        self.comps.assign(g)
    }

    /// Extend the view-derived structural layer (per-path and per-set
    /// component lists plus their localization) to cover the view's
    /// current projection. No-op when the view has not grown — the
    /// steady-state case that makes warm rebinding cheap.
    fn extend_structures(
        &mut self,
        topo: &Topology,
        obs: &ObservationSet,
        view: &ArenaView,
    ) -> bool {
        let old_paths = self.path_comps.len();
        let n_paths = view.n_paths();
        // Viewed fabric paths → local component lists (links + their
        // switch endpoints, deduplicated; round-trip probe paths visit a
        // device twice but it is one component).
        for lp in old_paths as u32..n_paths as u32 {
            let links = obs.arena.path(view.global_path(lp));
            let mut comps: Vec<CompIdx> = Vec::with_capacity(links.len() * 2 + 1);
            for &l in links {
                comps.push(self.localize_link(l));
                let link = topo.link(l);
                for end in [link.src, link.dst] {
                    if let Some(d) = self.space.device_comp(end) {
                        comps.push(self.localize(d));
                    }
                }
            }
            comps.sort_unstable();
            comps.dedup();
            self.comp_path_pairs.extend(comps.iter().map(|&c| (c, lp)));
            self.path_comps.push(comps);
        }
        self.path_fail.resize(n_paths, 0);

        // Sets and their component unions.
        let old_sets = self.sets.len();
        let n_sets = view.n_sets();
        for ls in old_sets as u32..n_sets as u32 {
            let members: Vec<u32> = obs
                .arena
                .set(view.global_set(ls))
                .iter()
                .map(|p| {
                    view.local_path(*p)
                        .expect("a view projects every member path of its sets")
                })
                .collect();
            let mut comps: Vec<CompIdx> = members
                .iter()
                .flat_map(|&p| self.path_comps[p as usize].iter().copied())
                .collect();
            comps.sort_unstable();
            comps.dedup();
            self.comp_set_pairs.extend(comps.iter().map(|&c| (c, ls)));
            self.sets.push(members);
            self.set_comps.push(comps);
        }
        self.set_bad.resize(n_sets, 0);

        n_paths > old_paths || n_sets > old_sets
    }

    #[inline]
    fn localize_link(&mut self, l: flock_topology::LinkId) -> CompIdx {
        let g = self.space.link_comp(l);
        self.localize(g)
    }

    /// Rebuild the per-epoch flow layer from the view's accepted
    /// observations, collapsing runs sharing the `(set, sent, bad)`
    /// evidence key into weighted super-flows (the assembler sorts
    /// observations by exactly that key and the view preserves
    /// observation order, so equal keys are adjacent; out-of-order input
    /// merely coalesces less — never incorrectly).
    ///
    /// Under [`CoalesceMode::Approx`] whole `(set, bucket)` runs collapse
    /// instead: the run's first observation is the representative (its
    /// `(sent, bad)` feeds the term table) and every further observation
    /// in the bucket only adds weight. Each such merge perturbs the
    /// likelihood by at most `weight · |s_obs − s_rep|` — `llf` has
    /// `∂/∂s ∈ [0, 1]` uniformly in `(w, b)` and the total is linear in
    /// weight — and that perturbation is accumulated *exactly* into
    /// [`Engine::drift_bound`]. Correctness therefore never depends on
    /// the bucketing scheme: drift is measured from the merges actually
    /// performed, and an approx engine over exactly-sorted input simply
    /// coalesces less with zero measured drift.
    fn rebuild_flows(&mut self, topo: &Topology, obs: &ObservationSet, view: &ArenaView) {
        self.sflows.clear();
        self.members.clear();
        self.n_obs = 0;
        self.drift = 0.0;
        self.pair_set_flows.clear();
        self.pair_extra_members.clear();
        let approx = self.opts.coalesce && self.opts.mode.is_approx();
        let quant = flock_telemetry::BucketQuantizer::new(self.opts.mode);
        // The flow score is linear in the counts, `s = bad·A + clean·B`
        // (see `likelihood::flow_score`), so drift accounting hoists the
        // two log terms out of the per-observation loop.
        let score_a = (self.params.p_b / self.params.p_g).ln();
        let score_b = ((1.0 - self.params.p_b) / (1.0 - self.params.p_g)).ln();
        let mut last_key: Option<(u32, u64, u64)> = None;
        let mut last_rep: (u64, u64) = (0, 0);
        for &i in view.epoch_flows() {
            let o = &obs.flows[i as usize];
            let ls = view
                .local_set(o.set)
                .expect("bind_epoch projected every accepted set");
            let w = self.sets[ls as usize].len() as u32;
            if w == 0 {
                continue; // unroutable flow carries no information
            }
            self.n_obs += 1;
            let key = if approx {
                let (sb, rb) = quant.key(o.sent, o.bad);
                (o.set.0, sb, rb)
            } else {
                o.evidence_key()
            };
            if !(self.opts.coalesce && last_key == Some(key)) {
                let fi = self.sflows.len() as u32;
                self.pair_set_flows.push((ls, fi));
                let at = self.members.len() as u32;
                // One memoized llf table per distinct evidence key; the
                // common warm-epoch case is a pure hash hit, and a miss
                // copies the assembly stage's pre-computed ladder when
                // one was installed (bit-identical either way).
                let (tbl, score) = self.terms.intern_prefilled(
                    &self.params,
                    o.sent,
                    o.bad,
                    w,
                    self.term_prefill.as_deref(),
                );
                self.sflows.push(SFlow {
                    set: ls,
                    score,
                    w,
                    weight: 0.0,
                    pinned: 0.0,
                    members: (at, at),
                    tbl,
                });
                last_key = Some(key);
                last_rep = (o.sent, o.bad);
            } else if approx && (o.sent, o.bad) != last_rep {
                let fi = self.sflows.len() - 1;
                let s = o.bad as f64 * score_a + (o.sent - o.bad) as f64 * score_b;
                self.drift += f64::from(o.weight) * (s - self.sflows[fi].score).abs();
            }
            let fi = self.sflows.len() - 1;
            self.sflows[fi].weight += f64::from(o.weight);
            let extras = self.flow_extras(topo, ls, o);
            if extras.1 > 0 {
                let mi = self.members.len() as u32;
                for &e in &extras.0[..extras.1 as usize] {
                    self.pair_extra_members.push((e, mi));
                }
                self.members.push(SMember {
                    flow: fi as u32,
                    extras: extras.0,
                    n_extras: extras.1,
                    extra_fail: 0,
                    weight: f64::from(o.weight),
                });
                self.sflows[fi].members.1 = mi + 1;
            }
        }
        // Extend-only `TermTable` contract (see ROADMAP "term-table
        // lifetime"): every flow's full ladder `terms.values()[tbl + b]`,
        // `b ∈ 0..=w`, must be resident — bucketed keys intern through
        // the same path as exact keys, so representatives must never
        // yield a truncated table.
        debug_assert!(
            self.sflows
                .iter()
                .all(|f| f.tbl as usize + (f.w as usize) < self.terms.values().len()),
            "SFlow::tbl offset past the term table"
        );
    }

    /// Extract the extra components (local ids) of a flow: its prefix
    /// links plus any switch devices incident to prefix links that do
    /// not already appear in the set's component union (the intra-rack
    /// ToR case).
    fn flow_extras(&mut self, topo: &Topology, ls: u32, o: &FlowObs) -> ([CompIdx; 4], u8) {
        let mut extras = [0 as CompIdx; 4];
        let mut n = 0u8;
        let push = |extras: &mut [CompIdx; 4], n: &mut u8, c: CompIdx| {
            if !extras[..*n as usize].contains(&c) {
                extras[*n as usize] = c;
                *n += 1;
            }
        };
        for link in o.prefix.iter().flatten() {
            let lc = self.localize_link(*link);
            push(&mut extras, &mut n, lc);
            let lk = topo.link(*link);
            for end in [lk.src, lk.dst] {
                // Hosts yield None; switch devices already covered by the
                // fabric path set stay out of the extras (they are counted
                // through the set's path components).
                if let Some(d) = self.space.device_comp(end) {
                    let in_set = self.comps.local(d).is_some_and(|known| {
                        self.set_comps[ls as usize].binary_search(&known).is_ok()
                    });
                    if !in_set {
                        let ld = self.localize(d);
                        push(&mut extras, &mut n, ld);
                    }
                }
            }
        }
        (extras, n)
    }

    /// Install (or clear) pre-computed [`TermPrefill`] ladders for the
    /// next flow rebuild. The pipelined executor sets this right before
    /// a rebind (from ladders built during the overlapped assembly
    /// stage) and clears it after the epoch's search, so the `Arc`'d
    /// prefill never outlives its epoch.
    pub fn set_term_prefill(&mut self, prefill: Option<std::sync::Arc<TermPrefill>>) {
        self.term_prefill = prefill;
    }

    /// The full-topology component space (indices on it are *global*;
    /// translate with [`Engine::global_comp`] / [`Engine::local_comp`]).
    pub fn space(&self) -> &ComponentSpace {
        &self.space
    }

    /// The hyperparameters.
    pub fn params(&self) -> &HyperParams {
        &self.params
    }

    /// The options the engine was built with.
    pub fn options(&self) -> EngineOptions {
        self.opts
    }

    /// Number of *local* components — components touched by this
    /// engine's evidence history. Every index-taking method on the
    /// engine speaks this dense space.
    pub fn n_comps(&self) -> usize {
        self.comps.len()
    }

    /// Width of the full topology component space.
    pub fn n_global_comps(&self) -> usize {
        self.space.n_comps()
    }

    /// Number of locally-projected paths.
    pub fn n_paths(&self) -> usize {
        self.path_comps.len()
    }

    /// Number of locally-projected sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Global (dense topology-wide) id of a local component.
    #[inline]
    pub fn global_comp(&self, c: CompIdx) -> CompIdx {
        self.comps.global(c)
    }

    /// Local id of a global component, if this engine's evidence ever
    /// touched it.
    #[inline]
    pub fn local_comp(&self, g: CompIdx) -> Option<CompIdx> {
        self.comps.local(g)
    }

    /// The topology component behind a *local* id — the report-time
    /// translation.
    #[inline]
    pub fn component(&self, c: CompIdx) -> Component {
        self.space.component(self.global_comp(c))
    }

    /// Local id of a topology component, if evidence ever touched it.
    /// The inverse of [`Engine::component`]; used to seed warm-start
    /// inference from a previous epoch's predictions.
    #[inline]
    pub fn comp_of(&self, c: Component) -> Option<CompIdx> {
        self.space.comp_of(c).and_then(|g| self.local_comp(g))
    }

    /// Whether local component `c` denotes a switch device.
    #[inline]
    pub fn is_device(&self, c: CompIdx) -> bool {
        self.space.is_device(self.global_comp(c))
    }

    /// Resident state sizes (see [`EngineStateSizes`]).
    pub fn state_sizes(&self) -> EngineStateSizes {
        EngineStateSizes {
            comps: self.comps.len(),
            paths: self.path_comps.len(),
            sets: self.sets.len(),
            flows: self.sflows.len(),
            members: self.members.len(),
            global_comps: self.space.n_comps(),
        }
    }

    /// Number of engine super-flows (distinct evidence keys this epoch
    /// when coalescing is on; one per accepted observation when off).
    pub fn n_flows(&self) -> usize {
        self.sflows.len()
    }

    /// Raw observations accepted into the current flow table; with
    /// [`Engine::n_flows`] this yields the epoch's coalesce ratio.
    pub fn n_observations(&self) -> usize {
        self.n_obs
    }

    /// Number of extras-carrying prefix groups behind the super-flows.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// The current hypothesis (local ids of components currently failed).
    pub fn hypothesis(&self) -> &[CompIdx] {
        &self.hypothesis
    }

    /// Whether local component `c` is in the current hypothesis.
    #[inline]
    pub fn in_hypothesis(&self, c: CompIdx) -> bool {
        self.in_h[c as usize]
    }

    /// Normalized log-likelihood of the current hypothesis (no priors).
    pub fn log_likelihood(&self) -> f64 {
        self.ll
    }

    /// The Δ array over local components:
    /// `delta()[c] = LL(H ⊕ c) − LL(H)` (likelihood only).
    pub fn delta(&self) -> &[f64] {
        &self.delta
    }

    /// The evidence convicting local component `c`: every super-flow
    /// whose likelihood term involves `c` — flows over a path set
    /// touching `c` (via the `comp → sets → flows` inverted indexes)
    /// plus prefix groups carrying `c` as an extra. This is exactly the
    /// flow population a `flip(c)` visits, i.e. the observations whose
    /// Δ contribution drove the conviction. Cold path (report/store
    /// provenance, once per kept component per epoch), so it allocates
    /// freely rather than borrowing the flip scratch.
    pub fn convicting_evidence(&self, c: CompIdx) -> ConvictingEvidence {
        let mut flows: Vec<u32> = Vec::new();
        for &s in self.comp_to_sets.get(c) {
            flows.extend_from_slice(self.set_flows.get(s));
        }
        for &mi in self.comp_extra_members.get(c) {
            flows.push(self.members[mi as usize].flow);
        }
        flows.sort_unstable();
        flows.dedup();
        let mut weight = 0.0;
        let mut per_set: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &fi in &flows {
            let f = &self.sflows[fi as usize];
            weight += f.weight;
            *per_set.entry(f.set).or_insert(0.0) += f.weight;
        }
        let mut sets: Vec<(u32, f64)> = per_set.into_iter().collect();
        sets.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ConvictingEvidence {
            super_flows: flows.len(),
            weight,
            sets,
        }
    }

    /// Prior log-odds contribution of *adding* local component `c` to
    /// the hypothesis (negative). Removal contributes the negation.
    #[inline]
    pub fn prior_logodds(&self, c: CompIdx) -> f64 {
        if self.is_device(c) {
            self.params.device_prior_logodds()
        } else {
            self.params.link_prior_logodds()
        }
    }

    /// Performance counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The kernel dispatch level this engine's sweeps run at (resolved
    /// per process, or forced via [`EngineOptions::kernel`]).
    pub fn kernel_dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// `(distinct evidence keys, total f64 entries)` of the memoized
    /// likelihood term table (diagnostics / bench reporting).
    pub fn term_table_sizes(&self) -> (usize, usize) {
        (self.terms.tables(), self.terms.entries())
    }

    /// Best component to *add* under the current Δ array, with its
    /// prior-inclusive gain: maximizes `delta[c] + prior_logodds(c)`
    /// over components outside the hypothesis (in-hypothesis components
    /// carry a `-inf` bias, so they can win only when nothing is
    /// addable — and then the `-inf` gain stops the caller's search
    /// exactly like an empty candidate set). Exact gain ties break
    /// toward the smallest *global* component id, so engines with
    /// different evidence histories (hence different local id orders)
    /// pick the same member of an observationally equivalent class.
    /// One fused `delta + bias` scan through the dispatch kernel.
    pub fn argmax_addable(&self) -> Option<(CompIdx, f64)> {
        simd::argmax_gain(
            self.dispatch,
            &self.delta,
            &self.gain_add_bias,
            self.comps.globals(),
        )
    }

    /// Best add-or-remove move under the current Δ array, with its
    /// prior-inclusive posterior gain (adding pays the prior, removing
    /// reclaims it); same tie-break and kernel as
    /// [`Engine::argmax_addable`]. This is the warm-start search scan.
    pub fn argmax_move(&self) -> Option<(CompIdx, f64)> {
        simd::argmax_gain(
            self.dispatch,
            &self.delta,
            &self.gain_move_bias,
            self.comps.globals(),
        )
    }

    /// Worst-case total log-likelihood drift of this epoch's flow table
    /// versus exact coalescing: `Σ weightᵢ · |sᵢ − s_rep|` over every
    /// observation merged into a bucket under a different `(sent, bad)`
    /// than the bucket representative. Since the per-flow likelihood
    /// `llf(s, w, b)` satisfies `∂llf/∂s = b·eˢ/(b·eˢ + (w−b)) ∈ [0, 1]`
    /// uniformly in `(w, b)` (pinning included: `llf(s, w, w) = s`), and
    /// the total is linear in the aggregation weight, this bounds
    /// `|LL_approx(H) − LL_exact(H)|` for **every** hypothesis `H`
    /// simultaneously. Exactly `0.0` in exact mode (or when approximate
    /// bucketing never actually merged distinct counts), making the
    /// derived verdict certificate trivially true there.
    pub fn drift_bound(&self) -> f64 {
        self.drift
    }

    /// The winner's lead over the runner-up in the warm-start move scan:
    /// `winner_gain − max_{c ≠ winner}(delta[c] + move bias[c])`, or
    /// `+inf` when there is no other candidate. Greedy search folds the
    /// smallest such lead (and the smallest `|gain|` at its accept/stop
    /// decisions) into [`crate::BudgetedSearch::margin`]: every
    /// selection and stop decision differing between the approximate and
    /// exact likelihood surfaces requires two gains to cross, which
    /// `margin > 2 · drift_bound` rules out — the bound certifies the
    /// approximate verdict *is* the exact one.
    pub fn move_runner_up_gap(&self, winner: CompIdx, winner_gain: f64) -> f64 {
        let mut ru = f64::NEG_INFINITY;
        for (c, (&d, &b)) in self.delta.iter().zip(&self.gain_move_bias).enumerate() {
            if c as CompIdx != winner {
                let g = d + b;
                if g > ru {
                    ru = g;
                }
            }
        }
        if ru == f64::NEG_INFINITY {
            f64::INFINITY
        } else {
            winner_gain - ru
        }
    }

    /// Toggle local component `c`, maintaining the full Δ array (JLE
    /// update). Returns the likelihood change `LL(H') − LL(H)`.
    pub fn flip(&mut self, c: CompIdx) -> f64 {
        self.flip_inner(c, true)
    }

    /// Toggle local component `c`, updating state and total likelihood
    /// but *not* the Δ array (which becomes stale — callers must not
    /// read it until the state is restored). Used by the non-JLE
    /// baselines.
    pub fn flip_ll_only(&mut self, c: CompIdx) -> f64 {
        self.flip_inner(c, false)
    }

    fn flip_inner(&mut self, c: CompIdx, maintain_delta: bool) -> f64 {
        self.stats.flips += 1;
        let adding = !self.in_h[c as usize];
        let mut dll = 0.0;

        // Borrow-splitting: the inverted indexes and scratch arenas move
        // out of `self` for the duration of the flip (restored below) so
        // the sweeps can walk them while mutating per-set/per-flow state.
        // All of these keep their capacity — no per-flip allocation.
        let comp_to_sets = std::mem::take(&mut self.comp_to_sets);
        let comp_extra_members = std::mem::take(&mut self.comp_extra_members);
        let mut snap_l = std::mem::take(&mut self.snap_l);
        let mut snap_g = std::mem::take(&mut self.snap_g);
        let mut snap_off = std::mem::take(&mut self.snap_off);
        let mut snap_sp = std::mem::take(&mut self.snap_sp);
        let mut snap_sp_off = std::mem::take(&mut self.snap_sp_off);
        let mut new_l = std::mem::take(&mut self.new_l);
        let mut new_g = std::mem::take(&mut self.new_g);
        let mut new_sp = std::mem::take(&mut self.new_sp);

        // ---- Fabric effect: sets whose paths contain `c`. ----
        let affected_sets = comp_to_sets.get(c);

        // Old counters per affected set, snapshotted into the flat arenas
        // before path fail counts move. The regular/special split uses
        // the predicate `l == c || in_h[l]`, which does not move during
        // the flip (only `c`'s membership changes, and `c` tests by id),
        // so the post-flip collection below partitions identically and
        // the two sides align element-wise.
        snap_l.clear();
        snap_g.clear();
        snap_off.clear();
        snap_off.push(0);
        snap_sp.clear();
        snap_sp_off.clear();
        snap_sp_off.push(0);
        if maintain_delta {
            for &s in affected_sets {
                collect_counters_partitioned(
                    &self.sets[s as usize],
                    &self.path_fail,
                    &self.path_comps,
                    &self.set_comps[s as usize],
                    c,
                    &self.in_h,
                    &mut self.scratch_g,
                    &mut self.scratch_s,
                    &mut snap_l,
                    &mut snap_g,
                    &mut snap_sp,
                );
                snap_off.push(snap_l.len() as u32);
                snap_sp_off.push(snap_sp.len() as u32);
            }
        }

        // Update path fail counts (each path exactly once).
        for &p in self.comp_to_paths.get(c) {
            if adding {
                self.path_fail[p as usize] += 1;
            } else {
                debug_assert!(self.path_fail[p as usize] > 0);
                self.path_fail[p as usize] -= 1;
            }
        }

        // Membership flips now so contribution formulas see the new state;
        // formulas needing the old membership handle `c` explicitly.
        self.in_h[c as usize] = adding;

        for (k, &s) in affected_sets.iter().enumerate() {
            let old_bad = self.set_bad[s as usize];
            let new_bad = self.recount_set_bad(s);
            self.set_bad[s as usize] = new_bad;

            let (old_l, old_g, old_sp): (&[u32], &[u32], &[Counter]) = if maintain_delta {
                (
                    &snap_l[snap_off[k] as usize..snap_off[k + 1] as usize],
                    &snap_g[snap_off[k] as usize..snap_off[k + 1] as usize],
                    &snap_sp[snap_sp_off[k] as usize..snap_sp_off[k + 1] as usize],
                )
            } else {
                (&[], &[], &[])
            };
            if maintain_delta {
                new_l.clear();
                new_g.clear();
                new_sp.clear();
                collect_counters_partitioned(
                    &self.sets[s as usize],
                    &self.path_fail,
                    &self.path_comps,
                    &self.set_comps[s as usize],
                    c,
                    &self.in_h,
                    &mut self.scratch_g,
                    &mut self.scratch_s,
                    &mut new_l,
                    &mut new_g,
                    &mut new_sp,
                );
                debug_assert_eq!(old_l, &new_l[..], "regular partitions must align");
                debug_assert!(
                    old_sp.iter().zip(&new_sp).all(|(a, b)| a.0 == b.0),
                    "special partitions must align"
                );
            }

            // Super-flow sweep: one visit per distinct evidence key. All
            // llf terms come from the flow's memoized table segment —
            // bit-identical to direct evaluation by construction.
            for &fi in self.set_flows.get(s) {
                let f = &self.sflows[fi as usize];
                let (w, mlo, mhi) = (f.w, f.members.0, f.members.1);
                let seg = &self.terms.values()[f.tbl as usize..(f.tbl + w + 1) as usize];
                // Weights are integer-valued sums, so the subtraction is
                // exact and `active == 0.0` means fully pinned.
                let active = f.weight - f.pinned;
                let ll_old = seg[old_bad as usize];
                let ll_new = seg[new_bad as usize];
                self.stats.flow_updates += 1;
                if active > 0.0 {
                    dll += active * (ll_new - ll_old);
                }
                if !maintain_delta {
                    continue;
                }
                // Fabric comps of the set: only the active (unpinned)
                // weight responds to fabric flips. The regular partition
                // (components outside the hypothesis) goes through the
                // dispatch kernel; the handful of special components
                // keep the branchy scalar path below.
                if active > 0.0 {
                    simd::fabric_delta_sweep(
                        self.dispatch,
                        seg,
                        old_bad,
                        new_bad,
                        old_g,
                        &new_g,
                        old_l,
                        active,
                        ll_old,
                        ll_new,
                        &mut self.delta,
                    );
                    for (i, &(l, g_old, s_old)) in old_sp.iter().enumerate() {
                        let (_, g_new, s_new) = new_sp[i];
                        let in_h_new = self.in_h[l as usize];
                        let in_h_old = if l == c { !in_h_new } else { in_h_new };
                        let contrib_old = if in_h_old {
                            seg[(old_bad - s_old) as usize] - ll_old
                        } else {
                            seg[(old_bad + g_old) as usize] - ll_old
                        };
                        let contrib_new = if in_h_new {
                            seg[(new_bad - s_new) as usize] - ll_new
                        } else {
                            seg[(new_bad + g_new) as usize] - ll_new
                        };
                        self.delta[l as usize] += active * (contrib_new - contrib_old);
                    }
                }
                // Member extras: their deltas move only when `set_bad`
                // actually changed. An unpinned member's extras pin it at
                // `w` (losing the `set_bad` term); a singly-pinned
                // member's failed extra, on removal, returns it to
                // `set_bad` — which just changed.
                if old_bad != new_bad {
                    for mi in mlo..mhi {
                        let m = self.members[mi as usize];
                        match m.extra_fail {
                            0 => {
                                for &e in m.extras() {
                                    self.delta[e as usize] += m.weight * (ll_old - ll_new);
                                }
                            }
                            1 => {
                                let e = m
                                    .extras()
                                    .iter()
                                    .copied()
                                    .find(|&e| self.in_h[e as usize])
                                    .expect("extra_fail==1 implies one failed extra");
                                self.delta[e as usize] += m.weight * (ll_new - ll_old);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }

        // ---- Extras effect: members having `c` among their extras. ----
        for &mi in comp_extra_members.get(c) {
            dll += self.flip_extra_for_member(
                c,
                mi,
                adding,
                maintain_delta,
                &mut new_l,
                &mut new_g,
                &mut new_sp,
            );
        }

        if adding {
            self.hypothesis.push(c);
        } else {
            self.hypothesis.retain(|&x| x != c);
        }
        self.ll += dll;

        // O(1) argmax bias maintenance for the flipped component.
        let p = self.prior_logodds(c);
        if adding {
            self.gain_move_bias[c as usize] = -p;
            self.gain_add_bias[c as usize] = f64::NEG_INFINITY;
        } else {
            self.gain_move_bias[c as usize] = p;
            self.gain_add_bias[c as usize] = p;
        }

        self.comp_to_sets = comp_to_sets;
        self.comp_extra_members = comp_extra_members;
        self.snap_l = snap_l;
        self.snap_g = snap_g;
        self.snap_off = snap_off;
        self.snap_sp = snap_sp;
        self.snap_sp_off = snap_sp_off;
        self.new_l = new_l;
        self.new_g = new_g;
        self.new_sp = new_sp;
        dll
    }

    /// Handle the extras side of flipping `c` for one member. `in_h[c]`
    /// has already been set to the new value; `ctr_l`/`ctr_g`/`ctr_sp`
    /// are the caller's reusable partitioned counter buffers.
    #[allow(clippy::too_many_arguments)]
    fn flip_extra_for_member(
        &mut self,
        c: CompIdx,
        mi: u32,
        adding: bool,
        maintain_delta: bool,
        ctr_l: &mut Vec<u32>,
        ctr_g: &mut Vec<u32>,
        ctr_sp: &mut Vec<Counter>,
    ) -> f64 {
        self.stats.flow_updates += 1;
        let m = self.members[mi as usize];
        let fi = m.flow as usize;
        let (w, set, tbl) = {
            let f = &self.sflows[fi];
            (f.w, f.set, f.tbl)
        };
        let old_fail = m.extra_fail;
        let new_fail = if adding { old_fail + 1 } else { old_fail - 1 };
        let sb = self.set_bad[set as usize];
        let bad_old = if old_fail > 0 { w } else { sb };
        let bad_new = if new_fail > 0 { w } else { sb };
        let seg = &self.terms.values()[tbl as usize..(tbl + w + 1) as usize];
        let ll_old = seg[bad_old as usize];
        let ll_new = seg[bad_new as usize];
        let dll = m.weight * (ll_new - ll_old);

        // Pinned-weight bookkeeping on activation crossings (adding from
        // 0 pins the member; removing to 0 releases it).
        if old_fail == 0 {
            self.sflows[fi].pinned += m.weight;
        } else if new_fail == 0 {
            self.sflows[fi].pinned -= m.weight;
        }

        if maintain_delta {
            // Fabric comps: need g/s counters only when the member is
            // "active" (extra_fail == 0) on either side. Exactly one of
            // old/new fail is 0 here (they differ by 1), so each regular
            // component's update collapses to ±(seg[sb + g] - ll) — the
            // member kernel; in-hypothesis comps keep the scalar path.
            // `c` is an extra, never among the set comps, so the special
            // partition is the in-hypothesis comps only.
            if old_fail == 0 || new_fail == 0 {
                ctr_l.clear();
                ctr_g.clear();
                ctr_sp.clear();
                collect_counters_partitioned(
                    &self.sets[set as usize],
                    &self.path_fail,
                    &self.path_comps,
                    &self.set_comps[set as usize],
                    c,
                    &self.in_h,
                    &mut self.scratch_g,
                    &mut self.scratch_s,
                    ctr_l,
                    ctr_g,
                    ctr_sp,
                );
                let (negate, ll_active) = if old_fail == 0 {
                    // Member becomes pinned: its old `sb + g` term is
                    // retracted (contrib_new is 0).
                    (true, ll_old)
                } else {
                    // Member unpins: the new `sb + g` term lands.
                    (false, ll_new)
                };
                simd::member_delta_sweep(
                    self.dispatch,
                    seg,
                    sb,
                    ctr_g,
                    ctr_l,
                    m.weight,
                    ll_active,
                    negate,
                    &mut self.delta,
                );
                for &(l, _, s_cnt) in ctr_sp.iter() {
                    debug_assert_ne!(l, c, "extras are disjoint from set comps");
                    let contrib_old = if old_fail > 0 {
                        0.0
                    } else {
                        seg[(sb - s_cnt) as usize] - ll_old
                    };
                    let contrib_new = if new_fail > 0 {
                        0.0
                    } else {
                        seg[(sb - s_cnt) as usize] - ll_new
                    };
                    self.delta[l as usize] += m.weight * (contrib_new - contrib_old);
                }
            }
            // Extras comps of this member (including c itself).
            for &e in m.extras() {
                let in_h_e_new = self.in_h[e as usize];
                let in_h_e_old = if e == c { !in_h_e_new } else { in_h_e_new };
                let fail_wo_e_old = old_fail - u8::from(in_h_e_old);
                let fail_wo_e_new = new_fail - u8::from(in_h_e_new);
                // Flipping e: if e currently failed, bad becomes (others
                // failed ? w : sb); if e currently ok, bad becomes w.
                let bad_flip_old = if in_h_e_old {
                    if fail_wo_e_old > 0 {
                        w
                    } else {
                        sb
                    }
                } else {
                    w
                };
                let bad_flip_new = if in_h_e_new {
                    if fail_wo_e_new > 0 {
                        w
                    } else {
                        sb
                    }
                } else {
                    w
                };
                let contrib_old = seg[bad_flip_old as usize] - ll_old;
                let contrib_new = seg[bad_flip_new as usize] - ll_new;
                self.delta[e as usize] += m.weight * (contrib_new - contrib_old);
            }
        }

        self.members[mi as usize].extra_fail = new_fail;
        dll
    }

    fn recount_set_bad(&self, s: u32) -> u32 {
        self.sets[s as usize]
            .iter()
            .filter(|&&p| self.path_fail[p as usize] > 0)
            .count() as u32
    }

    /// Initial Δ array for the empty hypothesis (`ComputeInitialDelta` of
    /// Algorithm 2): grouped per set so that super-flows sharing a path
    /// set evaluate each distinct failed-path count once. Sweeps the
    /// *view's* sets only — the fleet-wide arena never enters this loop.
    fn compute_initial_delta(&mut self) {
        let mut gs = std::mem::take(&mut self.scratch_gs);
        let mut sums = std::mem::take(&mut self.scratch_sums);
        // Per set: g(c) = member paths containing c (all paths good).
        for s in 0..self.sets.len() as u32 {
            // Sets with no flows this epoch contribute nothing; skipping
            // them keeps rebinding cheap as the shard's view accumulates
            // sets across epochs.
            if self.set_flows.get(s).is_empty() {
                continue;
            }
            // Count paths per comp.
            for &p in &self.sets[s as usize] {
                for &c in &self.path_comps[p as usize] {
                    self.scratch_g[c as usize] += 1;
                }
            }
            let comps = &self.set_comps[s as usize];
            // Distinct g values of this set.
            gs.clear();
            gs.extend(comps.iter().map(|&c| self.scratch_g[c as usize]));
            gs.sort_unstable();
            gs.dedup();
            // Σ_super-flows weight · LLF(g) per distinct g, as one table
            // gather-accumulate per flow (every flow of the set shares
            // `w`, so `gs` indexes every segment in range).
            sums.clear();
            sums.resize(gs.len(), 0.0);
            for &fi in self.set_flows.get(s) {
                let f = &self.sflows[fi as usize];
                let seg = &self.terms.values()[f.tbl as usize..(f.tbl + f.w + 1) as usize];
                simd::weighted_table_accumulate(self.dispatch, seg, &gs, f.weight, &mut sums);
            }
            for &c in comps {
                let g = self.scratch_g[c as usize];
                let i = gs.binary_search(&g).unwrap();
                self.delta[c as usize] += sums[i];
            }
            for &c in comps {
                self.scratch_g[c as usize] = 0;
            }
        }
        // Extras: flipping an extra fails all paths of its member.
        for m in &self.members {
            let sc = self.sflows[m.flow as usize].score;
            for &e in m.extras() {
                self.delta[e as usize] += m.weight * sc; // llf(w,w)=score
            }
        }
        self.scratch_gs = gs;
        self.scratch_sums = sums;
    }

    /// Evaluate one neighbor delta from the current state without touching
    /// the Δ array (used by greedy-without-JLE): `LL(H ⊕ c) − LL(H)`.
    pub fn delta_single(&self, c: CompIdx) -> f64 {
        let mut dll = 0.0;
        let flipping_on = !self.in_h[c as usize];
        // Fabric side.
        for &s in self.comp_to_sets.get(c) {
            let old_bad = self.set_bad[s as usize];
            // New bad count if c flips: recount with c's effect.
            let mut new_bad = 0u32;
            for &p in &self.sets[s as usize] {
                let mut fc = self.path_fail[p as usize];
                if self.path_comps[p as usize].binary_search(&c).is_ok() {
                    fc = if flipping_on { fc + 1 } else { fc - 1 };
                }
                new_bad += u32::from(fc > 0);
            }
            if new_bad == old_bad {
                continue;
            }
            for &fi in self.set_flows.get(s) {
                let f = &self.sflows[fi as usize];
                let active = f.weight - f.pinned;
                if active > 0.0 {
                    dll += active * (llf(f.score, f.w, new_bad) - llf(f.score, f.w, old_bad));
                }
            }
        }
        // Extras side.
        for &mi in self.comp_extra_members.get(c) {
            let m = &self.members[mi as usize];
            let f = &self.sflows[m.flow as usize];
            let old_fail = m.extra_fail;
            let new_fail = if flipping_on {
                old_fail + 1
            } else {
                old_fail - 1
            };
            let sb = self.set_bad[f.set as usize];
            let bad_old = if old_fail > 0 { f.w } else { sb };
            let bad_new = if new_fail > 0 { f.w } else { sb };
            if bad_old != bad_new {
                dll += m.weight * (llf(f.score, f.w, bad_new) - llf(f.score, f.w, bad_old));
            }
        }
        dll
    }

    /// Brute-force `LL(H)` from scratch for an arbitrary hypothesis (of
    /// local ids) — `O(m·T)`. Reference implementation used by tests and
    /// available for cross-checking; never on the hot path.
    pub fn ll_of(&self, hypothesis: &[CompIdx]) -> f64 {
        let in_h: std::collections::HashSet<CompIdx> = hypothesis.iter().copied().collect();
        let set_bad_h: Vec<u32> = (0..self.sets.len())
            .map(|s| {
                self.sets[s]
                    .iter()
                    .filter(|&&p| self.path_comps[p as usize].iter().any(|c| in_h.contains(c)))
                    .count() as u32
            })
            .collect();
        let mut ll = 0.0;
        for f in &self.sflows {
            let sb = set_bad_h[f.set as usize];
            let mut base = f.weight;
            for mi in f.members.0..f.members.1 {
                let m = &self.members[mi as usize];
                base -= m.weight;
                let bad = if m.extras().iter().any(|e| in_h.contains(e)) {
                    f.w
                } else {
                    sb
                };
                ll += m.weight * llf(f.score, f.w, bad);
            }
            if base > 0.0 {
                ll += base * llf(f.score, f.w, sb);
            }
        }
        ll
    }
}

/// Per-component counters of one set — `g` = member paths with fail
/// count 0 containing the comp, `s` = member paths with fail count
/// exactly 1 containing it — partitioned by the flip predicate
/// `l == c || in_h[l]`. Two passes over the set's paths, as in
/// Algorithm 2's `GetCounters`.
///
/// Components *outside* the predicate (the overwhelming majority: not in
/// the hypothesis, not the flipped comp) land in the SoA pair
/// `out_l`/`out_g` — the lanes the SIMD fabric kernel consumes; `s` is
/// not emitted for them because their contribution formula never reads
/// it. Components matching the predicate land in `out_sp` as full
/// `(comp, g, s)` counters for the scalar branchy path. Within each
/// partition, components keep `comps` order, so pre- and post-flip
/// collections align element-wise (the predicate is flip-stable).
///
/// A free function (not a method) so callers can hold disjoint borrows
/// of the engine's other fields while it fills the scratch arenas.
#[allow(clippy::too_many_arguments)]
fn collect_counters_partitioned(
    member_paths: &[u32],
    path_fail: &[u32],
    path_comps: &[Vec<CompIdx>],
    comps: &[CompIdx],
    c: CompIdx,
    in_h: &[bool],
    scratch_g: &mut [u32],
    scratch_s: &mut [u32],
    out_l: &mut Vec<u32>,
    out_g: &mut Vec<u32>,
    out_sp: &mut Vec<Counter>,
) {
    for &p in member_paths {
        let fc = path_fail[p as usize];
        if fc == 0 {
            for &l in &path_comps[p as usize] {
                scratch_g[l as usize] += 1;
            }
        } else if fc == 1 {
            for &l in &path_comps[p as usize] {
                scratch_s[l as usize] += 1;
            }
        }
    }
    for &l in comps {
        let g = scratch_g[l as usize];
        if l == c || in_h[l as usize] {
            out_sp.push((l, g, scratch_s[l as usize]));
        } else {
            out_l.push(l);
            out_g.push(g);
        }
    }
    // Reset scratch.
    for &l in comps {
        scratch_g[l as usize] = 0;
        scratch_s[l as usize] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
    use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, TrafficClass};
    use flock_topology::clos::{three_tier, ClosParams};
    use flock_topology::Router;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Build a small observation set with a mix of passive (path-set) and
    /// known-path flows, with pseudo-random metrics.
    fn small_obs(seed: u64) -> (flock_topology::Topology, ObservationSet) {
        small_obs_with(seed, &[InputKind::A2, InputKind::P], CoalesceMode::Exact)
    }

    /// [`small_obs`] with explicit telemetry kinds and coalesce mode (the
    /// assembler sorts observations for the mode).
    fn small_obs_with(
        seed: u64,
        kinds: &[InputKind],
        mode: CoalesceMode,
    ) -> (flock_topology::Topology, ObservationSet) {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(seed);
        let hosts = topo.hosts().to_vec();
        let mut flows = Vec::new();
        for i in 0..60 {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s {
                d = hosts[rng.random_range(0..hosts.len())];
            }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let sent = rng.random_range(5..200u64);
            let bad = if rng.random::<f64>() < 0.3 {
                rng.random_range(0..=sent.min(6))
            } else {
                0
            };
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, 1000 + i, 80),
                stats: FlowStats {
                    packets: sent,
                    retransmissions: bad,
                    bytes: sent * 1500,
                    rtt_sum_us: 100,
                    rtt_count: 1,
                    rtt_max_us: 100,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        let mut asm = flock_telemetry::Assembler::new();
        asm.set_coalesce(mode);
        let obs = asm.assemble(&topo, &router, &flows, kinds, AnalysisMode::PerPacket);
        (topo, obs)
    }

    /// The central JLE invariant: after any sequence of flips, every Δ
    /// entry equals the brute-force `LL(H ⊕ c) − LL(H)`.
    #[test]
    fn delta_matches_brute_force_after_flips() {
        let (topo, obs) = small_obs(1);
        let mut engine = Engine::new(&topo, &obs, HyperParams::default());
        let n = engine.n_comps() as u32;
        assert!(n > 0);
        let mut rng = StdRng::seed_from_u64(99);

        let check = |engine: &Engine| {
            let h: Vec<CompIdx> = engine.hypothesis().to_vec();
            let base = engine.ll_of(&h);
            assert!(
                (base - engine.log_likelihood()).abs() < 1e-7,
                "ll drift: {} vs {}",
                base,
                engine.log_likelihood()
            );
            for c in 0..n {
                let mut h2 = h.clone();
                if let Some(pos) = h2.iter().position(|&x| x == c) {
                    h2.remove(pos);
                } else {
                    h2.push(c);
                }
                let expect = engine.ll_of(&h2) - base;
                let got = engine.delta()[c as usize];
                assert!(
                    (expect - got).abs() < 1e-7 * (1.0 + expect.abs()),
                    "comp {c}: delta {got} vs brute {expect} (|H|={})",
                    h.len()
                );
            }
        };

        check(&engine);
        // Random flip walk, including removals.
        let mut flipped: Vec<CompIdx> = Vec::new();
        for step in 0..12 {
            let c = if step % 4 == 3 && !flipped.is_empty() {
                flipped[rng.random_range(0..flipped.len())] // possibly remove
            } else {
                rng.random_range(0..n)
            };
            engine.flip(c);
            if let Some(pos) = flipped.iter().position(|&x| x == c) {
                flipped.remove(pos);
            } else {
                flipped.push(c);
            }
            check(&engine);
        }
    }

    #[test]
    fn flip_is_involutive() {
        let (topo, obs) = small_obs(2);
        let mut engine = Engine::new(&topo, &obs, HyperParams::default());
        let d0 = engine.delta().to_vec();
        let ll0 = engine.log_likelihood();
        let c = engine.n_comps() as u32 / 2;
        let gain = engine.flip(c);
        let back = engine.flip(c);
        assert!((gain + back).abs() < 1e-9);
        assert!((engine.log_likelihood() - ll0).abs() < 1e-9);
        for (i, (a, b)) in d0.iter().zip(engine.delta()).enumerate() {
            assert!((a - b).abs() < 1e-8, "delta[{i}] {a} vs {b}");
        }
        assert!(engine.hypothesis().is_empty());
    }

    #[test]
    fn delta_single_matches_delta_array() {
        let (topo, obs) = small_obs(3);
        let mut engine = Engine::new(&topo, &obs, HyperParams::default());
        let n = engine.n_comps() as u32;
        engine.flip(n / 3);
        engine.flip(2 * n / 3);
        for c in (0..n).step_by(7) {
            let arr = engine.delta()[c as usize];
            let single = engine.delta_single(c);
            assert!(
                (arr - single).abs() < 1e-8 * (1.0 + arr.abs()),
                "comp {c}: {arr} vs {single}"
            );
        }
    }

    #[test]
    fn flip_ll_only_tracks_likelihood() {
        let (topo, obs) = small_obs(4);
        let mut e1 = Engine::new(&topo, &obs, HyperParams::default());
        let mut e2 = Engine::new(&topo, &obs, HyperParams::default());
        let n = e1.n_comps() as u32;
        for c in [n / 5, n / 2, n - 3, n / 2] {
            let d1 = e1.flip(c);
            let d2 = e2.flip_ll_only(c);
            assert!((d1 - d2).abs() < 1e-9, "flip deltas differ for {c}");
        }
        assert!((e1.log_likelihood() - e2.log_likelihood()).abs() < 1e-9);
    }

    /// Three pods break the 2-pod "serial link" observational equivalence
    /// (with two pods, an up-link and the down-link it always feeds carry
    /// exactly the same flows and tie in likelihood — the equivalence-class
    /// phenomenon of Fig. 5c).
    fn three_pods() -> ClosParams {
        ClosParams {
            pods: 3,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            spines_per_plane: 2,
            hosts_per_tor: 2,
        }
    }

    #[test]
    fn known_failure_gets_top_delta() {
        // One heavily dropping link: its initial delta should dominate.
        let topo = three_tier(three_pods());
        let router = Router::new(&topo);
        let bad_link = topo.fabric_links()[3];
        let mut flows = Vec::new();
        let hosts = topo.hosts().to_vec();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..200 {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s {
                d = hosts[rng.random_range(0..hosts.len())];
            }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let crosses = tp.contains(&bad_link);
            let sent = 100u64;
            let bad = if crosses { 5 } else { 0 };
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, 2000 + i, 80),
                stats: FlowStats {
                    packets: sent,
                    retransmissions: bad,
                    bytes: sent * 1500,
                    rtt_sum_us: 0,
                    rtt_count: 0,
                    rtt_max_us: 0,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        let obs = assemble(
            &topo,
            &router,
            &flows,
            &[InputKind::Int],
            AnalysisMode::PerPacket,
        );
        let engine = Engine::new(&topo, &obs, HyperParams::default());
        let best = (0..engine.n_comps() as u32)
            .max_by(|&a, &b| {
                engine.delta()[a as usize]
                    .partial_cmp(&engine.delta()[b as usize])
                    .unwrap()
            })
            .unwrap();
        assert_eq!(
            engine.component(best),
            flock_topology::Component::Link(bad_link),
            "the dropping link should have the highest delta"
        );
    }

    /// With no evidence the local spaces are empty: the engine allocates
    /// nothing and a search over it terminates immediately — the
    /// structural form of the old "zero deltas" guarantee.
    #[test]
    fn empty_observation_set_has_empty_local_space() {
        let topo = three_tier(ClosParams::tiny());
        let obs = ObservationSet {
            arena: flock_telemetry::PathArena::new(),
            flows: Vec::new(),
            mode: AnalysisMode::PerPacket,
        };
        let engine = Engine::new(&topo, &obs, HyperParams::default());
        assert_eq!(engine.n_comps(), 0);
        assert_eq!(engine.n_paths(), 0);
        assert_eq!(engine.n_sets(), 0);
        assert!(engine.delta().is_empty());
        assert_eq!(engine.log_likelihood(), 0.0);
        assert!(engine.n_global_comps() > 0);
        let sizes = engine.state_sizes();
        assert_eq!(sizes.comps, 0);
        assert_eq!(sizes.global_comps, engine.n_global_comps());
    }

    /// A rebound engine must be indistinguishable (under the global-id
    /// projection) from one built fresh on the same lineage-extending
    /// observation set: equal likelihood, and equal Δ per global
    /// component — the warm engine may carry extra zero-evidence local
    /// comps from earlier epochs, which must all sit at Δ = 0.
    #[test]
    fn rebind_matches_fresh_build() {
        use flock_telemetry::Assembler;
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts().to_vec();
        let mut rng = StdRng::seed_from_u64(21);
        let mut asm = Assembler::new();

        let epoch_flows = |rng: &mut StdRng, n: usize| -> Vec<MonitoredFlow> {
            (0..n)
                .map(|i| {
                    let s = hosts[rng.random_range(0..hosts.len())];
                    let mut d = hosts[rng.random_range(0..hosts.len())];
                    while d == s {
                        d = hosts[rng.random_range(0..hosts.len())];
                    }
                    let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
                    let pick = rng.random_range(0..paths.len());
                    let mut tp = vec![topo.host_uplink(s)];
                    tp.extend_from_slice(&paths[pick].links);
                    tp.push(topo.host_downlink(d));
                    let sent = rng.random_range(10..300u64);
                    let bad = rng.random_range(0..=sent.min(5));
                    MonitoredFlow {
                        key: FlowKey::tcp(s, d, 1000 + i as u16, 80),
                        stats: FlowStats {
                            packets: sent,
                            retransmissions: bad,
                            bytes: sent * 1500,
                            rtt_sum_us: 0,
                            rtt_count: 0,
                            rtt_max_us: 0,
                        },
                        class: TrafficClass::Passive,
                        true_path: tp,
                    }
                })
                .collect()
        };

        let kinds = [InputKind::A2, InputKind::P];
        let f1 = epoch_flows(&mut rng, 50);
        let obs1 = asm.assemble(&topo, &router, &f1, &kinds, AnalysisMode::PerPacket);
        let mut warm = Engine::new(&topo, &obs1, HyperParams::default());
        // Disturb the hypothesis so rebind has real state to clear.
        warm.flip(3);
        warm.flip(warm.n_comps() as u32 / 2);
        asm.recycle(obs1);

        let f2 = epoch_flows(&mut rng, 70);
        let obs2 = asm.assemble(&topo, &router, &f2, &kinds, AnalysisMode::PerPacket);
        warm.rebind(&topo, &obs2);
        let fresh = Engine::new(&topo, &obs2, HyperParams::default());

        assert_eq!(warm.n_flows(), fresh.n_flows());
        assert_eq!(warm.n_observations(), fresh.n_observations());
        assert!(warm.hypothesis().is_empty());
        assert!((warm.log_likelihood() - fresh.log_likelihood()).abs() < 1e-12);
        for g in 0..warm.n_global_comps() as u32 {
            let a = warm.local_comp(g).map_or(0.0, |l| warm.delta()[l as usize]);
            let b = fresh
                .local_comp(g)
                .map_or(0.0, |l| fresh.delta()[l as usize]);
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "global comp {g}: rebound {a} vs fresh {b}"
            );
        }
        // And the JLE invariant still holds after flips on the rebound
        // engine.
        let c = warm.n_comps() as u32 / 3;
        warm.flip(c);
        let h = warm.hypothesis().to_vec();
        let base = warm.ll_of(&h);
        assert!((base - warm.log_likelihood()).abs() < 1e-7);
    }

    #[test]
    fn filtered_engine_sees_only_selected_flows() {
        let (topo, obs) = small_obs(6);
        let all = Engine::new_filtered(&topo, &obs, HyperParams::default(), Some(&|_, _| true));
        let full = Engine::new(&topo, &obs, HyperParams::default());
        assert_eq!(all.n_flows(), full.n_flows());
        assert_eq!(all.n_comps(), full.n_comps());
        for (a, b) in all.delta().iter().zip(full.delta()) {
            assert!((a - b).abs() < 1e-12);
        }
        let none = Engine::new_filtered(&topo, &obs, HyperParams::default(), Some(&|_, _| false));
        assert_eq!(none.n_flows(), 0);
        assert_eq!(none.n_comps(), 0, "no evidence, no local components");
    }

    /// Filters that partition the observation set produce engines whose
    /// evidence is exactly additive: at any hypothesis reached by the
    /// same (global-id) flip sequence, the partial likelihoods and
    /// per-global-component Δs sum to the full engine's. This is the
    /// engine-level foundation of per-plane spine sharding, where each
    /// plane engine is constructed from a plane-filtered slice of the
    /// evidence. Components absent from a part's local space contribute
    /// zero from that part.
    #[test]
    fn filtered_engines_partition_evidence() {
        let (topo, obs) = small_obs(8);
        let params = HyperParams::default();
        let mut full = Engine::new(&topo, &obs, params);
        // A 3-way partition by path-set id (arbitrary but disjoint and
        // exhaustive, like plane membership is for traced evidence).
        let mut parts: Vec<Engine> = (0..3u32)
            .map(|k| {
                Engine::new_filtered(
                    &topo,
                    &obs,
                    params,
                    Some(&|_, o: &FlowObs| o.set.0 % 3 == k),
                )
            })
            .collect();
        assert_eq!(
            parts.iter().map(Engine::n_observations).sum::<usize>(),
            full.n_observations(),
            "partition must be lossless"
        );
        let agree = |full: &Engine, parts: &[Engine]| {
            let ll: f64 = parts.iter().map(Engine::log_likelihood).sum();
            assert!(
                (ll - full.log_likelihood()).abs() < 1e-8 * (1.0 + full.log_likelihood().abs()),
                "partial lls sum to {ll}, full {}",
                full.log_likelihood()
            );
            for g in 0..full.n_global_comps() as u32 {
                let d: f64 = parts
                    .iter()
                    .filter_map(|e| e.local_comp(g).map(|l| e.delta()[l as usize]))
                    .sum();
                let f = full.local_comp(g).map_or(0.0, |l| full.delta()[l as usize]);
                assert!(
                    (d - f).abs() < 1e-8 * (1.0 + f.abs()),
                    "global comp {g}: partial sum {d} vs full {f}"
                );
            }
        };
        agree(&full, &parts);
        let n = full.n_comps() as u32;
        // Flip by *global* id: each engine translates to its own local
        // space; engines without the component skip (zero evidence).
        for c in [n / 5, n / 2, n - 2, n / 2] {
            let g = full.global_comp(c);
            let dll_full = full.flip(c);
            let dll_parts: f64 = parts
                .iter_mut()
                .filter_map(|e| e.local_comp(g).map(|l| e.flip(l)))
                .sum();
            assert!(
                (dll_full - dll_parts).abs() < 1e-8 * (1.0 + dll_full.abs()),
                "flip(global {g}): partial sum {dll_parts} vs full {dll_full}"
            );
            agree(&full, &parts);
        }
    }

    #[test]
    fn same_rack_flow_blames_tor_via_extras() {
        // An intra-rack flow has an empty fabric path: the ToR device must
        // still be blameable (it lives in the flow's extras).
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts().to_vec();
        // hosts[0] and hosts[1] share a leaf in the tiny Clos.
        let (a, b) = (hosts[0], hosts[1]);
        assert_eq!(topo.host_leaf(a), topo.host_leaf(b));
        let tp = vec![topo.host_uplink(a), topo.host_downlink(b)];
        let flows = vec![MonitoredFlow {
            key: FlowKey::tcp(a, b, 1, 80),
            stats: FlowStats {
                packets: 100,
                retransmissions: 10,
                bytes: 150_000,
                rtt_sum_us: 0,
                rtt_count: 0,
                rtt_max_us: 0,
            },
            class: TrafficClass::Passive,
            true_path: tp,
        }];
        let obs = assemble(
            &topo,
            &router,
            &flows,
            &[InputKind::Int],
            AnalysisMode::PerPacket,
        );
        let engine = Engine::new(&topo, &obs, HyperParams::default());
        let tor = topo.host_leaf(a);
        let tor_comp = engine
            .comp_of(flock_topology::Component::Device(tor))
            .expect("the ToR is implicated, so it has a local id");
        assert!(
            engine.delta()[tor_comp as usize] > 0.0,
            "ToR device must be implicated by the intra-rack flow"
        );
    }

    /// Build an observation set designed to coalesce hard: many host
    /// pairs per ToR pair, all sending the same number of packets, plus a
    /// handful of distinct drop counts.
    fn coalescable_obs(seed: u64) -> (flock_topology::Topology, ObservationSet) {
        let topo = three_tier(three_pods());
        let router = Router::new(&topo);
        let hosts = topo.hosts().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flows = Vec::new();
        for i in 0..200 {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s {
                d = hosts[rng.random_range(0..hosts.len())];
            }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let sent = 100u64; // fixed-size RPC-style traffic
            let bad = [0u64, 0, 0, 1, 3][rng.random_range(0..5usize)];
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, 3000 + i, 80),
                stats: FlowStats {
                    packets: sent,
                    retransmissions: bad,
                    bytes: sent * 1500,
                    rtt_sum_us: 0,
                    rtt_count: 0,
                    rtt_max_us: 0,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        let obs = assemble(
            &topo,
            &router,
            &flows,
            &[InputKind::A2, InputKind::P],
            AnalysisMode::PerPacket,
        );
        (topo, obs)
    }

    /// Coalescing is exact: the coalesced and raw engines agree on the
    /// likelihood and the entire Δ array, initially and along a flip walk
    /// that exercises both fabric comps and extras. Both engines project
    /// the same view order, so local ids line up one-to-one.
    #[test]
    fn coalesced_engine_matches_raw_engine() {
        let (topo, obs) = coalescable_obs(31);
        let params = HyperParams::default();
        let raw_opts = EngineOptions {
            coalesce: false,
            ..Default::default()
        };
        let mut co = Engine::new(&topo, &obs, params);
        let mut raw = Engine::with_options(&topo, &obs, params, None, raw_opts);

        assert!(
            co.n_flows() < raw.n_flows(),
            "fixed-size traffic must coalesce: {} vs {}",
            co.n_flows(),
            raw.n_flows()
        );
        assert_eq!(co.n_observations(), raw.n_observations());
        assert_eq!(co.n_comps(), raw.n_comps());

        let agree = |co: &Engine, raw: &Engine| {
            assert!(
                (co.log_likelihood() - raw.log_likelihood()).abs()
                    < 1e-8 * (1.0 + raw.log_likelihood().abs()),
                "ll {} vs {}",
                co.log_likelihood(),
                raw.log_likelihood()
            );
            for (i, (a, b)) in co.delta().iter().zip(raw.delta()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-8 * (1.0 + b.abs()),
                    "delta[{i}]: coalesced {a} vs raw {b}"
                );
            }
        };
        agree(&co, &raw);

        let n = co.n_comps() as u32;
        let mut rng = StdRng::seed_from_u64(7);
        // Mix fabric flips with host-link (extras) flips and removals.
        let mut walk: Vec<u32> = (0..10).map(|_| rng.random_range(0..n)).collect();
        let dup = walk[2];
        walk.push(dup); // guaranteed removal
        for c in walk {
            let d1 = co.flip(c);
            let d2 = raw.flip(c);
            assert!(
                (d1 - d2).abs() < 1e-8 * (1.0 + d2.abs()),
                "flip({c}) gain {d1} vs {d2}"
            );
            agree(&co, &raw);
        }
    }

    /// Pinned weight must track member state exactly through extras
    /// flips, keeping the fabric sweep's active weight consistent.
    #[test]
    fn pinned_weight_consistent_after_extras_flips() {
        let (topo, obs) = coalescable_obs(32);
        let mut engine = Engine::new(&topo, &obs, HyperParams::default());
        // Flip every host-attachment link component on, then off.
        let host_comps: Vec<u32> = (0..engine.n_comps() as u32)
            .filter(|&c| !engine.is_device(c))
            .take(24)
            .collect();
        for &c in &host_comps {
            engine.flip(c);
        }
        let h = engine.hypothesis().to_vec();
        assert!((engine.ll_of(&h) - engine.log_likelihood()).abs() < 1e-7);
        for &c in &host_comps {
            engine.flip(c);
        }
        assert!(engine.hypothesis().is_empty());
        assert!((engine.log_likelihood()).abs() < 1e-7);
        for f in &engine.sflows {
            assert_eq!(f.pinned, 0.0, "all pins released");
        }
        for m in &engine.members {
            assert_eq!(m.extra_fail, 0);
        }
    }

    /// The engine's resident state scales with the *filtered* evidence:
    /// an engine that accepts a third of the flows projects only the
    /// sets/paths/components that third touches.
    #[test]
    fn filtered_engine_state_is_local() {
        let (topo, obs) = small_obs(12);
        let full = Engine::new(&topo, &obs, HyperParams::default());
        let part = Engine::new_filtered(
            &topo,
            &obs,
            HyperParams::default(),
            Some(&|i, _| i % 7 == 0),
        );
        let fs = full.state_sizes();
        let ps = part.state_sizes();
        assert!(ps.sets < fs.sets, "sets {} !< {}", ps.sets, fs.sets);
        assert!(ps.paths < fs.paths, "paths {} !< {}", ps.paths, fs.paths);
        assert!(ps.comps < fs.comps, "comps {} !< {}", ps.comps, fs.comps);
        assert!(ps.comps < ps.global_comps);
        assert_eq!(part.delta().len(), ps.comps);
    }

    /// Rebinding against a foreign-lineage or rolled-back arena is a
    /// typed error (not release-mode UB), and the engine stays usable on
    /// its own lineage afterwards.
    #[test]
    fn rebind_rejects_foreign_and_shrunk_arenas() {
        let (topo, obs) = small_obs(13);
        let mut engine = Engine::new(&topo, &obs, HyperParams::default());

        // Foreign lineage: a fresh assembly of the same flows.
        let (_, foreign) = small_obs(13);
        let err = engine
            .try_rebind_filtered(&topo, &foreign, None)
            .unwrap_err();
        assert!(matches!(err, ViewError::ForeignLineage { .. }), "{err}");

        // Shrunk same-lineage arena: bind to an extended clone first,
        // then offer the original.
        let mut extended = obs.clone();
        extended
            .arena
            .intern_single(&[flock_topology::LinkId(0), flock_topology::LinkId(1)]);
        engine.try_rebind_filtered(&topo, &extended, None).unwrap();
        let err = engine.try_rebind_filtered(&topo, &obs, None).unwrap_err();
        assert!(matches!(err, ViewError::ArenaShrunk { .. }), "{err}");

        // Still fully usable on the valid lineage.
        engine.try_rebind_filtered(&topo, &extended, None).unwrap();
        let fresh = Engine::new(&topo, &extended, HyperParams::default());
        assert!((engine.log_likelihood() - fresh.log_likelihood()).abs() < 1e-12);
    }

    /// An engine bound to an external view matches one built through the
    /// legacy filter API, and rejects a different view with a typed
    /// error.
    #[test]
    fn external_view_matches_internal_and_rejects_foreign_view() {
        let (topo, obs) = small_obs(14);
        let params = HyperParams::default();
        let keep = |i: usize, _: &FlowObs| i % 2 == 0;

        let mut view = ArenaView::new();
        view.bind_epoch(&obs, keep).unwrap();
        let mut viewed = Engine::with_view(&topo, &obs, params, EngineOptions::default(), &view);
        let legacy = Engine::new_filtered(&topo, &obs, params, Some(&keep));

        assert_eq!(viewed.n_flows(), legacy.n_flows());
        assert_eq!(viewed.n_comps(), legacy.n_comps());
        assert!((viewed.log_likelihood() - legacy.log_likelihood()).abs() < 1e-12);
        for (a, b) in viewed.delta().iter().zip(legacy.delta()) {
            assert!((a - b).abs() < 1e-12);
        }

        // Rebinding through a *different* view is rejected: local ids
        // belong to the view that assigned them.
        let mut other = ArenaView::new();
        other.bind_epoch(&obs, keep).unwrap();
        let err = viewed.try_rebind_view(&topo, &obs, &other).unwrap_err();
        assert!(matches!(err, ViewError::ForeignView { .. }), "{err}");

        // Rebinding through the right view works and is idempotent.
        view.bind_epoch(&obs, keep).unwrap();
        viewed.try_rebind_view(&topo, &obs, &view).unwrap();
        assert!((viewed.log_likelihood() - legacy.log_likelihood()).abs() < 1e-12);
    }

    /// The engine validates that the offered observation set is one the
    /// view actually covers — handing obs from another assembly would
    /// index the wrong arena with the view's ids.
    #[test]
    fn rebind_view_rejects_uncovered_observation_set() {
        let (topo, obs) = small_obs(15);
        let mut view = ArenaView::new();
        view.bind_epoch(&obs, |_, _| true).unwrap();
        let mut engine = Engine::with_view(
            &topo,
            &obs,
            HyperParams::default(),
            EngineOptions::default(),
            &view,
        );

        // Same flows, fresh assembly: different arena lineage.
        let (_, foreign) = small_obs(15);
        let err = engine.try_rebind_view(&topo, &foreign, &view).unwrap_err();
        assert!(matches!(err, ViewError::ForeignLineage { .. }), "{err}");

        // The engine is still usable against the covered set.
        view.bind_epoch(&obs, |_, _| true).unwrap();
        engine.try_rebind_view(&topo, &obs, &view).unwrap();
    }

    /// Cloning a view stamps a fresh identity: clones serve new
    /// consumers, never an engine bound to the original (diverging
    /// clones would assign conflicting local ids).
    #[test]
    fn cloned_view_is_foreign_to_the_original_engine() {
        let (topo, obs) = small_obs(16);
        let mut view = ArenaView::new();
        view.bind_epoch(&obs, |_, _| true).unwrap();
        let mut engine = Engine::with_view(
            &topo,
            &obs,
            HyperParams::default(),
            EngineOptions::default(),
            &view,
        );
        let clone = view.clone();
        assert_ne!(view.id(), clone.id());
        let err = engine.try_rebind_view(&topo, &obs, &clone).unwrap_err();
        assert!(matches!(err, ViewError::ForeignView { .. }), "{err}");
    }

    /// `Approx { eps: 0 }` is bitwise identical to `Exact`: same
    /// super-flow count, same likelihood and Δ array to the last bit,
    /// same greedy verdict with bit-equal gains, and zero drift.
    #[test]
    fn approx_zero_eps_is_bitwise_exact() {
        for seed in [5u64, 6, 7] {
            let (topo, obs) = small_obs_with(
                seed,
                &[InputKind::A2, InputKind::P],
                CoalesceMode::Approx { eps: 0.0 },
            );
            let params = HyperParams::default();
            let mk = |mode| {
                Engine::with_options(
                    &topo,
                    &obs,
                    params,
                    None,
                    EngineOptions {
                        coalesce: true,
                        mode,
                        ..Default::default()
                    },
                )
            };
            let mut ex = mk(CoalesceMode::Exact);
            let mut ap = mk(CoalesceMode::Approx { eps: 0.0 });
            assert_eq!(ex.n_flows(), ap.n_flows());
            assert_eq!(ap.drift_bound(), 0.0);
            assert_eq!(ex.log_likelihood().to_bits(), ap.log_likelihood().to_bits());
            for (a, b) in ex.delta().iter().zip(ap.delta()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let greedy = crate::greedy::FlockGreedy::default();
            let (pe, _) = greedy.search(&mut ex);
            let (pa, _) = greedy.search(&mut ap);
            let bits =
                |p: &[(CompIdx, f64)]| p.iter().map(|(c, g)| (*c, g.to_bits())).collect::<Vec<_>>();
            assert_eq!(bits(&pe), bits(&pa), "seed {seed}");
        }
    }

    /// Approximate mode over an empty observation set: no flows, zero
    /// drift, empty verdict, infinite margin — the exactness certificate
    /// holds trivially.
    #[test]
    fn approx_empty_observation_set() {
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let mut asm = flock_telemetry::Assembler::new();
        asm.set_coalesce(CoalesceMode::approx_default());
        let obs = asm.assemble(
            &topo,
            &router,
            &[],
            &[InputKind::A2, InputKind::P],
            AnalysisMode::PerPacket,
        );
        let mut e = Engine::with_options(
            &topo,
            &obs,
            HyperParams::default(),
            None,
            EngineOptions {
                coalesce: true,
                mode: CoalesceMode::approx_default(),
                ..Default::default()
            },
        );
        assert_eq!(e.n_flows(), 0);
        assert_eq!(e.drift_bound(), 0.0);
        let out = crate::greedy::FlockGreedy::default().search_warm_deadline(&mut e, &[], None);
        assert!(out.picked.is_empty());
        assert!(out.margin.is_infinite());
        assert!(!out.timed_out);
    }

    /// The JLE invariant holds on the *collapsed* surface: an engine in
    /// approximate mode still has every Δ entry equal to brute-force
    /// neighbor evaluation of its own (bucketed) flow table, after any
    /// flip walk — correctness never depends on the bucketing choices.
    #[test]
    fn approx_delta_matches_brute_force() {
        for (seed, kinds) in [
            (8u64, &[InputKind::A2, InputKind::P][..]),
            // All paths known: every member is pinned when its component
            // flips, exercising the `llf(s, w, w) = s` edge of the drift
            // ladder under bucketed merging.
            (9u64, &[InputKind::Int][..]),
        ] {
            let mode = CoalesceMode::Approx { eps: 0.3 };
            let (topo, obs) = small_obs_with(seed, kinds, mode);
            let mut engine = Engine::with_options(
                &topo,
                &obs,
                HyperParams::default(),
                None,
                EngineOptions {
                    coalesce: true,
                    mode,
                    ..Default::default()
                },
            );
            assert!(engine.drift_bound() >= 0.0);
            let n = engine.n_comps() as u32;
            assert!(n > 0);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xa5);
            for _ in 0..6 {
                engine.flip(rng.random_range(0..n));
            }
            let h = engine.hypothesis().to_vec();
            let base = engine.ll_of(&h);
            assert!((base - engine.log_likelihood()).abs() < 1e-7);
            for c in (0..n).step_by(5) {
                let mut h2 = h.clone();
                match h2.iter().position(|&x| x == c) {
                    Some(p) => {
                        h2.remove(p);
                    }
                    None => h2.push(c),
                }
                let expect = engine.ll_of(&h2) - base;
                let got = engine.delta()[c as usize];
                assert!(
                    (expect - got).abs() < 1e-7 * (1.0 + expect.abs()),
                    "comp {c}: delta {got} vs brute {expect}"
                );
            }
        }
    }

    /// Exact coalescing is the default everywhere approximate mode is
    /// configurable.
    #[test]
    fn exact_is_the_default_mode() {
        assert_eq!(CoalesceMode::default(), CoalesceMode::Exact);
        assert_eq!(EngineOptions::default().mode, CoalesceMode::Exact);
        assert!(!CoalesceMode::default().is_approx());
        assert_eq!(CoalesceMode::Exact.eps(), 0.0);
    }
}
