//! Precision / recall / Fscore per Appendix A.1 of the paper.
//!
//! * **Precision** — fraction of predicted components that actually
//!   failed. A predicted *link* of a truly faulty device counts as
//!   correct. An empty prediction has precision 1.
//! * **Recall** — fraction of ground-truth failures recovered. Predicting
//!   a faulty device itself counts as 100% for that device; predicting x%
//!   of its failed links counts as x%. A ground-truth link is also
//!   credited when the prediction blames one of its endpoint devices.
//! * Zero-failure traces: recall is 1; precision is 1 iff the prediction
//!   is empty (a non-empty answer is a wrong answer).

use flock_topology::{Component, GroundTruth, LinkId, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A precision/recall pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRecall {
    /// Fraction of predictions that are correct.
    pub precision: f64,
    /// Fraction of ground truth recovered.
    pub recall: f64,
}

impl PrecisionRecall {
    /// Harmonic mean of precision and recall.
    pub fn fscore(&self) -> f64 {
        fscore(self.precision, self.recall)
    }
}

/// Harmonic mean, 0 when both inputs are 0.
pub fn fscore(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Score a prediction against ground truth (Appendix A.1).
pub fn evaluate(topo: &Topology, predicted: &[Component], truth: &GroundTruth) -> PrecisionRecall {
    if predicted.is_empty() {
        return PrecisionRecall {
            precision: 1.0,
            recall: if truth.is_empty() { 1.0 } else { 0.0 },
        };
    }
    if truth.is_empty() {
        // Non-empty prediction on a clean network: wrong answer.
        return PrecisionRecall {
            precision: 0.0,
            recall: 1.0,
        };
    }

    let truth_links: HashSet<LinkId> = truth.failed_links.iter().copied().collect();
    let truth_devs: HashSet<NodeId> = truth.failed_devices.iter().copied().collect();

    // ---- Precision ----
    let mut correct = 0usize;
    for p in predicted {
        let ok = match p {
            Component::Link(l) => {
                truth_links.contains(l) || {
                    let link = topo.link(*l);
                    truth_devs.contains(&link.src) || truth_devs.contains(&link.dst)
                }
            }
            Component::Device(d) => truth_devs.contains(d),
        };
        correct += usize::from(ok);
    }
    let precision = correct as f64 / predicted.len() as f64;

    // ---- Recall ----
    let pred_links: HashSet<LinkId> = predicted
        .iter()
        .filter_map(|c| match c {
            Component::Link(l) => Some(*l),
            _ => None,
        })
        .collect();
    let pred_devs: HashSet<NodeId> = predicted
        .iter()
        .filter_map(|c| match c {
            Component::Device(d) => Some(*d),
            _ => None,
        })
        .collect();

    // Ground-truth links attached to a ground-truth device are accounted
    // through the device's partial credit; the rest stand alone.
    let standalone_links: Vec<LinkId> = truth
        .failed_links
        .iter()
        .copied()
        .filter(|l| {
            let link = topo.link(*l);
            !(truth_devs.contains(&link.src) || truth_devs.contains(&link.dst))
        })
        .collect();

    let mut credit = 0.0f64;
    let mut denom = 0.0f64;
    for dev in &truth.failed_devices {
        denom += 1.0;
        if pred_devs.contains(dev) {
            credit += 1.0;
            continue;
        }
        // Partial credit: fraction of the device's failed links predicted.
        let dev_failed: Vec<LinkId> = truth
            .failed_links
            .iter()
            .copied()
            .filter(|l| {
                let link = topo.link(*l);
                link.src == *dev || link.dst == *dev
            })
            .collect();
        if !dev_failed.is_empty() {
            let hit = dev_failed.iter().filter(|l| pred_links.contains(l)).count();
            credit += hit as f64 / dev_failed.len() as f64;
        }
    }
    for l in &standalone_links {
        denom += 1.0;
        let link = topo.link(*l);
        if pred_links.contains(l) || pred_devs.contains(&link.src) || pred_devs.contains(&link.dst)
        {
            credit += 1.0;
        }
    }
    let recall = if denom == 0.0 { 1.0 } else { credit / denom };
    PrecisionRecall { precision, recall }
}

/// Accumulates per-trace precision/recall into experiment-level means, as
/// the paper's figures report.
#[derive(Debug, Default, Clone)]
pub struct MetricsAccumulator {
    precision_sum: f64,
    recall_sum: f64,
    n: usize,
}

impl MetricsAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one trace's result.
    pub fn add(&mut self, pr: PrecisionRecall) {
        self.precision_sum += pr.precision;
        self.recall_sum += pr.recall;
        self.n += 1;
    }

    /// Number of traces accumulated.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Mean precision/recall over the accumulated traces.
    pub fn mean(&self) -> PrecisionRecall {
        if self.n == 0 {
            return PrecisionRecall {
                precision: 0.0,
                recall: 0.0,
            };
        }
        PrecisionRecall {
            precision: self.precision_sum / self.n as f64,
            recall: self.recall_sum / self.n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_topology::clos::{three_tier, ClosParams};

    fn topo() -> Topology {
        three_tier(ClosParams::tiny())
    }

    #[test]
    fn empty_prediction_rules() {
        let t = topo();
        let empty_truth = GroundTruth::default();
        let pr = evaluate(&t, &[], &empty_truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);

        let truth = GroundTruth {
            failed_links: vec![t.fabric_links()[0]],
            failed_devices: vec![],
        };
        let pr = evaluate(&t, &[], &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
    }

    #[test]
    fn clean_network_wrong_answer_zeroes_precision() {
        let t = topo();
        let pr = evaluate(
            &t,
            &[Component::Link(t.fabric_links()[0])],
            &GroundTruth::default(),
        );
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn exact_link_match() {
        let t = topo();
        let l = t.fabric_links()[0];
        let truth = GroundTruth {
            failed_links: vec![l],
            failed_devices: vec![],
        };
        let pr = evaluate(&t, &[Component::Link(l)], &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.fscore(), 1.0);
    }

    #[test]
    fn wrong_link_halves_precision() {
        let t = topo();
        let ls = t.fabric_links();
        let truth = GroundTruth {
            failed_links: vec![ls[0]],
            failed_devices: vec![],
        };
        let pr = evaluate(
            &t,
            &[Component::Link(ls[0]), Component::Link(ls[5])],
            &truth,
        );
        assert_eq!(pr.precision, 0.5);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn device_truth_accepts_its_links() {
        let t = topo();
        let dev = t.switches()[0];
        let dev_links = t.links_of_node(dev);
        let truth = GroundTruth {
            failed_links: dev_links.clone(),
            failed_devices: vec![dev],
        };
        // Predicting half the device's links: precision 1 (all belong to
        // the faulty device), recall = 50%.
        let half: Vec<Component> = dev_links[..dev_links.len() / 2]
            .iter()
            .map(|l| Component::Link(*l))
            .collect();
        let pr = evaluate(&t, &half, &truth);
        assert_eq!(pr.precision, 1.0);
        assert!((pr.recall - 0.5).abs() < 1e-9);

        // Predicting the device itself: full credit.
        let pr = evaluate(&t, &[Component::Device(dev)], &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn predicted_device_covers_standalone_link() {
        let t = topo();
        let l = t.fabric_links()[0];
        let dev = t.link(l).src;
        let truth = GroundTruth {
            failed_links: vec![l],
            failed_devices: vec![],
        };
        let pr = evaluate(&t, &[Component::Device(dev)], &truth);
        // The device is not in truth → precision 0 under the strict rule…
        assert_eq!(pr.precision, 0.0);
        // …but it covers the link for recall.
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn accumulator_means() {
        let mut acc = MetricsAccumulator::new();
        acc.add(PrecisionRecall {
            precision: 1.0,
            recall: 0.0,
        });
        acc.add(PrecisionRecall {
            precision: 0.0,
            recall: 1.0,
        });
        let m = acc.mean();
        assert_eq!(acc.count(), 2);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
    }

    #[test]
    fn fscore_edge_cases() {
        assert_eq!(fscore(0.0, 0.0), 0.0);
        assert_eq!(fscore(1.0, 1.0), 1.0);
        assert!((fscore(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }
}
