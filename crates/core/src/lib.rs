//! The Flock fault-localization algorithm (the paper's primary
//! contribution) and the other PGM-based inference schemes it is compared
//! against.
//!
//! # Model
//!
//! Flock builds a three-layer discrete Bayesian network over the telemetry
//! (§3.2): hidden binary *link-nodes* and *device-nodes* at the top,
//! *path-nodes* in the middle (a path fails iff any of its components
//! failed), and observed *flow-nodes* at the bottom. Conditioned on a
//! hypothesis `H` (a set of failed components), a flow with `w` possible
//! paths, `r` bad packets of `t` sent has probability (Eq. 1)
//!
//! ```text
//! P[F=(r,t) | H] = 1/w · Σᵢ (1-γᵢ)·p_bʳ(1-p_b)^(t-r) + γᵢ·p_gʳ(1-p_g)^(t-r)
//! ```
//!
//! which this crate evaluates in normalized log space ([`likelihood`]).
//!
//! # Inference
//!
//! * [`engine`] — the shared inference state: interned paths/path sets,
//!   per-path failure counts, and the Δ array of Joint Likelihood
//!   Exploration (JLE). A single `flip` maintains all `n` neighbor deltas
//!   in `O(D·T)` (Theorem 1), the source of the `O(n)` speedup over
//!   per-hypothesis evaluation.
//! * [`greedy`] — Flock's greedy MLE search (Algorithms 1–2), with and
//!   without JLE (the Fig. 4c ablation).
//! * [`sherlock`] — the Sherlock/Ferret bounded-failure exhaustive search
//!   on the same PGM, plain and JLE-accelerated (Algorithm 3).
//! * [`gibbs`] — Gibbs sampling over the same model, JLE-accelerated
//!   (§3.3 discusses this variant).
//! * [`metrics`] — precision/recall per Appendix A.1, including the
//!   device-failure accounting.
//!
//! All schemes implement [`Localizer`] and consume the same
//! [`ObservationSet`](flock_telemetry::ObservationSet) — the property that
//! lets the evaluation compare them on identical input telemetry.

// `unsafe` is denied crate-wide and opted back in only by the AVX2
// intrinsic kernels in `simd::avx2`, which carry per-function safety
// contracts enforced by their safe wrappers.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod gibbs;
pub mod greedy;
pub mod likelihood;
pub mod localizer;
pub mod metrics;
pub mod params;
pub mod sherlock;
pub mod simd;
pub mod space;

pub use engine::{
    ConvictingEvidence, Engine, EngineOptions, EngineStateSizes, EngineStats, FlowFilter,
};
pub use flock_telemetry::CoalesceMode;
pub use gibbs::GibbsSampler;
pub use greedy::{BudgetedSearch, FlockGreedy};
pub use likelihood::{flow_score, llf, TermPrefill, TermTable};
pub use localizer::{LocalizationResult, Localizer};
pub use metrics::{evaluate, fscore, MetricsAccumulator, PrecisionRecall};
pub use params::HyperParams;
pub use sherlock::SherlockFerret;
pub use simd::KernelDispatch;
pub use space::{CompIdx, ComponentSpace};
