//! Runtime-dispatched SIMD kernels for the inference hot loops.
//!
//! Three loops dominate inference time once evidence is coalesced and
//! view-local (PRs 3–5): the `flip` counter sweep over comp→sets→flows
//! CSR walks, the `compute_initial_delta` full sweep, and the greedy
//! argmax over the dense Δ array. This module gives each a vector path
//! (AVX2, selected once per process behind `is_x86_feature_detected!`)
//! and a portable chunked-scalar fallback, both fed by the precomputed
//! [`TermTable`](crate::likelihood::TermTable) so the inner loops are
//! pure gather/multiply/add over contiguous `f64` lanes — no
//! transcendentals, no branches.
//!
//! # Bit-identity contract
//!
//! The two paths produce **bit-identical** results, not merely close
//! ones, so a deployment's verdicts do not depend on which CPU it landed
//! on. This is engineered, not hoped for:
//!
//! * Per-element kernels ([`fabric_delta_sweep`], [`member_delta_sweep`],
//!   [`weighted_table_accumulate`]) use only lanewise add/sub/mul/negate,
//!   each of which is IEEE-754 exact and therefore identical lane by
//!   lane between a `vmulpd` and a scalar `mulsd`. No FMA contraction is
//!   ever used — fusing the multiply and add would change the rounding.
//! * Cross-element accumulation into `delta[lane]` happens scalar, in
//!   index order, in both paths, so no reassociation occurs.
//! * The argmax reduction ([`argmax_gain`]) uses a fixed block-of-4
//!   lane-accumulator shape with a fixed pairwise combine, and the
//!   portable path emulates `vmaxpd` operand semantics exactly
//!   (`if acc > x { acc } else { x }`, which returns the *second*
//!   operand on ties and NaN). Both paths therefore agree even on
//!   `-0.0`/NaN corners.
//!
//! The property tests in `tests/prop_simd.rs` compare forced-portable
//! and forced-AVX2 engines bitwise (`f64::to_bits`) on randomized
//! topologies and telemetry to hold the contract.

use std::fmt;
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod avx2;
mod portable;

/// Which kernel implementation a process (or an engine) runs.
///
/// Resolved once per process by [`KernelDispatch::resolve`]; engines can
/// force a level through `EngineOptions::kernel` (used by the
/// bit-identity property tests and the bench scalar-vs-SIMD probes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum KernelDispatch {
    /// Portable chunked-scalar kernels; always available, mirrors the
    /// vector lane structure so results match AVX2 bitwise.
    Portable,
    /// 256-bit AVX2 kernels (x86-64 with runtime-detected AVX2).
    Avx2,
}

static RESOLVED: OnceLock<KernelDispatch> = OnceLock::new();

impl KernelDispatch {
    /// The process-wide dispatch level, resolved once.
    ///
    /// Honors `FLOCK_NO_SIMD`: when the variable is set to anything but
    /// empty or `0`, the portable path is used even if the CPU supports
    /// AVX2 (the CI matrix runs tier-1 this way to keep the fallback
    /// covered).
    pub fn resolve() -> Self {
        *RESOLVED.get_or_init(|| {
            let forced_off = std::env::var("FLOCK_NO_SIMD")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            if forced_off {
                return KernelDispatch::Portable;
            }
            #[cfg(target_arch = "x86_64")]
            if std::is_x86_feature_detected!("avx2") {
                return KernelDispatch::Avx2;
            }
            KernelDispatch::Portable
        })
    }

    /// Whether this level can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            KernelDispatch::Portable => true,
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 => std::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            KernelDispatch::Avx2 => false,
        }
    }

    /// This level if the CPU supports it, otherwise [`Portable`].
    ///
    /// Every kernel entry point clamps, so forcing `Avx2` through
    /// `EngineOptions` on a non-AVX2 host degrades safely instead of
    /// executing illegal instructions.
    ///
    /// [`Portable`]: KernelDispatch::Portable
    pub fn clamped(self) -> Self {
        if self.is_supported() {
            self
        } else {
            KernelDispatch::Portable
        }
    }

    /// Stable lowercase label (`"portable"` / `"avx2"`), used in logs,
    /// bench reports, and `ShardOutcome`.
    pub fn label(self) -> &'static str {
        match self {
            KernelDispatch::Portable => "portable",
            KernelDispatch::Avx2 => "avx2",
        }
    }

    /// Numeric level for the metrics gauge: `0` portable, `1` AVX2.
    pub fn level(self) -> u8 {
        match self {
            KernelDispatch::Portable => 0,
            KernelDispatch::Avx2 => 1,
        }
    }
}

impl fmt::Display for KernelDispatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Flip-sweep fabric kernel: for each element `i`,
///
/// ```text
/// delta[lanes[i]] += ((tbl[new_bad + g_new[i]] - ll_new)
///                   - (tbl[old_bad + g_old[i]] - ll_old)) * active
/// ```
///
/// where `tbl` is one flow's term-table segment (`w + 1` entries),
/// `g_old`/`g_new` are the per-component failed-path counts before and
/// after the flip, and `ll_old`/`ll_new` are the flow's own contribution
/// under the pre-/post-flip hypothesis. This is the Δ-maintenance inner
/// loop of `Engine::flip` for all components that are *not* in the
/// hypothesis (those keep the scalar branchy path; see
/// `engine::flip_inner`).
///
/// Bounds are checked up front so the gather path stays sound for any
/// caller; lengths of `g_old`, `g_new`, and `lanes` must match.
#[allow(clippy::too_many_arguments)]
#[allow(unsafe_code)] // dispatch into `avx2` after the bounds checks above
pub fn fabric_delta_sweep(
    dispatch: KernelDispatch,
    tbl: &[f64],
    old_bad: u32,
    new_bad: u32,
    g_old: &[u32],
    g_new: &[u32],
    lanes: &[u32],
    active: f64,
    ll_old: f64,
    ll_new: f64,
    delta: &mut [f64],
) {
    let n = lanes.len();
    assert_eq!(g_old.len(), n, "g_old/lanes length mismatch");
    assert_eq!(g_new.len(), n, "g_new/lanes length mismatch");
    if n == 0 {
        return;
    }
    let (mut max_old, mut max_new, mut max_lane) = (0u32, 0u32, 0u32);
    for i in 0..n {
        max_old = max_old.max(g_old[i]);
        max_new = max_new.max(g_new[i]);
        max_lane = max_lane.max(lanes[i]);
    }
    let entries = u32::try_from(tbl.len()).expect("term segment too large");
    assert!(
        old_bad + max_old < entries && new_bad + max_new < entries,
        "term-table index out of range"
    );
    assert!((max_lane as usize) < delta.len(), "lane index out of range");
    match dispatch.clamped() {
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => unsafe {
            avx2::fabric_delta_sweep(
                tbl, old_bad, new_bad, g_old, g_new, lanes, active, ll_old, ll_new, delta,
            )
        },
        _ => portable::fabric_delta_sweep(
            tbl, old_bad, new_bad, g_old, g_new, lanes, active, ll_old, ll_new, delta,
        ),
    }
}

/// Extra-member flip kernel: for each element `i`,
///
/// ```text
/// x = tbl[base + g[i]] - ll_active
/// delta[lanes[i]] += x * (if negate { -weight } else { weight })
/// ```
///
/// (The sign rides the weight operand, not `x`, so NaN table entries
/// propagate their own bit pattern identically through both dispatch
/// paths — see the kernel sources.)
///
/// Used by `flip_extra_for_member` when flipping a component that rides
/// a member's *extras* (host links, NIC-side components): the member's
/// path either starts failing (`negate = true`, the flow's old
/// contribution is retracted) or stops failing (`negate = false`, the
/// new contribution lands), and all in-set components not in the
/// hypothesis shift by the same table row `base`.
#[allow(clippy::too_many_arguments)]
#[allow(unsafe_code)] // dispatch into `avx2` after the bounds checks above
pub fn member_delta_sweep(
    dispatch: KernelDispatch,
    tbl: &[f64],
    base: u32,
    g: &[u32],
    lanes: &[u32],
    weight: f64,
    ll_active: f64,
    negate: bool,
    delta: &mut [f64],
) {
    let n = lanes.len();
    assert_eq!(g.len(), n, "g/lanes length mismatch");
    if n == 0 {
        return;
    }
    let (mut max_g, mut max_lane) = (0u32, 0u32);
    for i in 0..n {
        max_g = max_g.max(g[i]);
        max_lane = max_lane.max(lanes[i]);
    }
    let entries = u32::try_from(tbl.len()).expect("term segment too large");
    assert!(base + max_g < entries, "term-table index out of range");
    assert!((max_lane as usize) < delta.len(), "lane index out of range");
    match dispatch.clamped() {
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => unsafe {
            avx2::member_delta_sweep(tbl, base, g, lanes, weight, ll_active, negate, delta)
        },
        _ => portable::member_delta_sweep(tbl, base, g, lanes, weight, ll_active, negate, delta),
    }
}

/// Initial-Δ kernel: for each element `i`,
///
/// ```text
/// sums[i] += tbl[gs[i]] * weight
/// ```
///
/// `compute_initial_delta` groups a set's components by their distinct
/// failed-path counts and accumulates one weighted `llf` term per
/// distinct count per flow; `gs` holds the distinct counts and `sums`
/// the per-count accumulators.
#[allow(unsafe_code)] // dispatch into `avx2` after the bounds checks above
pub fn weighted_table_accumulate(
    dispatch: KernelDispatch,
    tbl: &[f64],
    gs: &[u32],
    weight: f64,
    sums: &mut [f64],
) {
    let n = gs.len();
    assert!(sums.len() >= n, "sums shorter than gs");
    if n == 0 {
        return;
    }
    let mut max_g = 0u32;
    for &g in gs {
        max_g = max_g.max(g);
    }
    assert!(
        (max_g as usize) < tbl.len(),
        "term-table index out of range"
    );
    match dispatch.clamped() {
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => unsafe { avx2::weighted_table_accumulate(tbl, gs, weight, sums) },
        _ => portable::weighted_table_accumulate(tbl, gs, weight, sums),
    }
}

/// Greedy argmax kernel: maximize `delta[i] + bias[i]`, breaking exact
/// ties toward the smallest **global** component id, exactly like the
/// scalar `beats` comparison in `greedy`.
///
/// Returns `(local index, max gain)`, or `None` when the slice is empty
/// or the maximum is NaN (a NaN gain means the likelihood state itself
/// is non-finite; both dispatch paths agree on the NaN outcome because
/// the reduction shape is fixed, so the verdict — stop the scan — is
/// still deterministic).
///
/// Pass 1 reduces to the maximum with the fixed block-of-4 shape; pass 2
/// rescans for elements whose recomputed gain equals the maximum
/// bitwise-reproducibly (same add, so the winner always matches) and
/// keeps the smallest global id. Pass 2 is shared scalar code in both
/// dispatch paths.
#[allow(unsafe_code)] // dispatch into `avx2` after the bounds checks above
pub fn argmax_gain(
    dispatch: KernelDispatch,
    delta: &[f64],
    bias: &[f64],
    globals: &[u32],
) -> Option<(u32, f64)> {
    let n = delta.len();
    assert_eq!(bias.len(), n, "bias/delta length mismatch");
    assert_eq!(globals.len(), n, "globals/delta length mismatch");
    if n == 0 {
        return None;
    }
    let m = match dispatch.clamped() {
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => unsafe { avx2::max_gain(delta, bias) },
        _ => portable::max_gain(delta, bias),
    };
    let mut best: Option<(u32, u32)> = None; // (global id, local index)
    for i in 0..n {
        if delta[i] + bias[i] == m {
            let g = globals[i];
            if best.is_none_or(|(bg, _)| g < bg) {
                best = Some((g, i as u32));
            }
        }
    }
    best.map(|(_, local)| (local, m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_is_stable_and_supported() {
        let d = KernelDispatch::resolve();
        assert_eq!(d, KernelDispatch::resolve());
        assert!(d.is_supported());
        assert_eq!(d.clamped(), d);
    }

    #[test]
    fn labels_and_levels() {
        assert_eq!(KernelDispatch::Portable.label(), "portable");
        assert_eq!(KernelDispatch::Avx2.label(), "avx2");
        assert_eq!(KernelDispatch::Portable.level(), 0);
        assert_eq!(KernelDispatch::Avx2.level(), 1);
        assert_eq!(format!("{}", KernelDispatch::Avx2), "avx2");
    }

    #[test]
    fn argmax_prefers_smallest_global_on_ties() {
        let delta = [1.0, 3.0, 3.0, 0.5];
        let bias = [0.0; 4];
        // Local 2 has the smaller global id among the tied maxima.
        let globals = [10, 9, 4, 11];
        for d in [KernelDispatch::Portable, KernelDispatch::Avx2] {
            let got = argmax_gain(d, &delta, &bias, &globals);
            assert_eq!(got, Some((2, 3.0)));
        }
    }

    #[test]
    fn argmax_empty_and_nan() {
        assert_eq!(argmax_gain(KernelDispatch::Portable, &[], &[], &[]), None);
        let delta = [1.0, f64::NAN, 2.0];
        let bias = [0.0; 3];
        let globals = [0, 1, 2];
        let p = argmax_gain(KernelDispatch::Portable, &delta, &bias, &globals);
        let v = argmax_gain(KernelDispatch::Avx2, &delta, &bias, &globals);
        // Both paths agree exactly, whatever the NaN outcome is.
        match (p, v) {
            (None, None) => {}
            (Some((pi, pm)), Some((vi, vm))) => {
                assert_eq!(pi, vi);
                assert_eq!(pm.to_bits(), vm.to_bits());
            }
            other => panic!("paths disagree: {other:?}"),
        }
    }

    #[test]
    fn kernels_match_bitwise_on_synthetic_data() {
        if !KernelDispatch::Avx2.is_supported() {
            return; // nothing to compare against on this host
        }
        let n = 37; // odd length exercises the scalar tail
        let tbl: Vec<f64> = (0..64)
            .map(|i| ((i * 37) % 19) as f64 * 0.173 - 1.2)
            .collect();
        let g_old: Vec<u32> = (0..n).map(|i| (i * 7 % 23) as u32).collect();
        let g_new: Vec<u32> = (0..n).map(|i| (i * 11 % 23) as u32).collect();
        let lanes: Vec<u32> = (0..n).map(|i| (i * 13 % n) as u32).collect();
        let mut d_p = vec![0.25f64; n];
        let mut d_v = d_p.clone();
        fabric_delta_sweep(
            KernelDispatch::Portable,
            &tbl,
            3,
            4,
            &g_old,
            &g_new,
            &lanes,
            0.75,
            -0.5,
            0.25,
            &mut d_p,
        );
        fabric_delta_sweep(
            KernelDispatch::Avx2,
            &tbl,
            3,
            4,
            &g_old,
            &g_new,
            &lanes,
            0.75,
            -0.5,
            0.25,
            &mut d_v,
        );
        for i in 0..n {
            assert_eq!(d_p[i].to_bits(), d_v[i].to_bits(), "fabric lane {i}");
        }

        for negate in [false, true] {
            let mut m_p = d_p.clone();
            let mut m_v = d_p.clone();
            let g: Vec<u32> = (0..n).map(|i| (i * 5 % 40) as u32).collect();
            member_delta_sweep(
                KernelDispatch::Portable,
                &tbl,
                9,
                &g,
                &lanes,
                1.5,
                0.125,
                negate,
                &mut m_p,
            );
            member_delta_sweep(
                KernelDispatch::Avx2,
                &tbl,
                9,
                &g,
                &lanes,
                1.5,
                0.125,
                negate,
                &mut m_v,
            );
            for i in 0..n {
                assert_eq!(m_p[i].to_bits(), m_v[i].to_bits(), "member lane {i}");
            }
        }

        let gs: Vec<u32> = (0..n).map(|i| (i * 3 % 60) as u32).collect();
        let mut s_p = vec![0.5f64; n];
        let mut s_v = s_p.clone();
        weighted_table_accumulate(KernelDispatch::Portable, &tbl, &gs, 2.25, &mut s_p);
        weighted_table_accumulate(KernelDispatch::Avx2, &tbl, &gs, 2.25, &mut s_v);
        for i in 0..n {
            assert_eq!(s_p[i].to_bits(), s_v[i].to_bits(), "sum lane {i}");
        }

        let globals: Vec<u32> = (0..n as u32).rev().collect();
        let p = argmax_gain(KernelDispatch::Portable, &d_p, &s_p, &globals);
        let v = argmax_gain(KernelDispatch::Avx2, &d_v, &s_v, &globals);
        let (pi, pm) = p.expect("portable argmax");
        let (vi, vm) = v.expect("avx2 argmax");
        assert_eq!(pi, vi);
        assert_eq!(pm.to_bits(), vm.to_bits());
    }
}
