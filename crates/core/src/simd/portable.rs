//! Portable chunked-scalar kernels.
//!
//! Every function here mirrors its AVX2 twin operation-for-operation:
//! per-element kernels perform the identical sequence of IEEE-754
//! add/sub/mul per lane (which vector and scalar units round the same
//! way), and the argmax reduction replays the same block-of-4 lane
//! accumulators with [`maxpd`]-exact combine semantics. See the module
//! docs in [`super`] for the full bit-identity argument.

/// Scalar emulation of the x86 `vmaxpd` instruction semantics:
/// returns `a` only when `a > b`, i.e. the *second* operand wins on
/// ties (`-0.0` vs `0.0`) and whenever either operand is NaN with
/// `a > b` false.
#[inline]
fn maxpd(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// See [`super::fabric_delta_sweep`] for the formula and bounds contract.
#[allow(clippy::too_many_arguments)]
pub(super) fn fabric_delta_sweep(
    tbl: &[f64],
    old_bad: u32,
    new_bad: u32,
    g_old: &[u32],
    g_new: &[u32],
    lanes: &[u32],
    active: f64,
    ll_old: f64,
    ll_new: f64,
    delta: &mut [f64],
) {
    for i in 0..lanes.len() {
        let t_old = tbl[(old_bad + g_old[i]) as usize];
        let t_new = tbl[(new_bad + g_new[i]) as usize];
        delta[lanes[i] as usize] += ((t_new - ll_new) - (t_old - ll_old)) * active;
    }
}

/// See [`super::member_delta_sweep`] for the formula and bounds contract.
#[allow(clippy::too_many_arguments)]
pub(super) fn member_delta_sweep(
    tbl: &[f64],
    base: u32,
    g: &[u32],
    lanes: &[u32],
    weight: f64,
    ll_active: f64,
    negate: bool,
    delta: &mut [f64],
) {
    // The sign is folded into the *weight* operand, not applied to `x`:
    // `x * (±weight)` equals `±(x * weight)` bitwise for every finite
    // and infinite input, and when `x` is NaN both the scalar `mulsd`
    // and the packed `vmulpd` propagate `x`'s own bit pattern. Negating
    // `x` itself is not codegen-stable — LLVM may rewrite `(-x) * w` as
    // `x * (-w)` (NaN sign is unspecified in its float semantics), which
    // silently flips which NaN sign this path produces relative to an
    // explicit vector sign-xor. The AVX2 twin folds the sign the same
    // way, so the two paths agree bitwise even on NaN table entries.
    let w = if negate { -weight } else { weight };
    for i in 0..lanes.len() {
        let x = tbl[(base + g[i]) as usize] - ll_active;
        delta[lanes[i] as usize] += x * w;
    }
}

/// See [`super::weighted_table_accumulate`] for the formula and bounds
/// contract.
pub(super) fn weighted_table_accumulate(tbl: &[f64], gs: &[u32], weight: f64, sums: &mut [f64]) {
    for (i, &g) in gs.iter().enumerate() {
        sums[i] += tbl[g as usize] * weight;
    }
}

/// Pass 1 of [`super::argmax_gain`]: maximum of `delta[i] + bias[i]`
/// under the fixed block-of-4 reduction shape.
///
/// Lane `j` accumulates elements with index ≡ `j` (mod 4) in index
/// order; the lanes combine pairwise `max(max(0,1), max(2,3))` — the
/// exact shape (and `vmaxpd` semantics) of the AVX2 path.
pub(super) fn max_gain(delta: &[f64], bias: &[f64]) -> f64 {
    let n = delta.len();
    let mut acc = [f64::NEG_INFINITY; 4];
    let mut i = 0;
    while i + 4 <= n {
        for (j, a) in acc.iter_mut().enumerate() {
            let x = delta[i + j] + bias[i + j];
            *a = maxpd(*a, x);
        }
        i += 4;
    }
    let mut j = 0;
    while i < n {
        let x = delta[i] + bias[i];
        acc[j] = maxpd(acc[j], x);
        i += 1;
        j += 1;
    }
    maxpd(maxpd(acc[0], acc[1]), maxpd(acc[2], acc[3]))
}
