//! AVX2 kernel implementations.
//!
//! This is the only module in `flock-core` allowed to contain `unsafe`
//! code: the intrinsics require it, and every entry point is `unsafe fn`
//! with an explicit safety contract. The safe wrappers in [`super`]
//! validate all slice lengths and gather indices before calling in, so
//! the unchecked accesses below are bounds-proven at the boundary.
//!
//! Bit-identity with the portable path (see [`super`] docs): only
//! lanewise `vsubpd`/`vmulpd`/`vxorpd`/`vaddpd` plus gathers are used —
//! never FMA — and all cross-element accumulation into `delta` happens
//! scalar in index order after extracting the vector lanes.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, _mm256_add_pd, _mm256_i32gather_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_mul_pd,
    _mm256_set1_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm_add_epi32, _mm_loadu_si128,
    _mm_set1_epi32,
};

/// # Safety
///
/// Caller must guarantee `g_old.len() == g_new.len() == lanes.len()`,
/// `old_bad + g_old[i] < tbl.len()`, `new_bad + g_new[i] < tbl.len()`,
/// and `lanes[i] < delta.len()` for all `i`, and that the CPU supports
/// AVX2.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn fabric_delta_sweep(
    tbl: &[f64],
    old_bad: u32,
    new_bad: u32,
    g_old: &[u32],
    g_new: &[u32],
    lanes: &[u32],
    active: f64,
    ll_old: f64,
    ll_new: f64,
    delta: &mut [f64],
) {
    unsafe {
        let n = lanes.len();
        let base = tbl.as_ptr();
        let v_old_bad = _mm_set1_epi32(old_bad as i32);
        let v_new_bad = _mm_set1_epi32(new_bad as i32);
        let v_ll_old = _mm256_set1_pd(ll_old);
        let v_ll_new = _mm256_set1_pd(ll_new);
        let v_active = _mm256_set1_pd(active);
        let mut out = [0.0f64; 4];
        let mut i = 0;
        while i + 4 <= n {
            let gi_old = _mm_loadu_si128(g_old.as_ptr().add(i) as *const __m128i);
            let gi_new = _mm_loadu_si128(g_new.as_ptr().add(i) as *const __m128i);
            let t_old = _mm256_i32gather_pd::<8>(base, _mm_add_epi32(gi_old, v_old_bad));
            let t_new = _mm256_i32gather_pd::<8>(base, _mm_add_epi32(gi_new, v_new_bad));
            // ((t_new - ll_new) - (t_old - ll_old)) * active, as separate
            // sub/mul — no FMA — to match the portable path bitwise.
            let diff = _mm256_sub_pd(
                _mm256_sub_pd(t_new, v_ll_new),
                _mm256_sub_pd(t_old, v_ll_old),
            );
            _mm256_storeu_pd(out.as_mut_ptr(), _mm256_mul_pd(diff, v_active));
            for (j, &o) in out.iter().enumerate() {
                let l = *lanes.get_unchecked(i + j) as usize;
                *delta.get_unchecked_mut(l) += o;
            }
            i += 4;
        }
        while i < n {
            let t_old = *tbl.get_unchecked((old_bad + *g_old.get_unchecked(i)) as usize);
            let t_new = *tbl.get_unchecked((new_bad + *g_new.get_unchecked(i)) as usize);
            let l = *lanes.get_unchecked(i) as usize;
            *delta.get_unchecked_mut(l) += ((t_new - ll_new) - (t_old - ll_old)) * active;
            i += 1;
        }
    }
}

/// # Safety
///
/// Caller must guarantee `g.len() == lanes.len()`,
/// `base + g[i] < tbl.len()` and `lanes[i] < delta.len()` for all `i`,
/// and that the CPU supports AVX2.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn member_delta_sweep(
    tbl: &[f64],
    base: u32,
    g: &[u32],
    lanes: &[u32],
    weight: f64,
    ll_active: f64,
    negate: bool,
    delta: &mut [f64],
) {
    unsafe {
        let n = lanes.len();
        let ptr = tbl.as_ptr();
        let v_base = _mm_set1_epi32(base as i32);
        let v_ll = _mm256_set1_pd(ll_active);
        // The sign is folded into the weight operand (`x * ±weight`, not
        // a sign-xor of `x`) so a NaN table entry propagates its own bit
        // pattern through `vmulpd`, exactly as the portable path's
        // `mulsd` does — see the portable twin for why negating `x`
        // itself is not codegen-stable.
        let w = if negate { -weight } else { weight };
        let v_weight = _mm256_set1_pd(w);
        let mut out = [0.0f64; 4];
        let mut i = 0;
        while i + 4 <= n {
            let gi = _mm_loadu_si128(g.as_ptr().add(i) as *const __m128i);
            let t = _mm256_i32gather_pd::<8>(ptr, _mm_add_epi32(gi, v_base));
            let x = _mm256_sub_pd(t, v_ll);
            _mm256_storeu_pd(out.as_mut_ptr(), _mm256_mul_pd(x, v_weight));
            for (j, &o) in out.iter().enumerate() {
                let l = *lanes.get_unchecked(i + j) as usize;
                *delta.get_unchecked_mut(l) += o;
            }
            i += 4;
        }
        while i < n {
            let x = *tbl.get_unchecked((base + *g.get_unchecked(i)) as usize) - ll_active;
            let l = *lanes.get_unchecked(i) as usize;
            *delta.get_unchecked_mut(l) += x * w;
            i += 1;
        }
    }
}

/// # Safety
///
/// Caller must guarantee `sums.len() >= gs.len()`, `gs[i] < tbl.len()`
/// for all `i`, and that the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn weighted_table_accumulate(
    tbl: &[f64],
    gs: &[u32],
    weight: f64,
    sums: &mut [f64],
) {
    unsafe {
        let n = gs.len();
        let ptr = tbl.as_ptr();
        let v_weight = _mm256_set1_pd(weight);
        let mut i = 0;
        while i + 4 <= n {
            let gi = _mm_loadu_si128(gs.as_ptr().add(i) as *const __m128i);
            let t = _mm256_i32gather_pd::<8>(ptr, gi);
            let s = _mm256_loadu_pd(sums.as_ptr().add(i));
            let s = _mm256_add_pd(s, _mm256_mul_pd(t, v_weight));
            _mm256_storeu_pd(sums.as_mut_ptr().add(i), s);
            i += 4;
        }
        while i < n {
            *sums.get_unchecked_mut(i) +=
                *tbl.get_unchecked(*gs.get_unchecked(i) as usize) * weight;
            i += 1;
        }
    }
}

/// Pass 1 of [`super::argmax_gain`]: `vmaxpd` reduction over
/// `delta[i] + bias[i]` in the fixed block-of-4 shape.
///
/// # Safety
///
/// Caller must guarantee `delta.len() == bias.len()` and that the CPU
/// supports AVX2.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn max_gain(delta: &[f64], bias: &[f64]) -> f64 {
    unsafe {
        let n = delta.len();
        let mut vacc = _mm256_set1_pd(f64::NEG_INFINITY);
        let mut i = 0;
        while i + 4 <= n {
            let d = _mm256_loadu_pd(delta.as_ptr().add(i));
            let b = _mm256_loadu_pd(bias.as_ptr().add(i));
            vacc = _mm256_max_pd(vacc, _mm256_add_pd(d, b));
            i += 4;
        }
        let mut acc = [0.0f64; 4];
        _mm256_storeu_pd(acc.as_mut_ptr(), vacc);
        let mut j = 0;
        while i < n {
            let x = *delta.get_unchecked(i) + *bias.get_unchecked(i);
            // Scalar `vmaxpd` emulation: second operand wins ties/NaN.
            acc[j] = if acc[j] > x { acc[j] } else { x };
            i += 1;
            j += 1;
        }
        let m01 = if acc[0] > acc[1] { acc[0] } else { acc[1] };
        let m23 = if acc[2] > acc[3] { acc[2] } else { acc[3] };
        if m01 > m23 {
            m01
        } else {
            m23
        }
    }
}
