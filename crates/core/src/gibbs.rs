//! Gibbs sampling over Flock's PGM, accelerated with JLE (§3.3).
//!
//! The sampler sweeps the components in random order; for each component
//! the conditional log-odds of being failed given the rest of the
//! hypothesis is exactly the Δ-array entry (± sign) plus the prior —
//! precisely what the engine maintains. Without JLE every flip candidate
//! would cost a likelihood evaluation, which is why the paper reports
//! plain Gibbs as unusable at scale.
//!
//! The posterior marginal of each component is estimated from the
//! post-burn-in samples; components with marginal ≥ `threshold` are
//! reported, ordered by marginal. The paper chose greedy over Gibbs
//! because convergence is hard to bound — reproduced here as the optional
//! third inference backend.

use crate::engine::Engine;
use crate::localizer::{LocalizationResult, Localizer};
use crate::params::HyperParams;
use crate::space::CompIdx;
use flock_telemetry::ObservationSet;
use flock_topology::Topology;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Gibbs-sampling inference.
#[derive(Debug, Clone)]
pub struct GibbsSampler {
    /// Model hyperparameters.
    pub params: HyperParams,
    /// Total sweeps over all components.
    pub sweeps: usize,
    /// Sweeps discarded before collecting marginals.
    pub burn_in: usize,
    /// Marginal threshold for reporting a component (default 0.5).
    pub threshold: f64,
    /// RNG seed (sampling is deterministic given the seed).
    pub seed: u64,
    /// Initialize the chain at the greedy MAP estimate instead of the
    /// empty hypothesis. The conditionals of this PGM are extremely sharp
    /// (log-odds of hundreds), so a cold chain freezes in the first mode
    /// it stumbles into; MAP initialization is the standard remedy.
    pub init_from_map: bool,
}

impl Default for GibbsSampler {
    fn default() -> Self {
        GibbsSampler {
            params: HyperParams::default(),
            sweeps: 60,
            burn_in: 20,
            threshold: 0.5,
            seed: 0x5eed,
            init_from_map: true,
        }
    }
}

impl GibbsSampler {
    /// Sampler with the given hyperparameters and defaults otherwise.
    pub fn new(params: HyperParams) -> Self {
        GibbsSampler {
            params,
            ..Default::default()
        }
    }
}

impl Localizer for GibbsSampler {
    fn name(&self) -> String {
        "Flock-Gibbs".into()
    }

    fn localize(&self, topo: &Topology, obs: &ObservationSet) -> LocalizationResult {
        assert!(self.burn_in < self.sweeps, "burn_in must be below sweeps");
        let start = Instant::now();
        let mut engine = Engine::new(topo, obs, self.params);
        let n = engine.n_comps();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<CompIdx> = (0..n as CompIdx).collect();
        let mut on_counts = vec![0u32; n];
        let mut scanned = 0u64;

        if self.init_from_map {
            let greedy = crate::greedy::FlockGreedy::new(self.params);
            let (_, greedy_scanned) = greedy.search(&mut engine);
            scanned += greedy_scanned;
        }

        for sweep in 0..self.sweeps {
            order.shuffle(&mut rng);
            for &c in &order {
                scanned += 1;
                // Conditional log-odds of c being failed given the rest.
                let logodds = if engine.in_hypothesis(c) {
                    -engine.delta()[c as usize] + engine.prior_logodds(c)
                } else {
                    engine.delta()[c as usize] + engine.prior_logodds(c)
                };
                let p_on = 1.0 / (1.0 + (-logodds).exp());
                let want_on = rng.random::<f64>() < p_on;
                if want_on != engine.in_hypothesis(c) {
                    engine.flip(c);
                }
            }
            if sweep >= self.burn_in {
                for &c in engine.hypothesis() {
                    on_counts[c as usize] += 1;
                }
            }
        }

        let samples = (self.sweeps - self.burn_in) as f64;
        let mut marginal: Vec<(CompIdx, f64)> = on_counts
            .iter()
            .enumerate()
            .filter_map(|(c, &k)| {
                let m = k as f64 / samples;
                (m >= self.threshold).then_some((c as CompIdx, m))
            })
            .collect();
        marginal.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

        LocalizationResult {
            predicted: marginal.iter().map(|(c, _)| engine.component(*c)).collect(),
            scores: marginal.iter().map(|(_, m)| *m).collect(),
            log_likelihood: engine.log_likelihood(),
            hypotheses_scanned: scanned,
            iterations: self.sweeps as u64,
            runtime: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
    use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, TrafficClass};
    use flock_topology::clos::{three_tier, ClosParams};
    use flock_topology::{Component, Router};

    #[test]
    fn gibbs_recovers_clear_failure() {
        // Three pods avoid the 2-pod serial-link equivalence (tied links
        // split the Gibbs marginal).
        let topo = three_tier(ClosParams {
            pods: 3,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            spines_per_plane: 2,
            hosts_per_tor: 2,
        });
        let router = Router::new(&topo);
        let hosts = topo.hosts().to_vec();
        let bad_link = topo.fabric_links()[5];
        let mut rng = StdRng::seed_from_u64(7);
        let mut flows = Vec::new();
        for i in 0..500usize {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s {
                d = hosts[rng.random_range(0..hosts.len())];
            }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let bad = if tp.contains(&bad_link) { 6 } else { 0 };
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
                stats: FlowStats {
                    packets: 1000,
                    retransmissions: bad,
                    bytes: 0,
                    rtt_sum_us: 0,
                    rtt_count: 0,
                    rtt_max_us: 0,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        let obs = assemble(
            &topo,
            &router,
            &flows,
            &[InputKind::Int],
            AnalysisMode::PerPacket,
        );
        let result = GibbsSampler::default().localize(&topo, &obs);
        assert_eq!(result.predicted, vec![Component::Link(bad_link)]);
        assert!(result.scores[0] > 0.9, "marginal should be near 1");
    }

    #[test]
    fn gibbs_is_deterministic_given_seed() {
        let topo = three_tier(ClosParams::tiny());
        let obs = ObservationSet {
            arena: flock_telemetry::PathArena::new(),
            flows: Vec::new(),
            mode: AnalysisMode::PerPacket,
        };
        let a = GibbsSampler::default().localize(&topo, &obs);
        let b = GibbsSampler::default().localize(&topo, &obs);
        assert_eq!(a.predicted, b.predicted);
        assert!(a.predicted.is_empty(), "no evidence → empty hypothesis");
    }
}
