//! Property tests of the SIMD kernel layer's bit-identity contract: a
//! forced-portable and a forced-AVX2 engine walked through the same flip
//! sequence over randomized topologies and telemetry must agree
//! **bitwise** — Δ array, log-likelihood, argmax picks, and greedy
//! verdicts — under both traced (Int) and passive (A2+P) schemes. On
//! hosts without AVX2 the forced-AVX2 engine clamps to portable and the
//! comparisons hold trivially; CI's AVX2 runners give them teeth.

use flock_core::simd::{self, KernelDispatch};
use flock_core::{flow_score, llf, Engine, EngineOptions, FlockGreedy, HyperParams, TermTable};
use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, ObservationSet, TrafficClass};
use flock_topology::clos::{leaf_spine, three_tier, ClosParams, LeafSpineParams};
use flock_topology::{Router, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random mixed-telemetry observation set on one of two small fabrics
/// (a 2-pod Clos or a leaf-spine), same shape as `prop_engine`'s.
fn random_obs(
    seed: u64,
    n_flows: usize,
    kinds: &[InputKind],
    leafspine: bool,
) -> (Topology, ObservationSet) {
    let topo = if leafspine {
        leaf_spine(LeafSpineParams {
            spines: 2,
            leaves: 3,
            hosts_per_leaf: 2,
        })
    } else {
        three_tier(ClosParams::tiny())
    };
    let router = Router::new(&topo);
    let hosts = topo.hosts().to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows = Vec::new();
    for i in 0..n_flows {
        let s = hosts[rng.random_range(0..hosts.len())];
        let mut d = hosts[rng.random_range(0..hosts.len())];
        while d == s {
            d = hosts[rng.random_range(0..hosts.len())];
        }
        let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
        let pick = rng.random_range(0..paths.len());
        let mut tp = vec![topo.host_uplink(s)];
        tp.extend_from_slice(&paths[pick].links);
        tp.push(topo.host_downlink(d));
        let sent = rng.random_range(1..300u64);
        let bad = rng.random_range(0..=sent.min(8));
        flows.push(MonitoredFlow {
            key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
            stats: FlowStats {
                packets: sent,
                retransmissions: bad,
                bytes: 0,
                rtt_sum_us: 0,
                rtt_count: 0,
                rtt_max_us: 0,
            },
            class: TrafficClass::Passive,
            true_path: tp,
        });
    }
    let obs = assemble(&topo, &router, &flows, kinds, AnalysisMode::PerPacket);
    (topo, obs)
}

fn forced(topo: &Topology, obs: &ObservationSet, k: KernelDispatch) -> Engine {
    Engine::with_options(
        topo,
        obs,
        HyperParams::default(),
        None,
        EngineOptions {
            kernel: Some(k),
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline contract: scalar and SIMD engines never diverge by
    /// a single bit, along any flip walk, under either telemetry scheme.
    #[test]
    fn scalar_and_simd_engines_are_bit_identical(
        seed in 0u64..1000,
        flips in prop::collection::vec(any::<u16>(), 1..12),
        traced in any::<bool>(),
        leafspine in any::<bool>(),
    ) {
        let kinds: &[InputKind] = if traced {
            &[InputKind::Int]
        } else {
            &[InputKind::A2, InputKind::P]
        };
        let (topo, obs) = random_obs(seed, 50, kinds, leafspine);
        let mut p = forced(&topo, &obs, KernelDispatch::Portable);
        let mut v = forced(&topo, &obs, KernelDispatch::Avx2);
        prop_assert_eq!(p.log_likelihood().to_bits(), v.log_likelihood().to_bits());
        let n = p.n_comps() as u32;
        for &f in &flips {
            let c = f as u32 % n;
            let dp = p.flip(c);
            let dv = v.flip(c);
            prop_assert_eq!(dp.to_bits(), dv.to_bits(), "flip({}) gain", c);
            prop_assert_eq!(
                p.log_likelihood().to_bits(), v.log_likelihood().to_bits(),
                "ll after flip({})", c
            );
            // The greedy-facing argmaxes agree exactly at every step —
            // same pick, same gain bits (ties included: pass 2 breaks
            // them by global id in both paths).
            let bits = |o: Option<(u32, f64)>| o.map(|(c, g)| (c, g.to_bits()));
            prop_assert_eq!(bits(p.argmax_move()), bits(v.argmax_move()));
            prop_assert_eq!(bits(p.argmax_addable()), bits(v.argmax_addable()));
        }
        for (i, (a, b)) in p.delta().iter().zip(v.delta()).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "delta[{}]", i);
        }

        // Whole greedy searches on fresh engines: identical verdicts in
        // order, identical scores in bits, identical scan counts.
        let mut p2 = forced(&topo, &obs, KernelDispatch::Portable);
        let mut v2 = forced(&topo, &obs, KernelDispatch::Avx2);
        let greedy = FlockGreedy::default();
        let (wp, sp) = greedy.search(&mut p2);
        let (wv, sv) = greedy.search(&mut v2);
        prop_assert_eq!(sp, sv, "hypotheses scanned");
        prop_assert_eq!(wp.len(), wv.len(), "verdict length");
        for ((cp, gp), (cv, gv)) in wp.iter().zip(wv.iter()) {
            prop_assert_eq!(cp, cv);
            prop_assert_eq!(gp.to_bits(), gv.to_bits());
        }
    }

    /// Non-finite guard: NaN and ±inf term-table entries flow through
    /// both dispatch paths with identical bit patterns (x86 scalar and
    /// vector mul/add share NaN-propagation rules, and the argmax's
    /// fixed reduction shape keeps even the NaN outcome deterministic).
    #[test]
    fn kernels_agree_bitwise_on_nonfinite_tables(seed in 0u64..500) {
        if !KernelDispatch::Avx2.is_supported() {
            return; // nothing to compare against on this host
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 41; // odd: exercises the scalar tails
        let tbl: Vec<f64> = (0..64)
            .map(|_| match rng.random_range(0..10u32) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => rng.random_range(-3.0..1.0f64),
            })
            .collect();
        let g_old: Vec<u32> = (0..n).map(|_| rng.random_range(0..24u32)).collect();
        let g_new: Vec<u32> = (0..n).map(|_| rng.random_range(0..24u32)).collect();
        let lanes: Vec<u32> = (0..n).map(|_| rng.random_range(0..n as u32)).collect();
        let mut d_p = vec![0.5f64; n];
        let mut d_v = d_p.clone();
        for (d, out) in [
            (KernelDispatch::Portable, &mut d_p),
            (KernelDispatch::Avx2, &mut d_v),
        ] {
            simd::fabric_delta_sweep(
                d, &tbl, 3, 5, &g_old, &g_new, &lanes, 0.75, -0.5, 0.25, out,
            );
        }
        for i in 0..n {
            prop_assert_eq!(d_p[i].to_bits(), d_v[i].to_bits(), "fabric lane {}", i);
        }

        for negate in [false, true] {
            let mut m_p = d_p.clone();
            let mut m_v = d_p.clone();
            for (d, out) in [
                (KernelDispatch::Portable, &mut m_p),
                (KernelDispatch::Avx2, &mut m_v),
            ] {
                simd::member_delta_sweep(d, &tbl, 7, &g_old, &lanes, 1.5, 0.125, negate, out);
            }
            for i in 0..n {
                prop_assert_eq!(m_p[i].to_bits(), m_v[i].to_bits(), "member lane {}", i);
            }
        }

        let mut s_p = vec![0.25f64; n];
        let mut s_v = s_p.clone();
        for (d, out) in [
            (KernelDispatch::Portable, &mut s_p),
            (KernelDispatch::Avx2, &mut s_v),
        ] {
            simd::weighted_table_accumulate(d, &tbl, &g_new, 2.25, out);
        }
        for i in 0..n {
            prop_assert_eq!(s_p[i].to_bits(), s_v[i].to_bits(), "sum lane {}", i);
        }

        let globals: Vec<u32> = (0..n as u32).rev().collect();
        let bits = |o: Option<(u32, f64)>| o.map(|(c, g)| (c, g.to_bits()));
        prop_assert_eq!(
            bits(simd::argmax_gain(KernelDispatch::Portable, &d_p, &s_p, &globals)),
            bits(simd::argmax_gain(KernelDispatch::Avx2, &d_v, &s_v, &globals))
        );
    }

    /// The term table is a memo, not an approximation: every interned
    /// entry equals the direct `llf` evaluation bitwise, re-interning is
    /// a pure hit (same offset, no growth), and offsets stay valid as
    /// the table extends.
    #[test]
    fn term_table_matches_llf_bitwise(
        sent in 1u64..5000,
        bad_frac in 0.0f64..1.0,
        w in 1u32..64,
    ) {
        let params = HyperParams::default();
        let bad = ((sent as f64) * bad_frac) as u64;
        let mut t = TermTable::new();
        let (off, score) = t.intern(&params, sent, bad, w);
        prop_assert_eq!(score.to_bits(), flow_score(&params, sent, bad).to_bits());
        for b in 0..=w {
            prop_assert_eq!(
                t.values()[(off + b) as usize].to_bits(),
                llf(score, w, b).to_bits(),
                "entry b={}", b
            );
        }
        let (entries, tables) = (t.entries(), t.tables());
        let (off2, score2) = t.intern(&params, sent, bad, w);
        prop_assert_eq!(off, off2);
        prop_assert_eq!(score.to_bits(), score2.to_bits());
        prop_assert_eq!(t.entries(), entries);
        prop_assert_eq!(t.tables(), tables);
        // A different key extends the table without moving the old one.
        let (off3, _) = t.intern(&params, sent, bad, w + 1);
        prop_assert!(off3 >= entries as u32);
        prop_assert_eq!(
            t.values()[(off + w) as usize].to_bits(),
            llf(score, w, w).to_bits()
        );
    }
}
