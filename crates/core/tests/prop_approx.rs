//! Property-based tests of approximate evidence coalescing: the drift
//! bound must be a sound certificate (whenever the search margin clears
//! twice the bound, the approximate verdict is identical to exact
//! inference), and at the default tolerance the headline gray-failure
//! scenario must localize perfectly (P = R = 1.0) — approximation buys
//! super-flow reduction, never verdicts.

use flock_core::{CoalesceMode, Engine, EngineOptions, FlockGreedy, HyperParams};
use flock_telemetry::input::{AnalysisMode, InputKind};
use flock_telemetry::{Assembler, FlowKey, FlowStats, MonitoredFlow, ObservationSet, TrafficClass};
use flock_topology::clos::{leaf_spine, three_tier, ClosParams, LeafSpineParams};
use flock_topology::{Component, LinkId, Router, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A heavy-tailed flow size: Pareto(shape 1.05) packets from `base`,
/// clamped — the regime where exact `(sent, bad)` keys barely repeat.
fn pareto_packets(rng: &mut StdRng, base: f64) -> u64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    (base / u.powf(1.0 / 1.05)).clamp(1.0, 100_000.0) as u64
}

/// Random heavy-tailed telemetry on a tiny Clos with `n_bad` gray fabric
/// links (drop ≈ 2% on crossing flows, light background noise),
/// assembled sorted for `mode`. Returns the ground-truth links too.
fn gray_obs(
    topo: &Topology,
    seed: u64,
    n_flows: usize,
    n_bad: usize,
    kinds: &[InputKind],
    mode: CoalesceMode,
) -> (ObservationSet, Vec<LinkId>) {
    let router = Router::new(topo);
    let mut rng = StdRng::seed_from_u64(seed);
    let fabric = topo.fabric_links();
    let mut bad_links: Vec<LinkId> = Vec::new();
    while bad_links.len() < n_bad {
        let l = fabric[rng.random_range(0..fabric.len())];
        if !bad_links.contains(&l) {
            bad_links.push(l);
        }
    }
    let hosts = topo.hosts().to_vec();
    let mut flows = Vec::new();
    for i in 0..n_flows {
        let s = hosts[rng.random_range(0..hosts.len())];
        let mut d = hosts[rng.random_range(0..hosts.len())];
        while d == s {
            d = hosts[rng.random_range(0..hosts.len())];
        }
        let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
        let pick = rng.random_range(0..paths.len());
        let mut tp = vec![topo.host_uplink(s)];
        tp.extend_from_slice(&paths[pick].links);
        tp.push(topo.host_downlink(d));
        let sent = pareto_packets(&mut rng, 50.0);
        let crossings = tp.iter().filter(|l| bad_links.contains(l)).count() as u64;
        // Gray links drop ≈ 5% of crossing traffic; 0.5% of clean flows
        // see a stray bad packet of noise.
        let mut bad = crossings * ((sent as f64 * 0.05).ceil() as u64);
        if bad == 0 && rng.random_range(0..200u32) == 0 {
            bad = 1;
        }
        flows.push(MonitoredFlow {
            key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
            stats: FlowStats {
                packets: sent,
                retransmissions: bad.min(sent),
                bytes: 0,
                rtt_sum_us: 0,
                rtt_count: 0,
                rtt_max_us: 0,
            },
            class: TrafficClass::Passive,
            true_path: tp,
        });
    }
    let mut asm = Assembler::new();
    asm.set_coalesce(mode);
    let obs = asm.assemble(topo, &router, &flows, kinds, AnalysisMode::PerPacket);
    (obs, bad_links)
}

fn engine_with_mode(topo: &Topology, obs: &ObservationSet, mode: CoalesceMode) -> Engine {
    Engine::with_options(
        topo,
        obs,
        HyperParams::default(),
        None,
        EngineOptions {
            coalesce: true,
            mode,
            ..Default::default()
        },
    )
}

/// Sorted predicted components of a fresh warm search, plus its margin
/// and the engine's drift bound.
fn verdict(
    topo: &Topology,
    obs: &ObservationSet,
    mode: CoalesceMode,
) -> (Vec<Component>, f64, f64) {
    let mut e = engine_with_mode(topo, obs, mode);
    let out = FlockGreedy::default().search_warm_deadline(&mut e, &[], None);
    assert!(!out.timed_out);
    let mut picked: Vec<Component> = out.picked.iter().map(|(c, _)| e.component(*c)).collect();
    picked.sort_unstable_by_key(|c| format!("{c:?}"));
    (picked, out.margin, e.drift_bound())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The certificate is sound across randomized topologies, telemetry
    /// mixes, and tolerances: whenever the approximate search's decision
    /// margin exceeds twice the measured drift bound, its verdict is
    /// identical to the exact engine's on the same evidence.
    #[test]
    fn certified_approx_verdicts_match_exact(
        seed in 0u64..500,
        eps_idx in 0usize..5,
        kind_idx in 0usize..3,
        n_bad in 0usize..3,
    ) {
        let eps = [0.0, 0.01, 0.05, 0.1, 0.3][eps_idx];
        // Passive path-set evidence, a mixed feed, and traced paths: the
        // first two can leave ECMP-symmetric links exactly tied (margin
        // 0 — the certificate rightly refuses), traced paths let it fire.
        let kinds: &[InputKind] = [
            &[InputKind::P][..],
            &[InputKind::A2, InputKind::P][..],
            &[InputKind::Int][..],
        ][kind_idx];
        let topo = three_tier(ClosParams::tiny());
        let mode = CoalesceMode::Approx { eps };
        let (obs, _) = gray_obs(&topo, seed, 120, n_bad, kinds, mode);
        let (approx_picked, margin, drift) = verdict(&topo, &obs, mode);
        prop_assert!(drift >= 0.0);
        let proven = drift == 0.0 || margin > 2.0 * drift;
        if proven {
            let (exact_picked, _, exact_drift) =
                verdict(&topo, &obs, CoalesceMode::Exact);
            prop_assert_eq!(exact_drift, 0.0);
            prop_assert_eq!(
                approx_picked, exact_picked,
                "certified approx verdict differs from exact (eps {}, margin {}, drift {})",
                eps, margin, drift
            );
        }
    }

    /// Headline gray-failure scenario at the default tolerance: both the
    /// exact and the approximate engine localize the failed link with
    /// P = R = 1.0 (heavy-tailed sizes make almost every exact key
    /// unique, so the approximate engine genuinely merges here). Traced
    /// paths — passive path-set evidence cannot separate ECMP-symmetric
    /// links on any engine, exact included. Three pods: in a 2-pod Clos
    /// every agg–spine link is exactly serial with its plane-mate in the
    /// other pod (clean flows contribute zero likelihood), so the truth
    /// there is unidentifiable in principle; a third pod breaks every
    /// serial pair.
    #[test]
    fn headline_scenario_exact_precision_recall_at_default_eps(seed in 0u64..200) {
        let topo = three_tier(ClosParams {
            pods: 3,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            spines_per_plane: 2,
            hosts_per_tor: 3,
        });
        let mode = CoalesceMode::approx_default();
        let (obs, bad_links) = gray_obs(&topo, seed, 400, 1, &[InputKind::Int], mode);
        let truth: Vec<Component> = bad_links.iter().map(|&l| Component::Link(l)).collect();
        for m in [CoalesceMode::Exact, mode] {
            let (picked, _, _) = verdict(&topo, &obs, m);
            prop_assert_eq!(
                &picked, &truth,
                "mode {} missed the gray link (seed {})", m.label(), seed
            );
        }
    }
}

/// Deterministic end-to-end certificate check: strong separable evidence
/// with jittered counts at a tight tolerance — the bucketing genuinely
/// merges distinct counts (drift > 0), the margin clears twice the
/// bound, and the certified verdict equals both the exact verdict and
/// the ground truth. Traced paths (INT): with passive path-set evidence
/// the three uplinks of the source leaf are ECMP-symmetric — exactly
/// tied gains, margin 0, and the certificate (correctly) never fires.
#[test]
fn certificate_fires_with_nonzero_drift() {
    let topo = leaf_spine(LeafSpineParams {
        spines: 3,
        leaves: 3,
        hosts_per_leaf: 2,
    });
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(12);
    let fabric = topo.fabric_links();
    let bad_link = fabric[1];
    let hosts = topo.hosts().to_vec();
    let mut flows = Vec::new();
    for i in 0..300usize {
        let s = hosts[rng.random_range(0..hosts.len())];
        let mut d = hosts[rng.random_range(0..hosts.len())];
        while d == s {
            d = hosts[rng.random_range(0..hosts.len())];
        }
        let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
        let pick = rng.random_range(0..paths.len());
        let mut tp = vec![topo.host_uplink(s)];
        tp.extend_from_slice(&paths[pick].links);
        tp.push(topo.host_downlink(d));
        // Counts jittered within ±0.5%: inside the 1% buckets, so the
        // approximate engine merges observations whose exact keys differ.
        let sent = 1000 + rng.random_range(0..5u64);
        let crossings = tp.iter().filter(|&&l| l == bad_link).count() as u64;
        let bad = crossings * (30 + rng.random_range(0..2u64));
        flows.push(MonitoredFlow {
            key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
            stats: FlowStats {
                packets: sent,
                retransmissions: bad.min(sent),
                bytes: 0,
                rtt_sum_us: 0,
                rtt_count: 0,
                rtt_max_us: 0,
            },
            class: TrafficClass::Passive,
            true_path: tp,
        });
    }
    let mode = CoalesceMode::Approx { eps: 0.01 };
    let mut asm = Assembler::new();
    asm.set_coalesce(mode);
    let obs = asm.assemble(
        &topo,
        &router,
        &flows,
        &[InputKind::Int],
        AnalysisMode::PerPacket,
    );

    let (approx_picked, margin, drift) = verdict(&topo, &obs, mode);
    assert!(drift > 0.0, "expected genuine merges, drift {drift}");
    assert!(
        margin > 2.0 * drift,
        "expected the certificate to fire: margin {margin} vs 2×{drift}"
    );
    let (exact_picked, _, _) = verdict(&topo, &obs, CoalesceMode::Exact);
    assert_eq!(approx_picked, exact_picked);
    assert_eq!(approx_picked, vec![Component::Link(bad_link)]);

    // The approximate engine must also have merged more aggressively.
    let e_exact = engine_with_mode(&topo, &obs, CoalesceMode::Exact);
    let e_approx = engine_with_mode(&topo, &obs, mode);
    assert!(e_approx.n_flows() < e_exact.n_flows());
}
