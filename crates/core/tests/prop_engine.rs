//! Property-based tests of the JLE engine and the likelihood kernel: the
//! Δ array must equal brute-force neighbor evaluation after *any* flip
//! sequence, and greedy must match exhaustive MLE in the separable-failure
//! regime (§4.2).

use flock_core::{llf, Engine, FlockGreedy, HyperParams, Localizer, SherlockFerret};
use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, ObservationSet, TrafficClass};
use flock_topology::clos::{leaf_spine, three_tier, ClosParams, LeafSpineParams};
use flock_topology::{Router, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random mixed-telemetry observation set on a tiny Clos.
fn random_obs(seed: u64, n_flows: usize, kinds: &[InputKind]) -> (Topology, ObservationSet) {
    let topo = three_tier(ClosParams::tiny());
    let router = Router::new(&topo);
    let hosts = topo.hosts().to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows = Vec::new();
    for i in 0..n_flows {
        let s = hosts[rng.random_range(0..hosts.len())];
        let mut d = hosts[rng.random_range(0..hosts.len())];
        while d == s {
            d = hosts[rng.random_range(0..hosts.len())];
        }
        let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
        let pick = rng.random_range(0..paths.len());
        let mut tp = vec![topo.host_uplink(s)];
        tp.extend_from_slice(&paths[pick].links);
        tp.push(topo.host_downlink(d));
        let sent = rng.random_range(1..300u64);
        let bad = rng.random_range(0..=sent.min(8));
        flows.push(MonitoredFlow {
            key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
            stats: FlowStats {
                packets: sent,
                retransmissions: bad,
                bytes: 0,
                rtt_sum_us: 0,
                rtt_count: 0,
                rtt_max_us: 0,
            },
            class: TrafficClass::Passive,
            true_path: tp,
        });
    }
    let obs = assemble(&topo, &router, &flows, kinds, AnalysisMode::PerPacket);
    (topo, obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central JLE invariant under arbitrary flip walks.
    #[test]
    fn delta_equals_brute_force_after_any_flip_walk(
        seed in 0u64..1000,
        flips in prop::collection::vec(any::<u16>(), 1..10),
        mixed in any::<bool>(),
    ) {
        let kinds: &[InputKind] = if mixed {
            &[InputKind::A2, InputKind::P]
        } else {
            &[InputKind::P]
        };
        let (topo, obs) = random_obs(seed, 40, kinds);
        let mut engine = Engine::new(&topo, &obs, HyperParams::default());
        let n = engine.n_comps() as u32;
        for &f in &flips {
            engine.flip(f as u32 % n);
        }
        let h = engine.hypothesis().to_vec();
        let base = engine.ll_of(&h);
        prop_assert!((base - engine.log_likelihood()).abs() < 1e-6);
        // Check a deterministic sample of components (all would be slow).
        for c in (0..n).step_by(7) {
            let mut h2 = h.clone();
            match h2.iter().position(|&x| x == c) {
                Some(p) => { h2.remove(p); }
                None => h2.push(c),
            }
            let expect = engine.ll_of(&h2) - base;
            let got = engine.delta()[c as usize];
            prop_assert!(
                (expect - got).abs() < 1e-6 * (1.0 + expect.abs()),
                "comp {}: delta {} vs brute {}", c, got, expect
            );
        }
    }

    /// llf is bounded between its endpoints and exact at them.
    #[test]
    fn llf_bounds(score in -500.0f64..500.0, w in 1u32..64, b_frac in 0.0f64..1.0) {
        let b = ((w as f64) * b_frac) as u32;
        let v = llf(score, w, b.min(w));
        prop_assert!(v.is_finite());
        let lo = score.min(0.0);
        let hi = score.max(0.0);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "llf {} outside [{}, {}]", v, lo, hi);
        prop_assert_eq!(llf(score, w, 0), 0.0);
        prop_assert!((llf(score, w, w) - score).abs() < 1e-12);
    }

    /// Greedy equals bounded exhaustive search when failures sit on
    /// disjoint devices with clear evidence (the Theorem 2 regime).
    #[test]
    fn greedy_matches_exhaustive_on_separable_instances(seed in 0u64..300) {
        let topo = leaf_spine(LeafSpineParams { spines: 3, leaves: 3, hosts_per_leaf: 2 });
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(seed);
        let fabric = topo.fabric_links();
        // 1-2 failed links on disjoint devices.
        let k = rng.random_range(1..=2usize);
        let mut bad: Vec<flock_topology::LinkId> = Vec::new();
        let mut guard = 0;
        while bad.len() < k && guard < 1000 {
            guard += 1;
            let l = fabric[rng.random_range(0..fabric.len())];
            let lk = topo.link(l);
            if bad.iter().all(|&b| {
                let bl = topo.link(b);
                lk.src != bl.src && lk.src != bl.dst && lk.dst != bl.src && lk.dst != bl.dst
            }) {
                bad.push(l);
            }
        }
        let hosts = topo.hosts().to_vec();
        let mut flows = Vec::new();
        for i in 0..400usize {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s { d = hosts[rng.random_range(0..hosts.len())]; }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let crossings = tp.iter().filter(|l| bad.contains(l)).count() as u64;
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
                stats: FlowStats {
                    packets: 1000,
                    retransmissions: crossings * 6,
                    bytes: 0, rtt_sum_us: 0, rtt_count: 0, rtt_max_us: 0,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        let obs = assemble(&topo, &router, &flows, &[InputKind::Int], AnalysisMode::PerPacket);
        let mut e = SherlockFerret::with_jle(HyperParams::default(), 2)
            .localize(&topo, &obs).predicted;
        let mut g = FlockGreedy::default().localize(&topo, &obs).predicted;
        e.sort();
        g.sort();
        prop_assert_eq!(e, g);
    }
}
