//! Property-based tests of the JLE engine and the likelihood kernel: the
//! Δ array must equal brute-force neighbor evaluation after *any* flip
//! sequence, and greedy must match exhaustive MLE in the separable-failure
//! regime (§4.2).

use flock_core::{llf, Engine, EngineOptions, FlockGreedy, HyperParams, Localizer, SherlockFerret};
use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, ObservationSet, TrafficClass};
use flock_topology::clos::{leaf_spine, three_tier, ClosParams, LeafSpineParams};
use flock_topology::{Router, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random mixed-telemetry observation set on a tiny Clos. When
/// `quantized` is set, flow sizes come from a four-value palette so the
/// `(set, sent, bad)` evidence key repeats heavily and the coalescing
/// path has real runs to collapse.
fn random_obs_sized(
    seed: u64,
    n_flows: usize,
    kinds: &[InputKind],
    quantized: bool,
) -> (Topology, ObservationSet) {
    let topo = three_tier(ClosParams::tiny());
    let router = Router::new(&topo);
    let hosts = topo.hosts().to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows = Vec::new();
    for i in 0..n_flows {
        let s = hosts[rng.random_range(0..hosts.len())];
        let mut d = hosts[rng.random_range(0..hosts.len())];
        while d == s {
            d = hosts[rng.random_range(0..hosts.len())];
        }
        let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
        let pick = rng.random_range(0..paths.len());
        let mut tp = vec![topo.host_uplink(s)];
        tp.extend_from_slice(&paths[pick].links);
        tp.push(topo.host_downlink(d));
        let sent = if quantized {
            [20u64, 50, 100, 200][rng.random_range(0..4usize)]
        } else {
            rng.random_range(1..300u64)
        };
        let bad = if quantized {
            [0u64, 0, 0, 1, 2][rng.random_range(0..5usize)].min(sent)
        } else {
            rng.random_range(0..=sent.min(8))
        };
        flows.push(MonitoredFlow {
            key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
            stats: FlowStats {
                packets: sent,
                retransmissions: bad,
                bytes: 0,
                rtt_sum_us: 0,
                rtt_count: 0,
                rtt_max_us: 0,
            },
            class: TrafficClass::Passive,
            true_path: tp,
        });
    }
    let obs = assemble(&topo, &router, &flows, kinds, AnalysisMode::PerPacket);
    (topo, obs)
}

/// Random mixed-telemetry observation set on a tiny Clos.
fn random_obs(seed: u64, n_flows: usize, kinds: &[InputKind]) -> (Topology, ObservationSet) {
    random_obs_sized(seed, n_flows, kinds, false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central JLE invariant under arbitrary flip walks.
    #[test]
    fn delta_equals_brute_force_after_any_flip_walk(
        seed in 0u64..1000,
        flips in prop::collection::vec(any::<u16>(), 1..10),
        mixed in any::<bool>(),
    ) {
        let kinds: &[InputKind] = if mixed {
            &[InputKind::A2, InputKind::P]
        } else {
            &[InputKind::P]
        };
        let (topo, obs) = random_obs(seed, 40, kinds);
        let mut engine = Engine::new(&topo, &obs, HyperParams::default());
        let n = engine.n_comps() as u32;
        for &f in &flips {
            engine.flip(f as u32 % n);
        }
        let h = engine.hypothesis().to_vec();
        let base = engine.ll_of(&h);
        prop_assert!((base - engine.log_likelihood()).abs() < 1e-6);
        // Check a deterministic sample of components (all would be slow).
        for c in (0..n).step_by(7) {
            let mut h2 = h.clone();
            match h2.iter().position(|&x| x == c) {
                Some(p) => { h2.remove(p); }
                None => h2.push(c),
            }
            let expect = engine.ll_of(&h2) - base;
            let got = engine.delta()[c as usize];
            prop_assert!(
                (expect - got).abs() < 1e-6 * (1.0 + expect.abs()),
                "comp {}: delta {} vs brute {}", c, got, expect
            );
        }
    }

    /// Coalescing invariance: for random observation sets, the coalesced
    /// and raw engines produce the same log-likelihood, the same Δ array
    /// (fp tolerance), and the same greedy verdict — the collapse of
    /// equal `(set, sent, bad)` evidence keys into weighted super-flows
    /// is exact, not an approximation.
    #[test]
    fn coalescing_is_invariant(
        seed in 0u64..1000,
        flips in prop::collection::vec(any::<u16>(), 0..8),
        quantized in any::<bool>(),
        mixed in any::<bool>(),
    ) {
        let kinds: &[InputKind] = if mixed {
            &[InputKind::A2, InputKind::P]
        } else {
            &[InputKind::P]
        };
        let (topo, obs) = random_obs_sized(seed, 60, kinds, quantized);
        let params = HyperParams::default();
        let mut co = Engine::with_options(
            &topo, &obs, params, None, EngineOptions { coalesce: true, ..Default::default() });
        let mut raw = Engine::with_options(
            &topo, &obs, params, None, EngineOptions { coalesce: false, ..Default::default() });
        prop_assert!(co.n_flows() <= raw.n_flows());
        prop_assert_eq!(co.n_observations(), raw.n_observations());

        // Same likelihood and Δ array along an arbitrary flip walk.
        let n = co.n_comps() as u32;
        for &f in &flips {
            let c = f as u32 % n;
            let d1 = co.flip(c);
            let d2 = raw.flip(c);
            prop_assert!((d1 - d2).abs() < 1e-7 * (1.0 + d2.abs()),
                "flip({}) gain {} vs {}", c, d1, d2);
        }
        prop_assert!(
            (co.log_likelihood() - raw.log_likelihood()).abs()
                < 1e-7 * (1.0 + raw.log_likelihood().abs()),
            "ll {} vs {}", co.log_likelihood(), raw.log_likelihood());
        for (i, (a, b)) in co.delta().iter().zip(raw.delta()).enumerate() {
            prop_assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()),
                "delta[{}]: coalesced {} vs raw {}", i, a, b);
        }

        // Same greedy verdict on fresh engines. Exception: when distinct
        // components tie exactly in gain (the 2-pod Clos's serial-link
        // equivalence classes), float summation order can break the tie
        // either way — both verdicts are then correct greedy outcomes,
        // recognized by equal posteriors.
        let mut co2 = Engine::with_options(
            &topo, &obs, params, None, EngineOptions { coalesce: true, ..Default::default() });
        let mut raw2 = Engine::with_options(
            &topo, &obs, params, None, EngineOptions { coalesce: false, ..Default::default() });
        let greedy = FlockGreedy::default();
        let (pc, _) = greedy.search(&mut co2);
        let (pr, _) = greedy.search(&mut raw2);
        let mut vc: Vec<u32> = pc.iter().map(|(c, _)| *c).collect();
        let mut vr: Vec<u32> = pr.iter().map(|(c, _)| *c).collect();
        vc.sort_unstable();
        vr.sort_unstable();
        if vc != vr {
            let posterior = |h: &[u32]| {
                raw2.ll_of(h) + h.iter().map(|&c| raw2.prior_logodds(c)).sum::<f64>()
            };
            let (post_c, post_r) = (posterior(&vc), posterior(&vr));
            prop_assert!(
                (post_c - post_r).abs() < 1e-7 * (1.0 + post_r.abs()),
                "greedy verdicts diverge beyond a tie: {:?} (post {}) vs {:?} (post {})",
                vc, post_c, vr, post_r
            );
        }
    }

    /// llf is bounded between its endpoints and exact at them.
    #[test]
    fn llf_bounds(score in -500.0f64..500.0, w in 1u32..64, b_frac in 0.0f64..1.0) {
        let b = ((w as f64) * b_frac) as u32;
        let v = llf(score, w, b.min(w));
        prop_assert!(v.is_finite());
        let lo = score.min(0.0);
        let hi = score.max(0.0);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "llf {} outside [{}, {}]", v, lo, hi);
        prop_assert_eq!(llf(score, w, 0), 0.0);
        prop_assert!((llf(score, w, w) - score).abs() < 1e-12);
    }

    /// Greedy equals bounded exhaustive search when failures sit on
    /// disjoint devices with clear evidence (the Theorem 2 regime).
    #[test]
    fn greedy_matches_exhaustive_on_separable_instances(seed in 0u64..300) {
        let topo = leaf_spine(LeafSpineParams { spines: 3, leaves: 3, hosts_per_leaf: 2 });
        let router = Router::new(&topo);
        let mut rng = StdRng::seed_from_u64(seed);
        let fabric = topo.fabric_links();
        // 1-2 failed links on disjoint devices.
        let k = rng.random_range(1..=2usize);
        let mut bad: Vec<flock_topology::LinkId> = Vec::new();
        let mut guard = 0;
        while bad.len() < k && guard < 1000 {
            guard += 1;
            let l = fabric[rng.random_range(0..fabric.len())];
            let lk = topo.link(l);
            if bad.iter().all(|&b| {
                let bl = topo.link(b);
                lk.src != bl.src && lk.src != bl.dst && lk.dst != bl.src && lk.dst != bl.dst
            }) {
                bad.push(l);
            }
        }
        let hosts = topo.hosts().to_vec();
        let mut flows = Vec::new();
        for i in 0..400usize {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s { d = hosts[rng.random_range(0..hosts.len())]; }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let crossings = tp.iter().filter(|l| bad.contains(l)).count() as u64;
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
                stats: FlowStats {
                    packets: 1000,
                    retransmissions: crossings * 6,
                    bytes: 0, rtt_sum_us: 0, rtt_count: 0, rtt_max_us: 0,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        let obs = assemble(&topo, &router, &flows, &[InputKind::Int], AnalysisMode::PerPacket);
        let mut e = SherlockFerret::with_jle(HyperParams::default(), 2)
            .localize(&topo, &obs).predicted;
        let mut g = FlockGreedy::default().localize(&topo, &obs).predicted;
        e.sort();
        g.sort();
        prop_assert_eq!(e, g);
    }
}
