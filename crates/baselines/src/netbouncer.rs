//! NetBouncer's regularized drop-rate solver (Figure 5 of \[54\]).
//!
//! NetBouncer models the success probability of a known path as the
//! product of per-link success probabilities `x_l` and fits them to the
//! observed per-path success rates `y_p` by minimizing
//!
//! ```text
//! J(x) = Σ_p n_p (y_p − Π_{l∈p} x_l)² + λ Σ_l x_l (1 − x_l)
//! ```
//!
//! by coordinate descent: with every other coordinate held fixed the
//! objective is a quadratic in `x_l` with the closed-form minimizer
//!
//! ```text
//! x_l = (2 Σ_p n_p c_p y_p − λ) / (2 Σ_p n_p c_p² − 2λ),
//! c_p = Π_{l'∈p, l'≠l} x_l'
//! ```
//!
//! clamped to `[0, 1]`. The regularizer pushes ambiguous links towards
//! {0, 1} instead of smearing loss across a path. Following the original
//! system, links that appear only on fully-successful paths are pinned
//! good before the descent.
//!
//! Detection: a link is blamed when its estimated drop rate `1 − x_l`
//! exceeds `link_threshold`; a device is blamed when the number of
//! problematic (≥ 1 bad packet) known-path flows crossing it reaches
//! `device_flow_threshold` *and* a majority of its observed links are
//! estimated lossy (the Flock paper calibrates the former for the device
//! experiment, §7.2). NetBouncer requires known paths (A1 probes or INT)
//! and ignores path-uncertain observations.

use flock_core::{LocalizationResult, Localizer};
use flock_telemetry::ObservationSet;
use flock_topology::{Component, LinkId, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// The NetBouncer baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetBouncer {
    /// Regularization weight λ.
    pub lambda: f64,
    /// Estimated drop rate above which a link is blamed.
    pub link_threshold: f64,
    /// Problematic-flow count at which a device is blamed.
    pub device_flow_threshold: u64,
    /// Coordinate-descent sweeps.
    pub max_sweeps: usize,
    /// Convergence tolerance on the largest coordinate move.
    pub tolerance: f64,
}

impl Default for NetBouncer {
    fn default() -> Self {
        NetBouncer {
            lambda: 10.0,
            link_threshold: 5e-4,
            device_flow_threshold: u64::MAX, // device detection off unless calibrated
            max_sweeps: 50,
            tolerance: 1e-9,
        }
    }
}

impl NetBouncer {
    /// NetBouncer with the given λ and link threshold.
    pub fn new(lambda: f64, link_threshold: f64) -> Self {
        NetBouncer {
            lambda,
            link_threshold,
            ..Default::default()
        }
    }

    /// Fit per-link success probabilities to the known-path observations.
    /// Returns `(x, iterations)` where `x[l]` is the estimated success
    /// probability of link `l` (1.0 for unobserved links).
    pub fn solve(&self, topo: &Topology, obs: &ObservationSet) -> (Vec<f64>, u64) {
        // Aggregate known-path observations per exact path.
        let mut paths: HashMap<Vec<LinkId>, (f64, f64)> = HashMap::new(); // path -> (sent, bad)
        for o in &obs.flows {
            if !o.path_known(&obs.arena) {
                continue;
            }
            let pid = obs.arena.set(o.set)[0];
            let links: Vec<LinkId> = obs.full_path_links(o, pid).collect();
            if links.is_empty() {
                continue;
            }
            let e = paths.entry(links).or_insert((0.0, 0.0));
            e.0 += (o.sent * u64::from(o.weight)) as f64;
            e.1 += (o.bad * u64::from(o.weight)) as f64;
        }
        let mut path_list: Vec<(Vec<LinkId>, f64, f64)> = paths
            .into_iter()
            .map(|(links, (sent, bad))| (links, sent, 1.0 - bad / sent))
            .collect();
        path_list.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic order

        // Link universe and per-link path index.
        let mut link_paths: HashMap<LinkId, Vec<u32>> = HashMap::new();
        for (pi, (links, ..)) in path_list.iter().enumerate() {
            for l in links {
                link_paths.entry(*l).or_default().push(pi as u32);
            }
        }

        let mut x = vec![1.0f64; topo.link_count()];
        // Pin links appearing only on fully-successful paths as good.
        let mut free: Vec<LinkId> = Vec::new();
        for (l, pids) in &link_paths {
            let all_clean = pids.iter().all(|&p| path_list[p as usize].2 >= 1.0);
            if !all_clean {
                free.push(*l);
            }
        }
        free.sort_unstable();

        let mut iterations = 0u64;
        for _sweep in 0..self.max_sweeps {
            let mut max_move = 0.0f64;
            for &l in &free {
                iterations += 1;
                let mut num = 0.0;
                let mut den = 0.0;
                for &pi in &link_paths[&l] {
                    let (links, n_p, y_p) = &path_list[pi as usize];
                    let mut c = 1.0;
                    for l2 in links {
                        if *l2 != l {
                            c *= x[l2.idx()];
                        }
                    }
                    num += n_p * c * y_p;
                    den += n_p * c * c;
                }
                let new_x =
                    ((2.0 * num - self.lambda) / (2.0 * den - 2.0 * self.lambda)).clamp(0.0, 1.0);
                max_move = max_move.max((new_x - x[l.idx()]).abs());
                x[l.idx()] = new_x;
            }
            if max_move < self.tolerance {
                break;
            }
        }
        (x, iterations)
    }
}

impl Localizer for NetBouncer {
    fn name(&self) -> String {
        "NetBouncer".into()
    }

    fn localize(&self, topo: &Topology, obs: &ObservationSet) -> LocalizationResult {
        let start = Instant::now();
        let (x, iterations) = self.solve(topo, obs);

        // Problematic-flow counts per device (for device detection) and
        // per-device observed link sets.
        let mut dev_bad_flows: HashMap<NodeId, u64> = HashMap::new();
        let mut dev_links: HashMap<NodeId, Vec<LinkId>> = HashMap::new();
        for o in &obs.flows {
            if !o.path_known(&obs.arena) {
                continue;
            }
            let pid = obs.arena.set(o.set)[0];
            for l in obs.full_path_links(o, pid) {
                let link = topo.link(l);
                for end in [link.src, link.dst] {
                    if topo.node(end).role.is_switch() {
                        let e = dev_links.entry(end).or_default();
                        if !e.contains(&l) {
                            e.push(l);
                        }
                        if o.bad > 0 {
                            *dev_bad_flows.entry(end).or_insert(0) += u64::from(o.weight);
                        }
                    }
                }
            }
        }

        let mut predicted = Vec::new();
        let mut scores = Vec::new();

        // Devices first: a blamed device subsumes its links.
        let mut blamed_devices: Vec<NodeId> = Vec::new();
        let mut devs: Vec<(&NodeId, &u64)> = dev_bad_flows.iter().collect();
        devs.sort_by_key(|(d, _)| **d);
        for (dev, &badcount) in devs {
            if badcount < self.device_flow_threshold {
                continue;
            }
            let links = &dev_links[dev];
            let lossy = links
                .iter()
                .filter(|l| 1.0 - x[l.idx()] > self.link_threshold)
                .count();
            // ≥ half of the observed links lossy: round-trip probes make
            // the two directions of a cable jointly unidentifiable, and
            // the sparse regularizer blames exactly one per pair.
            if lossy * 2 >= links.len() && lossy > 0 {
                blamed_devices.push(*dev);
                predicted.push(Component::Device(*dev));
                scores.push(badcount as f64);
            }
        }

        for (i, &xi) in x.iter().enumerate() {
            let drop = 1.0 - xi;
            if drop > self.link_threshold {
                let l = LinkId(i as u32);
                let link = topo.link(l);
                if blamed_devices.contains(&link.src) || blamed_devices.contains(&link.dst) {
                    continue; // covered by the device verdict
                }
                predicted.push(Component::Link(l));
                scores.push(drop);
            }
        }

        LocalizationResult {
            predicted,
            scores,
            log_likelihood: 0.0,
            hypotheses_scanned: iterations,
            iterations,
            runtime: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
    use flock_telemetry::{plan_a1_probes, FlowStats, MonitoredFlow, TrafficClass};
    use flock_topology::clos::{three_tier, ClosParams};
    use flock_topology::Router;

    /// Deterministic probe telemetry: every probe loses
    /// `round(packets * drop_rate_of_path)` packets.
    fn probe_obs(
        topo: &flock_topology::Topology,
        drop_rate: &[f64],
        packets: u64,
    ) -> ObservationSet {
        let router = Router::new(topo);
        let specs = plan_a1_probes(topo, &router, packets, None);
        let mut flows = Vec::new();
        for spec in specs {
            let mut survive = packets as f64;
            for l in &spec.round_trip_path {
                survive *= 1.0 - drop_rate[l.idx()];
            }
            let bad = (packets as f64 - survive).round() as u64;
            flows.push(MonitoredFlow {
                key: spec.key,
                stats: FlowStats {
                    packets,
                    retransmissions: bad,
                    bytes: 0,
                    rtt_sum_us: 0,
                    rtt_count: 0,
                    rtt_max_us: 0,
                },
                class: TrafficClass::Probe,
                true_path: spec.round_trip_path,
            });
        }
        assemble(
            topo,
            &router,
            &flows,
            &[InputKind::A1],
            AnalysisMode::PerPacket,
        )
    }

    #[test]
    fn recovers_single_lossy_link() {
        let topo = three_tier(ClosParams::tiny());
        let mut drops = vec![0.0; topo.link_count()];
        let bad = topo.fabric_links()[6];
        drops[bad.idx()] = 0.05;
        let obs = probe_obs(&topo, &drops, 2000);
        let nb = NetBouncer::new(0.5, 0.01);
        let result = nb.localize(&topo, &obs);
        assert!(
            result.predicted.contains(&Component::Link(bad)),
            "NetBouncer must flag the 5% link, got {:?}",
            result.predicted
        );
        assert!(result.predicted.len() <= 2, "no vote smearing expected");
    }

    #[test]
    fn estimates_drop_rate_accurately() {
        let topo = three_tier(ClosParams::tiny());
        let mut drops = vec![0.0; topo.link_count()];
        let bad = topo.fabric_links()[2];
        drops[bad.idx()] = 0.04;
        let obs = probe_obs(&topo, &drops, 5000);
        let nb = NetBouncer::new(0.1, 0.01);
        let (x, _) = nb.solve(&topo, &obs);
        let est = 1.0 - x[bad.idx()];
        assert!(
            (est - 0.04).abs() < 0.01,
            "estimated drop {est} should be ≈ 0.04"
        );
        // Other links stay near zero drop.
        for (i, xi) in x.iter().enumerate() {
            if i != bad.idx() {
                assert!(1.0 - xi < 0.005, "link {i} misestimated: {}", 1.0 - xi);
            }
        }
    }

    #[test]
    fn clean_network_blames_nothing() {
        let topo = three_tier(ClosParams::tiny());
        let drops = vec![0.0; topo.link_count()];
        let obs = probe_obs(&topo, &drops, 500);
        let result = NetBouncer::new(1.0, 0.001).localize(&topo, &obs);
        assert!(result.predicted.is_empty());
    }

    #[test]
    fn two_concurrent_failures_with_different_rates() {
        let topo = three_tier(ClosParams::tiny());
        let mut drops = vec![0.0; topo.link_count()];
        let fabric = topo.fabric_links();
        // Disjoint-device pair.
        let (b1, mut b2) = (fabric[0], fabric[1]);
        for &cand in &fabric {
            let l1 = topo.link(b1);
            let lc = topo.link(cand);
            if lc.src != l1.src && lc.src != l1.dst && lc.dst != l1.src && lc.dst != l1.dst {
                b2 = cand;
                break;
            }
        }
        drops[b1.idx()] = 0.05;
        drops[b2.idx()] = 0.01;
        let obs = probe_obs(&topo, &drops, 5000);
        let result = NetBouncer::new(0.5, 0.005).localize(&topo, &obs);
        assert!(result.predicted.contains(&Component::Link(b1)));
        assert!(result.predicted.contains(&Component::Link(b2)));
    }

    #[test]
    fn device_detection_uses_flow_threshold() {
        let topo = three_tier(ClosParams::tiny());
        let mut drops = vec![0.0; topo.link_count()];
        let dev = topo.switches()[0];
        for l in topo.links_of_node(dev) {
            drops[l.idx()] = 0.05;
        }
        let obs = probe_obs(&topo, &drops, 2000);
        let mut nb = NetBouncer::new(0.5, 0.01);
        nb.device_flow_threshold = 5;
        let result = nb.localize(&topo, &obs);
        assert!(
            result.predicted.contains(&Component::Device(dev)),
            "whole-device loss must be reported as the device, got {:?}",
            result.predicted
        );
        // The device's links are subsumed, not double-reported.
        for l in topo.links_of_node(dev) {
            assert!(!result.predicted.contains(&Component::Link(l)));
        }
    }

    #[test]
    fn ignores_path_uncertain_input() {
        let topo = three_tier(ClosParams::tiny());
        let obs = ObservationSet {
            arena: flock_telemetry::PathArena::new(),
            flows: Vec::new(),
            mode: AnalysisMode::PerPacket,
        };
        let result = NetBouncer::default().localize(&topo, &obs);
        assert!(result.predicted.is_empty());
    }
}
