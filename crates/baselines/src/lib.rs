//! Baseline fault-localization schemes reproduced for comparison with
//! Flock (§6.1 of the paper):
//!
//! * [`seven`] — **007** (Arzani et al., NSDI '18, Algorithm 1): flows
//!   with at least one retransmission vote `1/h` for each of the `h`
//!   links on their (traced) path; links are picked greedily by top vote
//!   with their flows removed, until the top vote falls below a
//!   calibrated threshold. One hyperparameter.
//! * [`netbouncer`] — **NetBouncer** (Tan et al., NSDI '19, Figure 5):
//!   per-path success rates are explained by per-link success
//!   probabilities `x_l` minimizing a regularized least-squares objective
//!   via coordinate descent; links whose estimated drop rate exceeds a
//!   threshold are flagged, and devices crossed by more problematic flows
//!   than a second threshold are flagged. Three hyperparameters.
//!
//! Both consume the same [`ObservationSet`](flock_telemetry::ObservationSet)
//! as Flock but can only use the observations whose exact path is known
//! (singleton path sets): neither scheme models ECMP path uncertainty,
//! which is why the paper's passive-telemetry experiments exclude them
//! (§6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod netbouncer;
pub mod seven;

pub use netbouncer::NetBouncer;
pub use seven::ZeroZeroSeven;
