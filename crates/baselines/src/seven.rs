//! 007's link voting (Algorithm 1 of \[11\]).
//!
//! Every "bad" flow — one with at least one retransmission — contributes a
//! vote of `1/h` to each of the `h` links on its traced path. The ranking
//! phase then repeatedly takes the link with the highest vote total,
//! removes the bad flows crossing it (their drops are now explained) and
//! re-tallies, until the best remaining vote drops below the scheme's one
//! hyperparameter, `vote_threshold`.
//!
//! 007 only consumes known-path observations (A2 in the paper's input
//! taxonomy: flagged flows whose path was traced). Observations with path
//! uncertainty are ignored, faithfully to the original system. Votes are
//! over links only — 007 has no device nodes; the paper's device-failure
//! evaluation credits it through the link-based accounting of App. A.1.

use flock_core::{LocalizationResult, Localizer};
use flock_telemetry::ObservationSet;
use flock_topology::{Component, LinkId, Topology};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The 007 baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZeroZeroSeven {
    /// Minimum vote total for a link to be blamed (007's single
    /// hyperparameter, calibrated in §5.2).
    pub vote_threshold: f64,
    /// Safety cap on the number of links returned.
    pub max_predictions: usize,
}

impl Default for ZeroZeroSeven {
    fn default() -> Self {
        ZeroZeroSeven {
            vote_threshold: 1.0,
            max_predictions: 64,
        }
    }
}

impl ZeroZeroSeven {
    /// 007 with the given vote threshold.
    pub fn new(vote_threshold: f64) -> Self {
        ZeroZeroSeven {
            vote_threshold,
            ..Default::default()
        }
    }
}

impl Localizer for ZeroZeroSeven {
    fn name(&self) -> String {
        "007".into()
    }

    fn localize(&self, topo: &Topology, obs: &ObservationSet) -> LocalizationResult {
        let start = Instant::now();
        // Bad flows with known paths: (links, weight).
        let mut bad_flows: Vec<(Vec<LinkId>, f64)> = Vec::new();
        for o in &obs.flows {
            if o.bad == 0 || !o.path_known(&obs.arena) {
                continue;
            }
            let pid = obs.arena.set(o.set)[0];
            let links: Vec<LinkId> = obs.full_path_links(o, pid).collect();
            if !links.is_empty() {
                bad_flows.push((links, f64::from(o.weight)));
            }
        }

        let mut votes = vec![0.0f64; topo.link_count()];
        let mut alive: Vec<bool> = vec![true; bad_flows.len()];
        for (links, w) in &bad_flows {
            let share = w / links.len() as f64;
            for l in links {
                votes[l.idx()] += share;
            }
        }

        let mut predicted = Vec::new();
        let mut scores = Vec::new();
        let mut scanned = 0u64;
        while predicted.len() < self.max_predictions {
            scanned += topo.link_count() as u64;
            let (best, best_votes) = match votes
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            {
                Some((i, v)) => (LinkId(i as u32), *v),
                None => break,
            };
            if best_votes < self.vote_threshold {
                break;
            }
            predicted.push(Component::Link(best));
            scores.push(best_votes);
            // Retract the votes of every remaining bad flow crossing the
            // blamed link.
            for (fi, (links, w)) in bad_flows.iter().enumerate() {
                if !alive[fi] || !links.contains(&best) {
                    continue;
                }
                alive[fi] = false;
                let share = w / links.len() as f64;
                for l in links {
                    votes[l.idx()] -= share;
                }
            }
            // The blamed link must not be re-selected even if other flows
            // still vote for it.
            votes[best.idx()] = f64::NEG_INFINITY;
        }

        let iterations = predicted.len() as u64;
        LocalizationResult {
            predicted,
            scores,
            log_likelihood: 0.0,
            hypotheses_scanned: scanned,
            iterations,
            runtime: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_telemetry::input::{assemble, AnalysisMode, InputKind};
    use flock_telemetry::{FlowKey, FlowStats, MonitoredFlow, TrafficClass};
    use flock_topology::clos::{three_tier, ClosParams};
    use flock_topology::Router;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn obs_with_failure(
        topo: &flock_topology::Topology,
        bad_link: LinkId,
        n_flows: usize,
        seed: u64,
    ) -> ObservationSet {
        let router = Router::new(topo);
        let hosts = topo.hosts().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flows = Vec::new();
        for i in 0..n_flows {
            let s = hosts[rng.random_range(0..hosts.len())];
            let mut d = hosts[rng.random_range(0..hosts.len())];
            while d == s {
                d = hosts[rng.random_range(0..hosts.len())];
            }
            let paths = router.paths(topo.host_leaf(s), topo.host_leaf(d));
            let pick = rng.random_range(0..paths.len());
            let mut tp = vec![topo.host_uplink(s)];
            tp.extend_from_slice(&paths[pick].links);
            tp.push(topo.host_downlink(d));
            let bad = u64::from(tp.contains(&bad_link)) * 3;
            flows.push(MonitoredFlow {
                key: FlowKey::tcp(s, d, (i % 60000) as u16, 80),
                stats: FlowStats {
                    packets: 500,
                    retransmissions: bad,
                    bytes: 0,
                    rtt_sum_us: 0,
                    rtt_count: 0,
                    rtt_max_us: 0,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            });
        }
        assemble(
            topo,
            &router,
            &flows,
            &[InputKind::A2],
            AnalysisMode::PerPacket,
        )
    }

    #[test]
    fn top_vote_is_failed_link() {
        let topo = three_tier(ClosParams {
            pods: 3,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            spines_per_plane: 2,
            hosts_per_tor: 2,
        });
        let bad = topo.fabric_links()[10];
        let obs = obs_with_failure(&topo, bad, 1500, 3);
        let result = ZeroZeroSeven::new(2.0).localize(&topo, &obs);
        assert!(
            result.predicted.contains(&Component::Link(bad)),
            "007 must blame the failed link, got {:?}",
            result.predicted
        );
        // The failed link should be the very first pick.
        assert_eq!(result.predicted[0], Component::Link(bad));
    }

    #[test]
    fn high_threshold_blames_nothing() {
        let topo = three_tier(ClosParams::tiny());
        let bad = topo.fabric_links()[0];
        let obs = obs_with_failure(&topo, bad, 200, 4);
        let result = ZeroZeroSeven::new(1e9).localize(&topo, &obs);
        assert!(result.predicted.is_empty());
    }

    #[test]
    fn clean_input_blames_nothing() {
        let topo = three_tier(ClosParams::tiny());
        let obs = ObservationSet {
            arena: flock_telemetry::PathArena::new(),
            flows: Vec::new(),
            mode: AnalysisMode::PerPacket,
        };
        let result = ZeroZeroSeven::default().localize(&topo, &obs);
        assert!(result.predicted.is_empty());
    }

    #[test]
    fn ignores_path_uncertain_observations() {
        // Passive-only input (path sets): 007 cannot use it at all.
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts().to_vec();
        let mut tp = vec![topo.host_uplink(hosts[0])];
        let paths = router.paths(topo.host_leaf(hosts[0]), topo.host_leaf(hosts[11]));
        tp.extend_from_slice(&paths[0].links);
        tp.push(topo.host_downlink(hosts[11]));
        let flows = vec![MonitoredFlow {
            key: FlowKey::tcp(hosts[0], hosts[11], 1, 80),
            stats: FlowStats {
                packets: 100,
                retransmissions: 50,
                bytes: 0,
                rtt_sum_us: 0,
                rtt_count: 0,
                rtt_max_us: 0,
            },
            class: TrafficClass::Passive,
            true_path: tp,
        }];
        let obs = assemble(
            &topo,
            &router,
            &flows,
            &[InputKind::P],
            AnalysisMode::PerPacket,
        );
        let result = ZeroZeroSeven::new(0.1).localize(&topo, &obs);
        assert!(result.predicted.is_empty(), "P input must be unusable");
    }

    #[test]
    fn votes_scale_with_aggregation_weight() {
        // Two identical bad flows merged into one weighted observation
        // must count as two votes.
        let topo = three_tier(ClosParams::tiny());
        let router = Router::new(&topo);
        let hosts = topo.hosts().to_vec();
        let mk = || {
            let paths = router.paths(topo.host_leaf(hosts[0]), topo.host_leaf(hosts[11]));
            let mut tp = vec![topo.host_uplink(hosts[0])];
            tp.extend_from_slice(&paths[0].links);
            tp.push(topo.host_downlink(hosts[11]));
            MonitoredFlow {
                key: FlowKey::tcp(hosts[0], hosts[11], 7, 80),
                stats: FlowStats {
                    packets: 100,
                    retransmissions: 2,
                    bytes: 0,
                    rtt_sum_us: 0,
                    rtt_count: 0,
                    rtt_max_us: 0,
                },
                class: TrafficClass::Passive,
                true_path: tp,
            }
        };
        let obs = assemble(
            &topo,
            &router,
            &[mk(), mk()],
            &[InputKind::A2],
            AnalysisMode::PerPacket,
        );
        assert_eq!(obs.flows.len(), 1);
        assert_eq!(obs.flows[0].weight, 2);
        let h = 6.0; // uplink + 4 fabric links + downlink
        let result = ZeroZeroSeven::new(2.0 / h - 1e-9).localize(&topo, &obs);
        assert!(
            !result.predicted.is_empty(),
            "2 merged flows → vote 2/h per link, above threshold"
        );
    }
}
