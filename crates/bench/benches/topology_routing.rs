//! Topology substrate benchmarks: fabric construction and ECMP path
//! enumeration (cold and cached).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flock_topology::clos::three_tier;
use flock_topology::{ClosParams, NodeRole, Router};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_routing");
    for servers in [1024u32, 4096] {
        let params = ClosParams::with_servers(servers);
        group.bench_with_input(BenchmarkId::new("build_clos", servers), &params, |b, p| {
            b.iter(|| three_tier(*p))
        });
        let topo = three_tier(params);
        let leaves: Vec<_> = topo
            .switches()
            .iter()
            .copied()
            .filter(|s| topo.node(*s).role == NodeRole::Leaf)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("ecmp_paths_cold", servers),
            &topo,
            |b, topo| {
                let mut i = 0usize;
                b.iter(|| {
                    // New router every call: uncached enumeration.
                    let router = Router::new(topo);
                    let a = leaves[i % leaves.len()];
                    let z = leaves[(i * 7 + 3) % leaves.len()];
                    i += 1;
                    router.paths(a, z)
                });
            },
        );
        let router = Router::new(&topo);
        group.bench_with_input(
            BenchmarkId::new("ecmp_paths_cached", servers),
            &topo,
            |b, _| {
                b.iter(|| router.paths(leaves[0], leaves[1]));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
