//! Fig. 4d as a criterion bench: wall-clock inference per scheme×input on
//! the same trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flock_baselines::{NetBouncer, ZeroZeroSeven};
use flock_bench::{input, trace};
use flock_core::{FlockGreedy, Localizer};
use flock_telemetry::InputKind::*;

fn bench(c: &mut Criterion) {
    let t = trace(512, 10_000, 2);
    let mut group = c.benchmark_group("scheme_runtime");
    group.sample_size(10);

    let cells: Vec<(&str, Vec<flock_telemetry::InputKind>, Box<dyn Localizer>)> = vec![
        ("flock_int", vec![Int], Box::new(FlockGreedy::default())),
        (
            "flock_a1a2p",
            vec![A1, A2, P],
            Box::new(FlockGreedy::default()),
        ),
        ("flock_a1", vec![A1], Box::new(FlockGreedy::default())),
        ("flock_a2", vec![A2], Box::new(FlockGreedy::default())),
        (
            "netbouncer_a1",
            vec![A1],
            Box::new(NetBouncer::new(1.0, 5e-4)),
        ),
        (
            "netbouncer_int",
            vec![Int],
            Box::new(NetBouncer::new(1.0, 5e-4)),
        ),
        ("seven_a2", vec![A2], Box::new(ZeroZeroSeven::new(2.0))),
    ];
    for (name, kinds, localizer) in cells {
        let obs = input(&t, &kinds);
        group.bench_with_input(BenchmarkId::from_parameter(name), &obs, |b, obs| {
            b.iter(|| localizer.localize(&t.topo, obs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
