//! Wire-codec throughput: encoding and decoding batches of 52-byte flow
//! records (collector-side cost per record).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flock_telemetry::wire::{decode_message, encode_message};
use flock_telemetry::{FlowKey, FlowRecord, FlowStats, TrafficClass};
use flock_topology::{LinkId, NodeId};

fn records(n: usize) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| FlowRecord {
            key: FlowKey::tcp(NodeId(i as u32), NodeId(9999), (i % 60000) as u16, 80),
            stats: FlowStats {
                packets: 1000 + i as u64,
                retransmissions: (i % 7) as u64,
                bytes: 1_500_000,
                rtt_sum_us: 120_000,
                rtt_count: 40,
                rtt_max_us: 9_000,
            },
            class: TrafficClass::Passive,
            path: (i % 4 == 0).then(|| (0..8).map(LinkId).collect()),
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let batch = records(1000);
    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("encode_1000_records", |b| {
        b.iter(|| encode_message(1, 2, 3, &batch));
    });
    let encoded = encode_message(1, 2, 3, &batch);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("decode_1000_records", |b| {
        b.iter(|| decode_message(&encoded).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
