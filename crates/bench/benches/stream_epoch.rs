//! Warm vs cold epoch inference on an unchanged-fault steady state —
//! the latency win the online pipeline's warm start buys.
//!
//! Two layers are measured: the end-to-end per-epoch pipeline cost
//! (assembly + engine + search + merge) with warm start on vs off, and
//! the engine layer alone (rebind vs from-scratch build, and the warm
//! seeded search vs cold greedy) on identical observations.

use criterion::{criterion_group, criterion_main, Criterion};
use flock_bench::{arena_warmed_obs, steady_epochs};
use flock_core::{Engine, FlockGreedy, HyperParams};
use flock_stream::{EpochConfig, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, InputKind};

fn bench(c: &mut Criterion) {
    let fixture = steady_epochs(512, 8_000, 4, 7);
    let topo = &fixture.topo;
    let kinds = [InputKind::A2, InputKind::P];

    let mut group = c.benchmark_group("stream_epoch");
    group.sample_size(20);

    // ---- End-to-end per-epoch pipeline cost, steady state. ----
    let mk_cfg = |warm: bool| StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: kinds.to_vec(),
        mode: AnalysisMode::PerPacket,
        warm_start: warm,
        shard_by_pod: false,
        ..StreamConfig::paper_default()
    };
    for (name, warm) in [
        ("pipeline_cold_epoch", false),
        ("pipeline_warm_epoch", true),
    ] {
        let mut pipe = StreamPipeline::new(topo, mk_cfg(warm));
        // Prime: first epoch pays arena/engine construction either way.
        pipe.run_flows(0, 0, 1_000, &fixture.epochs[0]);
        let mut i = 1u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                let flows = &fixture.epochs[(i as usize) % fixture.epochs.len()];
                let r = pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
                i += 1;
                r
            });
        });
    }

    // ---- Engine layer alone on identical observations (epoch 1,
    // assembled against an arena warmed by epoch 0). ----
    let arena_snapshot = arena_warmed_obs(&fixture, &kinds);
    let obs = &arena_snapshot;
    let params = HyperParams::default();

    group.bench_function("engine_cold_build", |b| {
        b.iter(|| Engine::new(topo, obs, params));
    });
    let mut warm_engine = Engine::new(topo, obs, params);
    group.bench_function("engine_warm_rebind", |b| {
        b.iter(|| warm_engine.rebind(topo, obs));
    });

    let greedy = FlockGreedy::default();
    let seed: Vec<u32> = {
        let mut e = Engine::new(topo, obs, params);
        let (picked, _) = greedy.search(&mut e);
        picked.iter().map(|(c, _)| *c).collect()
    };
    group.bench_function("search_cold", |b| {
        b.iter(|| {
            warm_engine.rebind(topo, obs);
            greedy.search(&mut warm_engine)
        });
    });
    group.bench_function("search_warm_seeded", |b| {
        b.iter(|| {
            warm_engine.rebind(topo, obs);
            greedy.search_warm(&mut warm_engine, &seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
