//! Connection storm: the sharded event-driven reactor vs a
//! thread-per-connection baseline, ingesting the same payload from 256
//! concurrent agent connections.
//!
//! The reactor serves every connection on a small fixed number of
//! threads (4 shards + 1 acceptor here); the baseline — the collector's
//! pre-reactor architecture — spawns one reader thread per connection,
//! funnels every record through a single global mutex, and re-buckets
//! nothing. Throughput is records landed per second; the reactor should
//! win while holding its thread count flat.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flock_telemetry::wire::StreamDecoder;
use flock_telemetry::{
    AgentConfig, AgentCore, Collector, CollectorConfig, FlowKey, FlowSample, StampedRecord,
    TrafficClass,
};
use flock_topology::NodeId;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CONNS: usize = 256;
const RECORDS_PER_CONN: usize = 64;
const REACTOR_SHARDS: usize = 4;

/// One encoded wire payload per connection (v2 frames, epoch-stamped).
fn storm_payloads() -> Vec<Vec<u8>> {
    (0..CONNS as u32)
        .map(|conn| {
            let mut agent = AgentCore::new(AgentConfig {
                agent_id: conn,
                epoch_hint_ms: Some(1_000),
                ..Default::default()
            });
            for i in 0..RECORDS_PER_CONN as u32 {
                agent.observe(FlowSample {
                    key: FlowKey::tcp(
                        NodeId(conn * 1000 + i),
                        NodeId(9999),
                        (i % 60_000) as u16,
                        80,
                    ),
                    packets: 10,
                    retransmissions: 0,
                    bytes: 15_000,
                    rtt_us: Some(150),
                    path: None,
                    class: TrafficClass::Passive,
                });
            }
            let recs = agent.export();
            let mut wire = Vec::new();
            for m in agent.encode_export(500, &recs) {
                wire.extend_from_slice(&m);
            }
            wire
        })
        .collect()
}

/// Open all connections first (so they are concurrently registered),
/// then write each payload and hang up.
fn blast(addr: SocketAddr, payloads: &[Vec<u8>]) {
    let mut socks: Vec<TcpStream> = payloads
        .iter()
        .map(|_| {
            // The listener's backlog can lag a sequential connect storm;
            // retry briefly instead of failing the bench.
            let mut tries = 0;
            loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) if tries < 50 => {
                        tries += 1;
                        std::thread::sleep(Duration::from_millis(2));
                        let _ = e;
                    }
                    Err(e) => panic!("connect failed after retries: {e}"),
                }
            }
        })
        .collect();
    for (s, p) in socks.iter_mut().zip(payloads) {
        s.write_all(p).unwrap();
    }
    drop(socks);
}

/// The pre-reactor collector: one blocking reader thread per accepted
/// connection, all appending to one global `Mutex<Vec<_>>`.
struct ThreadPerConnCollector {
    addr: SocketAddr,
    store: Arc<Mutex<Vec<StampedRecord>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ThreadPerConnCollector {
    fn bind(addr: SocketAddr) -> Self {
        let listener = TcpListener::bind(addr).unwrap();
        listener.set_nonblocking(true).unwrap();
        let local = listener.local_addr().unwrap();
        let store: Arc<Mutex<Vec<StampedRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut readers = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let store = Arc::clone(&store);
                                readers
                                    .push(std::thread::spawn(move || reader_loop(stream, store)));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(_) => return,
                        }
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                for r in readers {
                    let _ = r.join();
                }
            })
        };
        ThreadPerConnCollector {
            addr: local,
            store,
            stop,
            accept_thread: Some(accept_thread),
        }
    }

    fn pending(&self) -> usize {
        self.store.lock().len()
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn reader_loop(mut stream: TcpStream, store: Arc<Mutex<Vec<StampedRecord>>>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut decoder = StreamDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                decoder.feed(&buf[..n]);
                loop {
                    match decoder.next_message() {
                        Ok(Some(msg)) => {
                            let (agent_id, export_ms) = (msg.agent_id, msg.export_time_ms);
                            store.lock().extend(msg.records.into_iter().map(|record| {
                                StampedRecord {
                                    agent_id,
                                    export_ms,
                                    record,
                                }
                            }));
                        }
                        Ok(None) => break,
                        Err(_) => return,
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

fn bench(c: &mut Criterion) {
    let payloads = storm_payloads();
    let total = CONNS * RECORDS_PER_CONN;
    let ephemeral: SocketAddr = "127.0.0.1:0".parse().unwrap();

    let mut group = c.benchmark_group("collector_storm");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total as u64));

    group.bench_function("reactor_4_shards_256_conns", |b| {
        b.iter(|| {
            let collector = Collector::bind_with(
                ephemeral,
                CollectorConfig {
                    shards: REACTOR_SHARDS,
                    ..Default::default()
                },
            )
            .unwrap();
            blast(collector.local_addr(), &payloads);
            while collector.pending() < total {
                std::thread::sleep(Duration::from_micros(200));
            }
            let batch = collector.drain_buckets();
            assert_eq!(batch.buckets.len(), 1, "v2 input lands pre-bucketed");
            collector.shutdown();
        });
    });

    group.bench_function("thread_per_conn_256_conns", |b| {
        b.iter(|| {
            let collector = ThreadPerConnCollector::bind(ephemeral);
            blast(collector.addr, &payloads);
            while collector.pending() < total {
                std::thread::sleep(Duration::from_micros(200));
            }
            collector.shutdown();
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
