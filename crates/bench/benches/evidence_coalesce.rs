//! Evidence coalescing on a spine-heavy workload: identical inference,
//! measured with super-flow coalescing on vs off.
//!
//! The fixture sends *inter-pod only* traffic with quantized RPC-style
//! flow sizes under one persistent agg–spine gray failure, so (a) the
//! spine shard of a pod-sharded pipeline sees every flow of the epoch —
//! the raw-evidence bottleneck called out in the ROADMAP — and (b) the
//! `(path set, sent, bad)` evidence key repeats heavily across host
//! pairs. Coalescing collapses those repeats into weighted super-flows
//! exactly (the likelihood is linear in the aggregation weight), so the
//! two configurations produce the same verdicts and differ only in time.
//!
//! Measured layers:
//! * `sharded_epoch_{coalesced,raw}` — the full pod-sharded warm
//!   pipeline per epoch (assembly + all shard engines + merge), on the
//!   single-spine-shard plan;
//! * `spine_engine_{coalesced,raw}` — the spine shard's engine alone
//!   (rebind + warm search on identical spine-filtered observations),
//!   isolating the shard the coalescing targets;
//! * `spine_tier_{single,planes}` — the spine tier's epoch cost on
//!   traced (INT-kind) evidence, as one engine over all spine
//!   observations vs one engine per spine *plane* running in parallel
//!   (each seeing only its plane's slice). Traced evidence partitions
//!   by plane exactly, so the per-plane wall time should scale down
//!   near-linearly with the plane count at identical verdicts.

use criterion::{criterion_group, criterion_main, Criterion};
use flock_bench::{
    arena_warmed_obs, combined_touches, plane_shards, spine_heavy_epochs, spine_shard,
};
use flock_core::{Engine, EngineOptions, FlockGreedy, HyperParams};
use flock_stream::{EpochConfig, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, FlowObs, InputKind};

fn bench(c: &mut Criterion) {
    let fixture = spine_heavy_epochs(512, 16_000, 4, 11);
    let topo = &fixture.topo;
    let kinds = [InputKind::A2, InputKind::P];

    let mut group = c.benchmark_group("evidence_coalesce");
    group.sample_size(10);

    // ---- End-to-end pod-sharded pipeline, coalesced vs raw. ----
    for (name, coalesce) in [
        ("sharded_epoch_coalesced", true),
        ("sharded_epoch_raw", false),
    ] {
        let mut pipe = StreamPipeline::new(
            topo,
            StreamConfig {
                epoch: EpochConfig::tumbling(1_000),
                kinds: kinds.to_vec(),
                mode: AnalysisMode::PerPacket,
                warm_start: true,
                shard_by_pod: true,
                spine_planes: false,
                coalesce,
                ..StreamConfig::paper_default()
            },
        );
        // Prime: the first epoch pays arena/engine construction.
        let primed = pipe.run_flows(0, 0, 1_000, &fixture.epochs[0]);
        if coalesce {
            let spine = primed
                .shards
                .iter()
                .find(|s| s.label == "spine")
                .expect("pod plan has a spine shard");
            println!(
                "spine shard: {} raw observations -> {} super-flows (coalesce x{:.1})",
                spine.raw_flows,
                spine.flows,
                spine.raw_flows as f64 / spine.flows.max(1) as f64
            );
        }
        let mut i = 1u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                let flows = &fixture.epochs[(i as usize) % fixture.epochs.len()];
                let r = pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
                i += 1;
                r
            });
        });
    }

    // ---- Spine shard engine alone on identical observations. ----
    let obs = arena_warmed_obs(&fixture, &kinds);
    let (spine, touch) = spine_shard(topo, &obs);
    let touches = combined_touches(topo, &obs, &touch);
    let filter = |i: usize, _: &FlowObs| spine.relevant_combined(touches[i]);
    let params = HyperParams::default();
    let greedy = FlockGreedy::default();

    for (name, coalesce) in [
        ("spine_engine_coalesced", true),
        ("spine_engine_raw", false),
    ] {
        let opts = EngineOptions {
            coalesce,
            ..Default::default()
        };
        let mut engine = Engine::with_options(topo, &obs, params, Some(&filter), opts);
        let seed: Vec<u32> = {
            let (picked, _) = greedy.search(&mut engine);
            picked.iter().map(|(c, _)| *c).collect()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                engine.rebind_filtered(topo, &obs, Some(&filter));
                greedy.search_warm(&mut engine, &seed)
            });
        });
    }

    // ---- Spine tier on traced evidence: one engine vs one per plane. ----
    let obs_int = arena_warmed_obs(&fixture, &[InputKind::Int]);
    {
        let (spine, touch) = spine_shard(topo, &obs_int);
        let touches = combined_touches(topo, &obs_int, &touch);
        let filter = |i: usize, _: &FlowObs| spine.relevant_combined(touches[i]);
        let mut engine = Engine::new_filtered(topo, &obs_int, params, Some(&filter));
        let seed: Vec<u32> = {
            let (picked, _) = greedy.search(&mut engine);
            picked.iter().map(|(c, _)| *c).collect()
        };
        println!(
            "spine tier (traced): {} super-flows on the single spine engine",
            engine.n_flows()
        );
        group.bench_function("spine_tier_single", |b| {
            b.iter(|| {
                engine.rebind_filtered(topo, &obs_int, Some(&filter));
                greedy.search_warm(&mut engine, &seed)
            });
        });
    }
    {
        let (planes, touch) = plane_shards(topo, &obs_int);
        let touches = combined_touches(topo, &obs_int, &touch);
        let touches = &touches;
        let mut engines: Vec<(Engine, Vec<u32>)> = planes
            .iter()
            .map(|shard| {
                let filter = |i: usize, _: &FlowObs| shard.relevant_combined(touches[i]);
                let mut e = Engine::new_filtered(topo, &obs_int, params, Some(&filter));
                let (picked, _) = greedy.search(&mut e);
                let seed: Vec<u32> = picked.iter().map(|(c, _)| *c).collect();
                (e, seed)
            })
            .collect();
        println!(
            "spine tier (traced): {} planes, per-plane super-flows {:?}",
            planes.len(),
            engines.iter().map(|(e, _)| e.n_flows()).collect::<Vec<_>>()
        );
        let obs_ref = &obs_int;
        let greedy = &greedy;
        // One thread per plane — the deployment shape. On a single-core
        // runner the wall time degenerates to the sum of plane costs;
        // `bench-report`'s `planes` section also reports the critical
        // path (max per-plane engine time), which is what a machine
        // with one core per plane sees.
        group.bench_function("spine_tier_planes", |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for (shard, (engine, seed)) in planes.iter().zip(engines.iter_mut()) {
                        scope.spawn(move || {
                            let filter =
                                |i: usize, _: &FlowObs| shard.relevant_combined(touches[i]);
                            engine.rebind_filtered(topo, obs_ref, Some(&filter));
                            greedy.search_warm(engine, seed)
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
