//! Evidence coalescing on a spine-heavy workload: identical inference,
//! measured with super-flow coalescing on vs off.
//!
//! The fixture sends *inter-pod only* traffic with quantized RPC-style
//! flow sizes under one persistent agg–spine gray failure, so (a) the
//! spine shard of a pod-sharded pipeline sees every flow of the epoch —
//! the raw-evidence bottleneck called out in the ROADMAP — and (b) the
//! `(path set, sent, bad)` evidence key repeats heavily across host
//! pairs. Coalescing collapses those repeats into weighted super-flows
//! exactly (the likelihood is linear in the aggregation weight), so the
//! two configurations produce the same verdicts and differ only in time.
//!
//! Measured layers:
//! * `sharded_epoch_{coalesced,raw}` — the full pod-sharded warm
//!   pipeline per epoch (assembly + all shard engines + merge);
//! * `spine_engine_{coalesced,raw}` — the spine shard's engine alone
//!   (rebind + warm search on identical spine-filtered observations),
//!   isolating the shard the coalescing targets.

use criterion::{criterion_group, criterion_main, Criterion};
use flock_bench::{arena_warmed_obs, spine_heavy_epochs, spine_shard};
use flock_core::{Engine, EngineOptions, FlockGreedy, HyperParams};
use flock_stream::{EpochConfig, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, FlowObs, InputKind};

fn bench(c: &mut Criterion) {
    let fixture = spine_heavy_epochs(512, 16_000, 4, 11);
    let topo = &fixture.topo;
    let kinds = [InputKind::A2, InputKind::P];

    let mut group = c.benchmark_group("evidence_coalesce");
    group.sample_size(10);

    // ---- End-to-end pod-sharded pipeline, coalesced vs raw. ----
    for (name, coalesce) in [
        ("sharded_epoch_coalesced", true),
        ("sharded_epoch_raw", false),
    ] {
        let mut pipe = StreamPipeline::new(
            topo,
            StreamConfig {
                epoch: EpochConfig::tumbling(1_000),
                kinds: kinds.to_vec(),
                mode: AnalysisMode::PerPacket,
                warm_start: true,
                shard_by_pod: true,
                coalesce,
                ..StreamConfig::paper_default()
            },
        );
        // Prime: the first epoch pays arena/engine construction.
        let primed = pipe.run_flows(0, 0, 1_000, &fixture.epochs[0]);
        if coalesce {
            let spine = primed
                .shards
                .iter()
                .find(|s| s.label == "spine")
                .expect("pod plan has a spine shard");
            println!(
                "spine shard: {} raw observations -> {} super-flows (coalesce x{:.1})",
                spine.raw_flows,
                spine.flows,
                spine.raw_flows as f64 / spine.flows.max(1) as f64
            );
        }
        let mut i = 1u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                let flows = &fixture.epochs[(i as usize) % fixture.epochs.len()];
                let r = pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
                i += 1;
                r
            });
        });
    }

    // ---- Spine shard engine alone on identical observations. ----
    let obs = arena_warmed_obs(&fixture, &kinds);
    let (spine, touch) = spine_shard(topo, &obs);
    let filter = |o: &FlowObs| {
        let (set_touch, prefix_touch) = touch.flow_touch(topo, o);
        spine.relevant(set_touch, prefix_touch)
    };
    let params = HyperParams::default();
    let greedy = FlockGreedy::default();

    for (name, coalesce) in [
        ("spine_engine_coalesced", true),
        ("spine_engine_raw", false),
    ] {
        let opts = EngineOptions { coalesce };
        let mut engine = Engine::with_options(topo, &obs, params, Some(&filter), opts);
        let seed: Vec<u32> = {
            let (picked, _) = greedy.search(&mut engine);
            picked.iter().map(|(c, _)| *c).collect()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                engine.rebind_filtered(topo, &obs, Some(&filter));
                greedy.search_warm(&mut engine, &seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
