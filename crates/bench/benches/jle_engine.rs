//! Microbenchmarks of the JLE engine: initial Δ computation, a single
//! flip with full Δ maintenance, the Δ-free flip, and a single-neighbor
//! evaluation — the quantities behind the O(n) JLE speedup claim.

use criterion::{criterion_group, criterion_main, Criterion};
use flock_bench::{input, trace};
use flock_core::{Engine, HyperParams};
use flock_telemetry::InputKind;

fn bench(c: &mut Criterion) {
    let t = trace(512, 10_000, 3);
    let obs = input(&t, &[InputKind::Int]);
    let mut group = c.benchmark_group("jle_engine");
    group.sample_size(10);

    group.bench_function("engine_build_with_initial_delta", |b| {
        b.iter(|| Engine::new(&t.topo, &obs, HyperParams::default()));
    });

    let mut engine = Engine::new(&t.topo, &obs, HyperParams::default());
    let n = engine.n_comps() as u32;
    group.bench_function("flip_with_delta_maintenance", |b| {
        let mut c = 0u32;
        b.iter(|| {
            engine.flip(c % n);
            engine.flip(c % n); // restore
            c = c.wrapping_add(17);
        });
    });
    group.bench_function("flip_ll_only", |b| {
        let mut c = 0u32;
        b.iter(|| {
            engine.flip_ll_only(c % n);
            engine.flip_ll_only(c % n);
            c = c.wrapping_add(17);
        });
    });
    group.bench_function("delta_single", |b| {
        let mut c = 0u32;
        b.iter(|| {
            let d = engine.delta_single(c % n);
            c = c.wrapping_add(17);
            d
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
