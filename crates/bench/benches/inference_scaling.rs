//! Fig. 4c as a criterion bench: Flock's greedy+JLE inference across
//! topology scales, against the greedy-only ablation (the Sherlock series
//! is extrapolated in `flock-exp fig4c`; a full Sherlock run does not
//! terminate at bench scale, which is the figure's point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flock_bench::{input, trace, SCALES};
use flock_core::{FlockGreedy, HyperParams, Localizer};
use flock_telemetry::InputKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_scaling");
    group.sample_size(10);
    for &(name, servers, flows) in SCALES {
        let t = trace(servers, flows, 1);
        let obs = input(&t, &[InputKind::Int]);
        group.bench_with_input(BenchmarkId::new("flock_jle", name), &obs, |b, obs| {
            let flock = FlockGreedy::default();
            b.iter(|| flock.localize(&t.topo, obs));
        });
        if servers <= 256 {
            group.bench_with_input(BenchmarkId::new("greedy_only", name), &obs, |b, obs| {
                let flock = FlockGreedy::without_jle(HyperParams::default());
                b.iter(|| flock.localize(&t.topo, obs));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
