//! Fig. 7 as a criterion bench: agent aggregation cost and the
//! end-to-end loopback TCP export/collect path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flock_telemetry::{AgentConfig, AgentCore, Collector, FlowKey, FlowSample, TrafficClass};
use flock_topology::NodeId;
use std::io::Write;
use std::net::TcpStream;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector_throughput");
    group.sample_size(10);

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("agent_observe_10k_samples", |b| {
        b.iter(|| {
            let mut agent = AgentCore::new(AgentConfig::default());
            for i in 0..10_000u32 {
                agent.observe(FlowSample {
                    key: FlowKey::tcp(NodeId(i % 64), NodeId(9999), (i % 60000) as u16, 80),
                    packets: 10,
                    retransmissions: 0,
                    bytes: 15_000,
                    rtt_us: Some(150),
                    path: None,
                    class: TrafficClass::Passive,
                });
            }
            agent.export()
        });
    });

    // Full loopback round: 100 connections × 100 records.
    group.throughput(Throughput::Elements(100 * 100));
    group.bench_function("tcp_export_100_conns_100_records", |b| {
        b.iter(|| {
            let collector = Collector::bind("127.0.0.1:0".parse().unwrap()).unwrap();
            let addr = collector.local_addr();
            for conn in 0..100u32 {
                let mut agent = AgentCore::new(AgentConfig {
                    agent_id: conn,
                    ..Default::default()
                });
                for i in 0..100u32 {
                    agent.observe(FlowSample {
                        key: FlowKey::tcp(NodeId(i), NodeId(9999), (conn % 60000) as u16, 80),
                        packets: 10,
                        retransmissions: 0,
                        bytes: 15_000,
                        rtt_us: None,
                        path: None,
                        class: TrafficClass::Passive,
                    });
                }
                let recs = agent.export();
                let msgs = agent.encode_export(0, &recs);
                let mut s = TcpStream::connect(addr).unwrap();
                for m in &msgs {
                    s.write_all(m).unwrap();
                }
            }
            // Wait for all records to land.
            while collector.stats().snapshot().records < 100 * 100 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            collector.shutdown();
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
