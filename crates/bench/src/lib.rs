//! Shared fixtures for the criterion benchmarks: deterministic traces at a
//! few canonical scales, so every bench measures the same workloads the
//! paper's runtime figures use.

use flock_netsim::failure::{self, DEFAULT_NOISE_MAX};
use flock_netsim::flowsim::{run_probes, simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, TrafficConfig, TrafficPattern};
use flock_telemetry::input::{assemble, AnalysisMode, InputKind, ObservationSet};
use flock_telemetry::{plan_a1_probes, MonitoredFlow};
use flock_topology::{ClosParams, GroundTruth, Router, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic benchmark trace.
pub struct BenchTrace {
    /// Topology.
    pub topo: Topology,
    /// Monitored flows (passive + probes).
    pub flows: Vec<MonitoredFlow>,
    /// Ground truth.
    pub truth: GroundTruth,
}

/// Canonical scales: (name, servers, flows).
pub const SCALES: &[(&str, u32, usize)] = &[("small", 256, 4_000), ("medium", 1024, 20_000)];

/// Build a silent-drop trace at the given scale.
pub fn trace(servers: u32, flows_n: usize, seed: u64) -> BenchTrace {
    let topo = flock_topology::clos::three_tier(ClosParams::with_servers(servers));
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = failure::silent_link_drops(&topo, 3, (0.001, 0.01), DEFAULT_NOISE_MAX, &mut rng);
    let demands = generate_demands(
        &topo,
        &TrafficConfig::paper(flows_n, TrafficPattern::Uniform),
        &mut rng,
    );
    let cfg = FlowSimConfig::default();
    let mut flows = simulate_flows(&topo, &router, &scenario, &demands, &cfg, &mut rng);
    let probes = plan_a1_probes(&topo, &router, 50, Some(4096));
    flows.extend(run_probes(&scenario, &probes, &cfg, &mut rng));
    BenchTrace {
        truth: scenario.truth,
        topo,
        flows,
    }
}

/// Assemble an input for a trace.
pub fn input(t: &BenchTrace, kinds: &[InputKind]) -> ObservationSet {
    let router = Router::new(&t.topo);
    assemble(&t.topo, &router, &t.flows, kinds, AnalysisMode::PerPacket)
}

/// A steady-state fixture for the online pipeline: the same persistent
/// fault observed over several epochs of freshly drawn traffic.
pub struct SteadyEpochs {
    /// Topology.
    pub topo: Topology,
    /// Per-epoch monitored flows (same fault active throughout).
    pub epochs: Vec<Vec<MonitoredFlow>>,
    /// Ground truth (constant across epochs).
    pub truth: GroundTruth,
}

/// Build `n_epochs` epochs of traffic under one unchanged silent-drop
/// fault — the steady state where warm-start inference should shine.
pub fn steady_epochs(
    servers: u32,
    flows_per_epoch: usize,
    n_epochs: usize,
    seed: u64,
) -> SteadyEpochs {
    let topo = flock_topology::clos::three_tier(ClosParams::with_servers(servers));
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = failure::silent_link_drops(&topo, 1, (0.01, 0.02), DEFAULT_NOISE_MAX, &mut rng);
    let cfg = FlowSimConfig::default();
    let epochs = (0..n_epochs)
        .map(|_| {
            let demands = generate_demands(
                &topo,
                &TrafficConfig::paper(flows_per_epoch, TrafficPattern::Uniform),
                &mut rng,
            );
            simulate_flows(&topo, &router, &scenario, &demands, &cfg, &mut rng)
        })
        .collect();
    SteadyEpochs {
        truth: scenario.truth,
        topo,
        epochs,
    }
}
